// Scratch check for the thread-safety CI gate — NOT part of the build.
//
// This translation unit contains a deliberate lock-discipline violation:
// `balance_` is GUARDED_BY(mu_) but UnsafeRead() touches it without the
// mutex held. Under `clang++ -Wthread-safety -Werror=thread-safety` it
// must FAIL to compile; the CI job compiles it expecting failure, which
// proves the gate actually fires (annotations wired through
// common/mutex.h, warning enabled, promoted to an error) rather than
// silently passing everything. Under GCC the annotations are no-ops and
// the file is valid C++ — it is simply never built there.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    flexpath::MutexLock lock(mu_);
    balance_ += amount;
  }

  // The seeded violation: reads guarded state with no capability held.
  int UnsafeRead() const { return balance_; }

 private:
  mutable flexpath::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.UnsafeRead();
}
