#!/usr/bin/env python3
"""Compare a perf_smoke BENCH_topk.json against the committed baseline.

Usage: bench_compare.py [--strict] CURRENT.json [BASELINE.json]

Wall-clock on shared CI runners is noisy, so by default a regression
WARNS and never fails the job: every finding is printed as a GitHub
Actions `::warning::` annotation and the exit status is always 0.

With --strict, any finding (or an unreadable input file) exits nonzero
so the step itself turns red. CI runs the strict mode inside a
`continue-on-error: true` step: the red ✗ is visible on the check run
as an early-warning signal, but the job — and the merge — still passes.
Flip off continue-on-error once the runner pool is quiet enough to
trust the numbers.

The committed baseline (ci/bench_baseline.json) was recorded on a quiet
1-core box; refresh it after intentional perf changes with:

    ./build/bench/perf_smoke --out ci/bench_baseline.json

Checked fields (threshold: >20% worse than baseline):
  - cold.elapsed_ms / warm.elapsed_ms  (wall time per run)
  - unsharded.elapsed_ms / sharded.elapsed_ms
                                       (scatter-gather overhead)
  - packed_cold.elapsed_ms / packed_warm.elapsed_ms
                                       (mmap-backed storage engine)
  - packed_open_ms                     (packed-corpus open cost,
                                       O(directories) by design)
  - packed_resident_bytes              (decoded-bytes proxy: buffer
                                       pools + materialized documents)
  - warm_hit_rate                      (cache effectiveness, lower = worse)
Counter fields are byte-deterministic and covered by tests, not here.
"""

import json
import os
import sys

THRESHOLD = 0.20


def warn(msg: str) -> None:
    # GitHub Actions annotation; plain stderr everywhere else.
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::warning title=bench_compare::{msg}")
    else:
        print(f"warning: {msg}", file=sys.stderr)


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--strict"]
    strict = "--strict" in argv[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = args[0]
    baseline_path = (
        args[1]
        if len(args) > 1
        else os.path.join(os.path.dirname(__file__), "bench_baseline.json")
    )
    try:
        with open(current_path) as f:
            current = json.load(f)
    except (OSError, ValueError) as e:
        warn(f"cannot read current bench result {current_path}: {e}")
        return 1 if strict else 0
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        warn(f"cannot read baseline {baseline_path}: {e}")
        return 1 if strict else 0

    findings = 0
    for run in ("cold", "warm", "unsharded", "sharded", "packed_cold",
                "packed_warm"):
        base = baseline.get(run, {}).get("elapsed_ms")
        cur = current.get(run, {}).get("elapsed_ms")
        if not base or cur is None:
            continue
        ratio = cur / base
        if ratio > 1.0 + THRESHOLD:
            warn(
                f"{run} run wall time regressed {ratio:.2f}x "
                f"({base:.2f}ms -> {cur:.2f}ms, threshold +{THRESHOLD:.0%})"
            )
            findings += 1

    # Scalar "bigger is worse" fields from the packed storage engine.
    for field, unit in (("packed_open_ms", "ms"),
                        ("packed_resident_bytes", "bytes")):
        base = baseline.get(field)
        cur = current.get(field)
        if not base or cur is None:
            continue
        ratio = cur / base
        if ratio > 1.0 + THRESHOLD:
            warn(
                f"{field} regressed {ratio:.2f}x "
                f"({base:.2f}{unit} -> {cur:.2f}{unit}, "
                f"threshold +{THRESHOLD:.0%})"
            )
            findings += 1

    base_hit = baseline.get("warm_hit_rate")
    cur_hit = current.get("warm_hit_rate")
    if base_hit and cur_hit is not None:
        if cur_hit < base_hit * (1.0 - THRESHOLD):
            warn(
                f"warm cache hit rate dropped {base_hit:.3f} -> {cur_hit:.3f} "
                f"(threshold -{THRESHOLD:.0%})"
            )
            findings += 1

    if findings == 0:
        print(f"bench_compare: OK ({current_path} vs {baseline_path})")
        return 0
    if strict:
        print(f"bench_compare: {findings} regression(s) — failing (--strict)")
        return 1
    print(f"bench_compare: {findings} warning(s) — not failing the job")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
