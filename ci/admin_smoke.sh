#!/usr/bin/env bash
# End-to-end smoke test of the admin endpoint and the workload-capture
# loop, as run by the admin-smoke CI job:
#
#   1. start flexpath_cli on a generated XMark corpus with --admin-port 0
#      (ephemeral), --query-log, and --crash-dump, keeping the REPL's
#      stdin open on a FIFO
#   2. poll /healthz until the endpoint answers, then exercise every
#      route and validate /metrics with ci/check_prometheus.py
#   3. push a burst of queries through the REPL and assert that
#      /timeseriesz reports a nonzero qps over the window and that every
#      query landed in the JSON-lines log
#   4. SIGTERM the CLI and assert the graceful path: exit code 143 and a
#      flight-recorder dump written through the normal (non-signal-safe)
#      serializer
#   5. re-execute the captured log with flexpath_replay --check, which
#      exits nonzero unless every answer set is byte-identical
#
# Usage: ci/admin_smoke.sh [BUILD_DIR] [OUT_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-admin-smoke-out}"
CLI="$BUILD_DIR/examples/flexpath_cli"
REPLAY="$BUILD_DIR/examples/flexpath_replay"
XMARK_MB=2

fail() { echo "admin_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$CLI" ] || fail "missing $CLI (build the examples target first)"
[ -x "$REPLAY" ] || fail "missing $REPLAY"

mkdir -p "$OUT_DIR"
QUERY_LOG="$OUT_DIR/query_log.jsonl"
CRASH_DUMP="$OUT_DIR/flight_recorder.json"
STDERR_LOG="$OUT_DIR/cli_stderr.log"
METRICS_TXT="$OUT_DIR/metrics.txt"
REPLAY_REPORT="$OUT_DIR/replay_report.json"
rm -f "$QUERY_LOG" "$CRASH_DUMP"

FIFO="$OUT_DIR/repl_stdin.fifo"
rm -f "$FIFO"; mkfifo "$FIFO"

"$CLI" --xmark "$XMARK_MB" --admin-port 0 --query-log "$QUERY_LOG" \
  --crash-dump "$CRASH_DUMP" <"$FIFO" >"$OUT_DIR/cli_stdout.log" \
  2>"$STDERR_LOG" &
CLI_PID=$!
# Keep the FIFO's write end open for the whole test so the REPL does not
# see EOF between bursts.
exec 3>"$FIFO"
cleanup() {
  exec 3>&- || true
  kill "$CLI_PID" 2>/dev/null || true
  rm -f "$FIFO"
}
trap cleanup EXIT

# The CLI prints "admin endpoint: http://127.0.0.1:PORT/" once the
# listener is up; poll for it, then for /healthz.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#.*admin endpoint: http://[^:]*:\([0-9]*\)/.*#\1#p' \
    "$STDERR_LOG" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$CLI_PID" 2>/dev/null || fail "CLI exited early: $(cat "$STDERR_LOG")"
  sleep 0.1
done
[ -n "$PORT" ] || fail "admin endpoint never announced a port"
BASE="http://127.0.0.1:$PORT"

for _ in $(seq 1 100); do
  curl -fsS --max-time 2 "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "/healthz not ok"
echo "admin_smoke: /healthz ok on port $PORT"

# Every route answers 200 and nontrivial JSON (or Prometheus text).
for route in /buildz /statsz /statsz?recent=2 /varz /cachez /tracez \
             /flightrecz "/timeseriesz?window=60"; do
  BODY=$(curl -fsS "$BASE$route") || fail "GET $route failed"
  [ -n "$BODY" ] || fail "GET $route returned an empty body"
done
CODE=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/definitely-not-a-route")
[ "$CODE" = "404" ] || fail "unknown route returned $CODE, expected 404"

# Prometheus exposition: correct content type and a structurally valid
# scrape (name syntax, le monotonicity, +Inf == _count).
curl -fsS -D "$OUT_DIR/metrics_headers.txt" "$BASE/metrics" >"$METRICS_TXT"
grep -qi 'content-type: text/plain; version=0.0.4' \
  "$OUT_DIR/metrics_headers.txt" || fail "/metrics content type wrong"
python3 "$(dirname "$0")/check_prometheus.py" "$METRICS_TXT" \
  || fail "/metrics failed exposition validation"

# Query burst through the REPL; each Append flushes, so the log file is
# the barrier to wait on.
QUERIES=(
  '//item[./name and .contains("gold")]'
  '//person[./name]'
  '//item[./payment]'
  '//item[./name and .contains("gold")]'
)
for q in "${QUERIES[@]}"; do echo "$q" >&3; done
for _ in $(seq 1 100); do
  [ -f "$QUERY_LOG" ] && [ "$(wc -l <"$QUERY_LOG")" -ge "${#QUERIES[@]}" ] \
    && break
  sleep 0.1
done
LINES=$(wc -l <"$QUERY_LOG")
[ "$LINES" -ge "${#QUERIES[@]}" ] \
  || fail "query log has $LINES lines, expected ${#QUERIES[@]}"
echo "admin_smoke: captured $LINES queries"

# The background sampler (1s interval) needs to see the burst; then the
# windowed rates must be nonzero — the zero-traffic guard must not have
# zeroed out real traffic.
sleep 2.5
TS=$(curl -fsS "$BASE/timeseriesz?window=300")
echo "$TS" | python3 -c '
import json, sys
ts = json.load(sys.stdin)
qps = ts["derived"]["qps"]
samples = ts["samples"]
window_s = ts["window_s"]
assert qps > 0, "qps=%r after a query burst" % qps
assert samples >= 2, "samples=%r" % samples
assert "query.count" in ts["series"], "query.count series missing"
print("admin_smoke: /timeseriesz qps=%.3f over %ss" % (qps, window_s))
' || fail "/timeseriesz rates not live after traffic"

# /statsz?recent honors the cap and carries the burst.
curl -fsS "$BASE/statsz?recent=2" | python3 -c '
import json, sys
stats = json.load(sys.stdin)
assert len(stats["recent"]) <= 2, "recent=%d" % len(stats["recent"])
assert stats["shapes"], "no shape aggregates after traffic"
' || fail "/statsz?recent=2 malformed"

# Graceful shutdown: SIGTERM must land as exit 128+15 and leave a
# flight-recorder dump written by the normal serializer, not the
# async-signal-safe crash path.
kill -TERM "$CLI_PID"
WAIT_RC=0
wait "$CLI_PID" || WAIT_RC=$?
[ "$WAIT_RC" -eq 143 ] || fail "expected exit 143 on SIGTERM, got $WAIT_RC"
[ -s "$CRASH_DUMP" ] || fail "no flight-recorder dump at $CRASH_DUMP"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$CRASH_DUMP" \
  || fail "flight-recorder dump is not valid JSON"
echo "admin_smoke: graceful SIGTERM dump ok"

# Replay the captured workload against a freshly generated (same seed)
# corpus: --check exits nonzero on any digest mismatch.
"$REPLAY" --log "$QUERY_LOG" --xmark "$XMARK_MB" --check \
  --out "$REPLAY_REPORT" || fail "replay reported mismatches"
python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))
assert r["digest_mismatches"] == 0, r
assert r["replayed"] == r["records"], r
print("admin_smoke: replayed %d queries, all digests match" % r["replayed"])
' "$REPLAY_REPORT"

echo "admin_smoke: PASS"
