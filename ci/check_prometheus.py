#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) scrape from /metrics.

Usage: check_prometheus.py FILE   (or `-` / no arg for stdin)

A tiny structural parser — no client_golang, just the format rules the
admin endpoint promises to uphold:

  - every sample line is `name{labels} value` or `name value`, with the
    metric name matching [a-zA-Z_:][a-zA-Z0-9_:]*
  - values parse as floats (Inf/NaN spellings allowed)
  - `# TYPE` lines name a known type (counter|gauge|histogram|summary|
    untyped) and precede their samples
  - for each histogram: `le` bucket labels are sorted and their
    cumulative counts are monotone nondecreasing, an `+Inf` bucket
    exists, and its count equals the histogram's `_count` sample
  - at least one `flexpath_`-prefixed metric is present (a scrape of the
    wrong endpoint yields an empty-but-valid exposition; catch it)

Exits 0 when the exposition is valid, 1 with `::error::` annotations
otherwise.
"""

import math
import os
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# `name{label="value",...} value` — labels optional; values are
# float-parseable including +Inf/-Inf/NaN.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

errors = 0


def error(lineno: int, msg: str) -> None:
    global errors
    errors += 1
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::error title=check_prometheus::line {lineno}: {msg}")
    else:
        print(f"error: line {lineno}: {msg}", file=sys.stderr)


def parse_value(token: str) -> float:
    # The exposition format spells infinities +Inf/-Inf; float() accepts
    # inf/Infinity variants, which covers them case-insensitively.
    return float(token)


def base_name(name: str) -> str:
    for suffix in ("_bucket", "_count", "_sum", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] != "-":
        with open(argv[1]) as f:
            lines = f.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    declared_types: dict[str, str] = {}
    # histogram base -> list of (lineno, le_value, count)
    buckets: dict[str, list[tuple[int, float, float]]] = {}
    counts: dict[str, tuple[int, float]] = {}  # base -> (_count line, value)
    sample_names: set[str] = set()

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    error(lineno, f"malformed TYPE line: {line!r}")
                    continue
                name, kind = parts[2], parts[3].strip()
                if not NAME_RE.match(name):
                    error(lineno, f"bad metric name in TYPE line: {name!r}")
                if kind not in KNOWN_TYPES:
                    error(lineno, f"unknown metric type {kind!r} for {name}")
                if name in sample_names or any(
                    base_name(s) == name for s in sample_names
                ):
                    error(lineno, f"TYPE for {name} appears after its samples")
                declared_types[name] = kind
            # HELP and comment lines are free-form.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            error(lineno, f"unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        if not NAME_RE.match(name):
            error(lineno, f"invalid metric name: {name!r}")
            continue
        sample_names.add(name)
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            error(lineno, f"non-numeric value for {name}: {m.group('value')!r}")
            continue

        labels = dict(LABEL_RE.findall(m.group("labels") or ""))
        base = base_name(name)
        if name.endswith("_bucket"):
            if "le" not in labels:
                error(lineno, f"histogram bucket {name} has no le label")
                continue
            le_raw = labels["le"]
            try:
                le = math.inf if le_raw == "+Inf" else float(le_raw)
            except ValueError:
                error(lineno, f"unparseable le bound {le_raw!r} on {name}")
                continue
            buckets.setdefault(base, []).append((lineno, le, value))
        elif name.endswith("_count"):
            counts[base] = (lineno, value)

    for base, entries in buckets.items():
        if declared_types.get(base) not in (None, "histogram"):
            error(
                entries[0][0],
                f"{base} has _bucket samples but TYPE {declared_types[base]}",
            )
        # Exposition order must already be sorted by le.
        les = [le for (_, le, _) in entries]
        if les != sorted(les):
            error(entries[0][0], f"{base} buckets not sorted by le: {les}")
        prev = -math.inf
        for lineno, le, count in sorted(entries, key=lambda e: e[1]):
            if count < prev:
                error(
                    lineno,
                    f"{base} cumulative bucket count decreases at le={le} "
                    f"({prev} -> {count})",
                )
            prev = count
        if not les or les[-1] != math.inf:
            error(entries[0][0], f"{base} has no le=\"+Inf\" bucket")
            continue
        inf_count = max(c for (_, le, c) in entries if le == math.inf)
        if base not in counts:
            error(entries[0][0], f"{base} has buckets but no {base}_count")
        elif counts[base][1] != inf_count:
            error(
                counts[base][0],
                f"{base}_count={counts[base][1]} != +Inf bucket {inf_count}",
            )

    if not any(n.startswith("flexpath_") for n in sample_names):
        error(0, "no flexpath_-prefixed metric in the exposition")

    if errors:
        print(f"check_prometheus: {errors} error(s)")
        return 1
    print(
        f"check_prometheus: OK — {len(sample_names)} sample name(s), "
        f"{len(buckets)} histogram(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
