// Ablation: cost of the three ranking schemes (Section 4.3 / 5.1) on a
// query with a contains predicate. Keyword-first must encode every
// relaxation (an answer with the worst structural score can still win),
// so it is the most expensive; structure-first stops earliest; combined
// sits between, bounded by the ss_j <= ss_i − m pruning rule.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

// Q2 with full-text context: the kind of query the paper's framework is
// for (structure as a template around keyword search).
constexpr const char* kFtQuery =
    "//item[./description/parlist and ./mailbox/mail/text[.contains("
    "\"gold\" or \"silver\")]]";

void BM_Scheme(benchmark::State& state, flexpath::RankScheme scheme) {
  using flexpath::bench_util::GetFixture;

  auto& fixture = flexpath::bench_util::GetFixtureMb(5.0);
  flexpath::Tpq q = fixture.Parse(kFtQuery);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(
        fixture, q, flexpath::Algorithm::kHybrid, 100, scheme);
    benchmark::DoNotOptimize(result);
  }
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["tuples"] =
      static_cast<double>(result.counters.tuples_created);
  flexpath::bench_util::EmitTopKRunJson(
      std::string("abl_ranking_schemes/") + flexpath::RankSchemeName(scheme),
      fixture, q, flexpath::Algorithm::kHybrid, 100, scheme);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Scheme, StructureFirst,
                  flexpath::RankScheme::kStructureFirst);
BENCHMARK_CAPTURE(BM_Scheme, KeywordFirst,
                  flexpath::RankScheme::kKeywordFirst);
BENCHMARK_CAPTURE(BM_Scheme, Combined, flexpath::RankScheme::kCombined);

BENCHMARK_MAIN();
