// Figure 15: SSO vs Hybrid on query Q3 over a 10MB document, K from 50
// to 600. The paper: SSO is more sensitive to K than Hybrid, because the
// size of the intermediate sets it re-sorts depends on K.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig15(benchmark::State& state, flexpath::Algorithm algo) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::MediumDocMb());
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  const size_t k = static_cast<size_t>(state.range(0));
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, k);
    benchmark::DoNotOptimize(result);
  }
  state.counters["score_sorted_items"] =
      static_cast<double>(result.counters.score_sorted_items);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson("fig15_sso_hybrid_k_10mb", fixture,
                                        q, algo, k);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig15, SSO, flexpath::Algorithm::kSso)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Arg(500)->Arg(600);
BENCHMARK_CAPTURE(BM_Fig15, Hybrid, flexpath::Algorithm::kHybrid)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Arg(500)->Arg(600);

BENCHMARK_MAIN();
