#ifndef FLEXPATH_BENCH_BENCH_UTIL_H_
#define FLEXPATH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "exec/topk.h"
#include "ir/engine.h"
#include "query/tpq.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "xml/corpus.h"

namespace flexpath {
namespace bench_util {

/// The paper's Section 6 benchmark queries over the XMark schema.
inline constexpr const char* kQ1 = "//item[./description/parlist]";
inline constexpr const char* kQ2 =
    "//item[./description/parlist and ./mailbox/mail/text]";
inline constexpr const char* kQ3 =
    "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold "
    "and ./keyword and ./emph] and ./name and ./incategory]";

/// One fully indexed XMark corpus. Fixtures are cached per byte size for
/// the lifetime of the bench binary, so each size is generated and
/// indexed once no matter how many benchmarks use it.
struct Fixture {
  Corpus corpus;
  uint64_t target_bytes = 0;  ///< The generated document's target size.
  std::unique_ptr<ElementIndex> index;
  std::unique_ptr<DocumentStats> stats;
  std::unique_ptr<IrEngine> ir;
  std::unique_ptr<TopKProcessor> processor;

  Tpq Parse(const char* xpath);
};

/// Returns the cached fixture for an XMark document of ~`bytes` bytes.
Fixture& GetFixture(uint64_t bytes);

/// Convenience: fixture for a document of `mb` megabytes.
Fixture& GetFixtureMb(double mb);

/// True when FLEXPATH_BENCH_FULL=1.
bool FullScale();

/// The paper's 1MB / 10MB documents are cheap and always run at true
/// scale. The docsize sweeps (Figures 11/12/14) and the 100MB experiment
/// (Figure 16) are compressed by default — set FLEXPATH_BENCH_FULL=1 for
/// the paper's exact sizes.
double SmallDocMb();   ///< 1MB in both modes.
double MediumDocMb();  ///< 10MB in both modes.
double LargeDocMb();   ///< 100MB full; 20MB default.

/// Document sizes for the docsize sweeps: {1,5,10,25,50,100}MB full;
/// {1,2,5,10,15,20}MB default. Always 6 entries.
double SweepSizeMb(int index);

/// Runs one top-K query and returns the result (asserts success).
/// `threads` maps to TopKOptions::num_threads; the default of 1 keeps
/// the paper-figure benchmarks on the serial path so their numbers stay
/// comparable across machines — thread-scaling benches opt in explicitly.
/// `cache` maps to TopKOptions::result_cache.tier (the sub-plan result
/// cache, DESIGN.md §12); the default of kOff keeps the paper figures on
/// the memoization-free path. `shards` maps to TopKOptions::num_shards
/// (0 = unsharded, the default — scatter-gather benches opt in).
TopKResult RunTopK(Fixture& fixture, const Tpq& q, Algorithm algo, size_t k,
                   RankScheme scheme = RankScheme::kStructureFirst,
                   size_t threads = 1, CacheTier cache = CacheTier::kOff,
                   size_t shards = 0);

/// Prints one machine-parseable JSON line describing a benchmark run to
/// stderr (stdout belongs to google-benchmark's reporter):
///   {"bench":"fig10/DPO","algorithm":"DPO","k":600,"corpus_bytes":...,
///    "elapsed_ms":...,"relaxations_used":...,"answers":...,"threads":...,
///    "cache":"off",
///    "counters":{"plan_passes":...,...all ExecCounters fields...}}
/// When `metrics_json` is non-null, its content is appended verbatim as a
/// final "metrics" field (a MetricsToJson snapshot of the run).
void EmitJsonLine(const std::string& bench, const char* algorithm, size_t k,
                  uint64_t corpus_bytes, double elapsed_ms,
                  const ExecCounters& counters, size_t relaxations,
                  size_t answers, size_t threads = 1,
                  const std::string* metrics_json = nullptr,
                  CacheTier cache = CacheTier::kOff);

/// Times one un-instrumented top-K run and emits its JSON line. Call once
/// per benchmark case, after the google-benchmark timing loop, so every
/// `BENCH_*` invocation leaves a mechanical record of what it measured.
/// The global MetricsRegistry is reset before the run, so per-run lines
/// never accumulate counters across configurations; set
/// FLEXPATH_BENCH_METRICS=1 to embed the run's metrics snapshot in the
/// line as a "metrics" field.
TopKResult EmitTopKRunJson(const std::string& bench, Fixture& fixture,
                           const Tpq& q, Algorithm algo, size_t k,
                           RankScheme scheme = RankScheme::kStructureFirst,
                           size_t threads = 1,
                           CacheTier cache = CacheTier::kOff);

}  // namespace bench_util
}  // namespace flexpath

#endif  // FLEXPATH_BENCH_BENCH_UTIL_H_
