// Ablation: the data-relaxation strategy (APPROXML [14], Section 7) vs
// FleXPath's query-side relaxation. The paper dismisses data relaxation
// because it was "shown to quickly fail with large databases" — the
// shortcut closure carries Θ(N·depth) edges. This bench quantifies both
// the closure's build cost/size (reported as counters) and query latency
// against the Hybrid engine answering the equivalent fully-relaxed query.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "exec/data_relaxation.h"
#include "exec/evaluator.h"
#include "exec/plan.h"
#include "relax/relaxation.h"

namespace {

using flexpath::bench_util::GetFixtureMb;

/// One extra timed run of `op`, reported as this benchmark's JSON line.
/// These ablations bypass TopKProcessor, so counters stay empty and
/// "answers" carries the op's result count.
template <typename OpFn>
void EmitOpJson(flexpath::bench_util::Fixture& fixture,
                const char* algorithm, OpFn op) {
  const auto start = std::chrono::steady_clock::now();
  const size_t answers = op();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  flexpath::bench_util::EmitJsonLine("abl_data_relaxation", algorithm, 0,
                                     fixture.target_bytes, elapsed_ms,
                                     flexpath::ExecCounters{}, 0, answers);
}

flexpath::DataRelaxationIndex& ClosureFor(flexpath::bench_util::Fixture& f,
                                          double mb) {
  static auto& cache =
      *new std::map<double, flexpath::DataRelaxationIndex*>();
  auto it = cache.find(mb);
  if (it == cache.end()) {
    it = cache.emplace(mb, new flexpath::DataRelaxationIndex(&f.corpus))
             .first;
  }
  return *it->second;
}

void BM_DataRelaxationBuild(benchmark::State& state) {
  const double mb = static_cast<double>(state.range(0));
  auto& fixture = GetFixtureMb(mb);
  for (auto _ : state) {
    flexpath::DataRelaxationIndex closure(&fixture.corpus);
    benchmark::DoNotOptimize(closure.edge_count());
    state.counters["edges"] = static_cast<double>(closure.edge_count());
    state.counters["closure_mb"] =
        static_cast<double>(closure.ApproxBytes()) / (1024.0 * 1024.0);
    state.counters["tree_edges"] =
        static_cast<double>(fixture.corpus.TotalNodes());
  }
  EmitOpJson(fixture, "DataRelaxationBuild", [&] {
    flexpath::DataRelaxationIndex closure(&fixture.corpus);
    return closure.edge_count();
  });
}

void BM_DataRelaxationQuery(benchmark::State& state) {
  const double mb = static_cast<double>(state.range(0));
  auto& fixture = GetFixtureMb(mb);
  flexpath::DataRelaxationIndex& closure = ClosureFor(fixture, mb);
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ2);
  for (auto _ : state) {
    auto answers = closure.Evaluate(q, fixture.ir.get());
    benchmark::DoNotOptimize(answers);
    state.counters["answers"] = static_cast<double>(answers.size());
  }
  EmitOpJson(fixture, "DataRelaxationQuery", [&] {
    return closure.Evaluate(q, fixture.ir.get()).size();
  });
}

void BM_QueryRelaxationQuery(benchmark::State& state) {
  // The query-side equivalent: exact evaluation of Q2 with every edge
  // axis-generalized — the same answer set the shortcut graph yields —
  // through the normal interval-encoded plan engine.
  const double mb = static_cast<double>(state.range(0));
  auto& fixture = GetFixtureMb(mb);
  flexpath::Tpq q =
      fixture.Parse("//item[.//description[.//parlist] and "
                    ".//mailbox[.//mail[.//text]]]");
  flexpath::PenaltyModel pm(q, fixture.stats.get(), fixture.ir.get(),
                            flexpath::Weights{});
  flexpath::Result<flexpath::JoinPlan> plan =
      flexpath::JoinPlan::Build(q, q, {}, pm, flexpath::Weights{});
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  flexpath::PlanEvaluator evaluator(fixture.index.get(), fixture.ir.get());
  for (auto _ : state) {
    auto answers = evaluator.Evaluate(
        *plan, flexpath::EvalMode::kExact, 0,
        flexpath::RankScheme::kStructureFirst, 0.0, nullptr);
    benchmark::DoNotOptimize(answers);
    state.counters["answers"] = static_cast<double>(answers.size());
  }
  EmitOpJson(fixture, "QueryRelaxationQuery", [&] {
    return evaluator
        .Evaluate(*plan, flexpath::EvalMode::kExact, 0,
                  flexpath::RankScheme::kStructureFirst, 0.0, nullptr)
        .size();
  });
}

}  // namespace

BENCHMARK(BM_DataRelaxationBuild)->Arg(1)->Arg(5)->Arg(10);
BENCHMARK(BM_DataRelaxationQuery)->Arg(1)->Arg(5);
BENCHMARK(BM_QueryRelaxationQuery)->Arg(1)->Arg(5)->Arg(10);

BENCHMARK_MAIN();
