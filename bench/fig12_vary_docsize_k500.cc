// Figure 12: DPO vs SSO with K = 500, document size 1-100MB. The paper's
// text is ambiguous about the query (it says "run on Q2" but then counts
// "relaxations encoded in Q3"); we use Q3, whose strict-answer density
// keeps relaxations in play across the size sweep — the regime the
// figure is about.
// The paper: at large K many relaxations are encoded, intermediate
// results grow with document size, and SSO's pruning pulls ahead of DPO.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig12(benchmark::State& state, flexpath::Algorithm algo) {
  const double mb =
      flexpath::bench_util::SweepSizeMb(static_cast<int>(state.range(0)));
  auto& fixture = flexpath::bench_util::GetFixtureMb(mb);
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, 500);
    benchmark::DoNotOptimize(result);
  }
  state.counters["mb"] = mb;
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson("fig12_vary_docsize_k500", fixture,
                                        q, algo, 500);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig12, DPO, flexpath::Algorithm::kDpo)
    ->DenseRange(0, 5);
BENCHMARK_CAPTURE(BM_Fig12, SSO, flexpath::Algorithm::kSso)
    ->DenseRange(0, 5);

BENCHMARK_MAIN();
