// Ablation: the stack-based structural join of Al-Khalifa et al. [1]
// (the primitive under every FleXPath plan) vs a nested-loop baseline,
// on real XMark tag lists of growing size. Justifies the design choice
// called out in DESIGN.md ("interval encoding + merge joins").
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "exec/structural_join.h"

namespace {

/// One timed run of `join`, reported as this benchmark's JSON line. The
/// structural-join ablation bypasses TopKProcessor, so k and relaxations
/// are zero and the counters are empty; "answers" is the pair count.
template <typename JoinFn>
void EmitJoinJson(flexpath::bench_util::Fixture& fixture,
                  const char* algorithm, JoinFn join) {
  const auto start = std::chrono::steady_clock::now();
  auto pairs = join();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  flexpath::bench_util::EmitJsonLine("abl_join_vs_naive", algorithm, 0,
                                     fixture.target_bytes, elapsed_ms,
                                     flexpath::ExecCounters{}, 0,
                                     pairs.size());
}

void BM_StackJoin(benchmark::State& state) {
  using flexpath::bench_util::GetFixture;

  auto& fixture = flexpath::bench_util::GetFixtureMb(
      static_cast<double>(state.range(0)));
  const flexpath::TagDict& dict = std::as_const(fixture.corpus).tags();
  const auto& items = fixture.index->Scan(dict.Lookup("item"));
  const auto& texts = fixture.index->Scan(dict.Lookup("text"));
  for (auto _ : state) {
    auto pairs =
        flexpath::StructuralJoin(fixture.corpus, items, texts, false);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["ancestors"] = static_cast<double>(items.size());
  state.counters["descendants"] = static_cast<double>(texts.size());
  EmitJoinJson(fixture, "StackJoin", [&] {
    return flexpath::StructuralJoin(fixture.corpus, items, texts, false);
  });
}

void BM_NestedLoopJoin(benchmark::State& state) {
  using flexpath::bench_util::GetFixture;

  auto& fixture = flexpath::bench_util::GetFixtureMb(
      static_cast<double>(state.range(0)));
  const flexpath::TagDict& dict = std::as_const(fixture.corpus).tags();
  const auto& items = fixture.index->Scan(dict.Lookup("item"));
  const auto& texts = fixture.index->Scan(dict.Lookup("text"));
  for (auto _ : state) {
    auto pairs =
        flexpath::NestedLoopJoin(fixture.corpus, items, texts, false);
    benchmark::DoNotOptimize(pairs);
  }
  EmitJoinJson(fixture, "NestedLoopJoin", [&] {
    return flexpath::NestedLoopJoin(fixture.corpus, items, texts, false);
  });
}

}  // namespace

BENCHMARK(BM_StackJoin)->Arg(1)->Arg(5)->Arg(10);
BENCHMARK(BM_NestedLoopJoin)->Arg(1)->Arg(5);

BENCHMARK_MAIN();
