// Figure 10: DPO vs SSO on a 10MB document, query Q3, K from 50 to 600.
// The paper: identical at K=50 (no relaxation needed); SSO increasingly
// better as K grows (68% at K=600), because pruning contains the growing
// intermediate-result sizes.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig10(benchmark::State& state, flexpath::Algorithm algo) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::MediumDocMb());
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  const size_t k = static_cast<size_t>(state.range(0));
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, k);
    benchmark::DoNotOptimize(result);
  }
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson("fig10_vary_k", fixture, q, algo, k);
}

// Thread scaling at a fixed K: the same Q3 run with the pool sized 1, 2,
// 4 and 8. Results are identical at every thread count (deterministic
// merge) — only wall-clock changes; each JSON line records its "threads"
// so the scaling table in the README can be regenerated mechanically.
void BM_Fig10Threads(benchmark::State& state, flexpath::Algorithm algo) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::MediumDocMb());
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t k = 600;
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(
        fixture, q, algo, k, flexpath::RankScheme::kStructureFirst, threads);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson(
      "fig10_vary_k/threads", fixture, q, algo, k,
      flexpath::RankScheme::kStructureFirst, threads);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig10, DPO, flexpath::Algorithm::kDpo)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Arg(500)->Arg(600);
BENCHMARK_CAPTURE(BM_Fig10, SSO, flexpath::Algorithm::kSso)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Arg(500)->Arg(600);
BENCHMARK_CAPTURE(BM_Fig10Threads, DPO, flexpath::Algorithm::kDpo)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_Fig10Threads, SSO, flexpath::Algorithm::kSso)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_Fig10Threads, Hybrid, flexpath::Algorithm::kHybrid)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

BENCHMARK_MAIN();
