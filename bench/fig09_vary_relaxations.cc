// Figure 9: DPO vs SSO on a 1MB document, K = 50, for queries Q1/Q2/Q3 —
// Q1 admits no relaxation at this K, Q2 a couple, Q3 several. The paper's
// claim: SSO <= DPO, with the gap growing with the number of relaxations.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig09(benchmark::State& state, flexpath::Algorithm algo,
              const char* query) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::SmallDocMb());
  flexpath::Tpq q = fixture.Parse(query);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, 50);
    benchmark::DoNotOptimize(result);
  }
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["plan_passes"] =
      static_cast<double>(result.counters.plan_passes);
  flexpath::bench_util::EmitTopKRunJson(std::string("fig09/") + query,
                                        fixture, q, algo, 50);
}

// Cache axis (DESIGN.md §12): the same DPO runs with the sub-plan result
// cache at each tier. Q3 relaxes several steps, so consecutive DPO
// rounds share long plan prefixes — the run-local tier alone shortens
// every round after the first, and the shared tier additionally makes
// repeated queries (every timing-loop iteration after the first) start
// warm. Counters land in the JSON line: cache_step_hits / tuples_excluded
// say how much work each tier removed.
void BM_Fig09Cached(benchmark::State& state, const char* query,
                    flexpath::CacheTier tier) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::SmallDocMb());
  flexpath::Tpq q = fixture.Parse(query);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(
        fixture, q, flexpath::Algorithm::kDpo, 50,
        flexpath::RankScheme::kStructureFirst, /*threads=*/1, tier);
    benchmark::DoNotOptimize(result);
  }
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["cache_step_hits"] =
      static_cast<double>(result.counters.cache_step_hits);
  state.counters["tuples_excluded"] =
      static_cast<double>(result.counters.tuples_excluded);
  flexpath::bench_util::EmitTopKRunJson(
      std::string("fig09/") + query + "/cache", fixture, q,
      flexpath::Algorithm::kDpo, 50, flexpath::RankScheme::kStructureFirst,
      /*threads=*/1, tier);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig09, Q1_DPO, flexpath::Algorithm::kDpo,
                  flexpath::bench_util::kQ1);
BENCHMARK_CAPTURE(BM_Fig09, Q1_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ1);
BENCHMARK_CAPTURE(BM_Fig09, Q2_DPO, flexpath::Algorithm::kDpo,
                  flexpath::bench_util::kQ2);
BENCHMARK_CAPTURE(BM_Fig09, Q2_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ2);
BENCHMARK_CAPTURE(BM_Fig09, Q3_DPO, flexpath::Algorithm::kDpo,
                  flexpath::bench_util::kQ3);
BENCHMARK_CAPTURE(BM_Fig09, Q3_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ3);
BENCHMARK_CAPTURE(BM_Fig09Cached, Q3_DPO_cache_off,
                  flexpath::bench_util::kQ3, flexpath::CacheTier::kOff);
BENCHMARK_CAPTURE(BM_Fig09Cached, Q3_DPO_cache_run,
                  flexpath::bench_util::kQ3, flexpath::CacheTier::kRun);
BENCHMARK_CAPTURE(BM_Fig09Cached, Q3_DPO_cache_shared,
                  flexpath::bench_util::kQ3, flexpath::CacheTier::kShared);

BENCHMARK_MAIN();
