// Figure 9: DPO vs SSO on a 1MB document, K = 50, for queries Q1/Q2/Q3 —
// Q1 admits no relaxation at this K, Q2 a couple, Q3 several. The paper's
// claim: SSO <= DPO, with the gap growing with the number of relaxations.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig09(benchmark::State& state, flexpath::Algorithm algo,
              const char* query) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::SmallDocMb());
  flexpath::Tpq q = fixture.Parse(query);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, 50);
    benchmark::DoNotOptimize(result);
  }
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  state.counters["plan_passes"] =
      static_cast<double>(result.counters.plan_passes);
  flexpath::bench_util::EmitTopKRunJson(std::string("fig09/") + query,
                                        fixture, q, algo, 50);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig09, Q1_DPO, flexpath::Algorithm::kDpo,
                  flexpath::bench_util::kQ1);
BENCHMARK_CAPTURE(BM_Fig09, Q1_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ1);
BENCHMARK_CAPTURE(BM_Fig09, Q2_DPO, flexpath::Algorithm::kDpo,
                  flexpath::bench_util::kQ2);
BENCHMARK_CAPTURE(BM_Fig09, Q2_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ2);
BENCHMARK_CAPTURE(BM_Fig09, Q3_DPO, flexpath::Algorithm::kDpo,
                  flexpath::bench_util::kQ3);
BENCHMARK_CAPTURE(BM_Fig09, Q3_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ3);

BENCHMARK_MAIN();
