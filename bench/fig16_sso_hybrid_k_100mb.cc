// Figure 16: SSO vs Hybrid on query Q3 over a 100MB document, K from 50
// to 600 — Figure 15's sweep at the largest document size, where the
// re-sorted intermediate sets are biggest and Hybrid's advantage widest.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig16(benchmark::State& state, flexpath::Algorithm algo) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::LargeDocMb());
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  const size_t k = static_cast<size_t>(state.range(0));
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, k);
    benchmark::DoNotOptimize(result);
  }
  state.counters["score_sorted_items"] =
      static_cast<double>(result.counters.score_sorted_items);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson("fig16_sso_hybrid_k_100mb", fixture,
                                        q, algo, k);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig16, SSO, flexpath::Algorithm::kSso)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Arg(500)->Arg(600);
BENCHMARK_CAPTURE(BM_Fig16, Hybrid, flexpath::Algorithm::kHybrid)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Arg(500)->Arg(600);

BENCHMARK_MAIN();
