// Figure 14: SSO vs Hybrid on query Q3 with K = 500, document size
// 1-100MB. The paper: Hybrid helps even on small documents, because SSO
// may sort large intermediate sets; the gap grows with document size.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig14(benchmark::State& state, flexpath::Algorithm algo) {
  const double mb =
      flexpath::bench_util::SweepSizeMb(static_cast<int>(state.range(0)));
  auto& fixture = flexpath::bench_util::GetFixtureMb(mb);
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, 500);
    benchmark::DoNotOptimize(result);
  }
  state.counters["mb"] = mb;
  state.counters["score_sorted_items"] =
      static_cast<double>(result.counters.score_sorted_items);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson("fig14_sso_hybrid_docsize", fixture,
                                        q, algo, 500);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig14, SSO, flexpath::Algorithm::kSso)
    ->DenseRange(0, 5);
BENCHMARK_CAPTURE(BM_Fig14, Hybrid, flexpath::Algorithm::kHybrid)
    ->DenseRange(0, 5);

BENCHMARK_MAIN();
