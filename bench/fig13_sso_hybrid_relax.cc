// Figure 13: SSO vs Hybrid on a 10MB document, K = 500, varying the
// number of relaxations through queries Q1/Q2/Q3. The paper: Hybrid is
// consistently (if modestly) faster, with the gap growing with the
// number of relaxations — the score re-sorts SSO pays scale with the
// encoded relaxations.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

void BM_Fig13(benchmark::State& state, flexpath::Algorithm algo,
              const char* query) {
  auto& fixture = flexpath::bench_util::GetFixtureMb(
      flexpath::bench_util::MediumDocMb());
  flexpath::Tpq q = fixture.Parse(query);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, 500);
    benchmark::DoNotOptimize(result);
  }
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["score_sorted_items"] =
      static_cast<double>(result.counters.score_sorted_items);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson(std::string("fig13/") + query,
                                        fixture, q, algo, 500);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig13, Q1_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ1);
BENCHMARK_CAPTURE(BM_Fig13, Q1_Hybrid, flexpath::Algorithm::kHybrid,
                  flexpath::bench_util::kQ1);
BENCHMARK_CAPTURE(BM_Fig13, Q2_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ2);
BENCHMARK_CAPTURE(BM_Fig13, Q2_Hybrid, flexpath::Algorithm::kHybrid,
                  flexpath::bench_util::kQ2);
BENCHMARK_CAPTURE(BM_Fig13, Q3_SSO, flexpath::Algorithm::kSso,
                  flexpath::bench_util::kQ3);
BENCHMARK_CAPTURE(BM_Fig13, Q3_Hybrid, flexpath::Algorithm::kHybrid,
                  flexpath::bench_util::kQ3);

BENCHMARK_MAIN();
