// Ablation: isolates Section 5.2.3's claim — Hybrid's bucketization
// removes SSO's score re-sorting. Runs the same encoded plan in both
// evaluator modes and reports the sorted-item volume each paid, plus the
// peak bucket count (buckets stay few because scores are mask-derived).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "exec/plan.h"
#include "relax/schedule.h"

namespace {

using flexpath::bench_util::GetFixture;


void BM_EvaluatorMode(benchmark::State& state, flexpath::EvalMode mode) {
  auto& fixture = GetFixture(static_cast<uint64_t>(
      flexpath::bench_util::MediumDocMb() * 1024 * 1024));
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  flexpath::PenaltyModel pm(q, fixture.stats.get(), fixture.ir.get(),
                            flexpath::Weights{});
  // Encode the full relaxation chain, as keyword-first would.
  std::vector<flexpath::ScheduleEntry> schedule =
      flexpath::BuildSchedule(q, pm);
  const flexpath::ScheduleEntry& last = schedule.back();
  flexpath::Result<flexpath::JoinPlan> plan = flexpath::JoinPlan::Build(
      q, last.relaxed, last.dropped, pm, flexpath::Weights{});
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  flexpath::PlanEvaluator evaluator(fixture.index.get(), fixture.ir.get());
  const size_t k = static_cast<size_t>(state.range(0));
  flexpath::ExecCounters counters;
  for (auto _ : state) {
    counters = flexpath::ExecCounters{};
    auto answers =
        evaluator.Evaluate(*plan, mode, k,
                           flexpath::RankScheme::kStructureFirst, 0.0,
                           &counters);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["score_sorted_items"] =
      static_cast<double>(counters.score_sorted_items);
  state.counters["tuples"] = static_cast<double>(counters.tuples_created);
  state.counters["buckets_peak"] =
      static_cast<double>(counters.buckets_peak);
  {
    flexpath::ExecCounters json_counters;
    const auto start = std::chrono::steady_clock::now();
    auto answers = evaluator.Evaluate(*plan, mode, k,
                                      flexpath::RankScheme::kStructureFirst,
                                      0.0, &json_counters);
    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
    flexpath::bench_util::EmitJsonLine(
        "abl_bucketization",
        mode == flexpath::EvalMode::kSsoFlat ? "SsoFlat" : "HybridBuckets",
        k, fixture.target_bytes, elapsed_ms, json_counters, schedule.size(),
        answers.size());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_EvaluatorMode, SsoFlat, flexpath::EvalMode::kSsoFlat)
    ->Arg(50)->Arg(200)->Arg(600);
BENCHMARK_CAPTURE(BM_EvaluatorMode, HybridBuckets,
                  flexpath::EvalMode::kHybridBuckets)
    ->Arg(50)->Arg(200)->Arg(600);

BENCHMARK_MAIN();
