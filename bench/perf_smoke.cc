// CI perf smoke for the sub-plan result cache (DESIGN.md §12): runs the
// Figure 9 Q3 DPO workload on a small XMark corpus twice in one process
// with the shared cache tier, then
//   - asserts the warm run had a non-zero cache hit-rate (exit 1 if the
//     cache silently stopped working),
//   - asserts warm-run executor work (candidates probed) dropped below
//     the cold run's — the "measurably faster via counters" check, which
//     holds on a 1-core box where wall-clock comparisons would be noise,
//   - asserts the answers of cold, warm and cache-off runs are identical,
//   - runs the same workload sharded (scatter-gather over 3 document-
//     range shards, DESIGN.md §15), asserts answers AND every execution
//     counter are byte-identical to the unsharded run, and records both
//     timings so the baseline diff tracks scatter-gather overhead,
//   - packs the same-size corpus into the single-file storage format
//     (DESIGN.md §17), opens it mmap-backed, runs the workload cold
//     (first touch decodes pages into the buffer pools) and warm (pool
//     hits), asserts both runs answer byte-identically to the in-memory
//     build, and records pack/open times, cold/warm latency, and a
//     bytes-resident proxy (buffer-pool bytes + decoded document bytes),
//   - writes a BENCH_topk.json artifact (--out PATH to move it; default
//     ./BENCH_topk.json) with the runs' timings, counters, resource
//     usage, and the cold/warm speedup. ci/bench_compare.py diffs that
//     file against the committed ci/bench_baseline.json and warns — does
//     not fail — on wall-time regressions.
// Exit status 0 = healthy; any violated invariant prints a diagnostic
// and exits 1 so the CI job fails.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "core/flexpath.h"
#include "xmark/generator.h"

namespace {

using flexpath::Algorithm;
using flexpath::CacheTier;
using flexpath::TopKResult;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string AnswerKey(const TopKResult& r) {
  std::string s;
  for (const flexpath::RankedAnswer& a : r.answers) {
    // Sequential appends: GCC 12's -Wrestrict misfires on chained +.
    s += std::to_string(a.node.doc);
    s += ":";
    s += std::to_string(a.node.node);
    s += "/";
    s += std::to_string(a.score.ss);
    s += "+";
    s += std::to_string(a.score.ks);
    s += ";";
  }
  s += "penalty=";
  s += std::to_string(r.penalty_applied);
  s += ",dropped=";
  s += std::to_string(r.predicates_dropped);
  return s;
}

void AppendRunJson(std::string* out, const char* name, const TopKResult& r,
                   double elapsed_ms) {
  *out += "\"";
  *out += name;
  *out += "\":{\"elapsed_ms\":" + std::to_string(elapsed_ms);
  *out += ",\"answers\":" + std::to_string(r.answers.size());
  *out += ",\"relaxations_used\":" + std::to_string(r.relaxations_used);
  *out += ",\"counters\":{";
  bool first = true;
  r.counters.ForEach([&](const char* field, uint64_t value) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    *out += field;
    *out += "\":" + std::to_string(value);
  });
  *out += "},\"usage\":{";
  first = true;
  r.usage.ForEach([&](const char* field, double value) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    *out += field;
    *out += "\":" + std::to_string(value);
  });
  *out += "}}";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_topk.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  auto& fixture = flexpath::bench_util::GetFixtureMb(1.0);
  const flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ3);
  constexpr size_t kK = 50;
  constexpr size_t kShards = 3;

  // Reference run without any caching (also the unsharded baseline the
  // scatter-gather run is diffed against).
  auto ref_start = std::chrono::steady_clock::now();
  const TopKResult reference = flexpath::bench_util::RunTopK(
      fixture, q, Algorithm::kDpo, kK, flexpath::RankScheme::kStructureFirst,
      /*threads=*/1, CacheTier::kOff);
  const double reference_ms = MsSince(ref_start);

  auto start = std::chrono::steady_clock::now();
  const TopKResult cold = flexpath::bench_util::RunTopK(
      fixture, q, Algorithm::kDpo, kK, flexpath::RankScheme::kStructureFirst,
      /*threads=*/1, CacheTier::kShared);
  const double cold_ms = MsSince(start);

  start = std::chrono::steady_clock::now();
  const TopKResult warm = flexpath::bench_util::RunTopK(
      fixture, q, Algorithm::kDpo, kK, flexpath::RankScheme::kStructureFirst,
      /*threads=*/1, CacheTier::kShared);
  const double warm_ms = MsSince(start);

  // Scatter-gather over document-range shards, cache off (sharding
  // disables the sub-plan cache): answers and counters must be
  // byte-identical to the unsharded reference; the timing delta is the
  // scatter-gather overhead the baseline diff watches.
  start = std::chrono::steady_clock::now();
  const TopKResult sharded = flexpath::bench_util::RunTopK(
      fixture, q, Algorithm::kDpo, kK, flexpath::RankScheme::kStructureFirst,
      /*threads=*/1, CacheTier::kOff, kShards);
  const double sharded_ms = MsSince(start);

  // Packed-corpus storage engine: the same XMark document through
  // FlexPath's pack → mmap-open → query path. The cold run pays the lazy
  // block decodes; the warm run must be served from the buffer pools.
  flexpath::FlexPath mem;
  {
    flexpath::XMarkOptions xopts;
    xopts.target_bytes = fixture.target_bytes;
    xopts.seed = 42;
    flexpath::Result<flexpath::Document> doc =
        flexpath::GenerateXMark(xopts, mem.tags());
    if (!doc.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    mem.AddDocument(std::move(doc).value());
  }
  const std::string packed_path = std::string(out_path) + ".corpus.fxp";
  start = std::chrono::steady_clock::now();
  if (flexpath::Status st = mem.SavePacked(packed_path); !st.ok()) {
    std::fprintf(stderr, "FAIL: pack: %s\n", st.ToString().c_str());
    return 1;
  }
  const double pack_ms = MsSince(start);
  if (flexpath::Status st = mem.Build(); !st.ok()) {
    std::fprintf(stderr, "FAIL: build: %s\n", st.ToString().c_str());
    return 1;
  }
  flexpath::Result<flexpath::Tpq> packed_q =
      mem.Parse(flexpath::bench_util::kQ3);
  if (!packed_q.ok()) {
    std::fprintf(stderr, "FAIL: %s\n",
                 packed_q.status().ToString().c_str());
    return 1;
  }
  flexpath::TopKOptions packed_opts;
  packed_opts.k = kK;
  packed_opts.scheme = flexpath::RankScheme::kStructureFirst;
  packed_opts.num_threads = 1;
  flexpath::Result<TopKResult> mem_run =
      mem.QueryTpq(*packed_q, packed_opts, Algorithm::kDpo, "perf_smoke");
  if (!mem_run.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", mem_run.status().ToString().c_str());
    return 1;
  }

  flexpath::FlexPath packed;
  start = std::chrono::steady_clock::now();
  if (flexpath::Status st = packed.OpenPacked(packed_path); !st.ok()) {
    std::fprintf(stderr, "FAIL: open packed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double packed_open_ms = MsSince(start);

  flexpath::Counter* decode_bytes =
      flexpath::MetricsRegistry::Global().counter("storage.doc_decode_bytes");
  const uint64_t decode_bytes_before = decode_bytes->Value();
  start = std::chrono::steady_clock::now();
  flexpath::Result<TopKResult> packed_cold =
      packed.QueryTpq(*packed_q, packed_opts, Algorithm::kDpo, "perf_smoke");
  const double packed_cold_ms = MsSince(start);
  start = std::chrono::steady_clock::now();
  flexpath::Result<TopKResult> packed_warm =
      packed.QueryTpq(*packed_q, packed_opts, Algorithm::kDpo, "perf_smoke");
  const double packed_warm_ms = MsSince(start);
  if (!packed_cold.ok() || !packed_warm.ok()) {
    std::fprintf(stderr, "FAIL: packed query failed\n");
    return 1;
  }
  // Bytes-resident proxy: what the packed instance actually decoded —
  // both buffer pools plus materialized document bytes. The mmap itself
  // is shared/clean and reclaimable, so decoded bytes are the fair
  // "memory the engine is holding" number the baseline watches.
  const flexpath::storage::StorageReader::PoolStats elem_pool =
      packed.packed_reader()->GetElemPoolStats();
  const flexpath::storage::StorageReader::PoolStats post_pool =
      packed.packed_reader()->GetPostPoolStats();
  const uint64_t packed_resident_bytes =
      elem_pool.bytes + post_pool.bytes +
      (decode_bytes->Value() - decode_bytes_before);
  const uint64_t packed_file_bytes =
      packed.packed_reader()->header().file_bytes;

  int failures = 0;
  if (AnswerKey(*packed_cold) != AnswerKey(*mem_run) ||
      AnswerKey(*packed_warm) != AnswerKey(*mem_run)) {
    std::fprintf(stderr,
                 "FAIL: packed answers differ from the in-memory build\n"
                 "  memory: %s\n  cold  : %s\n  warm  : %s\n",
                 AnswerKey(*mem_run).c_str(),
                 AnswerKey(*packed_cold).c_str(),
                 AnswerKey(*packed_warm).c_str());
    ++failures;
  }
  if (elem_pool.misses + post_pool.misses == 0) {
    std::fprintf(stderr,
                 "FAIL: packed cold run never touched the buffer pools — "
                 "the query path is not reading the packed file\n");
    ++failures;
  }
  std::remove(packed_path.c_str());

  if (warm.counters.cache_step_hits == 0) {
    std::fprintf(stderr,
                 "FAIL: warm run had zero cache hits (cold misses=%llu)\n",
                 static_cast<unsigned long long>(
                     cold.counters.cache_step_misses));
    ++failures;
  }
  if (warm.counters.candidates_probed >= reference.counters.candidates_probed) {
    std::fprintf(
        stderr,
        "FAIL: warm run probed %llu candidates, not fewer than the uncached "
        "run's %llu — the cache is not saving work\n",
        static_cast<unsigned long long>(warm.counters.candidates_probed),
        static_cast<unsigned long long>(
            reference.counters.candidates_probed));
    ++failures;
  }
  if (AnswerKey(cold) != AnswerKey(reference) ||
      AnswerKey(warm) != AnswerKey(reference)) {
    std::fprintf(stderr,
                 "FAIL: cached answers differ from the uncached run\n"
                 "  off : %s\n  cold: %s\n  warm: %s\n",
                 AnswerKey(reference).c_str(), AnswerKey(cold).c_str(),
                 AnswerKey(warm).c_str());
    ++failures;
  }
  if (AnswerKey(sharded) != AnswerKey(reference)) {
    std::fprintf(stderr,
                 "FAIL: sharded answers differ from the unsharded run\n"
                 "  unsharded: %s\n  sharded  : %s\n",
                 AnswerKey(reference).c_str(), AnswerKey(sharded).c_str());
    ++failures;
  }
  {
    std::string mismatch;
    const flexpath::ExecCounters& a = reference.counters;
    const flexpath::ExecCounters& b = sharded.counters;
    std::vector<std::pair<const char*, uint64_t>> ref_fields;
    a.ForEach([&](const char* name, uint64_t value) {
      ref_fields.emplace_back(name, value);
    });
    size_t i = 0;
    b.ForEach([&](const char* name, uint64_t value) {
      if (i < ref_fields.size() && ref_fields[i].second != value) {
        mismatch += std::string(" ") + name + "=" +
                    std::to_string(ref_fields[i].second) + "vs" +
                    std::to_string(value);
      }
      ++i;
    });
    if (!mismatch.empty()) {
      std::fprintf(stderr,
                   "FAIL: sharded run counters diverge from unsharded:%s\n",
                   mismatch.c_str());
      ++failures;
    }
  }
  // Q3 is the deep-relaxation query; if it stops relaxing the cache smoke
  // stops covering the cross-round reuse it exists to watch.
  if (reference.relaxations_used < 3) {
    std::fprintf(stderr,
                 "FAIL: Q3 used only %zu relaxations; the smoke needs a "
                 "deep DPO schedule\n",
                 reference.relaxations_used);
    ++failures;
  }

  const uint64_t warm_steps =
      warm.counters.cache_step_hits + warm.counters.cache_step_misses;
  const double hit_rate =
      warm_steps == 0
          ? 0.0
          : static_cast<double>(warm.counters.cache_step_hits) /
                static_cast<double>(warm_steps);

  std::string json = "{\"bench\":\"perf_smoke/Q3_DPO_shared\"";
  json += ",\"corpus_bytes\":" + std::to_string(fixture.target_bytes);
  json += ",\"k\":" + std::to_string(kK);
  json += ",\"warm_hit_rate\":" + std::to_string(hit_rate);
  json += ",\"cold_over_warm_speedup\":" +
          std::to_string(warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  json += ",";
  AppendRunJson(&json, "cold", cold, cold_ms);
  json += ",";
  AppendRunJson(&json, "warm", warm, warm_ms);
  json += ",\"shards\":" + std::to_string(kShards);
  json += ",";
  AppendRunJson(&json, "unsharded", reference, reference_ms);
  json += ",";
  AppendRunJson(&json, "sharded", sharded, sharded_ms);
  json += ",\"packed_file_bytes\":" + std::to_string(packed_file_bytes);
  json += ",\"packed_pack_ms\":" + std::to_string(pack_ms);
  json += ",\"packed_open_ms\":" + std::to_string(packed_open_ms);
  json += ",\"packed_resident_bytes\":" +
          std::to_string(packed_resident_bytes);
  json += ",\"packed_pool_bytes\":" +
          std::to_string(elem_pool.bytes + post_pool.bytes);
  json += ",";
  AppendRunJson(&json, "packed_cold", *packed_cold, packed_cold_ms);
  json += ",";
  AppendRunJson(&json, "packed_warm", *packed_warm, packed_warm_ms);
  json += "}";

  if (FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
    ++failures;
  }
  std::printf("%s\n", json.c_str());
  std::printf(
      "perf smoke: %s (warm hit rate %.2f, %llu steps served from cache)\n",
      failures == 0 ? "OK" : "FAILED", hit_rate,
      static_cast<unsigned long long>(warm.counters.cache_step_hits));
  return failures == 0 ? 0 : 1;
}
