#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "query/xpath_parser.h"
#include "xmark/generator.h"

namespace flexpath {
namespace bench_util {

Tpq Fixture::Parse(const char* xpath) {
  Result<Tpq> q = ParseXPath(xpath, corpus.tags());
  if (!q.ok()) {
    std::fprintf(stderr, "bench query parse failed: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return *std::move(q);
}

Fixture& GetFixture(uint64_t bytes) {
  // Cached for the binary's lifetime; intentionally leaked (benchmarks
  // exit right after, and fixture teardown order vs. static destructors
  // is not worth the risk).
  static auto& cache = *new std::map<uint64_t, Fixture*>();
  auto it = cache.find(bytes);
  if (it != cache.end()) return *it->second;

  auto* fixture = new Fixture();
  XMarkOptions opts;
  opts.target_bytes = bytes;
  opts.seed = 42;
  Result<Document> doc = GenerateXMark(opts, fixture->corpus.tags());
  if (!doc.ok()) {
    std::fprintf(stderr, "xmark generation failed: %s\n",
                 doc.status().ToString().c_str());
    std::abort();
  }
  fixture->corpus.Add(std::move(doc).value());
  fixture->index = std::make_unique<ElementIndex>(&fixture->corpus);
  fixture->stats = std::make_unique<DocumentStats>(&fixture->corpus);
  fixture->ir = std::make_unique<IrEngine>(&fixture->corpus);
  fixture->processor = std::make_unique<TopKProcessor>(
      fixture->index.get(), fixture->stats.get(), fixture->ir.get());
  cache.emplace(bytes, fixture);
  return *fixture;
}

bool FullScale() {
  const char* env = std::getenv("FLEXPATH_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

Fixture& GetFixtureMb(double mb) {
  return GetFixture(static_cast<uint64_t>(mb * 1024.0 * 1024.0));
}

double SmallDocMb() { return 1.0; }

double MediumDocMb() { return 10.0; }

double LargeDocMb() { return FullScale() ? 100.0 : 20.0; }

double SweepSizeMb(int index) {
  static constexpr double kFull[] = {1, 5, 10, 25, 50, 100};
  static constexpr double kDefault[] = {1, 2, 5, 10, 15, 20};
  return FullScale() ? kFull[index] : kDefault[index];
}

TopKResult RunTopK(Fixture& fixture, const Tpq& q, Algorithm algo, size_t k,
                   RankScheme scheme) {
  TopKOptions opts;
  opts.k = k;
  opts.scheme = scheme;
  Result<TopKResult> result = fixture.processor->Run(q, algo, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "top-k run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *std::move(result);
}

}  // namespace bench_util
}  // namespace flexpath
