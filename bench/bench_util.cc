#include "bench/bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/json_util.h"
#include "common/metrics.h"
#include "query/xpath_parser.h"
#include "xmark/generator.h"

namespace flexpath {
namespace bench_util {

Tpq Fixture::Parse(const char* xpath) {
  Result<Tpq> q = ParseXPath(xpath, corpus.tags());
  if (!q.ok()) {
    std::fprintf(stderr, "bench query parse failed: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return *std::move(q);
}

Fixture& GetFixture(uint64_t bytes) {
  // Cached for the binary's lifetime; intentionally leaked (benchmarks
  // exit right after, and fixture teardown order vs. static destructors
  // is not worth the risk).
  static auto& cache = *new std::map<uint64_t, Fixture*>();
  auto it = cache.find(bytes);
  if (it != cache.end()) return *it->second;

  auto* fixture = new Fixture();
  fixture->target_bytes = bytes;
  XMarkOptions opts;
  opts.target_bytes = bytes;
  opts.seed = 42;
  Result<Document> doc = GenerateXMark(opts, fixture->corpus.tags());
  if (!doc.ok()) {
    std::fprintf(stderr, "xmark generation failed: %s\n",
                 doc.status().ToString().c_str());
    std::abort();
  }
  fixture->corpus.Add(std::move(doc).value());
  fixture->index = std::make_unique<ElementIndex>(&fixture->corpus);
  fixture->stats = std::make_unique<DocumentStats>(&fixture->corpus);
  fixture->ir = std::make_unique<IrEngine>(&fixture->corpus);
  fixture->processor = std::make_unique<TopKProcessor>(
      fixture->index.get(), fixture->stats.get(), fixture->ir.get());
  cache.emplace(bytes, fixture);
  return *fixture;
}

bool FullScale() {
  const char* env = std::getenv("FLEXPATH_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

Fixture& GetFixtureMb(double mb) {
  return GetFixture(static_cast<uint64_t>(mb * 1024.0 * 1024.0));
}

double SmallDocMb() { return 1.0; }

double MediumDocMb() { return 10.0; }

double LargeDocMb() { return FullScale() ? 100.0 : 20.0; }

double SweepSizeMb(int index) {
  static constexpr double kFull[] = {1, 5, 10, 25, 50, 100};
  static constexpr double kDefault[] = {1, 2, 5, 10, 15, 20};
  return FullScale() ? kFull[index] : kDefault[index];
}

TopKResult RunTopK(Fixture& fixture, const Tpq& q, Algorithm algo, size_t k,
                   RankScheme scheme, size_t threads, CacheTier cache,
                   size_t shards) {
  TopKOptions opts;
  opts.k = k;
  opts.scheme = scheme;
  opts.num_threads = threads;
  opts.result_cache.tier = cache;
  opts.num_shards = shards;
  Result<TopKResult> result = fixture.processor->Run(q, algo, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "top-k run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *std::move(result);
}

void EmitJsonLine(const std::string& bench, const char* algorithm, size_t k,
                  uint64_t corpus_bytes, double elapsed_ms,
                  const ExecCounters& counters, size_t relaxations,
                  size_t answers, size_t threads,
                  const std::string* metrics_json, CacheTier cache) {
  std::string line = "{\"bench\":\"";
  line += JsonEscape(bench);
  line += "\",\"algorithm\":\"";
  line += JsonEscape(algorithm);
  line += "\",\"k\":" + std::to_string(k);
  line += ",\"corpus_bytes\":" + std::to_string(corpus_bytes);
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f", elapsed_ms);
  line += ",\"elapsed_ms\":";
  line += ms;
  line += ",\"relaxations_used\":" + std::to_string(relaxations);
  line += ",\"answers\":" + std::to_string(answers);
  line += ",\"threads\":" + std::to_string(threads);
  line += ",\"cache\":\"";
  line += CacheTierName(cache);
  line += "\",\"counters\":{";
  bool first = true;
  counters.ForEach([&](const char* name, uint64_t value) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += name;
    line += "\":" + std::to_string(value);
  });
  line += '}';
  if (metrics_json != nullptr) {
    line += ",\"metrics\":" + *metrics_json;
  }
  line += '}';
  std::fprintf(stderr, "%s\n", line.c_str());
}

TopKResult EmitTopKRunJson(const std::string& bench, Fixture& fixture,
                           const Tpq& q, Algorithm algo, size_t k,
                           RankScheme scheme, size_t threads,
                           CacheTier cache) {
  // Zero the process-wide registry so the emitted line (and an embedded
  // metrics snapshot) reflects this run alone, not every configuration
  // the bench binary executed before it.
  MetricsRegistry::Global().ResetAll();
  const auto start = std::chrono::steady_clock::now();
  TopKResult result = RunTopK(fixture, q, algo, k, scheme, threads, cache);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  const char* want_metrics = std::getenv("FLEXPATH_BENCH_METRICS");
  if (want_metrics != nullptr && want_metrics[0] == '1') {
    const std::string metrics =
        MetricsToJson(MetricsRegistry::Global().Snapshot());
    EmitJsonLine(bench, AlgorithmName(algo), k, fixture.target_bytes,
                 elapsed_ms, result.counters, result.relaxations_used,
                 result.answers.size(), threads, &metrics, cache);
  } else {
    EmitJsonLine(bench, AlgorithmName(algo), k, fixture.target_bytes,
                 elapsed_ms, result.counters, result.relaxations_used,
                 result.answers.size(), threads, nullptr, cache);
  }
  return result;
}

}  // namespace bench_util
}  // namespace flexpath
