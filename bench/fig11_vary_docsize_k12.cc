// Figure 11: DPO vs SSO on query Q2 with K = 12, document size 1-100MB.
// The paper: with K small the two algorithms stay close, since a
// relaxation is rarely needed (only on the smallest document).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

// Paper sizes in MB, indexed by the benchmark argument.
void BM_Fig11(benchmark::State& state, flexpath::Algorithm algo) {
  const double mb =
      flexpath::bench_util::SweepSizeMb(static_cast<int>(state.range(0)));
  auto& fixture = flexpath::bench_util::GetFixtureMb(mb);
  flexpath::Tpq q = fixture.Parse(flexpath::bench_util::kQ2);
  flexpath::TopKResult result;
  for (auto _ : state) {
    result = flexpath::bench_util::RunTopK(fixture, q, algo, 12);
    benchmark::DoNotOptimize(result);
  }
  state.counters["mb"] = mb;
  state.counters["relaxations"] =
      static_cast<double>(result.relaxations_used);
  state.counters["answers"] = static_cast<double>(result.answers.size());
  flexpath::bench_util::EmitTopKRunJson("fig11_vary_docsize_k12", fixture, q,
                                        algo, 12);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig11, DPO, flexpath::Algorithm::kDpo)
    ->DenseRange(0, 5);
BENCHMARK_CAPTURE(BM_Fig11, SSO, flexpath::Algorithm::kSso)
    ->DenseRange(0, 5);

BENCHMARK_MAIN();
