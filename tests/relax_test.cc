#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/naive_evaluator.h"
#include "ir/engine.h"
#include "query/containment.h"
#include "query/logical.h"
#include "query/xpath_parser.h"
#include "relax/operators.h"
#include "relax/penalty.h"
#include "relax/relaxation.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"

namespace flexpath {
namespace {

Tpq Parse(const char* s, TagDict* dict) {
  Result<Tpq> q = ParseXPath(s, dict);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *std::move(q);
}

// Q1 of the paper (Figure 1a).
const char* kQ1 =
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and "
    "\"streaming\")]]]";

TEST(OperatorsTest, ApplicableOpsOnQ1) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  std::vector<RelaxOp> ops = ApplicableOps(q1);
  // γ on each of the 3 pc edges; λ on the 2 leaves (algorithm,
  // paragraph); σ on algorithm + paragraph (grandparent = article);
  // κ on paragraph's contains.
  int gamma = 0, lambda = 0, sigma = 0, kappa = 0;
  for (const RelaxOp& op : ops) {
    switch (op.kind) {
      case RelaxOpKind::kAxisGeneralization: ++gamma; break;
      case RelaxOpKind::kLeafDeletion: ++lambda; break;
      case RelaxOpKind::kSubtreePromotion: ++sigma; break;
      case RelaxOpKind::kContainsPromotion: ++kappa; break;
    }
  }
  EXPECT_EQ(gamma, 3);
  EXPECT_EQ(lambda, 2);
  EXPECT_EQ(sigma, 2);
  EXPECT_EQ(kappa, 1);
}

TEST(OperatorsTest, KappaProducesQ2) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  Tpq q2 = Parse(
      "//article[./section[./algorithm and ./paragraph and "
      ".contains(\"XML\" and \"streaming\")]]",
      &dict);
  const VarId paragraph = q1.Vars()[3];
  Result<Tpq> relaxed = ApplyOp(
      q1, RelaxOp{RelaxOpKind::kContainsPromotion, paragraph,
                  "(\"xml\" and \"stream\")"});
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
  EXPECT_EQ(relaxed->CanonicalString(), q2.CanonicalString());
}

TEST(OperatorsTest, SigmaProducesQ3) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  Tpq q3 = Parse(
      "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      &dict);
  const VarId algorithm = q1.Vars()[2];
  Result<Tpq> relaxed =
      ApplyOp(q1, RelaxOp{RelaxOpKind::kSubtreePromotion, algorithm, ""});
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->CanonicalString(), q3.CanonicalString());
}

TEST(OperatorsTest, LambdaDeletesLeafAndPredicates) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  const VarId algorithm = q1.Vars()[2];
  Result<Tpq> relaxed =
      ApplyOp(q1, RelaxOp{RelaxOpKind::kLeafDeletion, algorithm, ""});
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->size(), 3u);
  Tpq q5 = Parse(
      "//article[./section[./paragraph[.contains(\"XML\" and "
      "\"streaming\")]]]",
      &dict);
  EXPECT_EQ(relaxed->CanonicalString(), q5.CanonicalString());
}

TEST(OperatorsTest, GammaGeneralizesAxis) {
  TagDict dict;
  Tpq q = Parse("//a[./b]", &dict);
  const VarId b = q.Vars()[1];
  Result<Tpq> relaxed =
      ApplyOp(q, RelaxOp{RelaxOpKind::kAxisGeneralization, b, ""});
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->AxisOf(b), Axis::kDescendant);
  // Not applicable twice.
  EXPECT_FALSE(
      ApplyOp(*relaxed, RelaxOp{RelaxOpKind::kAxisGeneralization, b, ""})
          .ok());
}

TEST(OperatorsTest, InapplicableOpsFail) {
  TagDict dict;
  Tpq q = Parse("//a[./b]", &dict);
  const VarId a = q.root();
  const VarId b = q.Vars()[1];
  EXPECT_FALSE(ApplyOp(q, RelaxOp{RelaxOpKind::kLeafDeletion, a, ""}).ok());
  EXPECT_FALSE(
      ApplyOp(q, RelaxOp{RelaxOpKind::kSubtreePromotion, b, ""}).ok());
  EXPECT_FALSE(
      ApplyOp(q, RelaxOp{RelaxOpKind::kContainsPromotion, b, "x"}).ok());
  EXPECT_FALSE(
      ApplyOp(q, RelaxOp{RelaxOpKind::kLeafDeletion, 99, ""}).ok());
}

TEST(OperatorsTest, EveryOpYieldsContainingQuery) {
  // Theorem 2, soundness: ApplyOp(q, op) contains q.
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  for (const RelaxOp& op : ApplicableOps(q1)) {
    Result<Tpq> relaxed = ApplyOp(q1, op);
    ASSERT_TRUE(relaxed.ok()) << op.ToString();
    EXPECT_TRUE(ContainedIn(q1, *relaxed)) << op.ToString();
    EXPECT_FALSE(ContainedIn(*relaxed, q1))
        << op.ToString() << " should be a strict relaxation";
  }
}

TEST(OperatorsTest, DroppedPredicatesMatchDefinition) {
  // DroppedPredicates must be exactly Closure(q) − Closure(op(q)), and a
  // valid relaxation drop per Definition 1.
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  const LogicalQuery closure = Closure(ToLogical(q1));
  for (const RelaxOp& op : ApplicableOps(q1)) {
    std::set<Predicate> dropped = DroppedPredicates(q1, closure, op);
    ASSERT_FALSE(dropped.empty()) << op.ToString();
    EXPECT_TRUE(IsValidRelaxationDrop(q1, dropped))
        << op.ToString();
  }
}

TEST(OperatorsTest, GammaDropsExactlyPc) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  const VarId article = q1.Vars()[0];
  const VarId section = q1.Vars()[1];
  const LogicalQuery closure = Closure(ToLogical(q1));
  std::set<Predicate> dropped = DroppedPredicates(
      q1, closure, RelaxOp{RelaxOpKind::kAxisGeneralization, section, ""});
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_TRUE(dropped.count(Predicate::Pc(article, section)) > 0);
}

TEST(OperatorsTest, LambdaOnContainsLeafPromotesTheContains) {
  // Deleting the paragraph leaf drops its structural predicates and its
  // own contains, but the keyword requirement survives at the parent
  // (contains($2,E), contains($1,E) stay in the closure) — the paper's
  // loosest interpretation still evaluates the FTExp.
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  const VarId v1 = q1.Vars()[0];
  const VarId v2 = q1.Vars()[1];
  const VarId v4 = q1.Vars()[3];
  const LogicalQuery closure = Closure(ToLogical(q1));
  std::set<Predicate> dropped = DroppedPredicates(
      q1, closure, RelaxOp{RelaxOpKind::kLeafDeletion, v4, ""});
  const std::string key = "(\"xml\" and \"stream\")";
  EXPECT_TRUE(dropped.count(Predicate::ContainsKey(v4, key)) > 0);
  EXPECT_FALSE(dropped.count(Predicate::ContainsKey(v2, key)) > 0);
  EXPECT_FALSE(dropped.count(Predicate::ContainsKey(v1, key)) > 0);
  EXPECT_TRUE(dropped.count(Predicate::Pc(v2, v4)) > 0);
  EXPECT_TRUE(dropped.count(Predicate::Ad(v2, v4)) > 0);
  EXPECT_TRUE(dropped.count(Predicate::Ad(v1, v4)) > 0);

  // The relaxed query itself carries the promoted contains at $2.
  Result<Tpq> relaxed =
      ApplyOp(q1, RelaxOp{RelaxOpKind::kLeafDeletion, v4, ""});
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->node(v2).contains.size(), 1u);
}

TEST(OperatorsTest, SoundnessAgainstNaiveEvaluator) {
  // Theorem 2 soundness, checked on data: every operator application
  // admits at least the original query's answers.
  auto corpus = testing_util::ArticleCorpus();
  ElementIndex index(corpus.get());
  IrEngine ir(corpus.get());
  TagDict* dict = corpus->tags();
  Tpq q1 = Parse(kQ1, dict);

  std::vector<NodeRef> base = NaiveEvaluate(index, q1, &ir);
  for (const RelaxOp& op : ApplicableOps(q1)) {
    Result<Tpq> relaxed = ApplyOp(q1, op);
    ASSERT_TRUE(relaxed.ok());
    std::vector<NodeRef> relaxed_answers =
        NaiveEvaluate(index, *relaxed, &ir);
    EXPECT_TRUE(std::includes(relaxed_answers.begin(), relaxed_answers.end(),
                              base.begin(), base.end()))
        << op.ToString();
  }
}

TEST(RelaxationSpaceTest, ContainsSelfAndIsDeduplicated) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  std::vector<Tpq> space = RelaxationSpace(q1, 512);
  ASSERT_FALSE(space.empty());
  EXPECT_EQ(space[0].CanonicalString(), q1.CanonicalString());
  std::set<std::string> canon;
  for (const Tpq& q : space) canon.insert(q.CanonicalString());
  EXPECT_EQ(canon.size(), space.size()) << "space must be deduplicated";
  EXPECT_GT(space.size(), 8u);
}

TEST(RelaxationSpaceTest, CoversFigure1Queries) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  std::vector<Tpq> space = RelaxationSpace(q1, 512);
  std::set<std::string> canon;
  for (const Tpq& q : space) canon.insert(q.CanonicalString());

  auto expect_in_space = [&](const char* xpath) {
    Tpq q = Parse(xpath, &dict);
    EXPECT_TRUE(canon.count(q.CanonicalString()) > 0) << xpath;
  };
  // Q2 = κ(Q1); Q3 = σ(Q1); Q4 = κ∘σ; Q5 = λ∘κ... (Figure 1b-e).
  expect_in_space(
      "//article[./section[./algorithm and ./paragraph and "
      ".contains(\"XML\" and \"streaming\")]]");
  expect_in_space(
      "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]");
  expect_in_space(
      "//article[.//algorithm and ./section[./paragraph and "
      ".contains(\"XML\" and \"streaming\")]]");
  expect_in_space(
      "//article[./section[./paragraph[.contains(\"XML\" and "
      "\"streaming\")]]]");
}

TEST(RelaxationSpaceTest, AllMembersAreRelaxations) {
  TagDict dict;
  Tpq q1 = Parse(kQ1, &dict);
  for (const Tpq& q : RelaxationSpace(q1, 64)) {
    EXPECT_TRUE(ContainedIn(q1, q)) << q.CanonicalString();
  }
}

// --- Penalties -----------------------------------------------------------

class PenaltyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::ArticleCorpus();
    stats_ = std::make_unique<DocumentStats>(corpus_.get());
    ir_ = std::make_unique<IrEngine>(corpus_.get());
  }
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<DocumentStats> stats_;
  std::unique_ptr<IrEngine> ir_;
};

TEST_F(PenaltyTest, PenaltiesInZeroWeightRange) {
  Tpq q1 = Parse(kQ1, corpus_->tags());
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  for (const Predicate& p : Closure(ToLogical(q1)).preds) {
    if (p.kind == PredKind::kTag) continue;
    EXPECT_GE(pm.Of(p), 0.0) << p.ToString();
    EXPECT_LE(pm.Of(p), 1.0) << p.ToString();
  }
}

TEST_F(PenaltyTest, PcPenaltyReflectsPcAdRatio) {
  // In the article corpus every section is a child of article, so
  // #pc(article,section)/#ad(article,section) = 1: full penalty.
  Tpq q1 = Parse(kQ1, corpus_->tags());
  const VarId article = q1.Vars()[0];
  const VarId section = q1.Vars()[1];
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  EXPECT_DOUBLE_EQ(pm.Of(Predicate::Pc(article, section)), 1.0);
}

TEST_F(PenaltyTest, AdPenaltyIsSparsityScaled) {
  // ad(article, algorithm): 5 pairs over 6 articles * 5 algorithms — a
  // small fraction, so the penalty is well below the weight.
  Tpq q1 = Parse(kQ1, corpus_->tags());
  const VarId v1 = q1.Vars()[0];
  const VarId v3 = q1.Vars()[2];
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  EXPECT_GT(pm.Of(Predicate::Ad(v1, v3)), 0.0);
  EXPECT_LT(pm.Of(Predicate::Ad(v1, v3)), 0.5);
}

TEST_F(PenaltyTest, WeightsScalePenalties) {
  Tpq q1 = Parse(kQ1, corpus_->tags());
  const VarId article = q1.Vars()[0];
  const VarId section = q1.Vars()[1];
  Weights heavy;
  heavy.structural = 5.0;
  PenaltyModel pm(q1, stats_.get(), ir_.get(), heavy);
  EXPECT_DOUBLE_EQ(pm.Of(Predicate::Pc(article, section)), 5.0);
}

TEST_F(PenaltyTest, TagPredicatesCostNothing) {
  // Tag predicates are value-based and never relaxed; they must not
  // contribute to penalties (Section 4.1: "we will assume they are
  // satisfied when computing scores").
  Tpq q1 = Parse(kQ1, corpus_->tags());
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  const VarId v1 = q1.Vars()[0];
  EXPECT_DOUBLE_EQ(
      pm.Of(Predicate::Tag(v1, corpus_->tags()->Lookup("article"))), 0.0);
}

// --- Schedule ------------------------------------------------------------

TEST_F(PenaltyTest, ScheduleIsMonotoneAndValid) {
  Tpq q1 = Parse(kQ1, corpus_->tags());
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  std::vector<ScheduleEntry> schedule = BuildSchedule(q1, pm);
  ASSERT_FALSE(schedule.empty());

  const LogicalQuery closure = Closure(ToLogical(q1));
  std::set<Predicate> prev;
  double prev_penalty = 0.0;
  for (const ScheduleEntry& entry : schedule) {
    // Cumulative drop sets grow.
    EXPECT_TRUE(std::includes(entry.dropped.begin(), entry.dropped.end(),
                              prev.begin(), prev.end()));
    EXPECT_GT(entry.dropped.size(), prev.size());
    // Penalties accumulate.
    EXPECT_GE(entry.cumulative_penalty, prev_penalty);
    // Every chain query is a valid relaxation of the original.
    EXPECT_TRUE(ContainedIn(q1, entry.relaxed)) << entry.op.ToString();
    EXPECT_TRUE(entry.relaxed.Validate().ok());
    prev = entry.dropped;
    prev_penalty = entry.cumulative_penalty;
  }
}

TEST_F(PenaltyTest, ScheduleNeverDeletesDistinguished) {
  Tpq q1 = Parse(kQ1, corpus_->tags());
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  for (const ScheduleEntry& entry : BuildSchedule(q1, pm)) {
    EXPECT_TRUE(entry.relaxed.HasVar(q1.distinguished()));
    EXPECT_EQ(entry.relaxed.distinguished(), q1.distinguished());
  }
}

TEST_F(PenaltyTest, ScheduleAnswersGrowMonotonically) {
  // Each chain query contains the previous: answer sets can only grow.
  ElementIndex index(corpus_.get());
  Tpq q1 = Parse(kQ1, corpus_->tags());
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  std::vector<NodeRef> prev = NaiveEvaluate(index, q1, ir_.get());
  for (const ScheduleEntry& entry : BuildSchedule(q1, pm)) {
    std::vector<NodeRef> cur =
        NaiveEvaluate(index, entry.relaxed, ir_.get());
    EXPECT_TRUE(
        std::includes(cur.begin(), cur.end(), prev.begin(), prev.end()))
        << entry.op.ToString();
    prev = std::move(cur);
  }
}

TEST_F(PenaltyTest, EnumerateStepsSortedByPenalty) {
  Tpq q1 = Parse(kQ1, corpus_->tags());
  PenaltyModel pm(q1, stats_.get(), ir_.get(), Weights{});
  std::vector<RelaxStep> steps = EnumerateSteps(q1, pm);
  ASSERT_FALSE(steps.empty());
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_LE(steps[i - 1].penalty, steps[i].penalty);
  }
  for (const RelaxStep& s : steps) {
    EXPECT_FALSE(s.dropped.empty());
    EXPECT_GE(s.penalty, 0.0);
  }
}

}  // namespace
}  // namespace flexpath
