#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/flexpath.h"
#include "xmark/generator.h"
#include "xml/serializer.h"

namespace flexpath {
namespace {

const char* kArticles[] = {
    R"(<article id="a1"><title>stream processing</title>
       <section><title>evaluation</title>
         <algorithm>stack based join</algorithm>
         <paragraph>XML streaming evaluation with low memory</paragraph>
       </section></article>)",
    R"(<article id="a2"><title>engines</title>
       <section><title>XML streaming engines</title>
         <algorithm>one pass automaton</algorithm>
         <paragraph>we discuss several engines in depth</paragraph>
       </section></article>)",
    R"(<article id="a3"><title>joins</title>
       <appendix><algorithm>twig join</algorithm></appendix>
       <section><title>background</title>
         <paragraph>XML streaming joins background material</paragraph>
       </section></article>)",
};

class FlexPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* xml : kArticles) {
      Result<DocId> id = fp_.AddDocumentXml(xml);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    ASSERT_TRUE(fp_.Build().ok());
  }

  FlexPath fp_;
};

TEST_F(FlexPathTest, EndToEndQuery) {
  Result<std::vector<QueryAnswer>> answers = fp_.Query(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      TopKOptions{.k = 3, .scheme = RankScheme::kStructureFirst, .weights = {}});
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 3u);
  // a1 is exact; a2 and a3 arrive through relaxations with lower scores.
  EXPECT_EQ((*answers)[0].tag, "article");
  EXPECT_NEAR((*answers)[0].score.ss, 3.0, 1e-9);
  EXPECT_LT((*answers)[1].score.ss, 3.0);
  EXPECT_FALSE((*answers)[0].snippet.empty());
}

TEST_F(FlexPathTest, AllAlgorithmsRunViaFacade) {
  Result<Tpq> q = fp_.Parse(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]");
  ASSERT_TRUE(q.ok());
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    Result<TopKResult> result = fp_.QueryTpq(*q, TopKOptions{.k = 3, .scheme = RankScheme::kStructureFirst, .weights = {}}, algo);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    EXPECT_EQ(result->answers.size(), 3u) << AlgorithmName(algo);
  }
}

TEST_F(FlexPathTest, DescribeRendersQuery) {
  Result<Tpq> q = fp_.Parse("//article[./section[.contains(\"XML\")]]");
  ASSERT_TRUE(q.ok());
  std::string desc = fp_.Describe(*q);
  EXPECT_NE(desc.find("article"), std::string::npos);
  EXPECT_NE(desc.find("section"), std::string::npos);
  EXPECT_NE(desc.find("contains"), std::string::npos);
}

TEST_F(FlexPathTest, ParseErrorsSurface) {
  EXPECT_FALSE(fp_.Query("not an xpath").ok());
  EXPECT_FALSE(fp_.Query("//a[./b or ./c]").ok());
}

TEST_F(FlexPathTest, UnknownTagGivesEmptyNotError) {
  Result<std::vector<QueryAnswer>> answers =
      fp_.Query("//nonexistent[./alsomissing]", TopKOptions{.k = 5, .scheme = RankScheme::kStructureFirst, .weights = {}});
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->empty());
}

TEST(FlexPathLifecycleTest, BuildRequiredBeforeQuery) {
  FlexPath fp;
  ASSERT_TRUE(fp.AddDocumentXml("<a><b/></a>").ok());
  EXPECT_FALSE(fp.Query("//a").ok());  // no Build() yet
  ASSERT_TRUE(fp.Build().ok());
  EXPECT_TRUE(fp.Query("//a").ok());
  EXPECT_FALSE(fp.Build().ok());                      // double build
  EXPECT_FALSE(fp.AddDocumentXml("<c/>").ok());       // add after build
}

TEST(FlexPathLifecycleTest, EmptyCorpusRejected) {
  FlexPath fp;
  EXPECT_FALSE(fp.Build().ok());
}

TEST(FlexPathLifecycleTest, BadXmlRejected) {
  FlexPath fp;
  EXPECT_FALSE(fp.AddDocumentXml("<a><b></a>").ok());
}

TEST(FlexPathXMarkTest, EndToEndOnGeneratedData) {
  FlexPath fp;
  XMarkOptions gopts;
  gopts.target_bytes = 100000;
  gopts.seed = 5;
  Result<Document> doc = GenerateXMark(gopts, fp.tags());
  ASSERT_TRUE(doc.ok());
  fp.AddDocument(std::move(doc).value());
  ASSERT_TRUE(fp.Build().ok());

  // Paper benchmark query Q2 with a K that forces relaxation.
  Result<Tpq> q = fp.Parse(
      "//item[./description/parlist and ./mailbox/mail/text]");
  ASSERT_TRUE(q.ok());
  Result<TopKResult> strict = fp.QueryTpq(*q, TopKOptions{.k = 1, .scheme = RankScheme::kStructureFirst, .weights = {}});
  ASSERT_TRUE(strict.ok());
  ASSERT_EQ(strict->answers.size(), 1u);

  Result<TopKResult> relaxed = fp.QueryTpq(*q, TopKOptions{.k = 500, .scheme = RankScheme::kStructureFirst, .weights = {}});
  ASSERT_TRUE(relaxed.ok());
  EXPECT_GT(relaxed->answers.size(), strict->answers.size());
  EXPECT_GT(relaxed->relaxations_used, 0u);
  // All item answers.
  for (const RankedAnswer& a : relaxed->answers) {
    EXPECT_EQ(std::as_const(fp.corpus()).tags().Name(
                  fp.corpus().node(a.node).tag),
              "item");
  }
}

TEST(FlexPathXMarkTest, FullTextQueryOnGeneratedData) {
  FlexPath fp;
  XMarkOptions gopts;
  gopts.target_bytes = 100000;
  gopts.seed = 6;
  Result<Document> doc = GenerateXMark(gopts, fp.tags());
  ASSERT_TRUE(doc.ok());
  fp.AddDocument(std::move(doc).value());
  ASSERT_TRUE(fp.Build().ok());

  Result<std::vector<QueryAnswer>> answers = fp.Query(
      "//item[./description[.contains(\"gold\")]]", TopKOptions{.k = 10, .scheme = RankScheme::kStructureFirst, .weights = {}});
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_FALSE(answers->empty());
  for (const QueryAnswer& a : *answers) {
    EXPECT_GE(a.score.ks, 0.0);
    EXPECT_LE(a.score.ks, 1.0);
  }
}

}  // namespace
}  // namespace flexpath
