#ifndef FLEXPATH_TESTS_TEST_UTIL_H_
#define FLEXPATH_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/tpq.h"
#include "xml/corpus.h"

namespace flexpath {
namespace testing_util {

/// Builds a corpus from XML strings, asserting parse success.
std::unique_ptr<Corpus> CorpusFromXml(const std::vector<std::string>& docs);

/// The running example of the paper's introduction: a small collection of
/// articles with sections, paragraphs, algorithms and abstracts, designed
/// so the queries Q1-Q6 of Figure 1 all have different answer sets.
/// Article layout (see the .cc for the exact text placement):
///   a1: exact Q1 match (section has algorithm + paragraph w/ keywords)
///   a2: keywords in the section title, not in any paragraph    (Q2 only)
///   a3: algorithm outside the keyword section                  (Q3 only)
///   a4: keywords in a paragraph, no algorithm anywhere         (Q5 only)
///   a5: keywords only in the abstract                          (Q6 only)
///   a6: no keywords at all                                     (no match)
std::unique_ptr<Corpus> ArticleCorpus();

/// Generates a random well-formed document over a small tag alphabet —
/// used by property tests that compare engines. Shape: up to `max_nodes`
/// elements, tags a..f, random text drawn from a tiny vocabulary.
Document RandomDocument(Rng* rng, TagDict* dict, size_t max_nodes);

/// Generates a random tree pattern query over RandomDocument's alphabet:
/// 2..max_nodes nodes (tags a..f), each attached to a random earlier node
/// by a random pc/ad axis, occasional contains predicates over the same
/// tiny vocabulary, and a randomly distinguished variable. Always passes
/// Tpq::Validate(); no wildcards or attribute predicates, so every query
/// is evaluable by both the join pipeline and the naive oracle.
Tpq RandomTpq(Rng* rng, TagDict* dict, size_t max_nodes);

}  // namespace testing_util
}  // namespace flexpath

#endif  // FLEXPATH_TESTS_TEST_UTIL_H_
