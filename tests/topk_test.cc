#include <algorithm>
#include <set>
#include <string_view>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "exec/naive_evaluator.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "query/xpath_parser.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace flexpath {
namespace {

const char* kQ1 =
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and "
    "\"streaming\")]]]";

/// Shared fixture: article corpus + all engines.
class TopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::ArticleCorpus();
    index_ = std::make_unique<ElementIndex>(corpus_.get());
    stats_ = std::make_unique<DocumentStats>(corpus_.get());
    ir_ = std::make_unique<IrEngine>(corpus_.get());
    processor_ = std::make_unique<TopKProcessor>(index_.get(), stats_.get(),
                                                 ir_.get());
  }

  Tpq Parse(const char* xpath) {
    Result<Tpq> q = ParseXPath(xpath, corpus_->tags());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *std::move(q);
  }

  std::string IdOf(NodeRef ref) {
    const TagId id_attr = std::as_const(*corpus_).tags().Lookup("id");
    const std::string* v =
        corpus_->doc(ref.doc).FindAttribute(ref.node, id_attr);
    return v != nullptr ? *v : "?";
  }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<ElementIndex> index_;
  std::unique_ptr<DocumentStats> stats_;
  std::unique_ptr<IrEngine> ir_;
  std::unique_ptr<TopKProcessor> processor_;
};

TEST_F(TopKTest, ExactAnswersComeFirst) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    Result<TopKResult> result = processor_->Run(q, algo, opts);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    ASSERT_GE(result->answers.size(), 1u) << AlgorithmName(algo);
    // a1 is the only exact match and must rank first with full score 3.
    EXPECT_EQ(IdOf(result->answers[0].node), "a1") << AlgorithmName(algo);
    EXPECT_NEAR(result->answers[0].score.ss, 3.0, 1e-9)
        << AlgorithmName(algo);
  }
}

TEST_F(TopKTest, RelaxationFillsUpToK) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;
  Result<TopKResult> result = processor_->Run(q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(result.ok());
  // a1..a5 are reachable through relaxations; a6 has no keywords anywhere
  // but even it is reachable once the contains is fully dropped via leaf
  // deletion — however it scores lowest. At k=5 we expect the five
  // keyword-bearing articles.
  ASSERT_EQ(result->answers.size(), 5u);
  std::set<std::string> ids;
  for (const RankedAnswer& a : result->answers) ids.insert(IdOf(a.node));
  EXPECT_TRUE(ids.count("a1") > 0);
  EXPECT_GT(result->relaxations_used, 0u);
  // Scores strictly ordered (structure-first, ks tie-break).
  for (size_t i = 1; i < result->answers.size(); ++i) {
    const AnswerScore& prev = result->answers[i - 1].score;
    const AnswerScore& cur = result->answers[i].score;
    EXPECT_FALSE(RanksBefore(cur, prev, RankScheme::kStructureFirst));
  }
}

TEST_F(TopKTest, KOneNeedsNoRelaxation) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 1;
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    Result<TopKResult> result = processor_->Run(q, algo, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->answers.size(), 1u);
    EXPECT_EQ(IdOf(result->answers[0].node), "a1") << AlgorithmName(algo);
  }
}

TEST_F(TopKTest, AlgorithmsAgreeOnAnswerSets) {
  // DPO scores rounds uniformly while SSO/Hybrid score per answer
  // (Section 5.2.1), so exact scores may differ — but with distinct
  // per-answer scores the returned answer sets must coincide.
  Tpq q = Parse(kQ1);
  for (size_t k : {1u, 2u, 3u, 4u, 5u, 6u}) {
    TopKOptions opts;
    opts.k = k;
    std::set<NodeRef> sets[3];
    int i = 0;
    for (Algorithm algo :
         {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
      Result<TopKResult> result = processor_->Run(q, algo, opts);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algo) << " k=" << k;
      for (const RankedAnswer& a : result->answers) {
        sets[i].insert(a.node);
      }
      ++i;
    }
    EXPECT_EQ(sets[1], sets[2]) << "SSO vs Hybrid, k=" << k;
    EXPECT_EQ(sets[0].size(), sets[1].size()) << "DPO vs SSO size, k=" << k;
  }
}

TEST_F(TopKTest, SsoAndHybridScoresIdentical) {
  Tpq q = Parse(kQ1);
  for (size_t k : {2u, 4u, 6u}) {
    TopKOptions opts;
    opts.k = k;
    Result<TopKResult> sso = processor_->Run(q, Algorithm::kSso, opts);
    Result<TopKResult> hybrid = processor_->Run(q, Algorithm::kHybrid, opts);
    ASSERT_TRUE(sso.ok());
    ASSERT_TRUE(hybrid.ok());
    ASSERT_EQ(sso->answers.size(), hybrid->answers.size()) << "k=" << k;
    for (size_t i = 0; i < sso->answers.size(); ++i) {
      EXPECT_EQ(sso->answers[i].node, hybrid->answers[i].node);
      EXPECT_NEAR(sso->answers[i].score.ss, hybrid->answers[i].score.ss,
                  1e-9);
      EXPECT_NEAR(sso->answers[i].score.ks, hybrid->answers[i].score.ks,
                  1e-9);
    }
  }
}

TEST_F(TopKTest, DpoScoresAreLowerBounds) {
  // A DPO answer's uniform round score never exceeds the per-answer
  // score SSO computes for the same node.
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 6;
  Result<TopKResult> dpo = processor_->Run(q, Algorithm::kDpo, opts);
  Result<TopKResult> sso = processor_->Run(q, Algorithm::kSso, opts);
  ASSERT_TRUE(dpo.ok());
  ASSERT_TRUE(sso.ok());
  for (const RankedAnswer& d : dpo->answers) {
    for (const RankedAnswer& s : sso->answers) {
      if (d.node == s.node) {
        EXPECT_LE(d.score.ss, s.score.ss + 1e-9);
      }
    }
  }
}

TEST_F(TopKTest, KeywordFirstRanksByKs) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;
  opts.scheme = RankScheme::kKeywordFirst;
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    Result<TopKResult> result = processor_->Run(q, algo, opts);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    for (size_t i = 1; i < result->answers.size(); ++i) {
      EXPECT_GE(result->answers[i - 1].score.ks,
                result->answers[i].score.ks - 1e-9)
          << AlgorithmName(algo);
    }
  }
}

TEST_F(TopKTest, CombinedSchemeOrdersBySum) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;
  opts.scheme = RankScheme::kCombined;
  Result<TopKResult> result = processor_->Run(q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->answers.size(); ++i) {
    EXPECT_GE(result->answers[i - 1].score.Combined(),
              result->answers[i].score.Combined() - 1e-9);
  }
}

TEST_F(TopKTest, DpoCountersIdenticalAcrossThreadCounts) {
  // Regression test for the Run() counter race: DPO rounds used to bump
  // shared counters from worker threads directly, so an 8-thread run
  // could lose or over-count increments (and count rounds a serial run
  // would never have executed). Counters are now accumulated per round
  // and aggregated by the deterministic merge, in round order, only for
  // the rounds the serial stopping rules accept — every field must match
  // the serial run exactly.
  Tpq q = Parse(kQ1);
  for (RankScheme scheme :
       {RankScheme::kStructureFirst, RankScheme::kCombined}) {
    TopKOptions opts;
    opts.k = 5;
    opts.scheme = scheme;
    opts.num_threads = 1;
    Result<TopKResult> serial = processor_->Run(q, Algorithm::kDpo, opts);
    ASSERT_TRUE(serial.ok());

    opts.num_threads = 8;
    Result<TopKResult> parallel = processor_->Run(q, Algorithm::kDpo, opts);
    ASSERT_TRUE(parallel.ok());

    const ExecCounters& s = serial->counters;
    parallel->counters.ForEach([&s](const char* name, uint64_t value) {
      uint64_t expected = 0;
      s.ForEach([&](const char* sname, uint64_t svalue) {
        if (std::string_view(sname) == name) expected = svalue;
      });
      EXPECT_EQ(value, expected) << name;
    });
    EXPECT_EQ(parallel->relaxations_used, serial->relaxations_used);
    EXPECT_EQ(parallel->penalty_applied, serial->penalty_applied);
  }
}

TEST_F(TopKTest, TupleBudgetReturnsPartialAnswersFlagged) {
  Tpq q = Parse(kQ1);
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    TopKOptions opts;
    // K beyond what the corpus can yield, so no pass ever reaches it and
    // the between-rounds budget check must fire.
    opts.k = 50;
    opts.max_tuples = 1;
    Result<TopKResult> result = processor_->Run(q, algo, opts);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algo);
    // The budget trips after the first round/pass that produced a tuple;
    // the run stops relaxing and hands back what it has.
    EXPECT_TRUE(result->budget_exhausted) << AlgorithmName(algo);
    EXPECT_LT(result->answers.size(), 50u) << AlgorithmName(algo);
    // The exact match is found before any budget check fires — the
    // partial result is a usable prefix, not empty.
    ASSERT_FALSE(result->answers.empty()) << AlgorithmName(algo);
    EXPECT_EQ(IdOf(result->answers[0].node), "a1") << AlgorithmName(algo);
  }
}

TEST_F(TopKTest, NoBudgetRunsAreByteIdenticalToDefaults) {
  Tpq q = Parse(kQ1);
  TopKOptions plain;
  plain.k = 5;
  // Explicit zeros are "disabled", not "zero budget" — same code path.
  TopKOptions zeros = plain;
  zeros.max_cpu_ms = 0.0;
  zeros.max_tuples = 0;
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    Result<TopKResult> a = processor_->Run(q, algo, plain);
    Result<TopKResult> b = processor_->Run(q, algo, zeros);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_FALSE(a->budget_exhausted);
    EXPECT_FALSE(b->budget_exhausted);
    ASSERT_EQ(a->answers.size(), b->answers.size());
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_EQ(a->answers[i].node, b->answers[i].node);
      EXPECT_DOUBLE_EQ(a->answers[i].score.ss, b->answers[i].score.ss);
      EXPECT_DOUBLE_EQ(a->answers[i].score.ks, b->answers[i].score.ks);
    }
    a->counters.ForEach([&](const char* name, uint64_t value) {
      EXPECT_EQ(value, [&] {
        uint64_t other = 0;
        b->counters.ForEach([&](const char* n, uint64_t v) {
          if (std::string_view(n) == name) other = v;
        });
        return other;
      }()) << name;
    });
  }
}

TEST_F(TopKTest, UsageFieldsAreDeterministicFunctionsOfCounters) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;
  Result<TopKResult> first = processor_->Run(q, Algorithm::kDpo, opts);
  Result<TopKResult> second = processor_->Run(q, Algorithm::kDpo, opts);
  ASSERT_TRUE(first.ok() && second.ok());
  // Everything except cpu_ms (wall truth, varies run to run) must agree.
  EXPECT_EQ(first->usage.tuples_scanned, second->usage.tuples_scanned);
  EXPECT_EQ(first->usage.tuples_produced, second->usage.tuples_produced);
  EXPECT_EQ(first->usage.bytes_touched, second->usage.bytes_touched);
  EXPECT_EQ(first->usage.cache_hits, second->usage.cache_hits);
  EXPECT_EQ(first->usage.cache_misses, second->usage.cache_misses);
  EXPECT_EQ(first->usage.rounds_executed, second->usage.rounds_executed);
  EXPECT_EQ(first->usage.rounds_pruned, second->usage.rounds_pruned);
  // And they are the published function of the counters.
  EXPECT_EQ(first->usage.tuples_scanned, first->counters.candidates_probed);
  EXPECT_EQ(first->usage.tuples_produced, first->counters.tuples_created);
  EXPECT_EQ(first->usage.rounds_executed, first->counters.plan_passes);
  EXPECT_GT(first->usage.cpu_ms, 0.0);
}

TEST_F(TopKTest, RejectsZeroK) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 0;
  EXPECT_FALSE(processor_->Run(q, Algorithm::kHybrid, opts).ok());
}

TEST_F(TopKTest, DpoMakesMorePlanPassesThanSso) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;  // forces several relaxations
  Result<TopKResult> dpo = processor_->Run(q, Algorithm::kDpo, opts);
  Result<TopKResult> sso = processor_->Run(q, Algorithm::kSso, opts);
  ASSERT_TRUE(dpo.ok());
  ASSERT_TRUE(sso.ok());
  EXPECT_GT(dpo->counters.plan_passes, sso->counters.plan_passes);
}

TEST_F(TopKTest, HybridNeverSortsOnScores) {
  Tpq q = Parse(kQ1);
  TopKOptions opts;
  opts.k = 5;
  Result<TopKResult> hybrid = processor_->Run(q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(hybrid->counters.score_sorts, 0u);
}

// --- Pruning soundness sweep (TEST_P) --------------------------------------

struct SweepParam {
  size_t k;
  RankScheme scheme;
};

class PruningSoundnessTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PruningSoundnessTest, PrunedRunMatchesUnprunedTopK) {
  // Evaluating with pruning enabled (k) must return the same top-k
  // prefix as evaluating everything and cutting afterwards.
  Corpus corpus;
  XMarkOptions gopts;
  gopts.target_bytes = 80000;
  gopts.seed = 21;
  Result<Document> doc = GenerateXMark(gopts, corpus.tags());
  ASSERT_TRUE(doc.ok());
  corpus.Add(std::move(doc).value());
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  TopKProcessor processor(&index, &stats, &ir);

  Result<Tpq> q = ParseXPath(
      "//item[./description/parlist and ./mailbox/mail/text]",
      corpus.tags());
  ASSERT_TRUE(q.ok());

  const SweepParam param = GetParam();
  TopKOptions opts;
  opts.k = param.k;
  opts.scheme = param.scheme;

  Result<TopKResult> pruned = processor.Run(*q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(pruned.ok());

  // Reference: huge k (no pruning pressure), then truncate.
  TopKOptions all_opts = opts;
  all_opts.k = 100000;
  Result<TopKResult> full = processor.Run(*q, Algorithm::kHybrid, all_opts);
  ASSERT_TRUE(full.ok());

  const size_t n = std::min(param.k, full->answers.size());
  ASSERT_EQ(pruned->answers.size(),
            std::min(param.k, pruned->answers.size()));
  ASSERT_GE(pruned->answers.size(), n > 0 ? 1u : 0u);
  // Scores must match position by position (sets can differ on ties).
  for (size_t i = 0; i < std::min(n, pruned->answers.size()); ++i) {
    EXPECT_NEAR(pruned->answers[i].score.ss, full->answers[i].score.ss,
                1e-9)
        << "k=" << param.k << " scheme=" << RankSchemeName(param.scheme)
        << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PruningSoundnessTest,
    ::testing::Values(SweepParam{1, RankScheme::kStructureFirst},
                      SweepParam{5, RankScheme::kStructureFirst},
                      SweepParam{20, RankScheme::kStructureFirst},
                      SweepParam{100, RankScheme::kStructureFirst},
                      SweepParam{5, RankScheme::kKeywordFirst},
                      SweepParam{20, RankScheme::kKeywordFirst},
                      SweepParam{5, RankScheme::kCombined},
                      SweepParam{20, RankScheme::kCombined},
                      SweepParam{100, RankScheme::kCombined}));

// --- Agreement sweep on XMark ----------------------------------------------

class XMarkAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(XMarkAgreementTest, SsoHybridIdenticalOnXMark) {
  Corpus corpus;
  XMarkOptions gopts;
  gopts.target_bytes = 100000;
  gopts.seed = 31;
  Result<Document> doc = GenerateXMark(gopts, corpus.tags());
  ASSERT_TRUE(doc.ok());
  corpus.Add(std::move(doc).value());
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  TopKProcessor processor(&index, &stats, &ir);

  Result<Tpq> q = ParseXPath(
      "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold "
      "and ./keyword and ./emph] and ./name and ./incategory]",
      corpus.tags());
  ASSERT_TRUE(q.ok());

  TopKOptions opts;
  opts.k = GetParam();
  Result<TopKResult> sso = processor.Run(*q, Algorithm::kSso, opts);
  Result<TopKResult> hybrid = processor.Run(*q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(sso.ok());
  ASSERT_TRUE(hybrid.ok());
  ASSERT_EQ(sso->answers.size(), hybrid->answers.size());
  for (size_t i = 0; i < sso->answers.size(); ++i) {
    EXPECT_NEAR(sso->answers[i].score.ss, hybrid->answers[i].score.ss, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, XMarkAgreementTest,
                         ::testing::Values(1, 5, 12, 50, 200));

}  // namespace
}  // namespace flexpath
