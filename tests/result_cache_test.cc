// Tests for the sub-plan result cache (DESIGN.md §12): plan-step
// fingerprint stability, LRU eviction under a tiny byte budget,
// corpus-generation invalidation after a reload, warm-run work savings,
// and — the load-bearing guarantee — a cache-on/off differential across
// all three algorithms and thread counts proving answers, penalties and
// relaxation metadata are byte-identical at every cache tier.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/lru_cache.h"
#include "common/random.h"
#include "exec/plan.h"
#include "exec/result_cache.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "query/tpq.h"
#include "query/xpath_parser.h"
#include "relax/penalty.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xml/corpus.h"

namespace flexpath {
namespace {

// A random corpus plus the index/stats/IR stack built over it.
struct Rig {
  Rig(Rng* rng, size_t docs, size_t max_nodes) {
    for (size_t i = 0; i < docs; ++i) {
      corpus.Add(testing_util::RandomDocument(rng, corpus.tags(), max_nodes));
    }
    index = std::make_unique<ElementIndex>(&corpus);
    stats = std::make_unique<DocumentStats>(&corpus);
    ir = std::make_unique<IrEngine>(&corpus);
  }

  Corpus corpus;
  std::unique_ptr<ElementIndex> index;
  std::unique_ptr<DocumentStats> stats;
  std::unique_ptr<IrEngine> ir;
};

JoinPlan BuildPlan(const Tpq& q, const Rig& rig) {
  PenaltyModel pm(q, rig.stats.get(), rig.ir.get(), Weights{});
  Result<JoinPlan> plan = JoinPlan::Build(q, q, {}, pm, Weights{});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

// --- Fingerprints -----------------------------------------------------

TEST(ResultCacheTest, StepFingerprintsAreStableAcrossBuilds) {
  Rng rng(1001);
  for (int iter = 0; iter < 30; ++iter) {
    Rig rig(&rng, 2, 50);
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);
    const JoinPlan a = BuildPlan(q, rig);
    const JoinPlan b = BuildPlan(q, rig);
    ASSERT_EQ(a.steps().size(), b.steps().size());
    for (size_t s = 0; s < a.steps().size(); ++s) {
      EXPECT_EQ(a.step_fingerprint(s), b.step_fingerprint(s))
          << "iter " << iter << " step " << s;
    }
    EXPECT_EQ(a.plan_fingerprint(), b.plan_fingerprint()) << "iter " << iter;
  }
}

TEST(ResultCacheTest, DistinctQueriesGetDistinctFingerprints) {
  Rng rng(1002);
  Rig rig(&rng, 2, 50);
  // 40 random queries; count pairwise plan-fingerprint collisions among
  // structurally distinct plans. The fingerprint is 64-bit, so any
  // collision here means the chaining is broken, not bad luck.
  std::map<uint64_t, std::string> seen;
  for (int iter = 0; iter < 40; ++iter) {
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);
    const JoinPlan plan = BuildPlan(q, rig);
    const std::string desc =
        q.ToString(std::as_const(rig.corpus).tags());
    auto [it, inserted] = seen.emplace(plan.plan_fingerprint(), desc);
    if (!inserted) {
      EXPECT_EQ(it->second, desc) << "fingerprint collision";
    }
  }
}

TEST(ResultCacheTest, StepCacheKeyDependsOnEveryComponent) {
  const uint64_t base = StepCacheKey(1, 2, 0, 0, 0);
  EXPECT_NE(base, StepCacheKey(9, 2, 0, 0, 0));  // fingerprint
  EXPECT_NE(base, StepCacheKey(1, 3, 0, 0, 0));  // corpus generation
  EXPECT_NE(base, StepCacheKey(1, 2, 1, 0, 0));  // eval mode
  EXPECT_NE(base, StepCacheKey(1, 2, 0, 1, 0));  // rank scheme
  EXPECT_NE(base, StepCacheKey(1, 2, 0, 0, 5));  // pruning k
  EXPECT_EQ(base, StepCacheKey(1, 2, 0, 0, 0));  // deterministic
}

// --- LRU eviction -----------------------------------------------------

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsedUnderTinyBudget) {
  LruByteCache<int, int> cache(/*budget_bytes=*/100);
  auto put = [&](int key, size_t bytes) {
    return cache.Put(key, std::make_shared<const int>(key), bytes);
  };
  EXPECT_TRUE(put(1, 40));
  EXPECT_TRUE(put(2, 40));
  EXPECT_NE(cache.Get(1), nullptr);  // refresh 1: now 2 is the LRU entry
  EXPECT_TRUE(put(3, 40));           // 120 > 100: evict 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.evictions(), 1u);

  // An entry larger than the whole budget is refused outright.
  EXPECT_FALSE(put(4, 101));
  EXPECT_EQ(cache.size(), 2u);

  // Shrinking the budget evicts immediately, oldest first.
  cache.SetBudget(40);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(ResultCacheTest, EvictionDoesNotInvalidateHandedOutEntries) {
  LruByteCache<int, std::vector<int>> cache(100);
  cache.Put(1, std::make_shared<const std::vector<int>>(3, 7), 60);
  std::shared_ptr<const std::vector<int>> held = cache.Get(1);
  cache.Put(2, std::make_shared<const std::vector<int>>(3, 9), 60);  // evicts 1
  EXPECT_EQ(cache.Get(1), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ((*held)[0], 7);  // still alive and intact
}

TEST(ResultCacheTest, ResultCacheStatsTrackHitsMissesEvictions) {
  ResultCache cache(/*budget_bytes=*/1000);
  EXPECT_EQ(cache.Get(1), nullptr);
  auto entry = std::make_shared<CachedStepResult>();
  entry->tuples.resize(1);
  entry->bytes = 600;
  cache.Put(1, entry);
  EXPECT_NE(cache.Get(1), nullptr);
  auto entry2 = std::make_shared<CachedStepResult>();
  entry2->bytes = 600;
  cache.Put(2, entry2);  // 1200 > 1000: evicts key 1
  EXPECT_EQ(cache.Get(1), nullptr);

  const ResultCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 600u);
  EXPECT_EQ(s.budget, 1000u);
}

// --- Warm runs and invalidation ---------------------------------------

Tpq Parse(const char* xpath, Corpus* corpus) {
  Result<Tpq> q = ParseXPath(xpath, corpus->tags(), {});
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(ResultCacheTest, WarmRunHitsAndSkipsWork) {
  ResultCache::Global().Clear();
  Rng rng(1003);
  Rig rig(&rng, 2, 80);
  TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());
  const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);

  TopKOptions opts;
  opts.k = 5;
  opts.num_threads = 1;
  opts.result_cache.tier = CacheTier::kShared;
  Result<TopKResult> cold = processor.Run(q, Algorithm::kDpo, opts);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  Result<TopKResult> warm = processor.Run(q, Algorithm::kDpo, opts);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  EXPECT_GT(warm->counters.cache_step_hits, 0u);
  // A cache hit skips the probes the cached steps would have done.
  EXPECT_LT(warm->counters.candidates_probed,
            cold->counters.candidates_probed);
  // Same answers regardless.
  ASSERT_EQ(warm->answers.size(), cold->answers.size());
  for (size_t i = 0; i < cold->answers.size(); ++i) {
    EXPECT_EQ(warm->answers[i].node, cold->answers[i].node);
    EXPECT_EQ(warm->answers[i].score, cold->answers[i].score);
  }
}

TEST(ResultCacheTest, CorpusReloadInvalidatesSharedEntries) {
  ResultCache::Global().Clear();
  const char* kXml =
      "<r><a><b/><c/></a><a><b/></a><a><b/><c/></a></r>";
  auto load = [&](Corpus* corpus) {
    Result<DocId> id = corpus->AddXml(kXml);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  };

  Corpus corpus1;
  load(&corpus1);
  ElementIndex index1(&corpus1);
  DocumentStats stats1(&corpus1);
  IrEngine ir1(&corpus1);
  TopKProcessor proc1(&index1, &stats1, &ir1);
  const Tpq q1 = Parse("//a[./b][./c]", &corpus1);

  TopKOptions opts;
  opts.k = 3;
  opts.num_threads = 1;
  opts.result_cache.tier = CacheTier::kShared;
  Result<TopKResult> first = proc1.Run(q1, Algorithm::kDpo, opts);
  ASSERT_TRUE(first.ok());
  Result<TopKResult> repeat = proc1.Run(q1, Algorithm::kDpo, opts);
  ASSERT_TRUE(repeat.ok());
  EXPECT_GT(repeat->counters.cache_step_hits, 0u);

  // An identical corpus loaded fresh has a new generation, so nothing
  // cached for the old one can be served — even though the content (and
  // hence every step fingerprint) is the same.
  Corpus corpus2;
  load(&corpus2);
  EXPECT_NE(corpus1.generation(), corpus2.generation());
  ElementIndex index2(&corpus2);
  DocumentStats stats2(&corpus2);
  IrEngine ir2(&corpus2);
  TopKProcessor proc2(&index2, &stats2, &ir2);
  const Tpq q2 = Parse("//a[./b][./c]", &corpus2);
  const uint64_t shared_hits_before = ResultCache::Global().GetStats().hits;
  Result<TopKResult> fresh = proc2.Run(q2, Algorithm::kDpo, opts);
  ASSERT_TRUE(fresh.ok());
  // No hit may come from the shared tier — everything in it belongs to
  // the dead corpus1 generation. (cache_step_hits can still be nonzero:
  // DPO's run-local prefix reuse works fine under the new generation.)
  EXPECT_EQ(ResultCache::Global().GetStats().hits, shared_hits_before);
  // It still answers correctly, caching under its own generation.
  ASSERT_EQ(fresh->answers.size(), first->answers.size());
  for (size_t i = 0; i < first->answers.size(); ++i) {
    EXPECT_EQ(fresh->answers[i].node, first->answers[i].node);
  }
}

// Incremental DPO: with answers from round 0 excluded, the relaxed
// round's tuples for already-answered nodes are dropped at bind time —
// observable in tuples_excluded — without changing any answer.
TEST(ResultCacheTest, IncrementalDpoExcludesAnsweredNodes) {
  Corpus corpus;
  ASSERT_TRUE(
      corpus.AddXml("<r><a><b/><c/></a><a><b/></a><a><b/><c/></a></r>")
          .ok());
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  TopKProcessor processor(&index, &stats, &ir);
  // Round 0 answers the two <a> with both children; filling k=3 needs a
  // relaxed round, where those two must be excluded.
  const Tpq q = Parse("//a[./b][./c]", &corpus);

  TopKOptions off;
  off.k = 3;
  off.num_threads = 1;
  Result<TopKResult> baseline = processor.Run(q, Algorithm::kDpo, off);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->answers.size(), 3u);
  ASSERT_GT(baseline->relaxations_used, 0u);

  TopKOptions on = off;
  on.result_cache.tier = CacheTier::kRun;
  Result<TopKResult> incremental = processor.Run(q, Algorithm::kDpo, on);
  ASSERT_TRUE(incremental.ok());
  EXPECT_GT(incremental->counters.tuples_excluded, 0u);
  ASSERT_EQ(incremental->answers.size(), baseline->answers.size());
  for (size_t i = 0; i < baseline->answers.size(); ++i) {
    EXPECT_EQ(incremental->answers[i].node, baseline->answers[i].node);
    EXPECT_EQ(incremental->answers[i].score, baseline->answers[i].score);
  }
  EXPECT_EQ(incremental->penalty_applied, baseline->penalty_applied);
  EXPECT_EQ(incremental->predicates_dropped, baseline->predicates_dropped);
}

// --- The differential: caching never changes results ------------------

std::string AnswerFingerprint(const TopKResult& r) {
  std::string s;
  for (const RankedAnswer& a : r.answers) {
    // Sequential appends: GCC 12's -Wrestrict misfires on chained +.
    s += std::to_string(a.node.doc);
    s += ":";
    s += std::to_string(a.node.node);
    s += "/";
    s += std::to_string(a.score.ss);
    s += "+";
    s += std::to_string(a.score.ks);
    s += ";";
  }
  s += "relaxations=";
  s += std::to_string(r.relaxations_used);
  s += ",penalty=";
  s += std::to_string(r.penalty_applied);
  s += ",dropped=";
  s += std::to_string(r.predicates_dropped);
  s += ",pruned=" + std::to_string(r.rounds_pruned);
  return s;
}

TEST(ResultCacheTest, CacheOnOffDifferentialAcrossAlgorithmsAndThreads) {
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  constexpr CacheTier kTiers[] = {CacheTier::kRun, CacheTier::kShared};
  constexpr size_t kThreadCounts[] = {1, 4};

  Rng rng(1004);
  for (int iter = 0; iter < 40; ++iter) {
    Rig rig(&rng, 2, 60);
    TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);
    const RankScheme scheme =
        iter % 3 == 0   ? RankScheme::kStructureFirst
        : iter % 3 == 1 ? RankScheme::kKeywordFirst
                        : RankScheme::kCombined;

    for (Algorithm algo : kAlgos) {
      for (size_t threads : kThreadCounts) {
        TopKOptions opts;
        opts.k = 5;
        opts.scheme = scheme;
        opts.num_threads = threads;
        Result<TopKResult> off = processor.Run(q, algo, opts);
        ASSERT_TRUE(off.ok()) << off.status().ToString();

        for (CacheTier tier : kTiers) {
          opts.result_cache.tier = tier;
          // Twice per tier: the cold pass (populating) and the warm pass
          // (serving hits) must both match the uncached run exactly.
          for (int pass = 0; pass < 2; ++pass) {
            Result<TopKResult> on = processor.Run(q, algo, opts);
            ASSERT_TRUE(on.ok()) << on.status().ToString();
            EXPECT_EQ(AnswerFingerprint(*on), AnswerFingerprint(*off))
                << "iter " << iter << " algo " << AlgorithmName(algo)
                << " threads " << threads << " tier "
                << CacheTierName(tier) << " pass " << pass;
          }
        }
        opts.result_cache.tier = CacheTier::kOff;
      }
    }
  }
}

}  // namespace
}  // namespace flexpath
