#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "xml/corpus.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tag_dict.h"

namespace flexpath {
namespace {

TEST(TagDictTest, InternIsIdempotent) {
  TagDict dict;
  TagId a = dict.Intern("article");
  TagId b = dict.Intern("section");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("article"), a);
  EXPECT_EQ(dict.Name(a), "article");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TagDictTest, LookupMissingReturnsInvalid) {
  TagDict dict;
  EXPECT_EQ(dict.Lookup("nope"), kInvalidTag);
  dict.Intern("yes");
  EXPECT_NE(dict.Lookup("yes"), kInvalidTag);
}

TEST(DocumentBuilderTest, BuildsIntervalEncoding) {
  TagDict dict;
  DocumentBuilder b(&dict);
  b.Open("root");        // 0
  b.Open("child");       // 1
  b.Open("grandchild");  // 2
  ASSERT_TRUE(b.Close().ok());
  ASSERT_TRUE(b.Close().ok());
  b.Open("child2");  // 3
  ASSERT_TRUE(b.Close().ok());
  ASSERT_TRUE(b.Close().ok());
  Result<Document> doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->size(), 4u);

  EXPECT_TRUE(doc->IsAncestor(0, 1));
  EXPECT_TRUE(doc->IsAncestor(0, 2));
  EXPECT_TRUE(doc->IsAncestor(1, 2));
  EXPECT_TRUE(doc->IsAncestor(0, 3));
  EXPECT_FALSE(doc->IsAncestor(1, 3));
  EXPECT_FALSE(doc->IsAncestor(2, 1));
  EXPECT_FALSE(doc->IsAncestor(1, 1));

  EXPECT_TRUE(doc->IsParent(0, 1));
  EXPECT_FALSE(doc->IsParent(0, 2));
  EXPECT_EQ(doc->node(2).level, 2u);
  EXPECT_EQ(doc->node(0).level, 0u);
}

TEST(DocumentBuilderTest, SiblingLinks) {
  TagDict dict;
  DocumentBuilder b(&dict);
  b.Open("r");
  b.Open("a");
  (void)b.Close();
  b.Open("b");
  (void)b.Close();
  b.Open("c");
  (void)b.Close();
  (void)b.Close();
  Result<Document> doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  std::vector<NodeId> kids = doc->Children(0);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc->node(kids[0]).tag, dict.Lookup("a"));
  EXPECT_EQ(doc->node(kids[2]).tag, dict.Lookup("c"));
}

TEST(DocumentBuilderTest, RejectsTwoRoots) {
  TagDict dict;
  DocumentBuilder b(&dict);
  b.Open("r");
  (void)b.Close();
  b.Open("r2");
  (void)b.Close();
  EXPECT_FALSE(std::move(b).Finish().ok());
}

TEST(DocumentBuilderTest, RejectsUnclosed) {
  TagDict dict;
  DocumentBuilder b(&dict);
  b.Open("r");
  EXPECT_FALSE(std::move(b).Finish().ok());
}

TEST(DocumentBuilderTest, RejectsEmpty) {
  TagDict dict;
  DocumentBuilder b(&dict);
  EXPECT_FALSE(std::move(b).Finish().ok());
}

TEST(DocumentTest, SubtreeText) {
  TagDict dict;
  DocumentBuilder b(&dict);
  b.Open("r");
  (void)b.Text("alpha");
  b.Open("c");
  (void)b.Text("beta");
  (void)b.Close();
  (void)b.Text("gamma");
  (void)b.Close();
  Result<Document> doc = std::move(b).Finish();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->SubtreeText(0), "alpha gamma beta");
  EXPECT_EQ(doc->SubtreeText(1), "beta");
}

TEST(ParserTest, ParsesBasicDocument) {
  TagDict dict;
  Result<Document> doc =
      ParseXml("<a><b x=\"1\">hi</b><c/></a>", &dict);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->size(), 3u);
  EXPECT_EQ(doc->node(0).tag, dict.Lookup("a"));
  EXPECT_EQ(doc->node(1).text, "hi");
  const std::string* attr = doc->FindAttribute(1, dict.Lookup("x"));
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(*attr, "1");
}

TEST(ParserTest, HandlesPrologCommentsCdata) {
  TagDict dict;
  const char* xml = R"(<?xml version="1.0"?>
    <!DOCTYPE site [<!ELEMENT site ANY>]>
    <!-- header comment -->
    <site><!-- inner --><item><![CDATA[5 < 6 & 7 > 2]]></item></site>)";
  Result<Document> doc = ParseXml(xml, &dict);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node(1).text, "5 < 6 & 7 > 2");
}

TEST(ParserTest, DecodesEntities) {
  TagDict dict;
  Result<Document> doc =
      ParseXml("<a>&lt;tag&gt; &amp; &quot;x&quot; &#65;&#x42;</a>", &dict);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node(0).text, "<tag> & \"x\" AB");
}

TEST(ParserTest, EntityInAttribute) {
  TagDict dict;
  Result<Document> doc = ParseXml("<a t=\"x&amp;y\"/>", &dict);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->FindAttribute(0, dict.Lookup("t")), "x&y");
}

TEST(ParserTest, SingleQuotedAttributes) {
  TagDict dict;
  Result<Document> doc = ParseXml("<a t='v'/>", &dict);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->FindAttribute(0, dict.Lookup("t")), "v");
}

TEST(ParserTest, RejectsMismatchedTags) {
  TagDict dict;
  Result<Document> doc = ParseXml("<a><b></a></b>", &dict);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, RejectsUnterminated) {
  TagDict dict;
  EXPECT_FALSE(ParseXml("<a><b>", &dict).ok());
}

TEST(ParserTest, RejectsTrailingContent) {
  TagDict dict;
  EXPECT_FALSE(ParseXml("<a/><b/>", &dict).ok());
}

TEST(ParserTest, RejectsUnknownEntity) {
  TagDict dict;
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>", &dict).ok());
}

TEST(ParserTest, ErrorsIncludePosition) {
  TagDict dict;
  Result<Document> doc = ParseXml("<a>\n<b></c>\n</a>", &dict);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status().ToString();
}

TEST(SerializerTest, RoundTripPreservesStructure) {
  TagDict dict;
  const char* xml =
      "<site><item id=\"i1\"><name>gold ring</name>"
      "<desc>rare &amp; fine</desc></item><item id=\"i2\"/></site>";
  Result<Document> doc = ParseXml(xml, &dict);
  ASSERT_TRUE(doc.ok());
  std::string serialized = SerializeXml(*doc, dict);
  Result<Document> again = ParseXml(serialized, &dict);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->size(), doc->size());
  for (NodeId i = 0; i < doc->size(); ++i) {
    EXPECT_EQ(again->node(i).tag, doc->node(i).tag);
    EXPECT_EQ(again->node(i).text, doc->node(i).text);
    EXPECT_EQ(again->node(i).parent, doc->node(i).parent);
    EXPECT_EQ(again->node(i).level, doc->node(i).level);
  }
}

TEST(SerializerTest, PrettyPrintStillParses) {
  TagDict dict;
  Result<Document> doc =
      ParseXml("<a><b>x</b><c><d/></c></a>", &dict);
  ASSERT_TRUE(doc.ok());
  SerializeOptions opts;
  opts.pretty = true;
  std::string pretty = SerializeXml(*doc, dict, opts);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  Result<Document> again = ParseXml(pretty, &dict);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), doc->size());
}

TEST(RoundTripPropertyTest, RandomDocumentsSurviveRoundTrip) {
  Rng rng(2024);
  TagDict dict;
  for (int iter = 0; iter < 50; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, &dict, 60);
    std::string xml = SerializeXml(doc, dict);
    Result<Document> again = ParseXml(xml, &dict);
    ASSERT_TRUE(again.ok()) << xml;
    ASSERT_EQ(again->size(), doc.size());
    for (NodeId i = 0; i < doc.size(); ++i) {
      EXPECT_EQ(again->node(i).tag, doc.node(i).tag);
      EXPECT_EQ(again->node(i).parent, doc.node(i).parent);
      EXPECT_EQ(again->node(i).start, doc.node(i).start);
      EXPECT_EQ(again->node(i).end, doc.node(i).end);
    }
  }
}

TEST(CorpusTest, SharedDictionaryAcrossDocuments) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a><b/></a>").ok());
  ASSERT_TRUE(corpus.AddXml("<a><c/></a>").ok());
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.TotalNodes(), 4u);
  const TagId a = std::as_const(corpus).tags().Lookup("a");
  EXPECT_EQ(corpus.doc(0).node(0).tag, a);
  EXPECT_EQ(corpus.doc(1).node(0).tag, a);
}

TEST(CorpusTest, NodeRefOrdering) {
  NodeRef a{0, 5};
  NodeRef b{0, 6};
  NodeRef c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (NodeRef{0, 5}));
}

TEST(CorpusTest, CrossDocumentRelationsAreFalse) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a><b/></a>").ok());
  ASSERT_TRUE(corpus.AddXml("<a><b/></a>").ok());
  EXPECT_TRUE(corpus.IsAncestor(NodeRef{0, 0}, NodeRef{0, 1}));
  EXPECT_FALSE(corpus.IsAncestor(NodeRef{0, 0}, NodeRef{1, 1}));
  EXPECT_FALSE(corpus.IsParent(NodeRef{1, 0}, NodeRef{0, 1}));
}

}  // namespace
}  // namespace flexpath
