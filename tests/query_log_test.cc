#include "obs/query_log.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rank/score.h"

namespace flexpath {
namespace {

QueryLogRecord SampleRecord() {
  QueryLogRecord r;
  r.ts_unix_s = 1754600000.25;
  r.query = "//item[.contains(\"gold\")]";
  r.fingerprint = 0xdeadbeefcafef00dULL;
  r.algorithm = "Hybrid";
  r.scheme = "structure-first";
  r.k = 10;
  r.threads = 4;
  r.cache_tier = "shared";
  r.latency_ms = 1.5;
  r.answers = 7;
  r.relaxations = 2;
  r.predicates_dropped = 1;
  r.penalty = 0.25;
  r.budget_exhausted = true;
  // All 64 bits set: catches any double round-trip in the parser, which
  // would silently truncate past 2^53.
  r.answers_digest = 0xffffffffffffffffULL;
  r.usage.cpu_ms = 3.5;
  r.usage.tuples_scanned = 100;
  r.usage.tuples_produced = 42;
  r.usage.bytes_touched = 4096;
  r.usage.cache_hits = 5;
  r.usage.cache_misses = 6;
  r.usage.rounds_executed = 3;
  r.usage.rounds_pruned = 2;
  return r;
}

TEST(QueryLogRecordTest, JsonRoundTrip) {
  const QueryLogRecord in = SampleRecord();
  const std::string line = QueryLogRecordToJson(in);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // One line per record.

  QueryLogRecord out;
  std::string error;
  ASSERT_TRUE(ParseQueryLogRecord(line, &out, &error)) << error;
  EXPECT_DOUBLE_EQ(out.ts_unix_s, in.ts_unix_s);
  EXPECT_EQ(out.query, in.query);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.algorithm, in.algorithm);
  EXPECT_EQ(out.scheme, in.scheme);
  EXPECT_EQ(out.k, in.k);
  EXPECT_EQ(out.threads, in.threads);
  EXPECT_EQ(out.cache_tier, in.cache_tier);
  EXPECT_DOUBLE_EQ(out.latency_ms, in.latency_ms);
  EXPECT_EQ(out.answers, in.answers);
  EXPECT_EQ(out.relaxations, in.relaxations);
  EXPECT_EQ(out.predicates_dropped, in.predicates_dropped);
  EXPECT_DOUBLE_EQ(out.penalty, in.penalty);
  EXPECT_EQ(out.budget_exhausted, in.budget_exhausted);
  EXPECT_EQ(out.answers_digest, in.answers_digest);
  EXPECT_DOUBLE_EQ(out.usage.cpu_ms, in.usage.cpu_ms);
  EXPECT_EQ(out.usage.tuples_scanned, in.usage.tuples_scanned);
  EXPECT_EQ(out.usage.tuples_produced, in.usage.tuples_produced);
  EXPECT_EQ(out.usage.bytes_touched, in.usage.bytes_touched);
  EXPECT_EQ(out.usage.cache_hits, in.usage.cache_hits);
  EXPECT_EQ(out.usage.cache_misses, in.usage.cache_misses);
  EXPECT_EQ(out.usage.rounds_executed, in.usage.rounds_executed);
  EXPECT_EQ(out.usage.rounds_pruned, in.usage.rounds_pruned);
}

TEST(QueryLogRecordTest, EscapesSurviveRoundTrip) {
  QueryLogRecord in;
  in.query = "//a[.contains(\"x\\\"y\")]\twith\ncontrol\x01chars";
  const std::string line = QueryLogRecordToJson(in);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  QueryLogRecord out;
  ASSERT_TRUE(ParseQueryLogRecord(line, &out));
  EXPECT_EQ(out.query, in.query);
}

TEST(QueryLogRecordTest, UnknownKeysAreSkipped) {
  QueryLogRecord out;
  ASSERT_TRUE(ParseQueryLogRecord(
      "{\"query\":\"//a\",\"future_field\":\"x\",\"future_num\":1.5,"
      "\"future_obj\":{\"nested\":true},\"k\":3}",
      &out));
  EXPECT_EQ(out.query, "//a");
  EXPECT_EQ(out.k, 3u);
}

TEST(QueryLogRecordTest, MalformedLinesAreRejected) {
  QueryLogRecord out;
  std::string error;
  EXPECT_FALSE(ParseQueryLogRecord("", &out, &error));
  EXPECT_FALSE(ParseQueryLogRecord("not json", &out, &error));
  EXPECT_FALSE(ParseQueryLogRecord("{\"query\":\"unterminated", &out,
                                   &error));
  EXPECT_FALSE(ParseQueryLogRecord("{\"k\":1}trailing", &out, &error));
  EXPECT_FALSE(error.empty());
}

class QueryLogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "query_log_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(QueryLogFileTest, WriterAppendsAndReaderRoundTrips) {
  auto writer = QueryLogWriter::Open(path_);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  QueryLogRecord r = SampleRecord();
  (*writer)->Append(r);
  r.query = "//person[./name]";
  r.answers_digest = 42;
  (*writer)->Append(r);
  EXPECT_EQ((*writer)->records_written(), 2u);

  size_t truncated = 9;
  auto records = ReadQueryLog(path_, &truncated);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(truncated, 0u);
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].query, SampleRecord().query);
  EXPECT_EQ((*records)[1].query, "//person[./name]");
  EXPECT_EQ((*records)[1].answers_digest, 42u);
}

TEST_F(QueryLogFileTest, ConcurrentAppendsNeverInterleave) {
  auto writer = QueryLogWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&writer, t] {
      QueryLogRecord r;
      r.query = "//t" + std::to_string(t);
      for (int i = 0; i < 50; ++i) (*writer)->Append(r);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ((*writer)->records_written(), 200u);
  auto records = ReadQueryLog(path_);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 200u);
}

TEST_F(QueryLogFileTest, TrailingPartialLineIsDroppedNotFatal) {
  auto writer = QueryLogWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  (*writer)->Append(SampleRecord());
  {
    // Simulate a crash mid-append: a final line with no newline.
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << "{\"query\":\"cut off";
  }
  size_t truncated = 0;
  auto records = ReadQueryLog(path_, &truncated);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(truncated, 1u);
}

TEST_F(QueryLogFileTest, CorruptMiddleLineFailsTheRead) {
  auto writer = QueryLogWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  (*writer)->Append(SampleRecord());
  {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << "garbage line\n";
  }
  (*writer)->Append(SampleRecord());
  auto records = ReadQueryLog(path_);
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kParseError);
}

TEST_F(QueryLogFileTest, MissingFileIsNotFound) {
  auto records = ReadQueryLog(path_ + ".does-not-exist");
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kNotFound);
}

TEST(AnswersDigestTest, OrderAndContentSensitive) {
  RankedAnswer a{{DocId{0}, NodeId{1}}, {1.0, 0.5}};
  RankedAnswer b{{DocId{0}, NodeId{2}}, {1.0, 0.25}};
  const uint64_t ab = AnswersDigest({a, b});
  const uint64_t ba = AnswersDigest({b, a});
  EXPECT_NE(ab, ba);  // Rank order matters.
  EXPECT_EQ(ab, AnswersDigest({a, b}));  // Deterministic.
  EXPECT_NE(ab, AnswersDigest({a}));     // Prefix digests differently.
  EXPECT_NE(AnswersDigest({}), 0u);

  RankedAnswer a_rescored = a;
  a_rescored.score.ks = 0.75;
  EXPECT_NE(ab, AnswersDigest({a_rescored, b}));  // Scores matter.
}

}  // namespace
}  // namespace flexpath
