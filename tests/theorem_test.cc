// Property tests for the paper's theorems, beyond the per-module tests:
//   Theorem 1 — uniqueness of the core (random removal orders).
//   Theorem 2 — soundness and completeness of the operator algebra:
//     soundness: every operator composition is a valid relaxation;
//     completeness: every valid relaxation (valid drop set per
//     Definition 1) is reachable by composing operators.
#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/containment.h"
#include "query/logical.h"
#include "query/xpath_parser.h"
#include "relax/relaxation.h"

namespace flexpath {
namespace {

struct QueryCase {
  const char* name;
  const char* xpath;
};

class TheoremTest : public ::testing::TestWithParam<QueryCase> {
 protected:
  Tpq Parse() {
    Result<Tpq> q = ParseXPath(GetParam().xpath, &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *std::move(q);
  }
  TagDict dict_;
};

TEST_P(TheoremTest, SpaceMembersAreValidRelaxations) {
  // Soundness: every member of the operator-generated space strictly
  // contains the original (or is the original itself).
  Tpq q = Parse();
  std::vector<Tpq> space = RelaxationSpace(q, 600);
  for (const Tpq& r : space) {
    EXPECT_TRUE(ContainedIn(q, r)) << r.CanonicalString();
    EXPECT_TRUE(r.Validate().ok());
  }
}

TEST_P(TheoremTest, CompletenessOverDropSubsets) {
  // Completeness: for every droppable-predicate subset S of the closure
  // that passes Definition 1, the core of C − S must appear in the
  // operator-generated space. We enumerate all subsets when the
  // droppable set is small, otherwise random subsets.
  Tpq q = Parse();
  const LogicalQuery closure = Closure(ToLogical(q));
  std::vector<Predicate> droppable;
  for (const Predicate& p : closure.preds) {
    if (p.kind == PredKind::kTag) continue;
    droppable.push_back(p);
  }

  std::vector<Tpq> space = RelaxationSpace(q, 4000);
  std::set<std::string> canon;
  for (const Tpq& r : space) canon.insert(r.CanonicalString());

  std::mt19937 gen(4242);
  const size_t n = droppable.size();
  const bool exhaustive = n <= 12;
  const size_t trials = exhaustive ? (size_t{1} << n) : 4000;

  size_t valid_count = 0;
  for (size_t t = 0; t < trials; ++t) {
    uint64_t bits = exhaustive ? t : gen();
    std::set<Predicate> dropped;
    for (size_t i = 0; i < n; ++i) {
      if (bits & (uint64_t{1} << i)) dropped.insert(droppable[i]);
    }
    if (dropped.empty()) continue;
    if (!IsValidRelaxationDrop(q, dropped)) continue;
    ++valid_count;
    LogicalQuery remainder = closure;
    for (const Predicate& p : dropped) remainder.preds.erase(p);
    // Re-apply the automatic value-predicate dropping of Section 3.3.
    std::set<VarId> alive;
    for (const Predicate& p : remainder.preds) {
      if (p.kind == PredKind::kPc || p.kind == PredKind::kAd) {
        alive.insert(p.x);
        alive.insert(p.y);
      }
    }
    if (!alive.empty()) {
      for (auto it = remainder.preds.begin(); it != remainder.preds.end();) {
        if ((it->kind == PredKind::kTag ||
             it->kind == PredKind::kContains) &&
            alive.count(it->x) == 0) {
          it = remainder.preds.erase(it);
        } else {
          ++it;
        }
      }
    }
    Result<Tpq> core = LogicalToTpq(remainder);
    ASSERT_TRUE(core.ok());
    EXPECT_TRUE(canon.count(core->CanonicalString()) > 0)
        << "unreachable relaxation, dropped set of " << dropped.size()
        << " predicates, core: " << core->CanonicalString();
  }
  EXPECT_GT(valid_count, 0u) << "the case exercised no valid drops";
}

TEST_P(TheoremTest, CoreUniqueAcrossRemovalOrders) {
  Tpq q = Parse();
  const LogicalQuery closure = Closure(ToLogical(q));
  const LogicalQuery reference = Core(closure);
  std::mt19937 gen(7);
  for (int trial = 0; trial < 10; ++trial) {
    LogicalQuery work = closure;
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<Predicate> order(work.preds.begin(), work.preds.end());
      std::shuffle(order.begin(), order.end(), gen);
      for (const Predicate& p : order) {
        if (Derivable(work.preds, p)) {
          work.preds.erase(p);
          changed = true;
          break;
        }
      }
    }
    EXPECT_EQ(work.preds, reference.preds)
        << GetParam().name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, TheoremTest,
    ::testing::Values(
        QueryCase{"chain", "//a/b/c"},
        QueryCase{"chain_ad", "//a//b/c"},
        QueryCase{"bush", "//a[./b and ./c]"},
        QueryCase{"deep_bush", "//a[./b/c and ./d]"},
        QueryCase{"paper_q1",
                  "//article[./section[./algorithm and "
                  "./paragraph[.contains(\"XML\" and \"streaming\")]]]"},
        QueryCase{"two_contains",
                  "//a[./b[.contains(\"x\")] and ./c[.contains(\"y\")]]"}),
    [](const ::testing::TestParamInfo<QueryCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace flexpath
