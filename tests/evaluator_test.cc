#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "exec/naive_evaluator.h"
#include "exec/plan.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "query/xpath_parser.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"

namespace flexpath {
namespace {

/// Small rig bundling a corpus with all engines.
struct Rig {
  explicit Rig(std::vector<std::string> docs)
      : corpus(testing_util::CorpusFromXml(docs)),
        index(corpus.get()),
        stats(corpus.get()),
        ir(corpus.get()),
        processor(&index, &stats, &ir) {}

  Tpq Parse(const char* xpath) {
    Result<Tpq> q = ParseXPath(xpath, corpus->tags());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *std::move(q);
  }

  TopKResult Run(const Tpq& q, size_t k, Algorithm algo = Algorithm::kHybrid,
                 RankScheme scheme = RankScheme::kStructureFirst,
                 Weights weights = {}) {
    TopKOptions opts;
    opts.k = k;
    opts.scheme = scheme;
    opts.weights = std::move(weights);
    Result<TopKResult> r = processor.Run(q, algo, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *std::move(r);
  }

  std::unique_ptr<Corpus> corpus;
  ElementIndex index;
  DocumentStats stats;
  IrEngine ir;
  TopKProcessor processor;
};

TEST(EvaluatorEdgeTest, WeightsScaleStructuralScores) {
  Rig rig({"<a><b><c/></b></a>", "<a><b/></a>"});
  Tpq q = rig.Parse("//a[./b/c]");
  Weights heavy;
  heavy.structural = 10.0;
  TopKResult result = rig.Run(q, 2, Algorithm::kHybrid,
                              RankScheme::kStructureFirst, heavy);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_NEAR(result.answers[0].score.ss, 20.0, 1e-9);  // exact match
  EXPECT_LT(result.answers[1].score.ss, 20.0);          // relaxed
  // The relaxed answer's score may reach 0 when the dropped predicates'
  // penalty ratios are all 1 (every b/c pair in this corpus is
  // parent-child, so relaxing buys nothing and costs full weight).
  EXPECT_GE(result.answers[1].score.ss, 0.0);
}

TEST(EvaluatorEdgeTest, MultipleContainsOnOneNode) {
  Rig rig({
      "<doc><sec>alpha beta</sec></doc>",
      "<doc><sec>alpha only</sec></doc>",
      "<doc><sec>beta only</sec></doc>",
  });
  Tpq q = rig.Parse(
      "//doc[./sec[.contains(\"alpha\") and .contains(\"beta\")]]");
  EXPECT_EQ(q.ContainsCount(), 2u);
  TopKResult strict = rig.Run(q, 1);
  ASSERT_EQ(strict.answers.size(), 1u);
  EXPECT_EQ(strict.answers[0].node.doc, 0u);
  // ks sums both predicates' contributions.
  EXPECT_GT(strict.answers[0].score.ks, 1.0);
  EXPECT_LE(strict.answers[0].score.ks, 2.0 + 1e-9);

  // Even at k=3 the single-keyword documents stay excluded: the greedy
  // schedule promotes both contains predicates to the root (cheapest
  // steps), after which the keywords are required *somewhere* forever —
  // exactly the paper's stance that answers without the keywords are
  // never relevant (Section 3.1).
  TopKResult relaxed = rig.Run(q, 3);
  EXPECT_EQ(relaxed.answers.size(), 1u);
  EXPECT_EQ(relaxed.answers[0].node.doc, 0u);
}

TEST(EvaluatorEdgeTest, PromotedContainsScoresFromBroaderContext) {
  Rig rig({
      // Keywords inside the paragraph: full structural + keyword score.
      "<article><section><paragraph>rare gold coin</paragraph>"
      "</section></article>",
      // Keywords in the section but outside the paragraph: reached by
      // contains promotion; keyword score comes from the section match.
      "<article><section><title>rare gold finds</title>"
      "<paragraph>unrelated text</paragraph></section></article>",
  });
  Tpq q = rig.Parse(
      "//article[./section/paragraph[.contains(\"rare\" and \"gold\")]]");
  TopKResult result = rig.Run(q, 2);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_EQ(result.answers[0].node.doc, 0u);
  EXPECT_GT(result.answers[0].score.ss, result.answers[1].score.ss);
  EXPECT_GT(result.answers[1].score.ks, 0.0)
      << "promoted contains must still contribute a keyword score";
}

TEST(EvaluatorEdgeTest, NonRootDistinguishedWithRelaxations) {
  Rig rig({
      "<lib><shelf><book><title>x</title></book></shelf>"
      "<shelf><box><book/></box></shelf></lib>",
  });
  // Asks for books directly on a shelf; the boxed book appears through
  // axis generalization; answers are book elements, never shelves.
  Tpq q = rig.Parse("//lib/shelf/book");
  TopKResult result = rig.Run(q, 5);
  ASSERT_EQ(result.answers.size(), 2u);
  const TagId book = std::as_const(*rig.corpus).tags().Lookup("book");
  for (const RankedAnswer& a : result.answers) {
    EXPECT_EQ(rig.corpus->node(a.node).tag, book);
  }
  EXPECT_GT(result.answers[0].score.ss, result.answers[1].score.ss);
}

TEST(EvaluatorEdgeTest, RecursiveTagsSelfNesting) {
  Rig rig({"<list><list><list/></list></list>"});
  Tpq q = rig.Parse("//list[./list]");
  std::vector<NodeRef> expected = NaiveEvaluate(rig.index, q, &rig.ir);
  ASSERT_EQ(expected.size(), 2u);
  TopKResult result = rig.Run(q, 10);
  // All three lists become answers once the leaf is deletable; the two
  // exact ones first.
  ASSERT_GE(result.answers.size(), 2u);
  EXPECT_NEAR(result.answers[0].score.ss, 1.0, 1e-9);
  EXPECT_NEAR(result.answers[1].score.ss, 1.0, 1e-9);
}

TEST(EvaluatorEdgeTest, AnswersSpanMultipleDocuments) {
  Rig rig({
      "<a><b/></a>",
      "<x><a><b/></a></x>",
      "<a><c/></a>",
  });
  Tpq q = rig.Parse("//a[./b]");
  TopKResult result = rig.Run(q, 5);
  ASSERT_GE(result.answers.size(), 2u);
  std::vector<DocId> docs;
  for (const RankedAnswer& a : result.answers) {
    if (a.score.ss == 1.0) docs.push_back(a.node.doc);
  }
  std::sort(docs.begin(), docs.end());
  EXPECT_EQ(docs, (std::vector<DocId>{0, 1}));
}

TEST(EvaluatorEdgeTest, WildcardPlanRejectedGracefully) {
  Rig rig({"<a><b/></a>"});
  Tpq q = rig.Parse("//*[./b]");
  TopKOptions opts;
  opts.k = 1;
  Result<TopKResult> result = rig.processor.Run(q, Algorithm::kHybrid, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(EvaluatorEdgeTest, AttrPredsFilterInsideRelaxedPlans) {
  Rig rig({
      "<shop><item price='5'><tag/></item><item price='50'><tag/></item>"
      "<item price='5'/></shop>",
  });
  Tpq q = rig.Parse("//item[@price < 10 and ./tag]");
  TopKResult result = rig.Run(q, 5);
  // Only price-5 items can be answers (value predicates never relax);
  // the tag-less one arrives via leaf deletion.
  ASSERT_EQ(result.answers.size(), 2u);
  const TagId price = std::as_const(*rig.corpus).tags().Lookup("price");
  for (const RankedAnswer& a : result.answers) {
    const std::string* v =
        rig.corpus->doc(a.node.doc).FindAttribute(a.node.node, price);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, "5");
  }
}

TEST(EvaluatorEdgeTest, ContainsOnInternalNode) {
  Rig rig({
      "<doc><part><chapter>gold here</chapter></part></doc>",
      "<doc><part><chapter>nothing</chapter></part></doc>",
  });
  // contains sits on `part`, an internal pattern node.
  Tpq q = rig.Parse("//doc[./part[.contains(\"gold\") and ./chapter]]");
  TopKResult strict = rig.Run(q, 1);
  ASSERT_EQ(strict.answers.size(), 1u);
  EXPECT_EQ(strict.answers[0].node.doc, 0u);
}

TEST(EvaluatorEdgeTest, DpoKeywordFirstRunsAllRounds) {
  Rig rig({
      "<doc><sec><p>needle</p></sec></doc>",
      "<doc><sec><div><p>needle needle needle</p></div></sec></doc>",
  });
  // Under keyword-first, doc 1 (more occurrences, deeper) may outrank
  // the structurally exact doc 0 — DPO must not stop at the first round.
  Tpq q = rig.Parse("//doc[./sec/p[.contains(\"needle\")]]");
  TopKResult dpo =
      rig.Run(q, 2, Algorithm::kDpo, RankScheme::kKeywordFirst);
  ASSERT_EQ(dpo.answers.size(), 2u);
  EXPECT_GE(dpo.answers[0].score.ks, dpo.answers[1].score.ks);
  TopKResult hybrid =
      rig.Run(q, 2, Algorithm::kHybrid, RankScheme::kKeywordFirst);
  ASSERT_EQ(hybrid.answers.size(), 2u);
  EXPECT_EQ(hybrid.answers[0].node, dpo.answers[0].node);
}

TEST(EvaluatorEdgeTest, CombinedSchemeAgreesAcrossAlgorithms) {
  Rig rig({
      "<doc><sec><p>gold</p></sec></doc>",
      "<doc><sec><p>iron</p><note>gold gold gold</note></sec></doc>",
      "<doc><sec>gold</sec></doc>",
  });
  Tpq q = rig.Parse("//doc[./sec/p[.contains(\"gold\")]]");
  TopKResult sso =
      rig.Run(q, 3, Algorithm::kSso, RankScheme::kCombined);
  TopKResult hybrid =
      rig.Run(q, 3, Algorithm::kHybrid, RankScheme::kCombined);
  ASSERT_EQ(sso.answers.size(), hybrid.answers.size());
  for (size_t i = 0; i < sso.answers.size(); ++i) {
    EXPECT_EQ(sso.answers[i].node, hybrid.answers[i].node);
    EXPECT_NEAR(sso.answers[i].score.Combined(),
                hybrid.answers[i].score.Combined(), 1e-9);
  }
}

TEST(EvaluatorEdgeTest, DominancePruningLosesNoAnswers) {
  // A bushy pattern over a corpus with many independent branch matches:
  // the dominance rule must not change the answer set or scores.
  Rig rig({
      "<r><x><m/><m/><m/></x><y><n/><n/><n/></y><z/></r>",
      "<r><x><m/></x><y><n/></y></r>",
      "<r><x/><y><n/></y><z/></r>",
  });
  Tpq q = rig.Parse("//r[./x/m and ./y/n and ./z]");
  PenaltyModel pm(q, &rig.stats, &rig.ir, Weights{});
  std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  ASSERT_FALSE(schedule.empty());
  const ScheduleEntry& last = schedule.back();
  Result<JoinPlan> plan =
      JoinPlan::Build(q, last.relaxed, last.dropped, pm, Weights{});
  ASSERT_TRUE(plan.ok());
  PlanEvaluator evaluator(&rig.index, &rig.ir);
  ExecCounters counters;
  std::vector<RankedAnswer> got = evaluator.Evaluate(
      *plan, EvalMode::kHybridBuckets, 0, RankScheme::kStructureFirst, 0.0,
      &counters);
  // Union semantics: every r is an answer of the fully relaxed query.
  std::vector<NodeRef> expected =
      NaiveEvaluate(rig.index, last.relaxed, &rig.ir);
  ASSERT_EQ(got.size(), expected.size());
  // Exact matches keep the full base score.
  std::vector<NodeRef> strict = NaiveEvaluate(rig.index, q, &rig.ir);
  for (const RankedAnswer& a : got) {
    if (std::binary_search(strict.begin(), strict.end(), a.node)) {
      EXPECT_NEAR(a.score.ss, plan->base_score(), 1e-9);
    }
  }
}

TEST(EvaluatorEdgeTest, LargeKExhaustsSpaceWithoutError) {
  Rig rig({"<a><b/></a>", "<a/>", "<c><a><b/></a></c>"});
  Tpq q = rig.Parse("//a[./b]");
  TopKResult result = rig.Run(q, 1000);
  // All three a's eventually qualify (leaf deletion), k exceeds them.
  EXPECT_EQ(result.answers.size(), 3u);
}

}  // namespace
}  // namespace flexpath
