#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/evaluator.h"
#include "exec/naive_evaluator.h"
#include "exec/plan.h"
#include "exec/selectivity.h"
#include "exec/structural_join.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "query/xpath_parser.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace flexpath {
namespace {

// --- Structural join ------------------------------------------------------

std::set<std::pair<NodeRef, NodeRef>> PairSet(
    const std::vector<JoinPair>& pairs) {
  std::set<std::pair<NodeRef, NodeRef>> out;
  for (const JoinPair& p : pairs) out.emplace(p.anc, p.desc);
  return out;
}

TEST(StructuralJoinTest, SimpleAncestorDescendant) {
  auto corpus = testing_util::CorpusFromXml(
      {"<a><b><a><b/></a></b><b/></a>"});
  ElementIndex index(corpus.get());
  const TagDict& dict = std::as_const(*corpus).tags();
  const auto& as = index.Scan(dict.Lookup("a"));
  const auto& bs = index.Scan(dict.Lookup("b"));
  ASSERT_EQ(as.size(), 2u);
  ASSERT_EQ(bs.size(), 3u);

  std::vector<JoinPair> ad = StructuralJoin(*corpus, as, bs, false);
  // a0 contains b1, b3, b4; a2 contains b3. Total 4 pairs.
  EXPECT_EQ(ad.size(), 4u);
  std::vector<JoinPair> pc = StructuralJoin(*corpus, as, bs, true);
  // parents: a0->b1, a0->b4, a2->b3.
  EXPECT_EQ(pc.size(), 3u);
}

TEST(StructuralJoinTest, MatchesNestedLoopOnRandomDocs) {
  Rng rng(505);
  for (int iter = 0; iter < 30; ++iter) {
    Corpus corpus;
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 80));
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 80));
    ElementIndex index(&corpus);
    const TagDict& dict = std::as_const(corpus).tags();
    for (const char* anc_tag : {"a", "b", "c"}) {
      for (const char* desc_tag : {"b", "d"}) {
        const TagId at = dict.Lookup(anc_tag);
        const TagId dt = dict.Lookup(desc_tag);
        if (at == kInvalidTag || dt == kInvalidTag) continue;
        const auto& as = index.Scan(at);
        const auto& ds = index.Scan(dt);
        for (bool parent_only : {false, true}) {
          EXPECT_EQ(
              PairSet(StructuralJoin(corpus, as, ds, parent_only)),
              PairSet(NestedLoopJoin(corpus, as, ds, parent_only)))
              << anc_tag << "/" << desc_tag << " parent=" << parent_only;
        }
      }
    }
  }
}

TEST(StructuralJoinTest, EmptyInputs) {
  auto corpus = testing_util::CorpusFromXml({"<a><b/></a>"});
  ElementIndex index(corpus.get());
  std::vector<NodeRef> empty;
  const auto& as = index.Scan(std::as_const(*corpus).tags().Lookup("a"));
  EXPECT_TRUE(StructuralJoin(*corpus, empty, as, false).empty());
  EXPECT_TRUE(StructuralJoin(*corpus, as, empty, false).empty());
}

TEST(StructuralJoinTest, SameListSelfJoin) {
  auto corpus = testing_util::CorpusFromXml({"<a><a><a/></a></a>"});
  ElementIndex index(corpus.get());
  const auto& as = index.Scan(std::as_const(*corpus).tags().Lookup("a"));
  std::vector<JoinPair> ad = StructuralJoin(*corpus, as, as, false);
  EXPECT_EQ(ad.size(), 3u);  // (0,1),(0,2),(1,2)
  std::vector<JoinPair> pc = StructuralJoin(*corpus, as, as, true);
  EXPECT_EQ(pc.size(), 2u);
}

// --- Naive evaluator -------------------------------------------------------

class NaiveEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::ArticleCorpus();
    index_ = std::make_unique<ElementIndex>(corpus_.get());
    ir_ = std::make_unique<IrEngine>(corpus_.get());
  }

  std::vector<std::string> AnswerIds(const std::vector<NodeRef>& answers) {
    std::vector<std::string> out;
    const TagId id_attr = std::as_const(*corpus_).tags().Lookup("id");
    for (NodeRef ref : answers) {
      const std::string* v =
          corpus_->doc(ref.doc).FindAttribute(ref.node, id_attr);
      out.push_back(v != nullptr ? *v : "?");
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<std::string> Eval(const char* xpath) {
    Result<Tpq> q = ParseXPath(xpath, corpus_->tags());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return AnswerIds(NaiveEvaluate(*index_, *q, ir_.get()));
  }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<ElementIndex> index_;
  std::unique_ptr<IrEngine> ir_;
};

TEST_F(NaiveEvalTest, Figure1AnswerSets) {
  using V = std::vector<std::string>;
  // Q1: only a1 matches exactly.
  EXPECT_EQ(Eval("//article[./section[./algorithm and "
                 "./paragraph[.contains(\"XML\" and \"streaming\")]]]"),
            (V{"a1"}));
  // Q2 admits a2 (keywords in the section, outside paragraphs).
  EXPECT_EQ(Eval("//article[./section[./algorithm and ./paragraph and "
                 ".contains(\"XML\" and \"streaming\")]]"),
            (V{"a1", "a2"}));
  // Q3 admits a3 (algorithm outside the keyword section).
  EXPECT_EQ(Eval("//article[.//algorithm and ./section[./paragraph[ "
                 ".contains(\"XML\" and \"streaming\")]]]"),
            (V{"a1", "a3"}));
  // Q4 = Q2 ∪ Q3 shape.
  EXPECT_EQ(Eval("//article[.//algorithm and ./section[./paragraph and "
                 ".contains(\"XML\" and \"streaming\")]]"),
            (V{"a1", "a2", "a3"}));
  // Q5 drops the algorithm condition; admits a4.
  EXPECT_EQ(Eval("//article[./section[./paragraph and .contains(\"XML\" "
                 "and \"streaming\")]]"),
            (V{"a1", "a2", "a3", "a4"}));
  // Q6: keywords anywhere; admits a5 (abstract) too.
  EXPECT_EQ(Eval("//article[.contains(\"XML\" and \"streaming\")]"),
            (V{"a1", "a2", "a3", "a4", "a5"}));
}

TEST_F(NaiveEvalTest, AttributePredicateFilters) {
  using V = std::vector<std::string>;
  EXPECT_EQ(Eval("//article[@id='a3']"), (V{"a3"}));
  EXPECT_EQ(Eval("//article[@id='zz']"), (V{}));
}

TEST_F(NaiveEvalTest, NonRootDistinguished) {
  Result<Tpq> q = ParseXPath("//article/section/paragraph", corpus_->tags());
  ASSERT_TRUE(q.ok());
  std::vector<NodeRef> answers = NaiveEvaluate(*index_, *q, ir_.get());
  const TagId para = std::as_const(*corpus_).tags().Lookup("paragraph");
  EXPECT_EQ(answers.size(), 6u);
  for (NodeRef ref : answers) {
    EXPECT_EQ(corpus_->node(ref).tag, para);
  }
}

TEST_F(NaiveEvalTest, WildcardRoot) {
  Result<Tpq> q = ParseXPath("//*[./algorithm]", corpus_->tags());
  ASSERT_TRUE(q.ok());
  std::vector<NodeRef> answers = NaiveEvaluate(*index_, *q, ir_.get());
  // Parents of algorithms: the sections of a1, a2, a6 and a3's appendix.
  EXPECT_EQ(answers.size(), 4u);
}

// --- Plan evaluation == naive evaluation (exact mode) ----------------------

class PlanVsNaiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::ArticleCorpus();
    index_ = std::make_unique<ElementIndex>(corpus_.get());
    stats_ = std::make_unique<DocumentStats>(corpus_.get());
    ir_ = std::make_unique<IrEngine>(corpus_.get());
  }

  void ExpectPlanMatchesNaive(const char* xpath) {
    Result<Tpq> q = ParseXPath(xpath, corpus_->tags());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    std::vector<NodeRef> expected = NaiveEvaluate(*index_, *q, ir_.get());

    PenaltyModel pm(*q, stats_.get(), ir_.get(), Weights{});
    Result<JoinPlan> plan = JoinPlan::Build(*q, *q, {}, pm, Weights{});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    PlanEvaluator evaluator(index_.get(), ir_.get());
    std::vector<RankedAnswer> got = evaluator.Evaluate(
        *plan, EvalMode::kExact, 0, RankScheme::kStructureFirst, 0.0,
        nullptr);
    std::vector<NodeRef> got_nodes;
    for (const RankedAnswer& a : got) got_nodes.push_back(a.node);
    std::sort(got_nodes.begin(), got_nodes.end());
    EXPECT_EQ(got_nodes, expected) << xpath;
  }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<ElementIndex> index_;
  std::unique_ptr<DocumentStats> stats_;
  std::unique_ptr<IrEngine> ir_;
};

TEST_F(PlanVsNaiveTest, Figure1Queries) {
  ExpectPlanMatchesNaive(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]");
  ExpectPlanMatchesNaive(
      "//article[.//algorithm and ./section[./paragraph and "
      ".contains(\"XML\" and \"streaming\")]]");
  ExpectPlanMatchesNaive("//article[.contains(\"XML\" and \"streaming\")]");
  ExpectPlanMatchesNaive("//article[./section/paragraph]");
  ExpectPlanMatchesNaive("//article[@id='a2' and ./section]");
}

TEST_F(PlanVsNaiveTest, NonRootDistinguishedPlan) {
  ExpectPlanMatchesNaive("//article/section/paragraph");
  ExpectPlanMatchesNaive("//article[.//algorithm]/section");
}

TEST(PlanVsNaivePropertyTest, RandomQueriesOnXMark) {
  // Exact plan evaluation must agree with the oracle on a real-ish
  // document for a battery of hand-rolled pattern shapes.
  TagDict* dict;
  Corpus corpus;
  dict = corpus.tags();
  XMarkOptions opts;
  opts.target_bytes = 150000;
  opts.seed = 11;
  Result<Document> doc = GenerateXMark(opts, dict);
  ASSERT_TRUE(doc.ok());
  corpus.Add(std::move(doc).value());
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  PlanEvaluator evaluator(&index, &ir);

  const char* queries[] = {
      "//item[./description/parlist]",
      "//item[./description//parlist]",
      "//item[./description/parlist and ./mailbox/mail/text]",
      "//item[./mailbox/mail/text[./bold and ./keyword and ./emph]]",
      "//item[./name and ./incategory]",
      "//listitem[./parlist]",
      "//mail[./text[./bold]]",
      "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold "
      "and ./keyword and ./emph] and ./name and ./incategory]",
      "//open_auction[./annotation/description and ./bidder]",
      "//item[.contains(\"gold\")]",
      "//item[./description[.contains(\"gold\" or \"silver\")]]",
  };
  for (const char* xpath : queries) {
    Result<Tpq> q = ParseXPath(xpath, corpus.tags());
    ASSERT_TRUE(q.ok()) << xpath;
    std::vector<NodeRef> expected = NaiveEvaluate(index, *q, &ir);
    PenaltyModel pm(*q, &stats, &ir, Weights{});
    Result<JoinPlan> plan = JoinPlan::Build(*q, *q, {}, pm, Weights{});
    ASSERT_TRUE(plan.ok()) << xpath;
    std::vector<RankedAnswer> got = evaluator.Evaluate(
        *plan, EvalMode::kExact, 0, RankScheme::kStructureFirst, 0.0,
        nullptr);
    std::vector<NodeRef> got_nodes;
    for (const RankedAnswer& a : got) got_nodes.push_back(a.node);
    std::sort(got_nodes.begin(), got_nodes.end());
    EXPECT_EQ(got_nodes, expected) << xpath;
  }
}

// --- Relaxed plan evaluation vs relaxation-union oracle ---------------------

TEST_F(PlanVsNaiveTest, EncodedRelaxationsMatchScheduleUnion) {
  // Evaluating a plan with relaxations encoded must return exactly the
  // union of the chain queries' exact answers, and each answer's
  // structural score must equal base − penalty(violated drop set),
  // maximized over the chain queries admitting it.
  Result<Tpq> qr = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      corpus_->tags());
  ASSERT_TRUE(qr.ok());
  Tpq q = *std::move(qr);
  PenaltyModel pm(q, stats_.get(), ir_.get(), Weights{});
  std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  ASSERT_FALSE(schedule.empty());
  PlanEvaluator evaluator(index_.get(), ir_.get());
  const double base = BaseStructuralScore(q, Weights{});

  for (size_t depth = 1; depth <= schedule.size(); ++depth) {
    const ScheduleEntry& entry = schedule[depth - 1];
    Result<JoinPlan> plan =
        JoinPlan::Build(q, entry.relaxed, entry.dropped, pm, Weights{});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    std::vector<RankedAnswer> got = evaluator.Evaluate(
        *plan, EvalMode::kSsoFlat, 0, RankScheme::kStructureFirst, 0.0,
        nullptr);

    // Union oracle: answers of the most relaxed chain query.
    std::vector<NodeRef> expected =
        NaiveEvaluate(*index_, entry.relaxed, ir_.get());
    std::vector<NodeRef> got_nodes;
    for (const RankedAnswer& a : got) got_nodes.push_back(a.node);
    std::sort(got_nodes.begin(), got_nodes.end());
    EXPECT_EQ(got_nodes, expected) << "depth " << depth;

    // Scores: answers of the *original* query keep the full base score;
    // all scores lie in [base − cumulative_penalty, base].
    std::vector<NodeRef> original = NaiveEvaluate(*index_, q, ir_.get());
    for (const RankedAnswer& a : got) {
      EXPECT_LE(a.score.ss, base + 1e-9);
      EXPECT_GE(a.score.ss, base - entry.cumulative_penalty - 1e-9);
      if (std::binary_search(original.begin(), original.end(), a.node)) {
        EXPECT_NEAR(a.score.ss, base, 1e-9)
            << "exact answers must not be penalized";
      } else {
        EXPECT_LT(a.score.ss, base);
      }
    }
  }
}

TEST_F(PlanVsNaiveTest, HybridBucketsAgreeWithSsoFlat) {
  Result<Tpq> qr = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      corpus_->tags());
  ASSERT_TRUE(qr.ok());
  Tpq q = *std::move(qr);
  PenaltyModel pm(q, stats_.get(), ir_.get(), Weights{});
  std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  PlanEvaluator evaluator(index_.get(), ir_.get());

  for (size_t depth = 1; depth <= schedule.size(); ++depth) {
    const ScheduleEntry& entry = schedule[depth - 1];
    Result<JoinPlan> plan =
        JoinPlan::Build(q, entry.relaxed, entry.dropped, pm, Weights{});
    ASSERT_TRUE(plan.ok());
    std::vector<RankedAnswer> flat = evaluator.Evaluate(
        *plan, EvalMode::kSsoFlat, 0, RankScheme::kStructureFirst, 0.0,
        nullptr);
    std::vector<RankedAnswer> buckets = evaluator.Evaluate(
        *plan, EvalMode::kHybridBuckets, 0, RankScheme::kStructureFirst,
        0.0, nullptr);
    ASSERT_EQ(flat.size(), buckets.size()) << "depth " << depth;
    for (size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(flat[i].node, buckets[i].node);
      EXPECT_NEAR(flat[i].score.ss, buckets[i].score.ss, 1e-9);
      EXPECT_NEAR(flat[i].score.ks, buckets[i].score.ks, 1e-9);
    }
  }
}

// --- Selectivity estimator --------------------------------------------------

TEST(SelectivityTest, ExactForSingleTag) {
  auto corpus = testing_util::ArticleCorpus();
  DocumentStats stats(corpus.get());
  SelectivityEstimator est(&stats, nullptr);
  Result<Tpq> q = ParseXPath("//article", corpus->tags());
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(est.EstimateAnswers(*q), 6.0);
}

TEST(SelectivityTest, EdgeFractionsReduceEstimate) {
  auto corpus = testing_util::ArticleCorpus();
  DocumentStats stats(corpus.get());
  SelectivityEstimator est(&stats, nullptr);
  Result<Tpq> all = ParseXPath("//article", corpus->tags());
  Result<Tpq> some = ParseXPath("//article[.//algorithm]", corpus->tags());
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(some.ok());
  EXPECT_LT(est.EstimateAnswers(*some), est.EstimateAnswers(*all));
  // 4 of 6 articles (a1, a2, a3, a6) have an algorithm descendant.
  EXPECT_NEAR(est.EstimateAnswers(*some), 4.0, 1e-9);
}

TEST(SelectivityTest, EstimatesAreFiniteAndNonNegative) {
  // The uniform-independence estimate need not be monotone under
  // relaxation (true answer counts are; the independence approximation
  // is not) — SSO's restart loop covers under-estimates. We check the
  // estimates stay sane along the whole relaxation chain.
  Corpus corpus;
  XMarkOptions gopts;
  gopts.target_bytes = 120000;
  gopts.seed = 3;
  Result<Document> doc = GenerateXMark(gopts, corpus.tags());
  ASSERT_TRUE(doc.ok());
  corpus.Add(std::move(doc).value());
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  SelectivityEstimator est(&stats, &ir);
  Result<Tpq> q = ParseXPath(
      "//item[./description/parlist and ./mailbox/mail/text]",
      corpus.tags());
  ASSERT_TRUE(q.ok());
  PenaltyModel pm(*q, &stats, &ir, Weights{});
  const double total_items =
      static_cast<double>(stats.TagCount(corpus.tags()->Intern("item")));
  EXPECT_GT(est.EstimateAnswers(*q), 0.0);
  for (const ScheduleEntry& e : BuildSchedule(*q, pm)) {
    const double cur = est.EstimateAnswers(e.relaxed);
    EXPECT_GE(cur, 0.0) << e.op.ToString();
    EXPECT_LE(cur, total_items + 1e-9) << e.op.ToString();
  }
}

// --- ExecCounters reflection ----------------------------------------------

// The visitor is the single source of truth for the field list: it must
// enumerate every field exactly once (the static_assert on sizeof pins
// the count at compile time; this pins the visitor to the count).
TEST(ExecCountersTest, VisitFieldsCoversEveryFieldOnce) {
  ExecCounters c;
  std::set<std::string> names;
  size_t visited = 0;
  ExecCounters::VisitFields(
      c, [&](const char* name, const uint64_t&, ExecCounters::Agg) {
        EXPECT_TRUE(names.insert(name).second) << "duplicate field " << name;
        ++visited;
      });
  EXPECT_EQ(visited, ExecCounters::kFieldCount);
  // Spot-check the only high-water-mark field carries the right policy.
  ExecCounters::VisitFields(
      c, [&](const char* name, const uint64_t&, ExecCounters::Agg agg) {
        if (std::string(name) == "buckets_peak") {
          EXPECT_EQ(agg, ExecCounters::Agg::kMax);
        } else {
          EXPECT_EQ(agg, ExecCounters::Agg::kSum) << name;
        }
      });
}

// Differential check that Add() really routes every field through its
// declared aggregation: distinct per-field values, so a dropped or
// swapped field changes the result.
TEST(ExecCountersTest, AddAggregatesEveryFieldByItsPolicy) {
  ExecCounters a, b;
  uint64_t seed = 1;
  ExecCounters::VisitFields(
      a, [&](const char*, uint64_t& value, ExecCounters::Agg) {
        value = seed;
        seed += 10;
      });
  seed = 7;
  ExecCounters::VisitFields(
      b, [&](const char*, uint64_t& value, ExecCounters::Agg) {
        value = seed;
        seed += 3;
      });

  ExecCounters expect_sum = a;  // Hand-computed expectation per field.
  {
    std::vector<uint64_t> b_vals;
    ExecCounters::VisitFields(
        b, [&](const char*, const uint64_t& value, ExecCounters::Agg) {
          b_vals.push_back(value);
        });
    size_t i = 0;
    ExecCounters::VisitFields(
        expect_sum,
        [&](const char*, uint64_t& value, ExecCounters::Agg agg) {
          value = agg == ExecCounters::Agg::kMax
                      ? std::max(value, b_vals[i])
                      : value + b_vals[i];
          ++i;
        });
  }

  ExecCounters sum = a;
  sum.Add(b);
  ExecCounters::VisitFields(
      sum, [&](const char* name, const uint64_t& value, ExecCounters::Agg) {
        uint64_t expected = 0;
        ExecCounters::VisitFields(
            expect_sum, [&](const char* n, const uint64_t& v,
                            ExecCounters::Agg) {
              if (std::string(n) == name) expected = v;
            });
        EXPECT_EQ(value, expected) << name;
      });
  // buckets_peak took the max, not the sum.
  EXPECT_EQ(sum.buckets_peak, std::max(a.buckets_peak, b.buckets_peak));
  EXPECT_EQ(sum.plan_passes, a.plan_passes + b.plan_passes);
}

}  // namespace
}  // namespace flexpath
