#include <map>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace flexpath {
namespace {

// --- ElementIndex ----------------------------------------------------------

TEST(ElementIndexTest, ScansAreInDocumentOrder) {
  auto corpus = testing_util::CorpusFromXml(
      {"<a><b/><a><b/></a></a>", "<a><b/></a>"});
  ElementIndex index(corpus.get());
  const TagDict& dict = std::as_const(*corpus).tags();
  const auto& as = index.Scan(dict.Lookup("a"));
  ASSERT_EQ(as.size(), 3u);
  for (size_t i = 1; i < as.size(); ++i) {
    EXPECT_LT(as[i - 1], as[i]);
  }
  EXPECT_EQ(index.Count(dict.Lookup("b")), 3u);
}

TEST(ElementIndexTest, UnknownTagEmpty) {
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  ElementIndex index(corpus.get());
  EXPECT_TRUE(index.Scan(kInvalidTag).empty());
  EXPECT_TRUE(index.Scan(12345).empty());
}

TEST(ElementIndexTest, TagsInternedAfterBuildAreEmpty) {
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  ElementIndex index(corpus.get());
  const TagId later = corpus->tags()->Intern("later");
  EXPECT_TRUE(index.Scan(later).empty());
}

// --- DocumentStats vs brute force -------------------------------------------

/// Brute-force pair counts for verification.
struct BruteCounts {
  std::map<TagId, uint64_t> tags;
  std::map<std::pair<TagId, TagId>, uint64_t> pc, ad;
  std::map<std::pair<TagId, TagId>, uint64_t> pc_exists, ad_exists;
};

BruteCounts Brute(const Corpus& corpus) {
  BruteCounts out;
  for (DocId d = 0; d < corpus.size(); ++d) {
    const Document& doc = corpus.doc(d);
    for (NodeId n = 0; n < doc.size(); ++n) {
      ++out.tags[doc.node(n).tag];
      std::map<TagId, bool> child_tags, desc_tags;
      for (NodeId m = 0; m < doc.size(); ++m) {
        if (m == n) continue;
        if (doc.IsParent(n, m)) {
          ++out.pc[{doc.node(n).tag, doc.node(m).tag}];
          child_tags[doc.node(m).tag] = true;
        }
        if (doc.IsAncestor(n, m)) {
          ++out.ad[{doc.node(n).tag, doc.node(m).tag}];
          desc_tags[doc.node(m).tag] = true;
        }
      }
      for (const auto& [t, _] : child_tags) {
        ++out.pc_exists[{doc.node(n).tag, t}];
      }
      for (const auto& [t, _] : desc_tags) {
        ++out.ad_exists[{doc.node(n).tag, t}];
      }
    }
  }
  return out;
}

TEST(DocumentStatsTest, MatchesBruteForceOnRandomDocs) {
  Rng rng(808);
  for (int iter = 0; iter < 20; ++iter) {
    Corpus corpus;
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 70));
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 70));
    DocumentStats stats(&corpus);
    BruteCounts brute = Brute(corpus);

    const size_t num_tags = std::as_const(corpus).tags().size();
    for (TagId t = 0; t < num_tags; ++t) {
      EXPECT_EQ(stats.TagCount(t), brute.tags[t]) << "tag " << t;
      for (TagId u = 0; u < num_tags; ++u) {
        EXPECT_EQ(stats.PcCount(t, u), (brute.pc[{t, u}]))
            << t << "/" << u << " iter " << iter;
        EXPECT_EQ(stats.AdCount(t, u), (brute.ad[{t, u}]))
            << t << "//" << u << " iter " << iter;
        if (brute.tags[t] > 0) {
          EXPECT_DOUBLE_EQ(stats.PcFraction(t, u),
                           static_cast<double>(brute.pc_exists[{t, u}]) /
                               static_cast<double>(brute.tags[t]))
              << t << "/" << u;
          EXPECT_DOUBLE_EQ(stats.AdFraction(t, u),
                           static_cast<double>(brute.ad_exists[{t, u}]) /
                               static_cast<double>(brute.tags[t]))
              << t << "//" << u;
        }
      }
    }
  }
}

TEST(DocumentStatsTest, SimpleHandComputedCase) {
  //   a           a
  //   ├─ b        └─ b
  //   │  └─ c
  //   └─ c
  auto corpus =
      testing_util::CorpusFromXml({"<a><b><c/></b><c/></a>", "<a><b/></a>"});
  DocumentStats stats(corpus.get());
  const TagDict& dict = std::as_const(*corpus).tags();
  const TagId a = dict.Lookup("a");
  const TagId b = dict.Lookup("b");
  const TagId c = dict.Lookup("c");
  EXPECT_EQ(stats.TagCount(a), 2u);
  EXPECT_EQ(stats.TagCount(b), 2u);
  EXPECT_EQ(stats.TagCount(c), 2u);
  EXPECT_EQ(stats.PcCount(a, b), 2u);
  EXPECT_EQ(stats.PcCount(a, c), 1u);
  EXPECT_EQ(stats.PcCount(b, c), 1u);
  EXPECT_EQ(stats.AdCount(a, c), 2u);
  EXPECT_EQ(stats.AdCount(b, c), 1u);
  // Both a's have a b child; only the first a has a c descendant.
  EXPECT_DOUBLE_EQ(stats.PcFraction(a, b), 1.0);
  EXPECT_DOUBLE_EQ(stats.AdFraction(a, c), 0.5);
  EXPECT_DOUBLE_EQ(stats.PcFraction(c, a), 0.0);
}

TEST(DocumentStatsTest, UnknownTagsCountZero) {
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  DocumentStats stats(corpus.get());
  EXPECT_EQ(stats.TagCount(999), 0u);
  EXPECT_EQ(stats.PcCount(999, 0), 0u);
  EXPECT_DOUBLE_EQ(stats.PcFraction(999, 0), 0.0);
}

TEST(DocumentStatsTest, ScalesToXMark) {
  Corpus corpus;
  XMarkOptions opts;
  opts.target_bytes = 200000;
  opts.seed = 77;
  Result<Document> doc = GenerateXMark(opts, corpus.tags());
  ASSERT_TRUE(doc.ok());
  corpus.Add(std::move(doc).value());
  DocumentStats stats(&corpus);
  const TagDict& dict = std::as_const(corpus).tags();
  const TagId item = dict.Lookup("item");
  const TagId name = dict.Lookup("name");
  // Every item has exactly one name child (and categories/persons also
  // have names, so PcCount(item, name) == #items exactly).
  EXPECT_EQ(stats.PcCount(item, name), stats.TagCount(item));
  EXPECT_DOUBLE_EQ(stats.PcFraction(item, name), 1.0);
  // incategory is optional.
  const TagId incat = dict.Lookup("incategory");
  EXPECT_GT(stats.PcFraction(item, incat), 0.0);
  EXPECT_LT(stats.PcFraction(item, incat), 1.0);
}

}  // namespace
}  // namespace flexpath
