#include "common/metrics.h"

#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace flexpath {
namespace {

TEST(CounterTest, IncValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Max(5);  // Below current: no change.
  EXPECT_EQ(g.Value(), 7);
  g.Max(100);
  EXPECT_EQ(g.Value(), 100);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketingRoutesToInclusiveUpperEdge) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1).
  h.Observe(1.0);    // bucket 0: edges are inclusive.
  h.Observe(2.0);    // bucket 1.
  h.Observe(100.0);  // bucket 2.
  h.Observe(500.0);  // overflow bucket.

  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);  // 3 edges + overflow.
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
}

TEST(HistogramTest, SnapshotAggregates) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(7.5);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h({1.0});
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}

// Edge cases that feed the windowed-rate math (MetricsHistory derives
// deltas and rates from these snapshots): an empty histogram must yield
// clean zeros at every quantile — never NaN or a division artifact.
TEST(HistogramTest, EmptyQuantilesAreZeroAcrossTheRange) {
  Histogram h({1.0, 10.0});
  HistogramSnapshot s = h.Snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double v = s.Quantile(q);
    EXPECT_DOUBLE_EQ(v, 0.0) << "q=" << q;
    EXPECT_FALSE(std::isnan(v)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_FALSE(std::isnan(s.Mean()));
}

// A single sample must produce finite, monotone quantiles bracketed by
// its bucket — the smallest population the rate math ever sees.
TEST(HistogramTest, SingleSampleQuantilesStayInItsBucket) {
  Histogram h({10.0, 20.0, 30.0});
  h.Observe(15.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  double prev = -1.0;
  for (double q : {0.0, 0.5, 0.9, 1.0}) {
    const double v = s.Quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_GE(v, 10.0) << "q=" << q;  // Bucket (10, 20] lower edge.
    EXPECT_LE(v, 20.0) << "q=" << q;  // Bucket upper edge.
    EXPECT_GE(v, prev) << "q=" << q;  // Monotone in q.
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 15.0);
}

// A single overflow-bucket sample interpolates between the top finite
// edge and the observed max — it must never run off to infinity.
TEST(HistogramTest, SingleOverflowSampleClampsToObservedMax) {
  Histogram h({1.0, 10.0});
  h.Observe(500.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 500.0);
  for (double q : {0.0, 0.5, 0.99}) {
    const double v = s.Quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_GE(v, 10.0) << "q=" << q;
    EXPECT_LE(v, 500.0) << "q=" << q;
  }
}

// A sample below the first edge interpolates from the observed min, not
// from zero or negative territory.
TEST(HistogramTest, SingleSampleBelowFirstEdgeUsesObservedMin) {
  Histogram h({1.0});
  h.Observe(0.5);
  HistogramSnapshot s = h.Snapshot();
  for (double q : {0.0, 0.5, 1.0}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, 0.5) << "q=" << q;
    EXPECT_LE(v, 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileInterpolatesAndIsMonotonic) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations spread evenly through bucket 1 (10, 20].
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  HistogramSnapshot s = h.Snapshot();
  // All mass in one bucket: every quantile lands inside its edges.
  const double p50 = s.Quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_LE(s.Quantile(0.25), s.Quantile(0.75));
  EXPECT_LE(s.Quantile(0.0), s.Quantile(1.0));
}

TEST(HistogramTest, OverflowQuantileStaysWithinObservedRange) {
  Histogram h({1.0, 2.0});
  h.Observe(1000.0);
  const double p99 = h.Snapshot().Quantile(0.99);
  EXPECT_GE(p99, 2.0);      // At least the top finite edge...
  EXPECT_LE(p99, 1000.0);   // ...but never past what was observed.
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 2.0, 3.0});
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileAllMassInOneBucketStaysInsideItsEdges) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.Observe(25.0);
  HistogramSnapshot s = h.Snapshot();
  // Every quantile must land inside bucket (20, 30] — and never below
  // the observed min or above the observed max.
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, 20.0) << "q=" << q;
    EXPECT_LE(v, 30.0) << "q=" << q;
  }
}

TEST(HistogramTest, OverflowBucketInterpolatesTowardObservedMax) {
  Histogram h({1.0, 2.0});
  // Two overflow observations: the overflow bucket spans
  // [top finite edge=2, observed max=100].
  h.Observe(50.0);
  h.Observe(100.0);
  HistogramSnapshot s = h.Snapshot();
  const double p25 = s.Quantile(0.25);
  const double p100 = s.Quantile(1.0);
  EXPECT_GE(p25, 2.0);
  EXPECT_LE(p25, 100.0);
  EXPECT_LE(p25, p100);
  EXPECT_DOUBLE_EQ(p100, 100.0);  // q=1 interpolates to the far edge: max.
}

TEST(HistogramTest, QuantileClampsOutOfRangeArguments) {
  Histogram h({1.0});
  h.Observe(0.5);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(-1.0), s.Quantile(0.0));
  EXPECT_DOUBLE_EQ(s.Quantile(2.0), s.Quantile(1.0));
}

TEST(MetricsThreadingTest, ConcurrentCounterIncsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncs);
}

TEST(MetricsThreadingTest, ConcurrentHistogramObservesAllLand) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Each thread hits a different bucket so per-bucket counts are
      // checkable too.
      const double v = t % 2 == 0 ? 0.5 : 50.0;
      for (int i = 0; i < kObs; ++i) h.Observe(v);
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kObs);
  EXPECT_EQ(s.counts[0], static_cast<uint64_t>(kThreads) / 2 * kObs);
  EXPECT_EQ(s.counts[2], static_cast<uint64_t>(kThreads) / 2 * kObs);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Reset();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.counts[0], 0u);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBoundsMs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.counter("test.counter");
  Counter* b = reg.counter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("test.other"), a);
  EXPECT_EQ(reg.gauge("test.gauge"), reg.gauge("test.gauge"));
  EXPECT_EQ(reg.histogram("test.hist"), reg.histogram("test.hist"));
}

TEST(MetricsRegistryTest, SnapshotAndResetAll) {
  MetricsRegistry reg;
  reg.counter("c")->Inc(3);
  reg.gauge("g")->Set(-7);
  reg.histogram("h", {1.0})->Observe(0.5);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  reg.ResetAll();
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);  // Still registered, now zero.
  EXPECT_EQ(snap.gauges.at("g"), 0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsJsonTest, RendersAllSections) {
  MetricsRegistry reg;
  reg.counter("queries")->Inc(2);
  reg.gauge("depth")->Set(5);
  reg.histogram("lat", {1.0, 10.0})->Observe(3.0);

  const std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bounds\""), std::string::npos) << json;
}

TEST(MetricsJsonTest, EscapesMetricNames) {
  // Metric names are normally library-chosen identifiers, but the
  // renderer must not produce invalid JSON if one ever carries a quote
  // or backslash (e.g. a name derived from user query text).
  MetricsRegistry reg;
  reg.counter("evil\"name")->Inc();
  reg.gauge("back\\slash")->Set(1);
  reg.histogram("tab\there", {1.0})->Observe(0.5);

  const std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"evil\\\"name\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"back\\\\slash\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tab\\there\""), std::string::npos) << json;
  // The raw unescaped forms must be gone.
  EXPECT_EQ(json.find("evil\"name"), std::string::npos) << json;
  EXPECT_EQ(json.find("back\\slash\""), std::string::npos) << json;
}

TEST(MetricsPrometheusTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.counter("query.count")->Inc(7);
  reg.gauge("exec.buckets_peak")->Set(3);

  const std::string prom = MetricsToPrometheus(reg.Snapshot());
  EXPECT_NE(prom.find("# HELP flexpath_query_count_total"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE flexpath_query_count_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("flexpath_query_count_total 7\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE flexpath_exec_buckets_peak gauge"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("flexpath_exec_buckets_peak 3\n"), std::string::npos)
      << prom;
}

TEST(MetricsPrometheusTest, HistogramSeriesAreCumulativeWithInfBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("query.latency_ms.dpo", {1.0, 10.0});
  h->Observe(0.5);   // bucket le=1.
  h->Observe(5.0);   // bucket le=10.
  h->Observe(99.0);  // overflow.

  const std::string prom = MetricsToPrometheus(reg.Snapshot());
  const std::string name = "flexpath_query_latency_ms_dpo";
  EXPECT_NE(prom.find("# TYPE " + name + " histogram"), std::string::npos)
      << prom;
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(prom.find(name + "_bucket{le=\"1\"} 1\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find(name + "_bucket{le=\"10\"} 2\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find(name + "_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find(name + "_sum 104.5\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find(name + "_count 3\n"), std::string::npos) << prom;
}

TEST(MetricsPrometheusTest, FormatRoundTrips) {
  // Structural round-trip of the exposition format: every non-comment
  // line is "name[{le="x"}] value", every sample name appears after a
  // HELP and a TYPE line for its family, and histogram bucket counts
  // are non-decreasing.
  MetricsRegistry reg;
  reg.counter("a.count")->Inc(2);
  reg.gauge("b.depth")->Set(-4);
  Histogram* h = reg.histogram("c.lat_ms", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);

  const std::string prom = MetricsToPrometheus(reg.Snapshot());
  size_t pos = 0;
  int samples = 0;
  uint64_t last_bucket = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated line";
    const std::string line = prom.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    // Sample line: split on the last space.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    // Name must be sanitized: letters, digits, _, and an optional
    // {le="..."} suffix.
    const size_t brace = name.find('{');
    const std::string bare = name.substr(0, brace);
    for (char c : bare) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_')
          << line;
    }
    // The family (bare name minus histogram/counter suffixes) must have
    // HELP and TYPE lines.
    std::string family = bare;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::string(suffix).size();
      if (family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0 &&
          prom.find("# TYPE " + family.substr(0, family.size() - n) +
                    " histogram") != std::string::npos) {
        family = family.substr(0, family.size() - n);
        break;
      }
    }
    EXPECT_NE(prom.find("# HELP " + family + " "), std::string::npos)
        << "no HELP for " << line;
    EXPECT_NE(prom.find("# TYPE " + family + " "), std::string::npos)
        << "no TYPE for " << line;
    if (brace != std::string::npos) {
      const uint64_t count = std::stoull(value);
      EXPECT_GE(count, last_bucket) << "buckets must be cumulative: "
                                    << line;
      last_bucket = name.find("+Inf") != std::string::npos ? 0 : count;
    }
    ++samples;
  }
  EXPECT_EQ(samples, 1 + 1 + (3 + 2));  // counter + gauge + histogram.
}

TEST(MetricsPrometheusTest, BucketSeriesRoundTripAgainstSnapshot) {
  // Parse every _bucket{le=...} series back out of the exposition text
  // and check it against the snapshot it was rendered from: one sample
  // per edge plus +Inf, values non-decreasing in le-order, and the +Inf
  // sample exactly equal to _count. Empty buckets in the middle and an
  // all-overflow histogram are the cases where a non-cumulative or
  // off-by-one exporter would diverge.
  MetricsRegistry reg;
  Histogram* sparse = reg.histogram("q.sparse_ms", {1.0, 5.0, 25.0, 125.0});
  sparse->Observe(0.5);    // le=1.
  sparse->Observe(100.0);  // le=125: buckets 5 and 25 stay empty.
  sparse->Observe(9000.0); // overflow only.
  Histogram* overflow = reg.histogram("q.over_ms", {1.0});
  overflow->Observe(50.0);
  overflow->Observe(60.0);

  const MetricsSnapshot snap = reg.Snapshot();
  const std::string prom = MetricsToPrometheus(snap);

  for (const auto& [name, h] : snap.histograms) {
    std::string prom_name = "flexpath_";
    for (char c : name) prom_name += c == '.' ? '_' : c;

    std::vector<std::pair<std::string, uint64_t>> buckets;
    size_t pos = 0;
    const std::string needle = prom_name + "_bucket{le=\"";
    while ((pos = prom.find(needle, pos)) != std::string::npos) {
      const size_t le_start = pos + needle.size();
      const size_t le_end = prom.find('"', le_start);
      ASSERT_NE(le_end, std::string::npos);
      const size_t val_start = prom.find(' ', le_end) + 1;
      const size_t val_end = prom.find('\n', val_start);
      buckets.emplace_back(
          prom.substr(le_start, le_end - le_start),
          std::stoull(prom.substr(val_start, val_end - val_start)));
      pos = val_end;
    }

    // One sample per configured edge plus the +Inf closer, in le-order.
    ASSERT_EQ(buckets.size(), h.bounds.size() + 1) << prom_name;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      EXPECT_NE(buckets[i].first, "+Inf") << prom_name;
    }
    EXPECT_EQ(buckets.back().first, "+Inf") << prom_name;
    uint64_t expected_cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      expected_cumulative += h.counts[i];
      EXPECT_EQ(buckets[i].second, expected_cumulative)
          << prom_name << " le=" << buckets[i].first;
      if (i > 0) {
        EXPECT_GE(buckets[i].second, buckets[i - 1].second)
            << prom_name << " buckets must be monotone";
      }
    }
    // The closing bucket is the total: +Inf == _count, always.
    EXPECT_EQ(buckets.back().second, h.count) << prom_name;
    EXPECT_NE(prom.find(prom_name + "_count " + std::to_string(h.count)),
              std::string::npos)
        << prom;
  }
}

}  // namespace
}  // namespace flexpath
