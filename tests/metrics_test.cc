#include "common/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace flexpath {
namespace {

TEST(CounterTest, IncValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Max(5);  // Below current: no change.
  EXPECT_EQ(g.Value(), 7);
  g.Max(100);
  EXPECT_EQ(g.Value(), 100);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketingRoutesToInclusiveUpperEdge) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1).
  h.Observe(1.0);    // bucket 0: edges are inclusive.
  h.Observe(2.0);    // bucket 1.
  h.Observe(100.0);  // bucket 2.
  h.Observe(500.0);  // overflow bucket.

  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);  // 3 edges + overflow.
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
}

TEST(HistogramTest, SnapshotAggregates) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(7.5);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h({1.0});
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesAndIsMonotonic) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations spread evenly through bucket 1 (10, 20].
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  HistogramSnapshot s = h.Snapshot();
  // All mass in one bucket: every quantile lands inside its edges.
  const double p50 = s.Quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_LE(s.Quantile(0.25), s.Quantile(0.75));
  EXPECT_LE(s.Quantile(0.0), s.Quantile(1.0));
}

TEST(HistogramTest, OverflowQuantileStaysWithinObservedRange) {
  Histogram h({1.0, 2.0});
  h.Observe(1000.0);
  const double p99 = h.Snapshot().Quantile(0.99);
  EXPECT_GE(p99, 2.0);      // At least the top finite edge...
  EXPECT_LE(p99, 1000.0);   // ...but never past what was observed.
}

TEST(HistogramTest, ResetClears) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Reset();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.counts[0], 0u);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBoundsMs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.counter("test.counter");
  Counter* b = reg.counter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("test.other"), a);
  EXPECT_EQ(reg.gauge("test.gauge"), reg.gauge("test.gauge"));
  EXPECT_EQ(reg.histogram("test.hist"), reg.histogram("test.hist"));
}

TEST(MetricsRegistryTest, SnapshotAndResetAll) {
  MetricsRegistry reg;
  reg.counter("c")->Inc(3);
  reg.gauge("g")->Set(-7);
  reg.histogram("h", {1.0})->Observe(0.5);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  reg.ResetAll();
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);  // Still registered, now zero.
  EXPECT_EQ(snap.gauges.at("g"), 0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsJsonTest, RendersAllSections) {
  MetricsRegistry reg;
  reg.counter("queries")->Inc(2);
  reg.gauge("depth")->Set(5);
  reg.histogram("lat", {1.0, 10.0})->Observe(3.0);

  const std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bounds\""), std::string::npos) << json;
}

}  // namespace
}  // namespace flexpath
