#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "ir/engine.h"
#include "query/xpath_parser.h"
#include "rank/score.h"
#include "relax/penalty.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "tests/test_util.h"

namespace flexpath {
namespace {

TEST(RankSchemeTest, Names) {
  EXPECT_STREQ(RankSchemeName(RankScheme::kStructureFirst),
               "structure-first");
  EXPECT_STREQ(RankSchemeName(RankScheme::kKeywordFirst), "keyword-first");
  EXPECT_STREQ(RankSchemeName(RankScheme::kCombined), "combined");
}

TEST(RankSchemeTest, StructureFirstLexicographic) {
  AnswerScore high_ss{3.0, 0.1};
  AnswerScore low_ss_high_ks{2.0, 0.9};
  EXPECT_TRUE(RanksBefore(high_ss, low_ss_high_ks,
                          RankScheme::kStructureFirst));
  EXPECT_FALSE(RanksBefore(low_ss_high_ks, high_ss,
                           RankScheme::kStructureFirst));
  // Equal ss: ks breaks the tie.
  AnswerScore a{3.0, 0.5};
  AnswerScore b{3.0, 0.2};
  EXPECT_TRUE(RanksBefore(a, b, RankScheme::kStructureFirst));
}

TEST(RankSchemeTest, KeywordFirstLexicographic) {
  AnswerScore high_ks{1.0, 0.9};
  AnswerScore high_ss{3.0, 0.1};
  EXPECT_TRUE(RanksBefore(high_ks, high_ss, RankScheme::kKeywordFirst));
  EXPECT_FALSE(RanksBefore(high_ss, high_ks, RankScheme::kKeywordFirst));
}

TEST(RankSchemeTest, CombinedSums) {
  AnswerScore a{2.0, 0.9};  // 2.9
  AnswerScore b{2.5, 0.2};  // 2.7
  EXPECT_TRUE(RanksBefore(a, b, RankScheme::kCombined));
  EXPECT_FALSE(RanksBefore(b, a, RankScheme::kCombined));
}

TEST(RankSchemeTest, TiesCompareFalseBothWays) {
  AnswerScore a{2.0, 0.5};
  AnswerScore b{2.0, 0.5};
  for (RankScheme s : {RankScheme::kStructureFirst,
                       RankScheme::kKeywordFirst, RankScheme::kCombined}) {
    EXPECT_FALSE(RanksBefore(a, b, s));
    EXPECT_FALSE(RanksBefore(b, a, s));
  }
}

TEST(BaseScoreTest, CountsStructuralEdges) {
  TagDict dict;
  Result<Tpq> q1 = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      &dict);
  ASSERT_TRUE(q1.ok());
  // Q1 has three pc edges; uniform unit weights give ss = 3 (Example 1).
  EXPECT_DOUBLE_EQ(BaseStructuralScore(*q1, Weights{}), 3.0);

  Weights w;
  w.structural = 2.0;
  EXPECT_DOUBLE_EQ(BaseStructuralScore(*q1, w), 6.0);
}

TEST(BaseScoreTest, SingleNodeQueryScoresZero) {
  TagDict dict;
  Result<Tpq> q6 =
      ParseXPath("//article[.contains(\"XML\" and \"streaming\")]", &dict);
  ASSERT_TRUE(q6.ok());
  EXPECT_DOUBLE_EQ(BaseStructuralScore(*q6, Weights{}), 0.0);
}

// Order invariance (Theorem 3): the score of an answer to a relaxation
// depends only on which predicates were dropped, not on the order in
// which the drops happened. We verify that the cumulative drop set's
// penalty is the same along any operator order that reaches the same
// relaxed query.
TEST(OrderInvarianceTest, SameDropSetSamePenalty) {
  auto corpus = testing_util::ArticleCorpus();
  DocumentStats stats(corpus.get());
  IrEngine ir(corpus.get());
  TagDict* dict = corpus->tags();
  Result<Tpq> q1r = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      dict);
  ASSERT_TRUE(q1r.ok());
  Tpq q1 = *std::move(q1r);
  PenaltyModel pm(q1, &stats, &ir, Weights{});

  const LogicalQuery closure = Closure(ToLogical(q1));
  const VarId v3 = q1.Vars()[2];
  const VarId v4 = q1.Vars()[3];
  const RelaxOp sigma{RelaxOpKind::kSubtreePromotion, v3, ""};
  const RelaxOp kappa{RelaxOpKind::kContainsPromotion, v4,
                      "(\"xml\" and \"stream\")"};

  // Path A: sigma then kappa. Path B: kappa then sigma.
  Result<Tpq> a1 = ApplyOp(q1, sigma);
  ASSERT_TRUE(a1.ok());
  Result<Tpq> a2 = ApplyOp(*a1, kappa);
  ASSERT_TRUE(a2.ok());
  Result<Tpq> b1 = ApplyOp(q1, kappa);
  ASSERT_TRUE(b1.ok());
  Result<Tpq> b2 = ApplyOp(*b1, sigma);
  ASSERT_TRUE(b2.ok());

  EXPECT_EQ(a2->CanonicalString(), b2->CanonicalString());

  // The drop sets relative to the original closure must agree, hence so
  // do the penalties (and therefore the scores of any answer).
  auto drop_set = [&](const Tpq& relaxed) {
    std::set<Predicate> dropped;
    const LogicalQuery rc = Closure(ToLogical(relaxed));
    for (const Predicate& p : closure.preds) {
      if (rc.preds.count(p) == 0) dropped.insert(p);
    }
    return dropped;
  };
  const std::set<Predicate> da = drop_set(*a2);
  const std::set<Predicate> db = drop_set(*b2);
  EXPECT_EQ(da, db);
  EXPECT_DOUBLE_EQ(pm.Sum(da), pm.Sum(db));
}

TEST(OrderInvarianceTest, RandomOperatorOrders) {
  auto corpus = testing_util::ArticleCorpus();
  DocumentStats stats(corpus.get());
  IrEngine ir(corpus.get());
  Result<Tpq> qr = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]] and ./title]",
      corpus->tags());
  ASSERT_TRUE(qr.ok());
  Tpq q = *std::move(qr);
  PenaltyModel pm(q, &stats, &ir, Weights{});
  const LogicalQuery closure = Closure(ToLogical(q));

  // Apply a fixed multiset of independent operators in random orders; the
  // final query and its penalty must not depend on the order.
  const VarId title = q.Vars()[4];
  const VarId section = q.Vars()[1];
  const VarId paragraph = q.Vars()[3];
  std::vector<RelaxOp> ops = {
      RelaxOp{RelaxOpKind::kLeafDeletion, title, ""},
      RelaxOp{RelaxOpKind::kAxisGeneralization, section, ""},
      RelaxOp{RelaxOpKind::kContainsPromotion, paragraph,
              "(\"xml\" and \"stream\")"},
  };

  std::mt19937 gen(7);
  std::string canonical;
  double penalty = -1.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RelaxOp> order = ops;
    std::shuffle(order.begin(), order.end(), gen);
    Tpq cur = q;
    for (const RelaxOp& op : order) {
      Result<Tpq> next = ApplyOp(cur, op);
      ASSERT_TRUE(next.ok()) << op.ToString();
      cur = *std::move(next);
    }
    std::set<Predicate> dropped;
    const LogicalQuery rc = Closure(ToLogical(cur));
    for (const Predicate& p : closure.preds) {
      if (rc.preds.count(p) == 0) dropped.insert(p);
    }
    const double this_penalty = pm.Sum(dropped);
    if (trial == 0) {
      canonical = cur.CanonicalString();
      penalty = this_penalty;
    } else {
      EXPECT_EQ(cur.CanonicalString(), canonical) << "trial " << trial;
      EXPECT_DOUBLE_EQ(this_penalty, penalty) << "trial " << trial;
    }
  }
}

// Relevance scoring (property 1, Section 4.2): relaxing can only lower
// the structural score of the newly admitted answers.
TEST(RelevanceScoringTest, PenaltiesOnlyDecreaseScores) {
  auto corpus = testing_util::ArticleCorpus();
  DocumentStats stats(corpus.get());
  IrEngine ir(corpus.get());
  Result<Tpq> qr = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      corpus->tags());
  ASSERT_TRUE(qr.ok());
  PenaltyModel pm(*qr, &stats, &ir, Weights{});
  const double base = BaseStructuralScore(*qr, Weights{});
  double prev = base;
  for (const ScheduleEntry& entry : BuildSchedule(*qr, pm)) {
    const double ss = base - entry.cumulative_penalty;
    EXPECT_LE(ss, prev + 1e-12) << entry.op.ToString();
    prev = ss;
  }
}

}  // namespace
}  // namespace flexpath
