#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xml/binary_codec.h"
#include "xml/serializer.h"

namespace flexpath {
namespace {

void ExpectCorporaEqual(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(std::as_const(a).tags().size(), std::as_const(b).tags().size());
  for (TagId t = 0; t < std::as_const(a).tags().size(); ++t) {
    EXPECT_EQ(std::as_const(a).tags().Name(t),
              std::as_const(b).tags().Name(t));
  }
  for (DocId d = 0; d < a.size(); ++d) {
    const Document& da = a.doc(d);
    const Document& db = b.doc(d);
    ASSERT_EQ(da.size(), db.size()) << "doc " << d;
    for (NodeId n = 0; n < da.size(); ++n) {
      EXPECT_EQ(da.node(n).tag, db.node(n).tag);
      EXPECT_EQ(da.node(n).parent, db.node(n).parent);
      EXPECT_EQ(da.node(n).start, db.node(n).start);
      EXPECT_EQ(da.node(n).end, db.node(n).end);
      EXPECT_EQ(da.node(n).level, db.node(n).level);
      EXPECT_EQ(da.node(n).text, db.node(n).text);
      ASSERT_EQ(da.node(n).attrs.size(), db.node(n).attrs.size());
      for (size_t i = 0; i < da.node(n).attrs.size(); ++i) {
        EXPECT_EQ(da.node(n).attrs[i].name, db.node(n).attrs[i].name);
        EXPECT_EQ(da.node(n).attrs[i].value, db.node(n).attrs[i].value);
      }
    }
  }
}

TEST(BinaryCodecTest, RoundTripSmallCorpus) {
  auto corpus = testing_util::CorpusFromXml({
      "<a x=\"1\"><b>text</b><c/></a>",
      "<a><b y=\"2\" z=\"3\">more words</b></a>",
  });
  std::string data = EncodeCorpus(*corpus);
  Result<Corpus> back = DecodeCorpus(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectCorporaEqual(*corpus, *back);
}

TEST(BinaryCodecTest, RoundTripRandomDocuments) {
  Rng rng(99);
  Corpus corpus;
  for (int i = 0; i < 8; ++i) {
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 80));
  }
  Result<Corpus> back = DecodeCorpus(EncodeCorpus(corpus));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectCorporaEqual(corpus, *back);
}

TEST(BinaryCodecTest, RoundTripXMark) {
  Corpus corpus;
  XMarkOptions opts;
  opts.target_bytes = 100000;
  opts.seed = 4;
  Result<Document> doc = GenerateXMark(opts, corpus.tags());
  ASSERT_TRUE(doc.ok());
  corpus.Add(std::move(doc).value());
  std::string data = EncodeCorpus(corpus);
  // The snapshot should be smaller than the serialized XML.
  const std::string xml =
      SerializeXml(corpus.doc(0), std::as_const(corpus).tags());
  EXPECT_LT(data.size(), xml.size());
  Result<Corpus> back = DecodeCorpus(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectCorporaEqual(corpus, *back);
}

TEST(BinaryCodecTest, RejectsBadMagic) {
  EXPECT_FALSE(DecodeCorpus("").ok());
  EXPECT_FALSE(DecodeCorpus("nope").ok());
  EXPECT_FALSE(DecodeCorpus("FXP2xxxxxx").ok());
}

TEST(BinaryCodecTest, RejectsOldFormatVersionWithClearMessage) {
  // A v1 snapshot ("FXP1" magic, no version byte, no byte-order guard)
  // must be called out as an *old version*, not generic corruption —
  // the message tells the user to re-save rather than suspect their
  // file.
  const std::string old_snapshot = "FXP1junk-payload";
  Result<Corpus> r = DecodeCorpus(old_snapshot);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("unsupported snapshot version"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("re-save"), std::string::npos)
      << r.status().ToString();
}

TEST(BinaryCodecTest, RejectsFutureFormatVersion) {
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  std::string data = EncodeCorpus(*corpus);
  // The version varint sits right after the 4-byte magic; current
  // version (2) is a single byte. Patch it to 77.
  ASSERT_EQ(data[4], 2);
  data[4] = 77;
  Result<Corpus> r = DecodeCorpus(data);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("unsupported snapshot version 77"),
            std::string::npos)
      << r.status().ToString();
}

TEST(BinaryCodecTest, RejectsByteOrderGuardMismatch) {
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  std::string data = EncodeCorpus(*corpus);
  // Reverse the 4-byte guard (bytes 5..8: after magic + version) as a
  // byte-swapped writer would have produced it.
  std::swap(data[5], data[8]);
  std::swap(data[6], data[7]);
  Result<Corpus> r = DecodeCorpus(data);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("byte order"), std::string::npos)
      << r.status().ToString();
}

TEST(BinaryCodecTest, RejectsHeaderOnlyTruncation) {
  // Cuts inside the version varint and the byte-order guard — shorter
  // than any payload — must fail cleanly, not index out of bounds.
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  const std::string data = EncodeCorpus(*corpus);
  for (size_t cut = 0; cut < 9; ++cut) {
    EXPECT_FALSE(
        DecodeCorpus(std::string_view(data).substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(BinaryCodecTest, RejectsTruncation) {
  auto corpus = testing_util::CorpusFromXml({"<a><b>hello</b></a>"});
  std::string data = EncodeCorpus(*corpus);
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{5}}) {
    Result<Corpus> r = DecodeCorpus(std::string_view(data).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(BinaryCodecTest, RejectsTrailingGarbage) {
  auto corpus = testing_util::CorpusFromXml({"<a/>"});
  std::string data = EncodeCorpus(*corpus) + "junk";
  EXPECT_FALSE(DecodeCorpus(data).ok());
}

TEST(BinaryCodecTest, SurvivesRandomCorruption) {
  // Flipping bytes must never crash; it may still decode (text bytes),
  // but structural damage must be reported as an error.
  auto corpus = testing_util::CorpusFromXml({
      "<site><item id=\"i1\"><name>gold ring</name></item></site>",
  });
  std::string data = EncodeCorpus(*corpus);
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    std::string mutated = data;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    Result<Corpus> r = DecodeCorpus(mutated);  // must not crash
    if (r.ok()) {
      EXPECT_GT(r->TotalNodes(), 0u);
    }
  }
}

TEST(BinaryCodecTest, SaveAndLoadFile) {
  auto corpus = testing_util::CorpusFromXml({"<a><b>x</b></a>"});
  const std::string path = ::testing::TempDir() + "/flexpath_codec_test.bin";
  ASSERT_TRUE(SaveCorpus(*corpus, path).ok());
  Result<Corpus> back = LoadCorpus(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectCorporaEqual(*corpus, *back);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadCorpus(path + ".missing").ok());
}

}  // namespace
}  // namespace flexpath
