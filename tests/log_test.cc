#include "common/log.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace flexpath {
namespace {

/// Redirects Global() logger output into a string for one test's scope
/// and restores defaults afterwards.
class CapturedLogger {
 public:
  CapturedLogger() {
    Logger::Global().SetCaptureSink(
        [this](std::string_view line) { lines_.emplace_back(line); });
  }
  ~CapturedLogger() {
    Logger::Global().SetCaptureSink(nullptr);
    Logger::Global().SetJsonOutput(false);
    Logger::Global().SetLevel(LogLevel::kInfo);
    Logger::Global().ClearModuleLevels();
  }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogLevelTest, NamesAndParsing) {
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
}

TEST(LoggerTest, GlobalLevelFilters) {
  CapturedLogger cap;
  Logger::Global().SetLevel(LogLevel::kWarn);
  FLEXPATH_LOG_INFO("test", "dropped");
  FLEXPATH_LOG_WARN("test", "kept");
  FLEXPATH_LOG_ERROR("test", "also kept");
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_NE(cap.lines()[0].find("kept"), std::string::npos);
  EXPECT_NE(cap.lines()[1].find("also kept"), std::string::npos);
}

TEST(LoggerTest, DisabledCheckIsCheap) {
  // Not a perf test — just pins the contract that Enabled() is callable
  // without side effects and respects the level.
  Logger& logger = Logger::Global();
  logger.SetLevel(LogLevel::kError);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug, "any"));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError, "any"));
  logger.SetLevel(LogLevel::kInfo);
}

TEST(LoggerTest, ModuleOverrideMoreVerboseThanGlobal) {
  CapturedLogger cap;
  Logger::Global().SetLevel(LogLevel::kWarn);
  Logger::Global().SetModuleLevel("exec", LogLevel::kDebug);
  EXPECT_TRUE(Logger::Global().Enabled(LogLevel::kDebug, "exec"));
  EXPECT_FALSE(Logger::Global().Enabled(LogLevel::kDebug, "ir"));
  FLEXPATH_LOG_DEBUG("exec", "exec debug");
  FLEXPATH_LOG_DEBUG("ir", "ir debug");
  ASSERT_EQ(cap.lines().size(), 1u);
  EXPECT_NE(cap.lines()[0].find("exec debug"), std::string::npos);
}

TEST(LoggerTest, ModuleOverrideLessVerboseThanGlobal) {
  CapturedLogger cap;
  Logger::Global().SetLevel(LogLevel::kDebug);
  Logger::Global().SetModuleLevel("noisy", LogLevel::kError);
  FLEXPATH_LOG_INFO("noisy", "suppressed");
  FLEXPATH_LOG_INFO("other", "kept");
  ASSERT_EQ(cap.lines().size(), 1u);
  EXPECT_NE(cap.lines()[0].find("kept"), std::string::npos);
}

TEST(LoggerTest, TextLineCarriesFields) {
  CapturedLogger cap;
  FLEXPATH_LOG_INFO("exec", "query executed", {"algorithm", "DPO"},
                    {"latency_ms", 1.5}, {"answers", 10});
  ASSERT_EQ(cap.lines().size(), 1u);
  const std::string& line = cap.lines()[0];
  EXPECT_NE(line.find("info"), std::string::npos) << line;
  EXPECT_NE(line.find("[exec]"), std::string::npos) << line;
  EXPECT_NE(line.find("query executed"), std::string::npos) << line;
  EXPECT_NE(line.find("algorithm=DPO"), std::string::npos) << line;
  EXPECT_NE(line.find("latency_ms=1.5"), std::string::npos) << line;
  EXPECT_NE(line.find("answers=10"), std::string::npos) << line;
}

TEST(LoggerTest, TextLineQuotesValuesWithSpaces) {
  CapturedLogger cap;
  FLEXPATH_LOG_INFO("test", "msg", {"query", "//a[./b and ./c]"});
  ASSERT_EQ(cap.lines().size(), 1u);
  EXPECT_NE(cap.lines()[0].find("query=\"//a[./b and ./c]\""),
            std::string::npos)
      << cap.lines()[0];
}

TEST(LoggerTest, JsonLinesAreWellFormed) {
  CapturedLogger cap;
  Logger::Global().SetJsonOutput(true);
  FLEXPATH_LOG_WARN("exec", "slow \"query\"", {"query", "//a[.contains(\"x\")]"},
                    {"latency_ms", 12.5});
  ASSERT_EQ(cap.lines().size(), 1u);
  const std::string& line = cap.lines()[0];
  EXPECT_EQ(line.front(), '{') << line;
  EXPECT_EQ(line[line.size() - 2], '}') << line;  // Last char is \n.
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"module\":\"exec\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"slow \\\"query\\\"\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"query\":\"//a[.contains(\\\"x\\\")]\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"latency_ms\":12.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos) << line;
}

TEST(LoggerTest, ConcurrentLoggingKeepsLinesIntact) {
  CapturedLogger cap;
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        FLEXPATH_LOG_INFO("mt", "line", {"thread", t}, {"i", i});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cap.lines().size(), static_cast<size_t>(kThreads) * kLines);
  for (const std::string& line : cap.lines()) {
    EXPECT_NE(line.find("[mt] line"), std::string::npos) << line;
    EXPECT_EQ(line.back(), '\n');
  }
}

TEST(LoggerTest, CompileTimeFloorConstantExists) {
  // The compile-out gate must accept every runtime level.
  static_assert(FLEXPATH_MIN_LOG_LEVEL <=
                static_cast<int>(LogLevel::kError));
  SUCCEED();
}

}  // namespace
}  // namespace flexpath
