#include "obs/query_stats.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/flexpath.h"
#include "exec/topk.h"
#include "ir/ft_expr.h"
#include "query/tpq.h"
#include "xml/tag_dict.h"

namespace flexpath {
namespace {

// --- Fingerprinting ------------------------------------------------------

TEST(FingerprintTest, HexIsSixteenLowercaseDigits) {
  EXPECT_EQ(FingerprintHex(0), "0000000000000000");
  EXPECT_EQ(FingerprintHex(0xABCDEF0123456789ull), "abcdef0123456789");
}

TEST(FingerprintTest, ChildOrderDoesNotMatter) {
  TagDict dict;
  const TagId article = dict.Intern("article");
  const TagId section = dict.Intern("section");
  const TagId paragraph = dict.Intern("paragraph");

  Tpq a;
  VarId ra = a.AddRoot(article);
  a.AddChild(ra, Axis::kChild, section);
  a.AddChild(ra, Axis::kDescendant, paragraph);

  Tpq b;
  VarId rb = b.AddRoot(article);
  b.AddChild(rb, Axis::kDescendant, paragraph);
  b.AddChild(rb, Axis::kChild, section);

  EXPECT_EQ(QueryShapeKey(a, dict), QueryShapeKey(b, dict));
  EXPECT_EQ(FingerprintTpq(a, dict), FingerprintTpq(b, dict));
}

TEST(FingerprintTest, VariableNumberingDoesNotMatter) {
  TagDict dict;
  const TagId article = dict.Intern("article");
  const TagId section = dict.Intern("section");

  Tpq a;
  a.AddRootVar(1, article);
  a.AddChildVar(2, 1, Axis::kChild, section);
  a.SetDistinguished(2);

  Tpq b;
  b.AddRootVar(7, article);
  b.AddChildVar(3, 7, Axis::kChild, section);
  b.SetDistinguished(3);

  EXPECT_EQ(FingerprintTpq(a, dict), FingerprintTpq(b, dict));
}

TEST(FingerprintTest, AxisChangesTheFingerprint) {
  TagDict dict;
  const TagId article = dict.Intern("article");
  const TagId section = dict.Intern("section");

  Tpq pc;
  pc.AddChild(pc.AddRoot(article), Axis::kChild, section);
  Tpq ad;
  ad.AddChild(ad.AddRoot(article), Axis::kDescendant, section);

  EXPECT_NE(FingerprintTpq(pc, dict), FingerprintTpq(ad, dict));
}

TEST(FingerprintTest, ContainsTermChangesTheFingerprint) {
  TagDict dict;
  const TagId article = dict.Intern("article");

  Tpq a;
  VarId ra = a.AddRoot(article);
  a.AddContains(ra, FtExpr::Term("xml"));
  Tpq b;
  VarId rb = b.AddRoot(article);
  b.AddContains(rb, FtExpr::Term("sgml"));
  Tpq none;
  none.AddRoot(article);

  EXPECT_NE(FingerprintTpq(a, dict), FingerprintTpq(b, dict));
  EXPECT_NE(FingerprintTpq(a, dict), FingerprintTpq(none, dict));
}

TEST(FingerprintTest, ContainsOrderDoesNotMatter) {
  TagDict dict;
  const TagId article = dict.Intern("article");

  Tpq a;
  VarId ra = a.AddRoot(article);
  a.AddContains(ra, FtExpr::Term("xml"));
  a.AddContains(ra, FtExpr::Term("streaming"));
  Tpq b;
  VarId rb = b.AddRoot(article);
  b.AddContains(rb, FtExpr::Term("streaming"));
  b.AddContains(rb, FtExpr::Term("xml"));

  EXPECT_EQ(FingerprintTpq(a, dict), FingerprintTpq(b, dict));
}

TEST(FingerprintTest, DistinguishedNodeChangesTheFingerprint) {
  TagDict dict;
  const TagId article = dict.Intern("article");
  const TagId section = dict.Intern("section");

  Tpq root_answer;
  VarId r1 = root_answer.AddRoot(article);
  root_answer.AddChild(r1, Axis::kChild, section);
  root_answer.SetDistinguished(r1);

  Tpq child_answer;
  VarId r2 = child_answer.AddRoot(article);
  VarId c2 = child_answer.AddChild(r2, Axis::kChild, section);
  child_answer.SetDistinguished(c2);

  EXPECT_NE(FingerprintTpq(root_answer, dict),
            FingerprintTpq(child_answer, dict));
}

TEST(FingerprintTest, SurvivesTagIdReassignment) {
  // Same names interned in different orders get different TagIds; the
  // fingerprint must not notice because it renders names, not ids.
  TagDict d1;
  const TagId article1 = d1.Intern("article");
  const TagId section1 = d1.Intern("section");
  TagDict d2;
  const TagId section2 = d2.Intern("section");
  const TagId article2 = d2.Intern("article");
  ASSERT_NE(article1, article2);

  Tpq a;
  a.AddChild(a.AddRoot(article1), Axis::kChild, section1);
  Tpq b;
  b.AddChild(b.AddRoot(article2), Axis::kChild, section2);

  EXPECT_EQ(FingerprintTpq(a, d1), FingerprintTpq(b, d2));
}

// --- QueryStatsStore -----------------------------------------------------

QueryExecution MakeExec(uint64_t fingerprint, double latency_ms,
                        const std::string& query = "//a") {
  QueryExecution e;
  e.fingerprint = fingerprint;
  e.query = query;
  e.algorithm = "DPO";
  e.scheme = "structure_first";
  e.k = 10;
  e.latency_ms = latency_ms;
  e.relaxations = 1;
  e.predicates_dropped = 2;
  e.penalty = 0.25;
  e.answers = 5;
  return e;
}

TEST(QueryStatsStoreTest, AggregatesUnderOneFingerprint) {
  QueryStatsStore store;
  store.Record(MakeExec(42, 1.0));
  store.Record(MakeExec(42, 3.0));

  std::vector<ShapeStatsSnapshot> shapes = store.Shapes();
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].fingerprint, 42u);
  EXPECT_EQ(shapes[0].executions, 2u);
  EXPECT_EQ(shapes[0].errors, 0u);
  EXPECT_EQ(shapes[0].latency_ms.count, 2u);
  EXPECT_DOUBLE_EQ(shapes[0].latency_ms.sum, 4.0);
  EXPECT_DOUBLE_EQ(shapes[0].MeanRelaxations(), 1.0);
  EXPECT_DOUBLE_EQ(shapes[0].MeanPredicatesDropped(), 2.0);
  EXPECT_DOUBLE_EQ(shapes[0].MeanPenalty(), 0.25);
  EXPECT_DOUBLE_EQ(shapes[0].MeanAnswers(), 5.0);
  EXPECT_EQ(shapes[0].example_query, "//a");
}

TEST(QueryStatsStoreTest, ShapesSortedByExecutionCount) {
  QueryStatsStore store;
  store.Record(MakeExec(1, 1.0));
  store.Record(MakeExec(2, 1.0));
  store.Record(MakeExec(2, 1.0));

  std::vector<ShapeStatsSnapshot> shapes = store.Shapes();
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].fingerprint, 2u);
  EXPECT_EQ(shapes[1].fingerprint, 1u);
}

TEST(QueryStatsStoreTest, ErrorsAreCountedSeparately) {
  QueryStatsStore store;
  QueryExecution bad = MakeExec(7, 0.5);
  bad.error = true;
  store.Record(bad);
  store.Record(MakeExec(7, 0.5));

  std::vector<ShapeStatsSnapshot> shapes = store.Shapes();
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].executions, 2u);
  EXPECT_EQ(shapes[0].errors, 1u);
}

TEST(QueryStatsStoreTest, RecentRingEvictsOldestAndKeepsNewest) {
  QueryStatsOptions opts;
  opts.ring_capacity = 4;
  QueryStatsStore store(opts);
  for (int i = 0; i < 10; ++i) {
    store.Record(MakeExec(static_cast<uint64_t>(i), static_cast<double>(i)));
  }
  std::vector<QueryExecution> recent = store.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().fingerprint, 6u);  // Oldest surviving entry.
  EXPECT_EQ(recent.back().fingerprint, 9u);   // Newest kept.
}

TEST(QueryStatsStoreTest, ShapeMapEvictsLeastRecentlyTouched) {
  QueryStatsOptions opts;
  opts.max_shapes = 2;
  QueryStatsStore store(opts);
  store.Record(MakeExec(1, 1.0));
  store.Record(MakeExec(2, 1.0));
  store.Record(MakeExec(1, 1.0));  // Touch 1 so 2 is the LRU shape.
  store.Record(MakeExec(3, 1.0));  // Evicts 2.

  EXPECT_EQ(store.shape_count(), 2u);
  std::vector<ShapeStatsSnapshot> shapes = store.Shapes();
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].fingerprint, 1u);
  EXPECT_EQ(shapes[1].fingerprint, 3u);
}

TEST(QueryStatsStoreTest, SlowLogIsBoundedAndOldestFirst) {
  QueryStatsOptions opts;
  opts.slowlog_capacity = 2;
  QueryStatsStore store(opts);
  for (int i = 0; i < 5; ++i) {
    store.RecordSlow(MakeExec(static_cast<uint64_t>(i), 10.0), 5.0, nullptr);
  }
  std::vector<SlowQueryEntry> slow = store.SlowLog();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].execution.fingerprint, 3u);
  EXPECT_EQ(slow[1].execution.fingerprint, 4u);
  EXPECT_DOUBLE_EQ(slow[0].threshold_ms, 5.0);
  EXPECT_EQ(slow[0].trace, nullptr);
}

TEST(QueryStatsStoreTest, ResetClearsEverything) {
  QueryStatsStore store;
  store.Record(MakeExec(1, 1.0));
  store.RecordSlow(MakeExec(1, 1.0), 0.0, nullptr);
  store.Reset();
  EXPECT_EQ(store.shape_count(), 0u);
  EXPECT_TRUE(store.Shapes().empty());
  EXPECT_TRUE(store.Recent().empty());
  EXPECT_TRUE(store.SlowLog().empty());
}

TEST(QueryStatsStoreTest, ToJsonRendersShapesRecentAndSlowLog) {
  QueryStatsStore store;
  store.Record(MakeExec(0xABCDull, 1.5, "//article[./\"quoted\"]"));
  store.RecordSlow(MakeExec(0xABCDull, 1.5), 0.0, nullptr);
  const std::string json = store.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"shapes\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"recent\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"slow_log\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"fingerprint\":\"000000000000abcd\""),
            std::string::npos)
      << json;
  // The quote inside the query text must arrive escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
}

TEST(QueryStatsStoreTest, UsageAndBudgetAggregatePerShape) {
  QueryStatsStore store;
  QueryExecution a = MakeExec(9, 1.0);
  a.usage.cpu_ms = 2.0;
  a.usage.tuples_produced = 10;
  a.usage.bytes_touched = 1000;
  QueryExecution b = MakeExec(9, 1.0);
  b.usage.cpu_ms = 4.0;
  b.usage.tuples_produced = 30;
  b.usage.bytes_touched = 3000;
  b.budget_exhausted = true;
  store.Record(a);
  store.Record(b);

  std::vector<ShapeStatsSnapshot> shapes = store.Shapes();
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_DOUBLE_EQ(shapes[0].MeanCpuMs(), 3.0);
  EXPECT_DOUBLE_EQ(shapes[0].MeanTuplesProduced(), 20.0);
  EXPECT_DOUBLE_EQ(shapes[0].MeanBytesTouched(), 2000.0);
  EXPECT_EQ(shapes[0].budget_exhausted, 1u);

  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"cpu_ms_mean\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tuples_produced_mean\":"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"budget_exhausted\":1"), std::string::npos) << json;
  // The recent ring carries each execution's usage block verbatim.
  EXPECT_NE(json.find("\"usage\":{\"cpu_ms\":"), std::string::npos) << json;
}

TEST(QueryStatsStoreTest, SetOptionsTrimsExistingEntriesToNewCapacities) {
  QueryStatsStore store;  // Default capacities: plenty of room.
  for (int i = 0; i < 6; ++i) {
    store.Record(MakeExec(static_cast<uint64_t>(i), 1.0));
    store.RecordSlow(MakeExec(static_cast<uint64_t>(i), 10.0), 5.0,
                     nullptr);
  }
  ASSERT_EQ(store.shape_count(), 6u);

  QueryStatsOptions shrunk;
  shrunk.max_shapes = 2;
  shrunk.ring_capacity = 3;
  shrunk.slowlog_capacity = 1;
  store.SetOptions(shrunk);

  EXPECT_EQ(store.options().max_shapes, 2u);
  // Shrinking retroactively evicts: oldest-touched shapes, oldest ring
  // and slow-log entries go first, newest survive.
  EXPECT_EQ(store.shape_count(), 2u);
  std::vector<QueryExecution> recent = store.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent.front().fingerprint, 3u);
  EXPECT_EQ(recent.back().fingerprint, 5u);
  std::vector<SlowQueryEntry> slow = store.SlowLog();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].execution.fingerprint, 5u);
}

TEST(QueryStatsStoreTest, EvictionsAreCountedPerStructure) {
  QueryStatsOptions opts;
  opts.max_shapes = 2;
  opts.ring_capacity = 2;
  opts.slowlog_capacity = 2;
  QueryStatsStore store(opts);
  for (int i = 0; i < 5; ++i) {
    store.Record(MakeExec(static_cast<uint64_t>(i), 1.0));
    store.RecordSlow(MakeExec(static_cast<uint64_t>(i), 10.0), 5.0,
                     nullptr);
  }

  const QueryStatsEvictions ev = store.Evictions();
  EXPECT_EQ(ev.shapes, 3u);   // 5 distinct shapes into 2 slots.
  EXPECT_EQ(ev.ring, 3u);     // 5 executions into a ring of 2.
  EXPECT_EQ(ev.slowlog, 3u);  // Same for the slow log.

  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"evictions\":{\"shapes\":3,\"ring\":3,"
                      "\"slowlog\":3}"),
            std::string::npos)
      << json;

  store.Reset();
  const QueryStatsEvictions cleared = store.Evictions();
  EXPECT_EQ(cleared.shapes, 0u);
  EXPECT_EQ(cleared.ring, 0u);
  EXPECT_EQ(cleared.slowlog, 0u);
}

// --- End-to-end through the FlexPath facade ------------------------------

class QueryStatsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fp_.AddDocumentXml("<article><section><paragraph>xml "
                                   "streaming evaluation</paragraph>"
                                   "</section></article>")
                    .ok());
    ASSERT_TRUE(fp_.AddDocumentXml("<article><section><paragraph>query "
                                   "relaxation</paragraph></section>"
                                   "<abstract>xml</abstract></article>")
                    .ok());
    ASSERT_TRUE(fp_.Build().ok());
  }

  FlexPath fp_;
};

TEST_F(QueryStatsIntegrationTest,
       SameShapeTwiceAggregatesUnderOneFingerprintAndFiresSlowLog) {
  Result<Tpq> q = fp_.Parse("//article[./section/paragraph]");
  ASSERT_TRUE(q.ok());

  TopKOptions opts;
  opts.k = 5;
  opts.slow_query_ms = 0.0;  // Every query is "slow": forces log entries.
  Result<TopKResult> r1 = fp_.QueryTpq(*q, opts, Algorithm::kDpo);
  ASSERT_TRUE(r1.ok());
  Result<TopKResult> r2 = fp_.QueryTpq(*q, opts, Algorithm::kDpo);
  ASSERT_TRUE(r2.ok());

  std::vector<ShapeStatsSnapshot> shapes = fp_.query_stats()->Shapes();
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].executions, 2u);
  EXPECT_EQ(shapes[0].errors, 0u);
  EXPECT_EQ(shapes[0].latency_ms.count, 2u);
  EXPECT_FALSE(shapes[0].example_query.empty());

  std::vector<SlowQueryEntry> slow = fp_.query_stats()->SlowLog();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].execution.fingerprint, shapes[0].fingerprint);
  // slow_query_ms >= 0 forces trace collection, so the entry carries one.
  ASSERT_NE(slow[0].trace, nullptr);
  EXPECT_FALSE(slow[0].trace->root.name.empty());

  const std::string json = fp_.QueryStatsJson();
  EXPECT_NE(json.find(FingerprintHex(shapes[0].fingerprint)),
            std::string::npos)
      << json;
}

TEST_F(QueryStatsIntegrationTest, DifferentShapesGetDifferentFingerprints) {
  Result<Tpq> q1 = fp_.Parse("//article[./section/paragraph]");
  Result<Tpq> q2 = fp_.Parse("//article[.//paragraph]");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  TopKOptions opts;
  opts.k = 5;
  ASSERT_TRUE(fp_.QueryTpq(*q1, opts, Algorithm::kDpo).ok());
  ASSERT_TRUE(fp_.QueryTpq(*q2, opts, Algorithm::kDpo).ok());

  EXPECT_EQ(fp_.query_stats()->shape_count(), 2u);
  // No slow_query_ms set: the slow log stays empty.
  EXPECT_TRUE(fp_.query_stats()->SlowLog().empty());
}

TEST(QueryStatsStoreTest, RecentLimitKeepsNewestOldestFirst) {
  QueryStatsStore store;
  for (int i = 0; i < 10; ++i) {
    QueryExecution e;
    e.query = "//q" + std::to_string(i);
    store.Record(e);
  }
  std::vector<QueryExecution> recent = store.Recent(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].query, "//q7");  // Newest 3, oldest first.
  EXPECT_EQ(recent[2].query, "//q9");
  EXPECT_EQ(store.Recent(0).size(), 0u);
  EXPECT_EQ(store.Recent(100).size(), 10u);  // Limit past size: all.

  // ToJson(recent_limit) caps both bounded arrays the same way.
  const std::string json = store.ToJson(2);
  EXPECT_EQ(json.find("//q7"), std::string::npos);
  EXPECT_NE(json.find("//q8"), std::string::npos);
  EXPECT_NE(json.find("//q9"), std::string::npos);
}

// Run under TSan by the sanitizer CI job: one thread records, one thread
// resizes the store via SetOptions (shrink + grow, trimming as it goes),
// and one thread scrapes like the admin endpoint does. The invariant
// checked after the dust settles: every execution ever recorded is either
// still in the ring or counted in evictions.ring — trims and
// displacements must never double- or under-count.
TEST(QueryStatsStoreTest, EvictionCountsStayConsistentUnderConcurrency) {
  QueryStatsOptions opts;
  opts.ring_capacity = 32;
  opts.max_shapes = 8;
  QueryStatsStore store(opts);

  constexpr int kRecords = 2000;
  std::atomic<bool> stop{false};
  std::thread recorder([&store] {
    QueryExecution e;
    e.algorithm = "DPO";
    for (int i = 0; i < kRecords; ++i) {
      e.fingerprint = static_cast<uint64_t>(i % 11);
      e.query = "//r" + std::to_string(i % 11);
      e.latency_ms = static_cast<double>(i % 5);
      store.Record(e);
    }
  });
  std::thread resizer([&store, &stop] {
    QueryStatsOptions small;
    small.ring_capacity = 4;
    small.max_shapes = 2;
    small.slowlog_capacity = 2;
    QueryStatsOptions big;
    big.ring_capacity = 64;
    big.max_shapes = 32;
    while (!stop.load(std::memory_order_relaxed)) {
      store.SetOptions(small);
      store.SetOptions(big);
    }
  });
  std::thread scraper([&store, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.ToJson(4);
      (void)store.Recent(8);
      (void)store.Evictions();
    }
  });
  recorder.join();
  stop.store(true, std::memory_order_relaxed);
  resizer.join();
  scraper.join();

  const QueryStatsEvictions evictions = store.Evictions();
  const size_t in_ring = store.Recent().size();
  EXPECT_EQ(static_cast<uint64_t>(kRecords),
            evictions.ring + static_cast<uint64_t>(in_ring));
  uint64_t executions = 0;
  for (const ShapeStatsSnapshot& s : store.Shapes()) {
    executions += s.executions;
  }
  EXPECT_LE(store.shape_count(), store.options().max_shapes);
  EXPECT_LE(executions, static_cast<uint64_t>(kRecords));
}

TEST_F(QueryStatsIntegrationTest, RecentRingSeesEveryExecution) {
  Result<Tpq> q = fp_.Parse("//article");
  ASSERT_TRUE(q.ok());
  TopKOptions opts;
  opts.k = 3;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fp_.QueryTpq(*q, opts, Algorithm::kHybrid).ok());
  }
  std::vector<QueryExecution> recent = fp_.query_stats()->Recent();
  ASSERT_EQ(recent.size(), 3u);
  for (const QueryExecution& e : recent) {
    EXPECT_EQ(e.algorithm, "Hybrid");
    EXPECT_EQ(e.k, 3u);
    EXPECT_GE(e.latency_ms, 0.0);
    EXPECT_FALSE(e.error);
  }
}

}  // namespace
}  // namespace flexpath
