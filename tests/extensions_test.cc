#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "exec/naive_evaluator.h"
#include "exec/plan.h"
#include "ir/engine.h"
#include "ir/thesaurus.h"
#include "query/xpath_parser.h"
#include "relax/extensions.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xml/type_hierarchy.h"

namespace flexpath {
namespace {

// --- TypeHierarchy ----------------------------------------------------------

TEST(TypeHierarchyTest, BasicRelations) {
  TagDict dict;
  const TagId pub = dict.Intern("publication");
  const TagId article = dict.Intern("article");
  const TagId book = dict.Intern("book");
  const TagId novel = dict.Intern("novel");
  TypeHierarchy h;
  ASSERT_TRUE(h.AddSubtype(pub, article).ok());
  ASSERT_TRUE(h.AddSubtype(pub, book).ok());
  ASSERT_TRUE(h.AddSubtype(book, novel).ok());

  EXPECT_EQ(h.SupertypeOf(article), pub);
  EXPECT_EQ(h.SupertypeOf(pub), kInvalidTag);
  EXPECT_TRUE(h.IsSubtypeOf(novel, pub));
  EXPECT_TRUE(h.IsSubtypeOf(novel, novel));
  EXPECT_FALSE(h.IsSubtypeOf(pub, novel));
  EXPECT_FALSE(h.IsSubtypeOf(article, book));

  std::vector<TagId> closure = h.SubtypeClosure(pub);
  std::sort(closure.begin(), closure.end());
  EXPECT_EQ(closure, (std::vector<TagId>{pub, article, book, novel}));
}

TEST(TypeHierarchyTest, RejectsCyclesAndDoubleParents) {
  TagDict dict;
  const TagId a = dict.Intern("a");
  const TagId b = dict.Intern("b");
  const TagId c = dict.Intern("c");
  TypeHierarchy h;
  ASSERT_TRUE(h.AddSubtype(a, b).ok());
  EXPECT_FALSE(h.AddSubtype(b, a).ok());  // cycle
  EXPECT_FALSE(h.AddSubtype(a, a).ok());  // self
  ASSERT_TRUE(h.AddSubtype(b, c).ok());
  EXPECT_FALSE(h.AddSubtype(a, c).ok());  // second parent
  EXPECT_FALSE(h.AddSubtype(c, a).ok());  // transitive cycle
}

// --- Tag generalization end-to-end ------------------------------------------

class TagGeneralizationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::CorpusFromXml({
        "<library><article><title>joins</title></article>"
        "<book><title>systems</title></book>"
        "<report><title>memo</title></report></library>",
    });
    const TagId pub = corpus_->tags()->Intern("publication");
    ASSERT_TRUE(
        hierarchy_.AddSubtype(pub, corpus_->tags()->Intern("article")).ok());
    ASSERT_TRUE(
        hierarchy_.AddSubtype(pub, corpus_->tags()->Intern("book")).ok());
    index_ = std::make_unique<ElementIndex>(corpus_.get(), &hierarchy_);
    ir_ = std::make_unique<IrEngine>(corpus_.get());
  }

  std::unique_ptr<Corpus> corpus_;
  TypeHierarchy hierarchy_;
  std::unique_ptr<ElementIndex> index_;
  std::unique_ptr<IrEngine> ir_;
};

TEST_F(TagGeneralizationTest, ScanIncludesSubtypes) {
  const TagDict& dict = std::as_const(*corpus_).tags();
  EXPECT_EQ(index_->Scan(dict.Lookup("article")).size(), 1u);
  // publication has no concrete elements but two subtype elements.
  EXPECT_EQ(index_->Scan(dict.Lookup("publication")).size(), 2u);
  // report is outside the hierarchy.
  EXPECT_EQ(index_->Scan(dict.Lookup("report")).size(), 1u);
}

TEST_F(TagGeneralizationTest, GeneralizedQueryMatchesMore) {
  Result<Tpq> q = ParseXPath("//article[./title]", corpus_->tags());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(NaiveEvaluate(*index_, *q, ir_.get()).size(), 1u);

  std::vector<VarId> vars = TagGeneralizableVars(*q, hierarchy_);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], q->root());

  Result<Tpq> general = ApplyTagGeneralization(*q, q->root(), hierarchy_);
  ASSERT_TRUE(general.ok());
  std::vector<NodeRef> answers = NaiveEvaluate(*index_, *general, ir_.get());
  EXPECT_EQ(answers.size(), 2u) << "article + book, not report";

  // Containment in data: original answers are a subset.
  std::vector<NodeRef> original = NaiveEvaluate(*index_, *q, ir_.get());
  EXPECT_TRUE(std::includes(answers.begin(), answers.end(),
                            original.begin(), original.end()));
}

TEST_F(TagGeneralizationTest, PlanEvaluatorHonorsHierarchy) {
  Result<Tpq> q = ParseXPath("//publication[./title]", corpus_->tags());
  ASSERT_TRUE(q.ok());
  DocumentStats stats(corpus_.get());
  PenaltyModel pm(*q, &stats, ir_.get(), Weights{});
  Result<JoinPlan> plan = JoinPlan::Build(*q, *q, {}, pm, Weights{});
  ASSERT_TRUE(plan.ok());
  PlanEvaluator evaluator(index_.get(), ir_.get());
  std::vector<RankedAnswer> answers = evaluator.Evaluate(
      *plan, EvalMode::kExact, 0, RankScheme::kStructureFirst, 0.0, nullptr);
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(TagGeneralizationTest, InapplicableCases) {
  Result<Tpq> q = ParseXPath("//report[./title]", corpus_->tags());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(TagGeneralizableVars(*q, hierarchy_).empty());
  EXPECT_FALSE(ApplyTagGeneralization(*q, q->root(), hierarchy_).ok());
  EXPECT_FALSE(ApplyTagGeneralization(*q, 999, hierarchy_).ok());
}

// --- Attribute predicate relaxation -----------------------------------------

TEST(AttrRelaxTest, WidensBounds) {
  AttrPred le;
  le.op = AttrPred::Op::kLe;
  le.value = "98";
  Result<AttrPred> relaxed = RelaxAttrPred(le, 2.0);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->value, "100");
  EXPECT_TRUE(relaxed->Matches("99"));
  EXPECT_FALSE(le.Matches("99"));

  AttrPred ge;
  ge.op = AttrPred::Op::kGe;
  ge.value = "10";
  relaxed = RelaxAttrPred(ge, 3.0);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_TRUE(relaxed->Matches("7"));
  EXPECT_FALSE(relaxed->Matches("6"));
}

TEST(AttrRelaxTest, RelaxedPredicateIsWeaker) {
  // Everything the original accepts, the relaxed version accepts too.
  AttrPred lt;
  lt.op = AttrPred::Op::kLt;
  lt.value = "50";
  Result<AttrPred> relaxed = RelaxAttrPred(lt, 10.0);
  ASSERT_TRUE(relaxed.ok());
  for (const char* v : {"0", "25", "49.9", "55", "60.1"}) {
    if (lt.Matches(v)) {
      EXPECT_TRUE(relaxed->Matches(v)) << v;
    }
  }
}

TEST(AttrRelaxTest, RejectsBadInput) {
  AttrPred eq;
  eq.op = AttrPred::Op::kEq;
  eq.value = "5";
  EXPECT_FALSE(RelaxAttrPred(eq, 1.0).ok());

  AttrPred le;
  le.op = AttrPred::Op::kLe;
  le.value = "abc";
  EXPECT_FALSE(RelaxAttrPred(le, 1.0).ok());
  le.value = "5";
  EXPECT_FALSE(RelaxAttrPred(le, 0.0).ok());
  EXPECT_FALSE(RelaxAttrPred(le, -1.0).ok());
}

// --- Thesaurus ---------------------------------------------------------------

TEST(ThesaurusTest, ExpandsTermsToDisjunction) {
  Thesaurus th;
  th.AddSynonym("car", "automobile");
  th.AddSynonym("car", "vehicle");
  Result<FtExpr> e = ParseFtExpr("car and fast");
  ASSERT_TRUE(e.ok());
  FtExpr expanded = ExpandWithThesaurus(*e, th);
  // (car or automobile or vehicle) and fast
  EXPECT_EQ(expanded.kind(), FtKind::kAnd);
  EXPECT_EQ(expanded.children()[0].kind(), FtKind::kOr);
  EXPECT_NE(expanded.ToString().find("automobil"), std::string::npos);
}

TEST(ThesaurusTest, EndToEndRecall) {
  auto corpus = testing_util::CorpusFromXml({
      "<ads><ad>fast car for sale</ad><ad>fast automobile bargain</ad>"
      "<ad>slow bicycle</ad></ads>",
  });
  IrEngine engine(corpus.get());
  Result<FtExpr> e = ParseFtExpr("fast and car");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(engine.Evaluate(*e)->most_specific().size(), 1u);

  Thesaurus th;
  th.AddSynonym("car", "automobile");
  FtExpr expanded = ExpandWithThesaurus(*e, th);
  EXPECT_EQ(engine.Evaluate(expanded)->most_specific().size(), 2u);
}

TEST(ThesaurusTest, NegationNotExpanded) {
  Thesaurus th;
  th.AddSynonym("car", "automobile");
  Result<FtExpr> e = ParseFtExpr("fast and not car");
  ASSERT_TRUE(e.ok());
  FtExpr expanded = ExpandWithThesaurus(*e, th);
  // The negated branch must be untouched (expanding it would *narrow*
  // the result set).
  EXPECT_EQ(expanded.children()[1].kind(), FtKind::kNot);
  EXPECT_EQ(expanded.children()[1].children()[0].kind(), FtKind::kTerm);
}

TEST(ThesaurusTest, SynonymsNormalizedAndDeduplicated) {
  Thesaurus th;
  th.AddSynonym("Running", "jogging");
  th.AddSynonym("running", "JOGGING");  // duplicate after normalization
  EXPECT_EQ(th.SynonymsOf("run").size(), 1u);
  th.AddSynonym("run", "run");  // self-synonym ignored
  EXPECT_EQ(th.SynonymsOf("run").size(), 1u);
}

// --- Proximity (near) --------------------------------------------------------

class NearTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::CorpusFromXml({
        // Token positions:   0    1      2   3    4     5       6
        "<d><p>gold antique ring from our private collection</p>"
        "<p>gold is heavy. several words separate it from any ring "
        "here</p></d>",
    });
    engine_ = std::make_unique<IrEngine>(corpus_.get());
  }
  bool Matches(const char* query, NodeRef ref) {
    Result<FtExpr> e = ParseFtExpr(query);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return engine_->Evaluate(*e)->Satisfies(ref);
  }
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<IrEngine> engine_;
};

TEST_F(NearTest, WindowSemantics) {
  // p1: gold@0 ... ring@2 — within 2 tokens.
  EXPECT_TRUE(Matches("near(\"gold\" \"ring\", 2)", NodeRef{0, 1}));
  EXPECT_FALSE(Matches("near(\"gold\" \"ring\", 1)", NodeRef{0, 1}));
  // p2: gold and ring far apart.
  EXPECT_FALSE(Matches("near(\"gold\" \"ring\", 3)", NodeRef{0, 2}));
  EXPECT_TRUE(Matches("near(\"gold\" \"ring\", 20)", NodeRef{0, 2}));
}

TEST_F(NearTest, OrderInsensitive) {
  EXPECT_TRUE(Matches("near(\"ring\" \"gold\", 2)", NodeRef{0, 1}));
}

TEST_F(NearTest, ThreeWayNear) {
  EXPECT_TRUE(
      Matches("near(\"gold\" \"antique\" \"ring\", 2)", NodeRef{0, 1}));
  EXPECT_FALSE(
      Matches("near(\"gold\" \"antique\" \"ring\", 1)", NodeRef{0, 1}));
}

TEST_F(NearTest, ComposesWithBooleans) {
  EXPECT_TRUE(Matches("near(\"gold\" \"ring\", 2) and \"collection\"",
                      NodeRef{0, 0}));
  EXPECT_FALSE(Matches("near(\"gold\" \"ring\", 2) and \"bicycle\"",
                       NodeRef{0, 0}));
}

TEST_F(NearTest, ParserRejectsMalformedNear) {
  EXPECT_FALSE(ParseFtExpr("near(\"a\", 3)").ok());       // one keyword
  EXPECT_FALSE(ParseFtExpr("near(\"a\" \"b\")").ok());    // no window
  EXPECT_FALSE(ParseFtExpr("near(\"a\" \"b\", x)").ok()); // bad window
  EXPECT_FALSE(ParseFtExpr("near(\"a\" \"b\", 3").ok());  // unterminated
}

TEST_F(NearTest, CanonicalForm) {
  Result<FtExpr> e = ParseFtExpr("near(\"gold\" \"ring\", 4)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->ToString(), "near(\"gold\" \"ring\", 4)");
  Result<FtExpr> f = ParseFtExpr("near(gold ring, 4)");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(*e == *f);
}

}  // namespace
}  // namespace flexpath
