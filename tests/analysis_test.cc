// The flexcheck subsystem end to end: the semantic analyzer (one
// positive and one negative case per diagnostic code), the
// relaxation-plan verifier (every scheduler-emitted relaxation over
// 1000 random queries verifies; hand-mutated plans are rejected with
// the right V-code), the static-emptiness proofs behind
// TopKOptions::static_prune, and the pruning itself — provably-empty
// rounds are skipped with byte-identical top-K answers across all three
// algorithms.
#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/plan_verifier.h"
#include "common/random.h"
#include "core/flexpath.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "query/logical.h"
#include "query/tpq.h"
#include "relax/penalty.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xml/corpus.h"

namespace flexpath {
namespace {

const char* kArticles[] = {
    R"(<article><title>stream processing</title>
       <section><title>evaluation</title>
         <algorithm>stack based join</algorithm>
         <paragraph>XML streaming evaluation with low memory</paragraph>
       </section>
       <abstract>we present streaming evaluation</abstract></article>)",
    R"(<article><title>engines</title>
       <section><title>XML engines</title>
         <paragraph>we discuss several engines in depth</paragraph>
       </section></article>)",
};

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* xml : kArticles) {
      Result<DocId> id = fp_.AddDocumentXml(xml);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    ASSERT_TRUE(fp_.Build().ok());
  }

  AnalysisReport Check(const std::string& xpath) {
    Result<AnalysisReport> report = fp_.AnalyzeXPath(xpath);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : AnalysisReport{};
  }

  FlexPath fp_;
};

// --- Analyzer: one positive and one negative case per code ------------

TEST_F(AnalysisTest, CleanQueryHasNoDiagnostics) {
  const AnalysisReport report =
      Check("//article[./section[./algorithm]]");
  EXPECT_TRUE(report.diagnostics.empty())
      << DiagnosticsJson(report);
  EXPECT_FALSE(report.unsatisfiable());
}

TEST_F(AnalysisTest, Fx001MalformedPattern) {
  const Tpq empty;  // No root: fails Validate().
  const AnalysisReport report = AnalyzeTpq(empty, {});
  ASSERT_TRUE(report.Has(kDiagMalformed)) << DiagnosticsJson(report);
  EXPECT_EQ(report.Find(kDiagMalformed)->severity, DiagSeverity::kError);
  EXPECT_FALSE(Check("//article").Has(kDiagMalformed));
}

TEST_F(AnalysisTest, Fx002ConflictingTags) {
  // Unreachable through a Tpq (one tag per node) but expressible in a
  // raw logical form — e.g. a mutated plan.
  TagDict dict;
  const TagId a = dict.Intern("a");
  const TagId b = dict.Intern("b");
  LogicalQuery q;
  q.distinguished = 1;
  q.preds.insert(Predicate::Tag(1, a));
  q.preds.insert(Predicate::Tag(1, b));
  AnalyzerContext ctx;
  ctx.dict = &dict;
  const AnalysisReport report = AnalyzeLogical(q, ctx);
  ASSERT_TRUE(report.Has(kDiagTagConflict)) << DiagnosticsJson(report);
  EXPECT_TRUE(report.unsatisfiable());

  LogicalQuery ok;
  ok.distinguished = 1;
  ok.preds.insert(Predicate::Tag(1, a));
  EXPECT_FALSE(AnalyzeLogical(ok, ctx).Has(kDiagTagConflict));
}

TEST_F(AnalysisTest, Fx003StructuralCycle) {
  LogicalQuery q;
  q.distinguished = 1;
  q.preds.insert(Predicate::Pc(1, 2));
  q.preds.insert(Predicate::Pc(2, 1));
  const AnalysisReport report = AnalyzeLogical(q, {});
  ASSERT_TRUE(report.Has(kDiagStructuralCycle)) << DiagnosticsJson(report);
  EXPECT_TRUE(report.unsatisfiable());

  LogicalQuery chain;
  chain.distinguished = 1;
  chain.preds.insert(Predicate::Pc(1, 2));
  chain.preds.insert(Predicate::Ad(1, 3));
  EXPECT_FALSE(AnalyzeLogical(chain, {}).Has(kDiagStructuralCycle));
}

TEST_F(AnalysisTest, Fx004DanglingContains) {
  LogicalQuery q;
  q.distinguished = 1;
  q.preds.insert(Predicate::Pc(1, 2));
  q.preds.insert(Predicate::ContainsKey(7, "\"xml\""));  // $7 floats free.
  const AnalysisReport report = AnalyzeLogical(q, {});
  ASSERT_TRUE(report.Has(kDiagDanglingContains)) << DiagnosticsJson(report);

  LogicalQuery attached;
  attached.distinguished = 1;
  attached.preds.insert(Predicate::Pc(1, 2));
  attached.preds.insert(Predicate::ContainsKey(2, "\"xml\""));
  EXPECT_FALSE(AnalyzeLogical(attached, {}).Has(kDiagDanglingContains));
}

TEST_F(AnalysisTest, Fx005UnreachableAnswer) {
  LogicalQuery q;
  q.distinguished = 1;
  q.preds.insert(Predicate::Pc(1, 2));
  q.preds.insert(Predicate::Pc(3, 4));  // Island, no contains.
  const AnalysisReport report = AnalyzeLogical(q, {});
  ASSERT_TRUE(report.Has(kDiagUnreachableAnswer)) << DiagnosticsJson(report);

  LogicalQuery no_dist;
  no_dist.preds.insert(Predicate::Pc(1, 2));
  EXPECT_TRUE(AnalyzeLogical(no_dist, {}).Has(kDiagUnreachableAnswer));

  LogicalQuery connected;
  connected.distinguished = 1;
  connected.preds.insert(Predicate::Pc(1, 2));
  connected.preds.insert(Predicate::Ad(2, 3));
  EXPECT_FALSE(AnalyzeLogical(connected, {}).Has(kDiagUnreachableAnswer));
}

TEST_F(AnalysisTest, Fx101EmptyTag) {
  const AnalysisReport report = Check("//article[./ghosttag]");
  ASSERT_TRUE(report.Has(kDiagEmptyTag)) << DiagnosticsJson(report);
  EXPECT_TRUE(report.unsatisfiable());
  // The offending node's path points into the pattern tree.
  EXPECT_NE(report.Find(kDiagEmptyTag)->path.find("ghosttag"),
            std::string::npos);
  EXPECT_FALSE(Check("//article[./section]").Has(kDiagEmptyTag));
}

TEST_F(AnalysisTest, Fx102EmptyContains) {
  const AnalysisReport report =
      Check("//article[.contains(\"zyzzyva\")]");
  ASSERT_TRUE(report.Has(kDiagEmptyContains)) << DiagnosticsJson(report);
  EXPECT_FALSE(
      Check("//article[.contains(\"streaming\")]").Has(kDiagEmptyContains));
}

TEST_F(AnalysisTest, Fx103DeadEdge) {
  // Both tags exist, but no <abstract> ever has an <algorithm> below it.
  const AnalysisReport report = Check("//abstract[.//algorithm]");
  ASSERT_TRUE(report.Has(kDiagDeadEdge)) << DiagnosticsJson(report);
  EXPECT_FALSE(report.Has(kDiagEmptyTag));
  EXPECT_FALSE(Check("//section[./algorithm]").Has(kDiagDeadEdge));
}

TEST_F(AnalysisTest, Fx103GatedOffUnderTypeHierarchy) {
  // Pair counts are not subtype-aware, so the dead-edge proof is only
  // sound without a TypeHierarchy; with one, it must not fire.
  FlexPath fp;
  const TagId super = fp.tags()->Intern("section");
  const TagId sub = fp.tags()->Intern("appendix");
  ASSERT_TRUE(fp.type_hierarchy()->AddSubtype(super, sub).ok());
  for (const char* xml : kArticles) {
    ASSERT_TRUE(fp.AddDocumentXml(xml).ok());
  }
  ASSERT_TRUE(fp.Build().ok());
  Result<AnalysisReport> report = fp.AnalyzeXPath("//abstract[.//algorithm]");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Has(kDiagDeadEdge)) << DiagnosticsJson(*report);
}

TEST_F(AnalysisTest, Fx201RedundantPredicate) {
  // ad(1,2) ∧ contains(2,E) derives contains(1,E): stating it is a
  // wasted DPO round.
  LogicalQuery q;
  q.distinguished = 1;
  q.preds.insert(Predicate::Ad(1, 2));
  q.preds.insert(Predicate::ContainsKey(1, "\"xml\""));
  q.preds.insert(Predicate::ContainsKey(2, "\"xml\""));
  const AnalysisReport report = AnalyzeLogical(q, {});
  ASSERT_TRUE(report.Has(kDiagRedundantPredicate))
      << DiagnosticsJson(report);
  EXPECT_EQ(report.Find(kDiagRedundantPredicate)->severity,
            DiagSeverity::kWarning);

  LogicalQuery minimal;
  minimal.distinguished = 1;
  minimal.preds.insert(Predicate::Ad(1, 2));
  minimal.preds.insert(Predicate::ContainsKey(2, "\"xml\""));
  EXPECT_FALSE(AnalyzeLogical(minimal, {}).Has(kDiagRedundantPredicate));
}

TEST_F(AnalysisTest, DiagnosticsJsonSchema) {
  const AnalysisReport report = Check("//article[./ghosttag]");
  const std::string json = DiagnosticsJson(report);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
  EXPECT_NE(json.find("\"unsatisfiable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"FX101\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

TEST_F(AnalysisTest, VarPathRendersTreeSpine) {
  Result<Tpq> q = fp_.Parse("//article//section[./algorithm]");
  ASSERT_TRUE(q.ok());
  const std::vector<VarId> vars = q->Vars();
  ASSERT_EQ(vars.size(), 3u);
  const TagDict& dict = std::as_const(fp_.corpus()).tags();
  EXPECT_EQ(VarPath(*q, vars[0], &dict), "$1 (/article)");
  EXPECT_EQ(VarPath(*q, vars[1], &dict), "$2 (/article//section)");
  EXPECT_EQ(VarPath(*q, vars[2], &dict),
            "$3 (/article//section/algorithm)");
}

// --- Static emptiness proofs (the predicate behind static_prune) ------

TEST_F(AnalysisTest, ProvablyEmptyReasonCases) {
  const AnalyzerContext ctx = fp_.analyzer_context();
  auto parse = [&](const char* xpath) {
    Result<Tpq> q = fp_.Parse(xpath);
    EXPECT_TRUE(q.ok());
    return *q;
  };
  // Satisfiable queries: cannot be proven empty.
  EXPECT_EQ(ProvablyEmptyReason(parse("//article[./section]"), ctx),
            std::nullopt);
  // Tag with zero elements.
  EXPECT_TRUE(ProvablyEmptyReason(parse("//ghosttag"), ctx).has_value());
  // Contains expression nothing satisfies.
  EXPECT_TRUE(
      ProvablyEmptyReason(parse("//article[.contains(\"zyzzyva\")]"), ctx)
          .has_value());
  // Dead pc/ad edge between two existing tags.
  EXPECT_TRUE(ProvablyEmptyReason(parse("//abstract[.//algorithm]"), ctx)
                  .has_value());
  // Soundness: never claims empty for a query with answers.
  Result<std::vector<QueryAnswer>> answers =
      fp_.Query("//article[./section[./algorithm]]");
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
}

// --- Plan verifier: scheduler output always passes --------------------

TEST_F(AnalysisTest, SchedulerOutputVerifiesOnRealCorpus) {
  Result<Tpq> q = fp_.Parse(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]");
  ASSERT_TRUE(q.ok());
  Result<std::vector<PlanVerdict>> verdicts = fp_.VerifySchedule(*q);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();
  ASSERT_FALSE(verdicts->empty());
  for (size_t i = 0; i < verdicts->size(); ++i) {
    EXPECT_TRUE((*verdicts)[i].ok)
        << "entry " << i << ": " << (*verdicts)[i].ToString();
    EXPECT_FALSE((*verdicts)[i].op_path.empty()) << "entry " << i;
  }
}

// Theorem 2 compliance at scale: every relaxation the scheduler emits,
// over 1000 random tree pattern queries, passes all six verifier checks
// — the drop sets are real closure subsets, containment is strict, the
// cores reconstruct, the emitted trees match their bookkeeping, and a
// γ/λ/σ/κ composition reaching each one exists.
TEST(PlanVerifierRandomized, EverySchedulerRelaxationVerifies) {
  Rng rng(20260805);
  Corpus corpus;
  for (int i = 0; i < 2; ++i) {
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 60));
  }
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  AnalyzerContext ctx;
  ctx.index = &index;
  ctx.stats = &stats;
  ctx.ir = &ir;
  ctx.dict = &std::as_const(corpus).tags();

  size_t entries_total = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    const Tpq q = testing_util::RandomTpq(&rng, corpus.tags(), 5);
    PenaltyModel pm(q, &stats, &ir, Weights{});
    const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
    const std::vector<PlanVerdict> verdicts =
        VerifySchedule(q, schedule, ctx);
    ASSERT_EQ(verdicts.size(), schedule.size());
    for (size_t i = 0; i < verdicts.size(); ++i) {
      ASSERT_TRUE(verdicts[i].ok)
          << "iter " << iter << " entry " << i << " ("
          << schedule[i].op.ToString()
          << "): " << verdicts[i].ToString();
    }
    entries_total += schedule.size();
  }
  // Sanity: the property quantified over a non-trivial universe.
  EXPECT_GT(entries_total, 1000u);
}

// --- Plan verifier: mutated plans are rejected with the right code ----

class PlanMutationTest : public AnalysisTest {
 protected:
  // A schedule entry to mutate, from a query with a multi-step chain.
  void SetUp() override {
    AnalysisTest::SetUp();
    Result<Tpq> q = fp_.Parse("//article[./section[./algorithm]]");
    ASSERT_TRUE(q.ok());
    q_ = std::make_unique<Tpq>(*q);
    PenaltyModel pm(*q_, fp_.stats(), fp_.ir_engine(), Weights{});
    schedule_ = BuildSchedule(*q_, pm);
    ASSERT_GE(schedule_.size(), 2u);
  }

  std::unique_ptr<Tpq> q_;
  std::vector<ScheduleEntry> schedule_;
};

TEST_F(PlanMutationTest, V001EmptyDropSet) {
  ScheduleEntry entry = schedule_[0];
  entry.dropped.clear();
  const PlanVerdict v =
      VerifyRelaxation(*q_, entry, fp_.analyzer_context());
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.code, kVerdictEmptyDrop) << v.ToString();
}

TEST_F(PlanMutationTest, V002DropOutsideClosure) {
  ScheduleEntry entry = schedule_[0];
  entry.dropped.insert(Predicate::Pc(97, 98));
  const PlanVerdict v =
      VerifyRelaxation(*q_, entry, fp_.analyzer_context());
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.code, kVerdictDropNotInClosure) << v.ToString();
}

TEST_F(PlanMutationTest, V003NonStrictContainment) {
  // Dropping only a derivable predicate leaves an equivalent remainder:
  // for //article/section, ad($1,$2) re-derives from pc($1,$2).
  Result<Tpq> q = fp_.Parse("//article[./section]");
  ASSERT_TRUE(q.ok());
  const std::vector<VarId> vars = q->Vars();
  ScheduleEntry entry;
  entry.relaxed = *q;
  entry.dropped = {Predicate::Ad(vars[0], vars[1])};
  const PlanVerdict v =
      VerifyRelaxation(*q, entry, fp_.analyzer_context());
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.code, kVerdictNotStrict) << v.ToString();
}

TEST_F(PlanMutationTest, V004CoreNotATree) {
  // //a//b//c closes to {ad(1,2), ad(2,3), ad(1,3)}. Dropping only
  // ad($1,$2) leaves ad(1,3) and ad(2,3) with no relation between $1 and
  // $2: $3 has two incomparable ancestors, so the core is not a tree.
  Result<Tpq> q = fp_.Parse("//article//section//algorithm");
  ASSERT_TRUE(q.ok());
  const std::vector<VarId> vars = q->Vars();
  ScheduleEntry entry;
  entry.relaxed = *q;
  entry.dropped = {Predicate::Ad(vars[0], vars[1])};
  const PlanVerdict v =
      VerifyRelaxation(*q, entry, fp_.analyzer_context());
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.code, kVerdictCoreNotTree) << v.ToString();
}

TEST_F(PlanMutationTest, V005RelaxedTreeContradictsDropSet) {
  ScheduleEntry entry = schedule_[0];
  entry.relaxed = *q_;  // Claims to drop predicates but changes nothing.
  const PlanVerdict v =
      VerifyRelaxation(*q_, entry, fp_.analyzer_context());
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.code, kVerdictClosureMismatch) << v.ToString();
}

TEST_F(PlanMutationTest, V006SearchBudgetExhaustion) {
  // With a zero state budget the reachability search cannot run; the
  // verdict must say so rather than pass the entry unverified.
  const PlanVerdict v = VerifyRelaxation(*q_, schedule_[0],
                                         fp_.analyzer_context(),
                                         /*budget=*/0);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.code, kVerdictNoOperatorPath) << v.ToString();
  EXPECT_NE(v.detail.find("budget"), std::string::npos);
}

// --- static_prune: skipped rounds, identical answers ------------------

TEST_F(AnalysisTest, StaticPruneSkipsProvablyEmptyRounds) {
  // The original query requires a <ghosttag> child no article has: round
  // 0 (and every round until the ghost leaf is relaxed away) is provably
  // empty. Under DPO, static_prune skips those rounds — and the top-K
  // output is byte-identical to the unpruned run. SSO/Hybrid pick the
  // encoding level from the same statistics, so their starting pass
  // already sits past the empty prefix and there is nothing left to
  // skip; for them the test pins the identical-output contract.
  Result<Tpq> q = fp_.Parse("//article[./ghosttag and ./section]");
  ASSERT_TRUE(q.ok());
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  for (Algorithm algo : kAlgos) {
    TopKOptions opts;
    opts.k = 3;
    opts.num_threads = 1;
    opts.static_prune = false;
    Result<TopKResult> off = fp_.QueryTpq(*q, opts, algo);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    EXPECT_EQ(off->rounds_pruned, 0u);

    opts.static_prune = true;
    Result<TopKResult> on = fp_.QueryTpq(*q, opts, algo);
    ASSERT_TRUE(on.ok()) << on.status().ToString();

    if (algo == Algorithm::kDpo) {
      EXPECT_GE(on->rounds_pruned, 1u);
    }
    EXPECT_EQ(on->counters.rounds_pruned_static, on->rounds_pruned)
        << AlgorithmName(algo);
    // Relaxation eventually reaches the articles: answers exist, and
    // they are identical to the unpruned run, score for score.
    ASSERT_FALSE(on->answers.empty()) << AlgorithmName(algo);
    ASSERT_EQ(on->answers.size(), off->answers.size()) << AlgorithmName(algo);
    for (size_t i = 0; i < on->answers.size(); ++i) {
      EXPECT_EQ(on->answers[i].node, off->answers[i].node)
          << AlgorithmName(algo) << " answer " << i;
      EXPECT_EQ(on->answers[i].score, off->answers[i].score)
          << AlgorithmName(algo) << " answer " << i;
    }
    EXPECT_EQ(on->relaxations_used, off->relaxations_used)
        << AlgorithmName(algo);
    EXPECT_EQ(on->penalty_applied, off->penalty_applied)
        << AlgorithmName(algo);
    EXPECT_EQ(on->predicates_dropped, off->predicates_dropped)
        << AlgorithmName(algo);
  }
}

TEST_F(AnalysisTest, StaticPruneIsInvisibleOnSatisfiableQueries) {
  // No provable emptiness anywhere in the chain: the option must change
  // nothing at all, counters included.
  Result<Tpq> q = fp_.Parse("//article[./section[./algorithm]]");
  ASSERT_TRUE(q.ok());
  for (Algorithm algo :
       {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
    TopKOptions opts;
    opts.k = 5;
    opts.num_threads = 1;
    opts.static_prune = true;
    Result<TopKResult> on = fp_.QueryTpq(*q, opts, algo);
    opts.static_prune = false;
    Result<TopKResult> off = fp_.QueryTpq(*q, opts, algo);
    ASSERT_TRUE(on.ok() && off.ok());
    EXPECT_EQ(on->rounds_pruned, 0u) << AlgorithmName(algo);
    ASSERT_EQ(on->answers.size(), off->answers.size());
    for (size_t i = 0; i < on->answers.size(); ++i) {
      EXPECT_EQ(on->answers[i].node, off->answers[i].node);
      EXPECT_EQ(on->answers[i].score, off->answers[i].score);
    }
    EXPECT_EQ(on->counters.plan_passes, off->counters.plan_passes)
        << AlgorithmName(algo);
  }
}

// Randomized differential: static_prune on/off over random corpora and
// queries — answers, scores and relaxation metadata always identical,
// for all three algorithms (counters are allowed to differ: that is the
// point of the optimization).
TEST(StaticPruneDifferential, OnOffIdenticalTopK) {
  Rng rng(987654);
  for (int iter = 0; iter < 60; ++iter) {
    Corpus corpus;
    for (int d = 0; d < 2; ++d) {
      corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 60));
    }
    ElementIndex index(&corpus);
    DocumentStats stats(&corpus);
    IrEngine ir(&corpus);
    TopKProcessor processor(&index, &stats, &ir);
    const Tpq q = testing_util::RandomTpq(&rng, corpus.tags(), 5);

    for (Algorithm algo :
         {Algorithm::kDpo, Algorithm::kSso, Algorithm::kHybrid}) {
      TopKOptions opts;
      opts.k = 5;
      opts.num_threads = 1;
      opts.static_prune = true;
      Result<TopKResult> on = processor.Run(q, algo, opts);
      opts.static_prune = false;
      Result<TopKResult> off = processor.Run(q, algo, opts);
      ASSERT_TRUE(on.ok()) << on.status().ToString();
      ASSERT_TRUE(off.ok()) << off.status().ToString();
      const std::string label = std::string("iter ") +
                                std::to_string(iter) + " " +
                                AlgorithmName(algo);
      ASSERT_EQ(on->answers.size(), off->answers.size()) << label;
      for (size_t i = 0; i < on->answers.size(); ++i) {
        EXPECT_EQ(on->answers[i].node, off->answers[i].node)
            << label << " answer " << i;
        EXPECT_EQ(on->answers[i].score, off->answers[i].score)
            << label << " answer " << i;
      }
      EXPECT_EQ(on->relaxations_used, off->relaxations_used) << label;
      EXPECT_EQ(on->penalty_applied, off->penalty_applied) << label;
      EXPECT_EQ(on->predicates_dropped, off->predicates_dropped) << label;
      EXPECT_EQ(off->rounds_pruned, 0u) << label;
    }
  }
}

// Pruned rounds surface in traces: the skipped DPO round's span carries
// the emptiness proof as its static_pruned annotation.
TEST_F(AnalysisTest, PrunedRoundAnnotatesTrace) {
  Result<Tpq> q = fp_.Parse("//article[./ghosttag]");
  ASSERT_TRUE(q.ok());
  TopKOptions opts;
  opts.k = 2;
  opts.num_threads = 1;
  opts.collect_trace = true;
  Result<TopKResult> result = fp_.QueryTpq(*q, opts, Algorithm::kDpo);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  const TraceSpan* initial = result->trace->root.Find("initial_round");
  ASSERT_NE(initial, nullptr);
  EXPECT_FALSE(initial->TextOr("static_pruned").empty());
}

}  // namespace
}  // namespace flexpath
