#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/engine.h"
#include "ir/ft_expr.h"
#include "ir/inverted_index.h"
#include "ir/stemmer.h"
#include "ir/tokenizer.h"
#include "tests/test_util.h"

namespace flexpath {
namespace {

// --- Porter stemmer ------------------------------------------------------

struct StemCase {
  const char* in;
  const char* out;
};

class StemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(StemmerTest, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

// Expected outputs from the reference Porter implementation.
INSTANTIATE_TEST_SUITE_P(
    ReferencePairs, StemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"}, StemCase{"triplicate", "triplic"},
        StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
        StemCase{"electriciti", "electr"}, StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"homologou", "homolog"}, StemCase{"communism", "commun"},
        StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
        StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"},
        StemCase{"streaming", "stream"}, StemCase{"xml", "xml"},
        StemCase{"algorithms", "algorithm"}, StemCase{"queries", "queri"},
        StemCase{"a", "a"}, StemCase{"is", "is"}, StemCase{"be", "be"}));

// --- Tokenizer -----------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplits) {
  TokenizerOptions opts;
  opts.stem = false;
  opts.drop_stopwords = false;
  std::vector<std::string> tokens =
      Tokenize("Hello, World! x2", opts);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "x2");
}

TEST(TokenizerTest, DropsStopwords) {
  TokenizerOptions opts;
  opts.stem = false;
  std::vector<std::string> tokens = Tokenize("the cat and the hat", opts);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "cat");
  EXPECT_EQ(tokens[1], "hat");
}

TEST(TokenizerTest, StemsWhenEnabled) {
  std::vector<std::string> tokens = Tokenize("streaming algorithms");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "stream");
  EXPECT_EQ(tokens[1], "algorithm");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,.;  ").empty());
}

TEST(TokenizerTest, NormalizeTermMatchesTokenizer) {
  EXPECT_EQ(NormalizeTerm("Streaming"), "stream");
  EXPECT_EQ(NormalizeTerm("THE"), "");  // stopword
}

// --- FtExpr --------------------------------------------------------------

TEST(FtExprTest, ParsesConjunction) {
  Result<FtExpr> e = ParseFtExpr("\"XML\" and \"streaming\"");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->kind(), FtKind::kAnd);
  EXPECT_EQ(e->children()[0].term(), "xml");
  EXPECT_EQ(e->children()[1].term(), "stream");
}

TEST(FtExprTest, ParsesPrecedenceAndParens) {
  Result<FtExpr> e = ParseFtExpr("a and b or c");
  ASSERT_TRUE(e.ok());
  // 'and' binds tighter: (a and b) or c.
  EXPECT_EQ(e->kind(), FtKind::kOr);
  EXPECT_EQ(e->children()[0].kind(), FtKind::kAnd);

  Result<FtExpr> f = ParseFtExpr("a and (b or c)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FtKind::kAnd);
  EXPECT_EQ(f->children()[1].kind(), FtKind::kOr);
}

TEST(FtExprTest, ParsesNot) {
  Result<FtExpr> e = ParseFtExpr("not \"gold\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->kind(), FtKind::kNot);
  EXPECT_EQ(e->children()[0].term(), "gold");
}

TEST(FtExprTest, MultiwordQuotedIsPhrase) {
  Result<FtExpr> e = ParseFtExpr("\"gold ring\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->kind(), FtKind::kPhrase);
  ASSERT_EQ(e->phrase().size(), 2u);
  EXPECT_EQ(e->phrase()[0], "gold");
  EXPECT_EQ(e->phrase()[1], "ring");
}

TEST(FtExprTest, CanonicalToStringStable) {
  Result<FtExpr> a = ParseFtExpr("\"XML\"   and   \"streaming\"");
  Result<FtExpr> b = ParseFtExpr("xml and Streaming");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
  EXPECT_TRUE(*a == *b);
}

TEST(FtExprTest, RejectsMalformed) {
  EXPECT_FALSE(ParseFtExpr("").ok());
  EXPECT_FALSE(ParseFtExpr("\"unterminated").ok());
  EXPECT_FALSE(ParseFtExpr("(a and b").ok());
  EXPECT_FALSE(ParseFtExpr("a and").ok());
  EXPECT_FALSE(ParseFtExpr("a ) b").ok());
}

TEST(FtExprTest, PositiveTermsSkipNegated) {
  Result<FtExpr> e = ParseFtExpr("gold and not silver");
  ASSERT_TRUE(e.ok());
  std::vector<std::string> terms = e->PositiveTerms();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], "gold");
}

// --- Inverted index + engine --------------------------------------------

class IrEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::CorpusFromXml({
        R"(<doc><sec><para>gold ring with gold band</para>
             <para>silver ring</para></sec>
             <sec><para>iron gate</para></sec></doc>)",
        R"(<doc><sec><para>gold coin</para></sec></doc>)",
    });
    engine_ = std::make_unique<IrEngine>(corpus_.get());
  }

  NodeRef Ref(DocId d, NodeId n) { return NodeRef{d, n}; }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<IrEngine> engine_;
};

TEST_F(IrEngineTest, IndexFindsTerms) {
  const InvertedIndex& idx = engine_->index();
  ASSERT_NE(idx.Find("gold"), nullptr);
  ASSERT_NE(idx.Find("silver"), nullptr);
  EXPECT_EQ(idx.Find("zeppelin"), nullptr);
  // "gold" occurs directly in three paragraphs (doc0 para1, doc1 para).
  EXPECT_EQ(idx.Find("gold")->postings.size(), 2u);
  EXPECT_EQ(idx.Find("gold")->postings[0].tf, 2u);
}

TEST_F(IrEngineTest, SubtreeTermFrequency) {
  const InvertedIndex& idx = engine_->index();
  // doc 0: node 0=doc, 1=sec, 2=para(gold x2), 3=para(silver), 4=sec,
  // 5=para(iron).
  EXPECT_EQ(idx.SubtreeTermFrequency("gold", Ref(0, 0)), 2u);
  EXPECT_EQ(idx.SubtreeTermFrequency("gold", Ref(0, 2)), 2u);
  EXPECT_EQ(idx.SubtreeTermFrequency("gold", Ref(0, 4)), 0u);
  EXPECT_EQ(idx.SubtreeTermFrequency("ring", Ref(0, 1)), 2u);
}

TEST_F(IrEngineTest, SatisfyingSetIsAncestorClosed) {
  Result<FtExpr> e = ParseFtExpr("gold");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  // doc0: para(2) + its ancestors sec(1), doc(0); doc1: para(2), sec(1),
  // doc(0).
  EXPECT_TRUE(r->Satisfies(Ref(0, 0)));
  EXPECT_TRUE(r->Satisfies(Ref(0, 1)));
  EXPECT_TRUE(r->Satisfies(Ref(0, 2)));
  EXPECT_FALSE(r->Satisfies(Ref(0, 3)));
  EXPECT_FALSE(r->Satisfies(Ref(0, 4)));
  EXPECT_TRUE(r->Satisfies(Ref(1, 0)));
}

TEST_F(IrEngineTest, MostSpecificAreDeepest) {
  Result<FtExpr> e = ParseFtExpr("gold");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  ASSERT_EQ(r->most_specific().size(), 2u);
  EXPECT_EQ(r->most_specific()[0].node, Ref(0, 2));
  EXPECT_EQ(r->most_specific()[1].node, Ref(1, 2));
}

TEST_F(IrEngineTest, ScoresNormalizedAndOrdered) {
  Result<FtExpr> e = ParseFtExpr("gold");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  double best = 0;
  for (const ScoredNode& s : r->most_specific()) {
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 1.0);
    best = std::max(best, s.score);
  }
  EXPECT_DOUBLE_EQ(best, 1.0);
  // tf=2 beats tf=1.
  EXPECT_GT(r->most_specific()[0].score, r->most_specific()[1].score);
}

TEST_F(IrEngineTest, AndSemantics) {
  Result<FtExpr> e = ParseFtExpr("gold and silver");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  // Only doc0's first sec (and doc0 root) contain both.
  EXPECT_TRUE(r->Satisfies(Ref(0, 1)));
  EXPECT_TRUE(r->Satisfies(Ref(0, 0)));
  EXPECT_FALSE(r->Satisfies(Ref(0, 2)));
  EXPECT_FALSE(r->Satisfies(Ref(1, 0)));
}

TEST_F(IrEngineTest, OrSemantics) {
  Result<FtExpr> e = ParseFtExpr("silver or iron");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  EXPECT_TRUE(r->Satisfies(Ref(0, 3)));
  EXPECT_TRUE(r->Satisfies(Ref(0, 5)));
  EXPECT_FALSE(r->Satisfies(Ref(1, 2)));
}

TEST_F(IrEngineTest, NotSemantics) {
  Result<FtExpr> e = ParseFtExpr("gold and not silver");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  // doc0 root contains silver -> excluded; doc0 para(2) qualifies.
  EXPECT_FALSE(r->Satisfies(Ref(0, 0)));
  EXPECT_TRUE(r->Satisfies(Ref(0, 2)));
  EXPECT_TRUE(r->Satisfies(Ref(1, 0)));
}

TEST_F(IrEngineTest, PhraseSemantics) {
  Result<FtExpr> e = ParseFtExpr("\"gold ring\"");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  EXPECT_TRUE(r->Satisfies(Ref(0, 2)));
  EXPECT_FALSE(r->Satisfies(Ref(0, 3)));  // "silver ring"
  EXPECT_FALSE(r->Satisfies(Ref(1, 2)));  // "gold coin"
  // "gold band" is not consecutive in "gold ring with gold band"? It is:
  // positions ... actually "gold band" IS consecutive (gold@3, band@4).
  Result<FtExpr> e2 = ParseFtExpr("\"gold band\"");
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE(engine_->Evaluate(*e2)->Satisfies(Ref(0, 2)));
  Result<FtExpr> e3 = ParseFtExpr("\"ring gold\"");
  ASSERT_TRUE(e3.ok());
  EXPECT_FALSE(engine_->Evaluate(*e3)->Satisfies(Ref(0, 2)));
}

TEST_F(IrEngineTest, BestScoreWithin) {
  Result<FtExpr> e = ParseFtExpr("gold");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  EXPECT_DOUBLE_EQ(r->BestScoreWithin(Ref(0, 0)), 1.0);
  EXPECT_DOUBLE_EQ(r->BestScoreWithin(Ref(0, 4)), 0.0);
  EXPECT_GT(r->BestScoreWithin(Ref(1, 0)), 0.0);
  EXPECT_LT(r->BestScoreWithin(Ref(1, 0)), 1.0);
}

TEST_F(IrEngineTest, CountWithTag) {
  Result<FtExpr> e = ParseFtExpr("gold");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  const TagDict& dict = std::as_const(*corpus_).tags();
  EXPECT_EQ(r->CountWithTag(dict.Lookup("para")), 2u);
  EXPECT_EQ(r->CountWithTag(dict.Lookup("sec")), 2u);
  EXPECT_EQ(r->CountWithTag(dict.Lookup("doc")), 2u);
}

TEST_F(IrEngineTest, EvaluationIsCached) {
  Result<FtExpr> e1 = ParseFtExpr("gold");
  Result<FtExpr> e2 = ParseFtExpr("GOLD");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(engine_->Evaluate(*e1), engine_->Evaluate(*e2));
}

TEST_F(IrEngineTest, UnknownTermMatchesNothing) {
  Result<FtExpr> e = ParseFtExpr("zeppelin");
  ASSERT_TRUE(e.ok());
  const std::shared_ptr<const ContainsResult> r = engine_->Evaluate(*e);
  EXPECT_TRUE(r->satisfying().empty());
  EXPECT_TRUE(r->most_specific().empty());
  EXPECT_DOUBLE_EQ(r->BestScoreWithin(Ref(0, 0)), 0.0);
}

TEST_F(IrEngineTest, StemmedQueryMatchesInflectedText) {
  std::unique_ptr<Corpus> corpus = testing_util::CorpusFromXml(
      {"<d><p>streaming algorithms for queries</p></d>"});
  IrEngine engine(corpus.get());
  Result<FtExpr> e = ParseFtExpr("\"stream\" and \"algorithm\" and query");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(engine.Evaluate(*e)->Satisfies(NodeRef{0, 0}));
}

}  // namespace
}  // namespace flexpath
