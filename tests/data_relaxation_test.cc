#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/data_relaxation.h"
#include "exec/naive_evaluator.h"
#include "ir/engine.h"
#include "query/xpath_parser.h"
#include "stats/element_index.h"
#include "tests/test_util.h"

namespace flexpath {
namespace {

/// Replaces every edge of `q` with an ad-edge (full axis generalization)
/// — the query whose exact semantics the shortcut graph implements.
Tpq FullyGeneralized(const Tpq& q) {
  Tpq out = q;
  for (VarId v : out.Vars()) {
    if (out.Parent(v) != kInvalidVar) out.SetAxis(v, Axis::kDescendant);
  }
  return out;
}

TEST(DataRelaxationTest, ClosureEdgeCountMatchesAdPairs) {
  auto corpus = testing_util::CorpusFromXml({"<a><b><c/></b><d/></a>"});
  DataRelaxationIndex closure(corpus.get());
  // ad pairs: a->{b,c,d}, b->{c} = 4 shortcut edges.
  EXPECT_EQ(closure.edge_count(), 4u);
  EXPECT_GT(closure.ApproxBytes(), 0u);
}

TEST(DataRelaxationTest, EdgeListsAreDescendants) {
  auto corpus = testing_util::CorpusFromXml({"<a><b><c/></b><d/></a>"});
  DataRelaxationIndex closure(corpus.get());
  const NodeRef root{0, 0};
  std::vector<NodeId> kids(closure.EdgesBegin(root), closure.EdgesEnd(root));
  EXPECT_EQ(kids, (std::vector<NodeId>{1, 2, 3}));
  const NodeRef leaf{0, 2};
  EXPECT_EQ(closure.EdgesBegin(leaf), closure.EdgesEnd(leaf));
}

TEST(DataRelaxationTest, EvaluationEqualsFullyGeneralizedQuery) {
  auto corpus = testing_util::ArticleCorpus();
  ElementIndex index(corpus.get());
  IrEngine ir(corpus.get());
  DataRelaxationIndex closure(corpus.get());

  const char* queries[] = {
      "//article[./section/paragraph]",
      "//article[./section[./algorithm and ./paragraph]]",
      "//article[./section[.contains(\"XML\" and \"streaming\")]]",
      "//article/section/paragraph",
  };
  for (const char* xpath : queries) {
    Result<Tpq> q = ParseXPath(xpath, corpus->tags());
    ASSERT_TRUE(q.ok()) << xpath;
    std::vector<NodeRef> via_closure = closure.Evaluate(*q, &ir);
    std::vector<NodeRef> via_query =
        NaiveEvaluate(index, FullyGeneralized(*q), &ir);
    std::sort(via_closure.begin(), via_closure.end());
    EXPECT_EQ(via_closure, via_query) << xpath;
  }
}

TEST(DataRelaxationTest, AgreesOnRandomDocuments) {
  Rng rng(31337);
  for (int iter = 0; iter < 10; ++iter) {
    Corpus corpus;
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 60));
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 60));
    ElementIndex index(&corpus);
    IrEngine ir(&corpus);
    DataRelaxationIndex closure(&corpus);
    for (const char* xpath : {"//a[./b]", "//b[./c/d]", "//a[./b and ./c]"}) {
      Result<Tpq> q = ParseXPath(xpath, corpus.tags());
      ASSERT_TRUE(q.ok());
      std::vector<NodeRef> via_closure = closure.Evaluate(*q, &ir);
      std::vector<NodeRef> via_query =
          NaiveEvaluate(index, FullyGeneralized(*q), &ir);
      std::sort(via_closure.begin(), via_closure.end());
      EXPECT_EQ(via_closure, via_query) << xpath << " iter " << iter;
    }
  }
}

TEST(DataRelaxationTest, ClosureGrowsFasterThanTree) {
  // The Section 7 scaling argument: shortcut edges per tree edge grow
  // with depth, so the ratio exceeds 1 and grows on nested documents.
  auto shallow = testing_util::CorpusFromXml({"<a><b/><c/><d/></a>"});
  auto deep = testing_util::CorpusFromXml({"<a><b><c><d><e/></d></c></b></a>"});
  DataRelaxationIndex s(shallow.get());
  DataRelaxationIndex d(deep.get());
  const double s_ratio = static_cast<double>(s.edge_count()) /
                         static_cast<double>(shallow->TotalNodes() - 1);
  const double d_ratio = static_cast<double>(d.edge_count()) /
                         static_cast<double>(deep->TotalNodes() - 1);
  EXPECT_GT(d_ratio, s_ratio);
  EXPECT_GT(d_ratio, 2.0);
}

}  // namespace
}  // namespace flexpath
