// Shard subsystem tests (DESIGN.md §15): partitioning, the scatter-
// gather merge coordinator, and property-based equivalence of sharded
// execution with the single-shard baseline.
//   - Partition unit tests: balanced ranges, degenerate shapes (empty
//     shards, more shards than documents), cut-point clamping.
//   - Merge coordinator: k-way merge equals a global sort, early
//     termination accounting, node-id tie-breaks under exact score ties.
//   - The K'-bound invariant, 1000 seeded trials: no answer discarded by
//     per-shard truncation or coordinator early termination may outrank
//     the global k-th answer, and the merged prefix is byte-identical to
//     the unsharded evaluation.
//   - Degenerate shardings through the full TopKProcessor: one shard,
//     single-document shards, N > document count, K > total answers,
//     explicit partitions with empty shards — all byte-for-byte equal to
//     the unsharded run.
//   - Adversarial exact-score ties (a corpus of identical documents):
//     early termination must not reorder or change the tied prefix.
//   - Corpus mutation after shard construction hard-errors with a
//     generation diagnostic (the rebalance-vs-error decision: error).
//   - Scan-list pin audit: sharded runs (with a type hierarchy, so
//     merged subtype scans exist) leave zero outstanding pins.
//   - Statistics reconciliation: per-shard tables sum to the global
//     DocumentStats, and IR range counts sum to the global count.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "exec/evaluator.h"
#include "exec/plan.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "ir/ft_expr.h"
#include "query/tpq.h"
#include "rank/score.h"
#include "relax/penalty.h"
#include "relax/schedule.h"
#include "shard/merge.h"
#include "shard/partition.h"
#include "shard/sharded_corpus.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xml/corpus.h"
#include "xml/type_hierarchy.h"

namespace flexpath {
namespace {

// A random corpus plus the index/stats/IR stack built over it.
struct Rig {
  Rig(Rng* rng, size_t docs, size_t max_nodes) {
    for (size_t i = 0; i < docs; ++i) {
      corpus.Add(testing_util::RandomDocument(rng, corpus.tags(), max_nodes));
    }
    index = std::make_unique<ElementIndex>(&corpus);
    stats = std::make_unique<DocumentStats>(&corpus);
    ir = std::make_unique<IrEngine>(&corpus);
  }

  Corpus corpus;
  std::unique_ptr<ElementIndex> index;
  std::unique_ptr<DocumentStats> stats;
  std::unique_ptr<IrEngine> ir;
};

// The finalize/merge total order: rank order with exact ties broken by
// node id (= global document order). Mirrors the coordinator's
// comparator; the tests assert against it independently.
bool StrictlyOutranks(const RankedAnswer& a, const RankedAnswer& b,
                      RankScheme scheme) {
  if (RanksBefore(a.score, b.score, scheme)) return true;
  if (RanksBefore(b.score, a.score, scheme)) return false;
  return a.node < b.node;
}

std::map<std::string, uint64_t> CounterMap(const ExecCounters& c) {
  std::map<std::string, uint64_t> m;
  c.ForEach([&](const char* name, uint64_t value) { m[name] = value; });
  return m;
}

// Serializes everything result-shaped about a run; two runs are
// interchangeable iff their fingerprints are equal byte for byte.
std::string Fingerprint(const TopKResult& r) {
  std::string s;
  for (const RankedAnswer& a : r.answers) {
    s += std::to_string(a.node.doc);
    s += ":";
    s += std::to_string(a.node.node);
    s += "/";
    s += std::to_string(a.score.ss);
    s += "+";
    s += std::to_string(a.score.ks);
    s += ";";
  }
  s += "relaxations=";
  s += std::to_string(r.relaxations_used);
  s += ",penalty=";
  s += std::to_string(r.penalty_applied);
  s += ",dropped=";
  s += std::to_string(r.predicates_dropped);
  r.counters.ForEach([&](const char* name, uint64_t value) {
    s += ',';
    s += name;
    s += '=';
    s += std::to_string(value);
  });
  return s;
}

// ---------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------

TEST(ShardPartitionTest, BalancedContiguousCoverage) {
  for (size_t docs = 0; docs <= 13; ++docs) {
    for (size_t shards = 1; shards <= 8; ++shards) {
      const std::vector<ShardRange> r = PartitionDocs(docs, shards);
      ASSERT_EQ(r.size(), shards) << docs << "/" << shards;
      EXPECT_EQ(r.front().doc_begin, 0u);
      EXPECT_EQ(r.back().doc_end, docs);
      size_t min_size = std::numeric_limits<size_t>::max();
      size_t max_size = 0;
      for (size_t i = 0; i < r.size(); ++i) {
        if (i > 0) {
          EXPECT_EQ(r[i].doc_begin, r[i - 1].doc_end);
        }
        EXPECT_LE(r[i].doc_begin, r[i].doc_end);
        min_size = std::min(min_size, r[i].size());
        max_size = std::max(max_size, r[i].size());
        // The extra documents go to the leading shards, so sizes are
        // non-increasing along the partition.
        if (i > 0) {
          EXPECT_LE(r[i].size(), r[i - 1].size());
        }
      }
      EXPECT_LE(max_size - min_size, 1u) << docs << "/" << shards;
    }
  }
}

TEST(ShardPartitionTest, DegenerateShapes) {
  EXPECT_TRUE(PartitionDocs(10, 0).empty());

  // More shards than documents: the tail shards are empty but valid.
  const std::vector<ShardRange> r = PartitionDocs(3, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (ShardRange{0, 1}));
  EXPECT_EQ(r[1], (ShardRange{1, 2}));
  EXPECT_EQ(r[2], (ShardRange{2, 3}));
  EXPECT_TRUE(r[3].empty());
  EXPECT_TRUE(r[4].empty());

  // Empty corpus: every shard is empty.
  for (const ShardRange& range : PartitionDocs(0, 4)) {
    EXPECT_TRUE(range.empty());
  }
}

TEST(ShardPartitionTest, CutPointsClampSortAndDedup) {
  // No cuts: one range covering everything.
  EXPECT_EQ(PartitionAtCuts(10, {}),
            (std::vector<ShardRange>{{0, 10}}));

  EXPECT_EQ(PartitionAtCuts(10, {3, 7}),
            (std::vector<ShardRange>{{0, 3}, {3, 7}, {7, 10}}));

  // Unsorted, duplicated and out-of-range cuts: clamped to [0, 10],
  // sorted, deduped — {7,3,3,99,0} becomes cuts {0,3,7,10}, producing a
  // leading and a trailing empty shard.
  EXPECT_EQ(PartitionAtCuts(10, {7, 3, 3, 99, 0}),
            (std::vector<ShardRange>{
                {0, 0}, {0, 3}, {3, 7}, {7, 10}, {10, 10}}));

  // Empty corpus: everything collapses to empty ranges.
  for (const ShardRange& range : PartitionAtCuts(0, {5})) {
    EXPECT_TRUE(range.empty());
  }
}

TEST(ShardPartitionTest, ShardOfMapsEveryDocument) {
  Rng rng(101);
  Rig rig(&rng, 7, 30);
  const ShardedCorpus sc(&rig.corpus, nullptr, 3);
  for (DocId d = 0; d < rig.corpus.size(); ++d) {
    const size_t s = sc.ShardOf(d);
    ASSERT_LT(s, sc.num_shards());
    EXPECT_TRUE(sc.range(s).Contains(d));
  }
  EXPECT_EQ(sc.ShardOf(static_cast<DocId>(rig.corpus.size())),
            sc.num_shards());
}

// ---------------------------------------------------------------------
// Merge coordinator.
// ---------------------------------------------------------------------

TEST(ShardMergeTest, KPrimeContract) {
  constexpr size_t kUnbounded = std::numeric_limits<size_t>::max();
  // k == 0 means "the caller wants everything" in either mode.
  EXPECT_EQ(ShardKPrime(0, /*single_pass=*/true, /*truncation_safe=*/true),
            kUnbounded);
  EXPECT_EQ(ShardKPrime(0, /*single_pass=*/false, /*truncation_safe=*/true),
            kUnbounded);
  // Single-pass (SSO/Hybrid) with a truncation-safe certificate: k
  // itself is the sound per-shard bound.
  EXPECT_EQ(ShardKPrime(5, /*single_pass=*/true, /*truncation_safe=*/true),
            5u);
  // Multi-round (DPO): round lists travel whole — truncation could
  // change which incarnation of a node the dedup keeps.
  EXPECT_EQ(ShardKPrime(5, /*single_pass=*/false, /*truncation_safe=*/true),
            kUnbounded);
  // A scheme whose certificate refutes truncation safety (FX303) keeps
  // every per-shard answer, even single-pass.
  EXPECT_EQ(ShardKPrime(5, /*single_pass=*/true, /*truncation_safe=*/false),
            kUnbounded);
}

// Property: the k-way merge of document-disjoint sorted shard lists is
// exactly the first min(k, total) of the globally sorted concatenation,
// under every rank scheme, including heavy exact-score ties; the
// cursor/discard accounting is conserved.
TEST(ShardMergeTest, MergeMatchesGlobalSortProperty) {
  constexpr RankScheme kSchemes[] = {RankScheme::kStructureFirst,
                                     RankScheme::kKeywordFirst,
                                     RankScheme::kCombined};
  Rng rng(20260809);
  for (int trial = 0; trial < 300; ++trial) {
    const RankScheme scheme = kSchemes[trial % 3];
    const size_t nshards = 1 + rng.Uniform(4);
    std::vector<std::vector<RankedAnswer>> per_shard(nshards);
    std::vector<RankedAnswer> all;
    for (size_t s = 0; s < nshards; ++s) {
      const size_t count = rng.Uniform(7);
      for (size_t i = 0; i < count; ++i) {
        RankedAnswer a;
        // Documents are shard-disjoint by construction (shard s owns
        // [10s, 10s+10)); scores come from a tiny set to force ties.
        a.node.doc = static_cast<DocId>(10 * s + rng.Uniform(10));
        a.node.node = static_cast<uint32_t>(rng.Uniform(100));
        a.score.ss = static_cast<double>(rng.Uniform(3));
        a.score.ks = static_cast<double>(rng.Uniform(2)) * 0.5;
        per_shard[s].push_back(a);
        all.push_back(a);
      }
      std::sort(per_shard[s].begin(), per_shard[s].end(),
                [&](const RankedAnswer& a, const RankedAnswer& b) {
                  return StrictlyOutranks(a, b, scheme);
                });
    }
    std::sort(all.begin(), all.end(),
              [&](const RankedAnswer& a, const RankedAnswer& b) {
                return StrictlyOutranks(a, b, scheme);
              });

    for (size_t k : {size_t{0}, size_t{1}, size_t{3}, size_t{100}}) {
      ShardMergeStats stats;
      stats.collect_discarded = true;
      const std::vector<RankedAnswer> merged =
          MergeShardAnswers(per_shard, k, scheme, &stats);

      const size_t want = k == 0 ? all.size() : std::min(k, all.size());
      ASSERT_EQ(merged.size(), want) << "trial " << trial << " k=" << k;
      for (size_t i = 0; i < want; ++i) {
        EXPECT_EQ(merged[i].node, all[i].node)
            << "trial " << trial << " k=" << k << " pos " << i;
        EXPECT_EQ(merged[i].score, all[i].score)
            << "trial " << trial << " k=" << k << " pos " << i;
      }

      ASSERT_EQ(stats.taken.size(), nshards);
      size_t taken_total = 0;
      for (size_t s = 0; s < nshards; ++s) {
        EXPECT_LE(stats.taken[s], per_shard[s].size());
        taken_total += stats.taken[s];
      }
      EXPECT_EQ(taken_total, merged.size());
      EXPECT_EQ(stats.discarded.size(), all.size() - merged.size());
      // Early-termination soundness: nothing cut off outranks the
      // merged k-th answer.
      if (!merged.empty()) {
        for (const RankedAnswer& d : stats.discarded) {
          EXPECT_FALSE(StrictlyOutranks(d, merged.back(), scheme))
              << "trial " << trial << " k=" << k;
        }
      }
    }
  }
}

TEST(ShardMergeTest, ExactTiesBreakByNodeIdInDocumentOrder) {
  // Three shards, every answer identically scored: the merge must fall
  // back to node-id order, which restores global document order.
  std::vector<std::vector<RankedAnswer>> per_shard(3);
  const AnswerScore tied{2.0, 0.5};
  for (size_t s = 0; s < 3; ++s) {
    for (uint32_t i = 0; i < 2; ++i) {
      per_shard[s].push_back(
          RankedAnswer{NodeRef{static_cast<DocId>(2 * s + i), 7}, tied});
    }
  }
  ShardMergeStats stats;
  stats.collect_discarded = true;
  const std::vector<RankedAnswer> merged =
      MergeShardAnswers(per_shard, 4, RankScheme::kStructureFirst, &stats);
  ASSERT_EQ(merged.size(), 4u);
  for (DocId d = 0; d < 4; ++d) EXPECT_EQ(merged[d].node.doc, d);
  ASSERT_EQ(stats.discarded.size(), 2u);
  // The discarded tied answers rank with, not above, the kept k-th.
  for (const RankedAnswer& d : stats.discarded) {
    EXPECT_FALSE(
        StrictlyOutranks(d, merged.back(), RankScheme::kStructureFirst));
  }
}

// ---------------------------------------------------------------------
// The K'-bound invariant, 1000 seeded trials. Random corpora, random
// queries, random relaxation depth / mode / scheme / k / shard count;
// the sharded evaluation must return exactly the unsharded prefix
// (answers, scores, and every counter), and no answer it discarded —
// via per-shard K' truncation or coordinator early termination — may
// outrank the global k-th answer.
// ---------------------------------------------------------------------

TEST(ShardTest, KPrimeBoundInvariantHolds1000Trials) {
  constexpr RankScheme kSchemes[] = {RankScheme::kStructureFirst,
                                     RankScheme::kKeywordFirst,
                                     RankScheme::kCombined};
  constexpr EvalMode kModes[] = {EvalMode::kExact, EvalMode::kSsoFlat,
                                 EvalMode::kHybridBuckets};
  Rng rng(20260810);
  int trials = 0;
  for (int outer = 0; outer < 250; ++outer) {
    Rig rig(&rng, 3, 45);
    PlanEvaluator evaluator(rig.index.get(), rig.ir.get());
    for (int inner = 0; inner < 4; ++inner, ++trials) {
      const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 4);
      PenaltyModel pm(q, rig.stats.get(), rig.ir.get(), Weights{});
      const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
      const size_t depth = rng.Uniform(schedule.size() + 1);
      const Tpq& relaxed = depth == 0 ? q : schedule[depth - 1].relaxed;
      const std::set<Predicate> dropped =
          depth == 0 ? std::set<Predicate>{} : schedule[depth - 1].dropped;
      Result<JoinPlan> plan =
          JoinPlan::Build(q, relaxed, dropped, pm, Weights{});
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();

      const EvalMode mode = kModes[trials % 3];
      const RankScheme scheme = kSchemes[(trials / 3) % 3];
      const size_t k = rng.Uniform(6);  // 0 disables pruning/truncation.
      const size_t nshards = 1 + rng.Uniform(4);
      const std::string label = std::string("trial ") +
                                std::to_string(trials) +
                                " depth=" + std::to_string(depth) +
                                " mode=" + std::to_string(int(mode)) +
                                " k=" + std::to_string(k) +
                                " shards=" + std::to_string(nshards);

      ExecCounters serial_ctr;
      const std::vector<RankedAnswer> global = evaluator.Evaluate(
          *plan, mode, k, scheme, 0.0, &serial_ctr);

      ShardedCorpus sc(&rig.corpus, nullptr, nshards);
      ShardEvalContext shard_ctx;
      shard_ctx.shards = &sc;
      std::vector<ExecCounters> per_shard_ctr;
      shard_ctx.per_shard_counters = &per_shard_ctr;
      std::vector<RankedAnswer> discarded;
      shard_ctx.discarded = &discarded;
      ExecCounters sharded_ctr;
      const std::vector<RankedAnswer> merged = evaluator.Evaluate(
          *plan, mode, k, scheme, 0.0, &sharded_ctr, nullptr, nullptr,
          nullptr, nullptr, &shard_ctx);

      // The merged list is the global prefix: everything for kExact
      // (round lists travel whole) or k == 0, min(k, total) otherwise.
      const size_t want = (mode == EvalMode::kExact || k == 0)
                              ? global.size()
                              : std::min(k, global.size());
      ASSERT_EQ(merged.size(), want) << label;
      for (size_t i = 0; i < want; ++i) {
        ASSERT_EQ(merged[i].node, global[i].node) << label << " pos " << i;
        ASSERT_EQ(merged[i].score, global[i].score) << label << " pos " << i;
      }
      EXPECT_EQ(CounterMap(sharded_ctr), CounterMap(serial_ctr)) << label;

      // Conservation: every global answer is either merged or discarded.
      EXPECT_EQ(merged.size() + discarded.size(), global.size()) << label;
      if (global.size() <= want) {
        EXPECT_TRUE(discarded.empty()) << label;
      }

      // The invariant itself: a discarded answer never outranks the
      // global k-th (they rank at or below it, so cutting them cannot
      // change the top k).
      if (!merged.empty()) {
        const RankedAnswer& kth = merged.back();
        for (const RankedAnswer& d : discarded) {
          ASSERT_FALSE(StrictlyOutranks(d, kth, scheme))
              << label << " discarded " << d.node.doc << ":" << d.node.node;
        }
      }

      // Per-shard counter attribution: the shard-local work figures sum
      // to the pass totals (phase-level counters are excluded from this
      // identity by contract).
      ASSERT_EQ(per_shard_ctr.size(), nshards) << label;
      uint64_t probed = 0;
      uint64_t created = 0;
      for (const ExecCounters& c : per_shard_ctr) {
        probed += c.candidates_probed;
        created += c.tuples_created;
      }
      EXPECT_EQ(probed, sharded_ctr.candidates_probed) << label;
      EXPECT_EQ(created, sharded_ctr.tuples_created) << label;
    }
  }
  EXPECT_EQ(trials, 1000);
}

// ---------------------------------------------------------------------
// Degenerate shardings through the full TopKProcessor.
// ---------------------------------------------------------------------

TEST(ShardTest, DegenerateShardingsMatchUnsharded) {
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  Rng rng(8801);
  Rig rig(&rng, 3, 70);
  TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());

  // Explicit partitions exercising shapes PartitionDocs never produces:
  // a leading empty shard, interior single-document shards, a trailing
  // empty shard.
  const std::vector<std::vector<DocId>> kCutSets = {
      {0}, {0, 1}, {1, 2}, {3}, {0, 1, 2, 3}};
  std::vector<std::unique_ptr<ShardedCorpus>> explicit_partitions;
  for (const std::vector<DocId>& cuts : kCutSets) {
    explicit_partitions.push_back(std::make_unique<ShardedCorpus>(
        &rig.corpus, nullptr, PartitionAtCuts(rig.corpus.size(), cuts)));
  }

  for (int qi = 0; qi < 6; ++qi) {
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 4);
    for (Algorithm algo : kAlgos) {
      // k = 50 exceeds every possible answer count over 3 documents, so
      // the run relaxes to exhaustion; k = 2 exercises early cutoff.
      for (size_t k : {size_t{2}, size_t{50}}) {
        TopKOptions opts;
        opts.k = k;
        opts.num_threads = 1;
        Result<TopKResult> baseline = processor.Run(q, algo, opts);
        ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
        const std::string reference = Fingerprint(*baseline);

        // num_shards = 1 (one shard), 3 (single-document shards),
        // 5 and 16 (more shards than documents: empty tails).
        for (size_t shards : {size_t{1}, size_t{3}, size_t{5}, size_t{16}}) {
          opts.num_shards = shards;
          Result<TopKResult> sharded = processor.Run(q, algo, opts);
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
          const std::string label =
              std::string("q") + std::to_string(qi) + " " +
              AlgorithmName(algo) + " k=" + std::to_string(k) +
              " shards=" + std::to_string(shards);
          EXPECT_EQ(Fingerprint(*sharded), reference) << label;
          // Empty shards report, and report zero work and zero answers.
          ASSERT_EQ(sharded->shards.size(), shards) << label;
          for (const TopKResult::ShardStats& s : sharded->shards) {
            if (s.doc_begin == s.doc_end) {
              EXPECT_EQ(s.answers, 0u) << label;
              EXPECT_EQ(s.tuples_created, 0u) << label;
            }
          }
        }
        opts.num_shards = 0;

        for (size_t pi = 0; pi < explicit_partitions.size(); ++pi) {
          Result<TopKResult> sharded = processor.RunWithShards(
              q, algo, opts, explicit_partitions[pi].get());
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
          EXPECT_EQ(Fingerprint(*sharded), reference)
              << "q" << qi << " " << AlgorithmName(algo)
              << " k=" << k << " cutset " << pi;
        }
      }
    }
  }
}

// Adversarial exact-score ties: a corpus of identical documents makes
// every answer tie exactly across shard boundaries, so any unsound
// early termination or tie-handling in the coordinator would change
// which documents survive the cut. Everything must stay byte-identical
// to the unsharded run.
TEST(ShardTest, AdversarialScoreTiesStayByteIdentical) {
  Corpus corpus;
  for (int i = 0; i < 8; ++i) {
    // Re-seeding per document reproduces the identical document each
    // time (interning is idempotent, so the dict is unchanged too).
    Rng doc_rng(555);
    corpus.Add(testing_util::RandomDocument(&doc_rng, corpus.tags(), 50));
  }
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  TopKProcessor processor(&index, &stats, &ir);

  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  Rng rng(556);
  for (int qi = 0; qi < 10; ++qi) {
    const Tpq q = testing_util::RandomTpq(&rng, corpus.tags(), 4);
    for (Algorithm algo : kAlgos) {
      for (size_t k : {size_t{1}, size_t{4}}) {
        TopKOptions opts;
        opts.k = k;
        opts.num_threads = 1;
        Result<TopKResult> baseline = processor.Run(q, algo, opts);
        ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
        const std::string reference = Fingerprint(*baseline);
        // With k < 8 identical documents, the cut necessarily lands
        // inside a tie group whenever there are any answers at all.
        for (size_t shards : {size_t{2}, size_t{3}, size_t{8}}) {
          opts.num_shards = shards;
          Result<TopKResult> sharded = processor.Run(q, algo, opts);
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
          EXPECT_EQ(Fingerprint(*sharded), reference)
              << "q" << qi << " " << AlgorithmName(algo)
              << " k=" << k << " shards=" << shards;
        }
        opts.num_shards = 0;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Corpus mutation after shard construction.
// ---------------------------------------------------------------------

// Regression for the Corpus::Add-after-sharding decision: the partition
// hard-errors (rather than silently rebalancing) with a diagnostic
// naming both generations. Rebalancing would only hide the real
// problem — the processor's global index is equally stale.
TEST(ShardTest, CorpusAddAfterShardingHardErrors) {
  Rng rng(3301);
  Rig rig(&rng, 4, 40);
  TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());
  const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 3);

  TopKOptions opts;
  opts.k = 5;
  opts.num_threads = 1;
  opts.num_shards = 2;
  Result<TopKResult> before = processor.Run(q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  rig.corpus.Add(
      testing_util::RandomDocument(&rng, rig.corpus.tags(), 40));

  Result<TopKResult> after = processor.Run(q, Algorithm::kHybrid, opts);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(after.status().message().find("stale"), std::string::npos)
      << after.status().ToString();
  EXPECT_NE(after.status().message().find("generation"), std::string::npos)
      << after.status().ToString();

  // The same guard covers caller-owned partitions through RunWithShards.
  Rig fresh(&rng, 3, 40);
  TopKProcessor fresh_processor(fresh.index.get(), fresh.stats.get(),
                                fresh.ir.get());
  ShardedCorpus partition(&fresh.corpus, nullptr, 2);
  ASSERT_TRUE(fresh_processor
                  .RunWithShards(q, Algorithm::kSso, TopKOptions{},
                                 &partition)
                  .ok());
  fresh.corpus.Add(
      testing_util::RandomDocument(&rng, fresh.corpus.tags(), 40));
  Result<TopKResult> stale = fresh_processor.RunWithShards(
      q, Algorithm::kSso, TopKOptions{}, &partition);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale.status().message().find("generation"), std::string::npos);
}

// ---------------------------------------------------------------------
// Merged-scan pin audit.
// ---------------------------------------------------------------------

// With a type hierarchy, shard indexes build merged subtype scan lists
// behind reference-counted handles. After a sharded run returns, every
// handle must be released: outstanding pins return to zero on every
// shard index and on the global index.
TEST(ShardTest, PinCountsReturnToZeroAfterShardedRuns) {
  Rng rng(7701);
  Corpus corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 60));
  }
  TypeHierarchy hierarchy;
  // Subtype chains over the random-document alphabet so that scans of
  // the supertypes go through the merged-scan path.
  ASSERT_TRUE(hierarchy
                  .AddSubtype(corpus.tags()->Intern("a"),
                              corpus.tags()->Intern("b"))
                  .ok());
  ASSERT_TRUE(hierarchy
                  .AddSubtype(corpus.tags()->Intern("d"),
                              corpus.tags()->Intern("e"))
                  .ok());
  ElementIndex index(&corpus, &hierarchy);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  TopKProcessor processor(&index, &stats, &ir);
  ShardedCorpus sharded(&corpus, &hierarchy, 3);

  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  TopKOptions opts;
  opts.k = 5;
  opts.num_threads = 1;
  for (int qi = 0; qi < 12; ++qi) {
    const Tpq q = testing_util::RandomTpq(&rng, corpus.tags(), 4);
    const Algorithm algo = kAlgos[qi % 3];
    Result<TopKResult> unsharded =
        processor.RunWithShards(q, algo, opts, nullptr);
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    Result<TopKResult> result =
        processor.RunWithShards(q, algo, opts, &sharded);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Fingerprint(*result), Fingerprint(*unsharded)) << "q" << qi;
    EXPECT_EQ(sharded.OutstandingPins(), 0u) << "q" << qi;
    EXPECT_EQ(index.OutstandingPins(), 0u) << "q" << qi;
  }
}

// ---------------------------------------------------------------------
// Statistics reconciliation.
// ---------------------------------------------------------------------

TEST(ShardTest, MergedStatisticsEqualGlobalStatistics) {
  Rng rng(4401);
  Rig rig(&rng, 9, 50);
  const ShardedCorpus sc(&rig.corpus, nullptr, 4);

  // The merge identity holds against the full-corpus tables.
  ASSERT_TRUE(sc.ReconcileWith(*rig.stats).ok());

  const char* kTags[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<TagId> ids;
  for (const char* t : kTags) ids.push_back(rig.corpus.tags()->Intern(t));
  for (TagId t : ids) {
    EXPECT_EQ(sc.MergedTagCount(t), rig.stats->TagCount(t));
    for (TagId u : ids) {
      EXPECT_EQ(sc.MergedPcCount(t, u), rig.stats->PcCount(t, u));
      EXPECT_EQ(sc.MergedAdCount(t, u), rig.stats->AdCount(t, u));
    }
  }

  // Reconciling against statistics of a different corpus slice must
  // fail with a diagnostic naming the divergent statistic.
  const DocumentStats partial(&rig.corpus, 0, 1);
  const Status divergent = sc.ReconcileWith(partial);
  ASSERT_FALSE(divergent.ok());
  EXPECT_FALSE(divergent.message().empty());
}

TEST(ShardTest, IrRangeCountsSumToGlobalCount) {
  Rng rng(4402);
  Rig rig(&rng, 8, 60);
  // "red" is in RandomDocument's vocabulary, so the contains result is
  // non-trivial with high probability.
  const std::shared_ptr<const ContainsResult> contains =
      rig.ir->Evaluate(FtExpr::Term("red"));
  ASSERT_NE(contains, nullptr);

  const std::vector<ShardRange> ranges =
      PartitionDocs(rig.corpus.size(), 3);
  const char* kTags[] = {"a", "b", "c", "d", "e", "f"};
  for (const char* name : kTags) {
    const TagId t = rig.corpus.tags()->Intern(name);
    size_t summed = 0;
    for (const ShardRange& r : ranges) {
      summed += contains->CountWithTagInRange(t, r.doc_begin, r.doc_end);
    }
    EXPECT_EQ(summed, contains->CountWithTag(t)) << name;
  }
}

}  // namespace
}  // namespace flexpath
