#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/http.h"
#include "obs/query_stats.h"

namespace flexpath {
namespace {

// Minimal blocking HTTP client: connects to loopback, writes `request`,
// reads until the server closes (the admin plane is one request per
// connection, so EOF delimits the response).
std::string Fetch(uint16_t port, const std::string& request) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd.get(), request.data() + sent, request.size() - sent);
    if (n <= 0) return "";
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

std::string Get(uint16_t port, const std::string& target) {
  return Fetch(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpTest, UrlDecode) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("%2Fpath%3D"), "/path=");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  // Malformed escapes pass through verbatim.
  EXPECT_EQ(UrlDecode("bad%zz%2"), "bad%zz%2");
}

TEST(HttpTest, ParseRequestLineAndParams) {
  HttpRequest req;
  ASSERT_TRUE(ParseHttpRequest(
      "GET /statsz?recent=5&recent=9&x=a%20b HTTP/1.1\r\nHost: h\r\n\r\n",
      &req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/statsz");
  ASSERT_EQ(req.params.size(), 3u);
  ASSERT_NE(req.Param("recent"), nullptr);
  EXPECT_EQ(*req.Param("recent"), "5");  // First value wins.
  ASSERT_NE(req.Param("x"), nullptr);
  EXPECT_EQ(*req.Param("x"), "a b");
  EXPECT_EQ(req.Param("absent"), nullptr);
}

TEST(HttpTest, ParseRejectsMalformedRequests) {
  HttpRequest req;
  std::string error;
  EXPECT_FALSE(ParseHttpRequest("", &req, &error));
  EXPECT_FALSE(ParseHttpRequest("GET\r\n\r\n", &req, &error));
  EXPECT_FALSE(ParseHttpRequest("GET /x HTTP/2.0\r\n\r\n", &req, &error));
  EXPECT_FALSE(ParseHttpRequest("GET noslash HTTP/1.1\r\n\r\n", &req,
                                &error));
  EXPECT_FALSE(error.empty());
}

TEST(HttpTest, SerializeResponseCarriesLengthAndClose) {
  HttpResponse resp;
  resp.body = "{\"a\":1}";
  const std::string wire = SerializeHttpResponse(resp);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"a\":1}"), std::string::npos);
}

TEST(AdminServerTest, ConstructionIsInert) {
  AdminServer server;
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0u);
}

TEST(AdminServerTest, ServesRegisteredRoutes) {
  AdminServer server;  // Port 0: ephemeral.
  server.Handle("/healthz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "{\"status\":\"ok\"}";
    return resp;
  });
  server.Handle("/echo", [](const HttpRequest& req) {
    HttpResponse resp;
    const std::string* v = req.Param("v");
    resp.body = v != nullptr ? *v : "(none)";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0u);

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "{\"status\":\"ok\"}");

  const std::string echo = Get(server.port(), "/echo?v=hello%20world");
  EXPECT_EQ(BodyOf(echo), "hello world");

  // "/" lists the registered routes.
  const std::string index = Get(server.port(), "/");
  EXPECT_NE(index.find("/healthz"), std::string::npos);
  EXPECT_NE(index.find("/echo"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

TEST(AdminServerTest, ErrorStatuses) {
  AdminServer server;
  server.Handle("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  server.Handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.Start().ok());

  EXPECT_NE(Get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(Fetch(server.port(), "POST /ok HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(Fetch(server.port(), "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  // A handler that throws maps to 500, and the server survives it.
  EXPECT_NE(Get(server.port(), "/boom").find("HTTP/1.1 500"),
            std::string::npos);
  EXPECT_NE(Get(server.port(), "/ok").find("HTTP/1.1 200"),
            std::string::npos);
  // Oversized request heads are rejected 431, not buffered forever.
  std::string huge = "GET /ok HTTP/1.1\r\nX-Pad: ";
  huge.append(10000, 'a');
  huge += "\r\n\r\n";
  EXPECT_NE(Fetch(server.port(), huge).find("HTTP/1.1 431"),
            std::string::npos);
}

TEST(AdminServerTest, HeadRequestOmitsBody) {
  AdminServer server;
  server.Handle("/data", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "0123456789";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      Fetch(server.port(), "HEAD /data HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 10"), std::string::npos);
  EXPECT_EQ(BodyOf(response), "");
}

TEST(AdminServerTest, StartTwiceFails) {
  AdminServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
}

// Scrapes run on the server thread while another thread keeps recording —
// the TSan job exercises this test to prove the admin plane reads are
// race-free against the query pipeline's writes.
TEST(AdminServerTest, ConcurrentScrapeWhileRecording) {
  QueryStatsStore store;
  AdminServer server;
  server.Handle("/statsz", [&store](const HttpRequest& req) {
    size_t recent = 16;
    if (const std::string* n = req.Param("recent")) {
      recent = static_cast<size_t>(std::strtoul(n->c_str(), nullptr, 10));
    }
    HttpResponse resp;
    resp.body = store.ToJson(recent);
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread recorder([&store, &stop] {
    QueryExecution e;
    e.query = "//a[./b]";
    e.algorithm = "Hybrid";
    e.scheme = "structure-first";
    for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      e.fingerprint = i % 7;
      e.latency_ms = static_cast<double>(i % 13);
      store.Record(e);
    }
  });
  for (int i = 0; i < 25; ++i) {
    const std::string response = Get(server.port(), "/statsz?recent=4");
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(BodyOf(response).find("\"shapes\""), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
}

}  // namespace
}  // namespace flexpath
