#include "obs/metrics_history.h"

#include <chrono>
#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace flexpath {
namespace {

TEST(MetricsHistoryTest, ConstructionIsInert) {
  MetricsRegistry registry;
  MetricsHistory history(&registry);
  EXPECT_FALSE(history.running());
  EXPECT_EQ(history.samples(), 0u);
  EXPECT_TRUE(history.Window(60.0).empty());
}

TEST(MetricsHistoryTest, CounterDeltaAndRate) {
  MetricsRegistry registry;
  Counter* c = registry.counter("query.count");
  MetricsHistory history(&registry);
  c->Inc(5);
  history.SampleNow();
  c->Inc(3);
  history.SampleNow();

  const auto windows = history.Window(3600.0);
  const auto it = windows.find("query.count");
  ASSERT_NE(it, windows.end());
  EXPECT_EQ(it->second.kind, SeriesWindow::Kind::kCounter);
  EXPECT_DOUBLE_EQ(it->second.last, 8.0);
  EXPECT_DOUBLE_EQ(it->second.delta, 3.0);
  EXPECT_EQ(it->second.samples, 2u);
  EXPECT_TRUE(std::isfinite(it->second.rate_per_s));
  EXPECT_GE(it->second.rate_per_s, 0.0);
}

TEST(MetricsHistoryTest, ZeroTrafficWindowHasZeroRateNotNan) {
  MetricsRegistry registry;
  Counter* c = registry.counter("query.count");
  c->Inc(100);  // Traffic before the sampler ever ran.
  MetricsHistory history(&registry);
  history.SampleNow();
  history.SampleNow();  // No increments between samples.

  const auto windows = history.Window(3600.0);
  const SeriesWindow& w = windows.at("query.count");
  EXPECT_DOUBLE_EQ(w.delta, 0.0);
  EXPECT_DOUBLE_EQ(w.rate_per_s, 0.0);
  EXPECT_FALSE(std::isnan(w.rate_per_s));
  EXPECT_TRUE(std::isfinite(w.rate_per_s));

  const DerivedRates rates = history.Derived(3600.0);
  EXPECT_DOUBLE_EQ(rates.qps, 0.0);
  EXPECT_DOUBLE_EQ(rates.cache_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(rates.latency_mean_ms, 0.0);
  EXPECT_TRUE(std::isfinite(rates.cpu_ms_per_s));
}

TEST(MetricsHistoryTest, SingleSampleWindowHasNoDelta) {
  MetricsRegistry registry;
  registry.counter("query.count")->Inc(7);
  MetricsHistory history(&registry);
  history.SampleNow();
  const SeriesWindow w = history.Window(3600.0).at("query.count");
  EXPECT_EQ(w.samples, 1u);
  EXPECT_DOUBLE_EQ(w.delta, 0.0);
  EXPECT_DOUBLE_EQ(w.rate_per_s, 0.0);
  EXPECT_DOUBLE_EQ(w.last, 7.0);
}

TEST(MetricsHistoryTest, LazilyCreatedCounterGetsZeroBaseline) {
  MetricsRegistry registry;
  MetricsHistory history(&registry);
  history.SampleNow();  // Counter does not exist yet.
  // First use creates the metric mid-run — the traffic that created it
  // must still show up as a delta.
  registry.counter("query.count")->Inc(3);
  history.SampleNow();
  const SeriesWindow w = history.Window(3600.0).at("query.count");
  EXPECT_DOUBLE_EQ(w.delta, 3.0);
  EXPECT_GE(w.samples, 2u);
}

TEST(MetricsHistoryTest, CounterResetClampsToZeroDelta) {
  MetricsRegistry registry;
  Counter* c = registry.counter("query.count");
  MetricsHistory history(&registry);
  c->Inc(50);
  history.SampleNow();
  c->Reset();  // Registry reset mid-window.
  history.SampleNow();
  const SeriesWindow w = history.Window(3600.0).at("query.count");
  EXPECT_DOUBLE_EQ(w.delta, 0.0);  // Clamped, not -50.
  EXPECT_GE(w.rate_per_s, 0.0);
}

TEST(MetricsHistoryTest, GaugeDeltaMayGoNegative) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("exec.buckets_live");
  MetricsHistory history(&registry);
  g->Set(10);
  history.SampleNow();
  g->Set(4);
  history.SampleNow();
  const SeriesWindow w = history.Window(3600.0).at("exec.buckets_live");
  EXPECT_EQ(w.kind, SeriesWindow::Kind::kGauge);
  EXPECT_DOUBLE_EQ(w.last, 4.0);
  EXPECT_DOUBLE_EQ(w.delta, -6.0);
}

TEST(MetricsHistoryTest, HistogramTracksCountAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("query.latency_ms.dpo");
  MetricsHistory history(&registry);
  h->Observe(2.0);
  history.SampleNow();
  h->Observe(4.0);
  h->Observe(6.0);
  history.SampleNow();
  const SeriesWindow w = history.Window(3600.0).at("query.latency_ms.dpo");
  EXPECT_EQ(w.kind, SeriesWindow::Kind::kHistogram);
  EXPECT_DOUBLE_EQ(w.last, 3.0);       // Count.
  EXPECT_DOUBLE_EQ(w.delta, 2.0);      // Two new observations.
  EXPECT_DOUBLE_EQ(w.sum_delta, 10.0); // 4 + 6.
}

TEST(MetricsHistoryTest, DerivedRatesFromStandardMetrics) {
  MetricsRegistry registry;
  Counter* queries = registry.counter("query.count");
  Counter* hits = registry.counter("cache.hits");
  Counter* misses = registry.counter("cache.misses");
  Histogram* lat = registry.histogram("query.latency_ms.hybrid");
  MetricsHistory history(&registry);
  history.SampleNow();
  queries->Inc(10);
  hits->Inc(3);
  misses->Inc(1);
  lat->Observe(5.0);
  lat->Observe(15.0);
  history.SampleNow();

  const DerivedRates rates = history.Derived(3600.0);
  EXPECT_GT(rates.qps, 0.0);
  EXPECT_DOUBLE_EQ(rates.cache_hit_rate, 0.75);  // 3 / (3 + 1).
  EXPECT_DOUBLE_EQ(rates.latency_mean_ms, 10.0); // (5 + 15) / 2.
}

TEST(MetricsHistoryTest, CapacityBoundsEachSeries) {
  MetricsRegistry registry;
  Counter* c = registry.counter("query.count");
  MetricsHistoryOptions opts;
  opts.capacity = 4;
  MetricsHistory history(&registry, opts);
  for (int i = 0; i < 10; ++i) {
    c->Inc();
    history.SampleNow();
  }
  EXPECT_EQ(history.samples(), 10u);
  // The window sees at most `capacity` points.
  const SeriesWindow w = history.Window(3600.0).at("query.count");
  EXPECT_LE(w.samples, 4u);
  EXPECT_DOUBLE_EQ(w.last, 10.0);
}

TEST(MetricsHistoryTest, ToJsonCarriesDerivedAndSeries) {
  MetricsRegistry registry;
  registry.counter("query.count")->Inc(2);
  MetricsHistory history(&registry);
  history.SampleNow();
  history.SampleNow();
  const std::string json = history.ToJson(60.0);
  EXPECT_NE(json.find("\"derived\""), std::string::npos);
  EXPECT_NE(json.find("\"qps\""), std::string::npos);
  EXPECT_NE(json.find("\"query.count\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(MetricsHistoryTest, BackgroundSamplerStartsAndStops) {
  MetricsRegistry registry;
  registry.counter("query.count")->Inc();
  MetricsHistoryOptions opts;
  opts.interval_s = 0.01;
  MetricsHistory history(&registry, opts);
  history.Start();
  EXPECT_TRUE(history.running());
  history.Start();  // Idempotent.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (history.samples() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(history.samples(), 3u);
  history.Stop();
  EXPECT_FALSE(history.running());
  history.Stop();  // Idempotent.
  const uint64_t frozen = history.samples();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(history.samples(), frozen);
}

}  // namespace
}  // namespace flexpath
