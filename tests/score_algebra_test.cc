// Flexcheck v2 (DESIGN.md §16): the score-algebra IR, the
// pruning-soundness certifier, and the scheme registry that gates every
// optimization on a certificate.
//
// Three layers of coverage:
//   1. The certifier itself — the three built-ins certify with exactly
//      the directives the engine used to hard-code, and each refutation
//      path (non-monotone key, epsilon ties, opaque terms, malformed
//      algebras) produces its stable FX3xx code.
//   2. The registry — built-ins are pre-installed, Register() refuses
//      uncertifiable algebras with the refuting diagnostics in the
//      error, and the comparator fall-through for custom schemes agrees
//      with the algebra's own denotation.
//   3. The certificate is load-bearing — with certification
//      force-disabled through the test seam (a forged permissive
//      certificate for a provably unsound scheme), the optimized
//      execution path visibly diverges from the conservative run the
//      honest certificate forces.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "analysis/score_algebra.h"
#include "common/metrics.h"
#include "core/flexpath.h"
#include "exec/topk.h"
#include "rank/scheme_registry.h"
#include "rank/score.h"

namespace flexpath {
namespace {

// ---------------------------------------------------------------------
// The certifier on the built-ins.
// ---------------------------------------------------------------------

TEST(ScoreAlgebraTest, StructureFirstCertifiesWithAtKStop) {
  const SchemeCertificate cert = CertifyScheme(StructureFirstAlgebra());
  EXPECT_TRUE(cert.certified) << cert.ToJson();
  EXPECT_TRUE(cert.well_formed.holds);
  EXPECT_TRUE(cert.relaxation_monotone.holds);
  EXPECT_TRUE(cert.order_invariant.holds);
  EXPECT_TRUE(cert.truncation_safe.holds);
  EXPECT_TRUE(cert.cache_exact.holds);
  // Exactly the directives the engine hard-coded before flexcheck v2:
  // ss strictly dominates, so stop at K and prune with no ks bonus.
  EXPECT_EQ(cert.stop_rule, DpoStopRule::kAtK);
  EXPECT_TRUE(cert.threshold_pruning);
  EXPECT_EQ(cert.prune_ks_factor, 0.0);
  EXPECT_EQ(cert.expression, "lex(ss, ks)");
}

TEST(ScoreAlgebraTest, KeywordFirstCertifiesButRunsExhaustive) {
  const SchemeCertificate cert = CertifyScheme(KeywordFirstAlgebra());
  EXPECT_TRUE(cert.certified) << cert.ToJson();
  // ks dominates, so no bound on future relaxation rounds is provable:
  // every round runs and threshold pruning is off — again exactly the
  // old hard-coded behavior.
  EXPECT_EQ(cert.stop_rule, DpoStopRule::kExhaustive);
  EXPECT_FALSE(cert.threshold_pruning);
  EXPECT_EQ(cert.expression, "lex(ks, ss)");
}

TEST(ScoreAlgebraTest, CombinedCertifiesWithPenaltyMargin) {
  const SchemeCertificate cert = CertifyScheme(CombinedAlgebra());
  EXPECT_TRUE(cert.certified) << cert.ToJson();
  EXPECT_EQ(cert.stop_rule, DpoStopRule::kPenaltyMargin);
  EXPECT_EQ(cert.stop_margin_factor, 1.0);
  EXPECT_TRUE(cert.threshold_pruning);
  EXPECT_EQ(cert.prune_ks_factor, 1.0);
  EXPECT_EQ(cert.expression, "(ss + ks)");
}

// A certified scheme produces an empty diagnostic report.
TEST(ScoreAlgebraTest, CertifiedSchemesReportNoDiagnostics) {
  for (const SchemeAlgebra& alg :
       {StructureFirstAlgebra(), KeywordFirstAlgebra(), CombinedAlgebra()}) {
    EXPECT_TRUE(CertifyScheme(alg).Report().diagnostics.empty()) << alg.name;
  }
}

// ---------------------------------------------------------------------
// Refutation paths, one stable FX3xx code each.
// ---------------------------------------------------------------------

// "Prefer more relaxed": the primary key decreases in ss, breaking
// Theorem 3 prefix monotonicity — FX301.
TEST(ScoreAlgebraTest, NonMonotoneKeyRefutedWithFx301) {
  SchemeAlgebra inverted;
  inverted.name = "prefer-relaxed";
  inverted.keys.push_back(ScoreExpr::Weighted(-1.0, ScoreExpr::Ss()));
  inverted.keys.push_back(ScoreExpr::Ks());
  const SchemeCertificate cert = CertifyScheme(inverted);
  EXPECT_FALSE(cert.certified);
  EXPECT_FALSE(cert.relaxation_monotone.holds);
  EXPECT_EQ(cert.relaxation_monotone.code, kDiagSchemeNotMonotone);
  // Monotonicity is independent of the merge-order properties.
  EXPECT_TRUE(cert.order_invariant.holds);
  EXPECT_TRUE(cert.truncation_safe.holds);
  // Conservative directives: nothing is licensed.
  EXPECT_EQ(cert.stop_rule, DpoStopRule::kExhaustive);
  EXPECT_FALSE(cert.threshold_pruning);
}

// A penalty-weighted scheme IS monotone: kPenalty evaluates as -ss, so
// Weighted(-1, Penalty) has d/d(ss) = +1.
TEST(ScoreAlgebraTest, NegatedPenaltyTermIsMonotone) {
  SchemeAlgebra alg;
  alg.name = "penalty-averse";
  alg.keys.push_back(ScoreExpr::Sum(
      {ScoreExpr::Weighted(-1.0, ScoreExpr::Penalty()), ScoreExpr::Ks()}));
  const SchemeCertificate cert = CertifyScheme(alg);
  EXPECT_TRUE(cert.certified) << cert.ToJson();
  EXPECT_EQ(cert.stop_rule, DpoStopRule::kPenaltyMargin);
}

// Epsilon tie-banding is not transitive, so merge order would leak into
// the answer list — FX302, and FX303 follows (truncation safety needs
// order invariance).
TEST(ScoreAlgebraTest, EpsilonTiesRefutedWithFx302AndFx303) {
  SchemeAlgebra banded = CombinedAlgebra();
  banded.name = "combined-banded";
  banded.tie_epsilon = 0.01;
  const SchemeCertificate cert = CertifyScheme(banded);
  EXPECT_FALSE(cert.certified);
  EXPECT_TRUE(cert.relaxation_monotone.holds);
  EXPECT_FALSE(cert.order_invariant.holds);
  EXPECT_EQ(cert.order_invariant.code, kDiagSchemeNotOrderInvariant);
  EXPECT_FALSE(cert.truncation_safe.holds);
  EXPECT_EQ(cert.truncation_safe.code, kDiagSchemeNotTruncationSafe);
  // Ties are a comparator property; cached tuples stay exact.
  EXPECT_TRUE(cert.cache_exact.holds);
}

// An opaque term (external UDF) refutes all four properties.
TEST(ScoreAlgebraTest, OpaqueTermRefutesEverything) {
  SchemeAlgebra udf;
  udf.name = "udf-scored";
  udf.keys.push_back(
      ScoreExpr::Sum({ScoreExpr::Ss(), ScoreExpr::Opaque("ml_model")}));
  const SchemeCertificate cert = CertifyScheme(udf);
  EXPECT_FALSE(cert.certified);
  EXPECT_EQ(cert.relaxation_monotone.code, kDiagSchemeNotMonotone);
  EXPECT_EQ(cert.order_invariant.code, kDiagSchemeNotOrderInvariant);
  EXPECT_EQ(cert.truncation_safe.code, kDiagSchemeNotTruncationSafe);
  EXPECT_EQ(cert.cache_exact.code, kDiagSchemeNotCacheExact);
  // Four refuted properties, four diagnostics.
  EXPECT_EQ(cert.Report().diagnostics.size(), 4u);
}

// Malformed algebras short-circuit: FX305 alone, nothing else evaluated.
TEST(ScoreAlgebraTest, MalformedAlgebrasReportFx305Alone) {
  SchemeAlgebra empty;
  empty.name = "no-keys";
  {
    const SchemeCertificate cert = CertifyScheme(empty);
    EXPECT_FALSE(cert.certified);
    EXPECT_EQ(cert.well_formed.code, kDiagSchemeMalformed);
    ASSERT_EQ(cert.Report().diagnostics.size(), 1u);
    EXPECT_EQ(cert.Report().diagnostics[0].code, kDiagSchemeMalformed);
  }
  SchemeAlgebra nan_weight;
  nan_weight.name = "nan-weight";
  nan_weight.keys.push_back(ScoreExpr::Weighted(
      std::numeric_limits<double>::quiet_NaN(), ScoreExpr::Ss()));
  EXPECT_EQ(CertifyScheme(nan_weight).well_formed.code, kDiagSchemeMalformed);

  // Arity violations are only reachable by hand-building nodes (the
  // factories enforce arity), but the certifier must still catch them.
  SchemeAlgebra bad_arity;
  bad_arity.name = "bad-arity";
  ScoreExpr weighted;
  weighted.kind = ScoreExpr::Kind::kWeighted;
  weighted.value = 1.0;  // No operand.
  bad_arity.keys.push_back(weighted);
  EXPECT_EQ(CertifyScheme(bad_arity).well_formed.code, kDiagSchemeMalformed);
}

// ---------------------------------------------------------------------
// Certificate serialization.
// ---------------------------------------------------------------------

TEST(ScoreAlgebraTest, CertificateJsonCarriesVerdictsAndDirectives) {
  const std::string json = CertifyScheme(CombinedAlgebra()).ToJson();
  EXPECT_NE(json.find("\"scheme\":\"combined\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"certified\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"relaxation_monotone\""), std::string::npos);
  EXPECT_NE(json.find("\"stop_rule\":\"penalty-margin\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"threshold_pruning\":true"), std::string::npos);

  const std::string all = FlexPath::SchemeCertificatesJson();
  EXPECT_EQ(all.front(), '[');
  EXPECT_NE(all.find("\"structure-first\""), std::string::npos);
  EXPECT_NE(all.find("\"keyword-first\""), std::string::npos);
  EXPECT_NE(all.find("\"combined\""), std::string::npos);
}

// ---------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------

TEST(ScoreAlgebraTest, BuiltinsArePreRegisteredAndCertified) {
  SchemeRegistry& reg = SchemeRegistry::Global();
  for (RankScheme s : {RankScheme::kStructureFirst, RankScheme::kKeywordFirst,
                       RankScheme::kCombined}) {
    const SchemeCertificate* cert = reg.Certificate(s);
    ASSERT_NE(cert, nullptr);
    EXPECT_TRUE(cert->certified);
    ASSERT_NE(reg.Name(s), nullptr);
    EXPECT_STREQ(reg.Name(s), RankSchemeName(s));
    ASSERT_TRUE(reg.ByName(reg.Name(s)).has_value());
    EXPECT_EQ(*reg.ByName(reg.Name(s)), s);
  }
  EXPECT_EQ(reg.Certificate(static_cast<RankScheme>(200)), nullptr);
}

TEST(ScoreAlgebraTest, RegisterRefusesUncertifiableSchemesWithFxCodes) {
  SchemeAlgebra inverted;
  inverted.name = "prefer-relaxed-register";
  inverted.keys.push_back(ScoreExpr::Weighted(-1.0, ScoreExpr::Ss()));
  Result<RankScheme> r = SchemeRegistry::Global().Register(inverted);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(kDiagSchemeNotMonotone),
            std::string::npos)
      << r.status().ToString();
  // The refusal really kept it out.
  EXPECT_FALSE(
      SchemeRegistry::Global().ByName("prefer-relaxed-register").has_value());

  SchemeAlgebra anonymous;
  anonymous.keys.push_back(ScoreExpr::Ss());
  EXPECT_FALSE(SchemeRegistry::Global().Register(anonymous).ok());

  SchemeAlgebra duplicate = CombinedAlgebra();  // Name already taken.
  EXPECT_FALSE(SchemeRegistry::Global().Register(duplicate).ok());
}

TEST(ScoreAlgebraTest, RegisteredCustomSchemeRanksByItsAlgebra) {
  SchemeAlgebra half = CombinedAlgebra();
  half.name = "half-keyword";
  half.keys.clear();
  half.keys.push_back(ScoreExpr::Sum(
      {ScoreExpr::Ss(), ScoreExpr::Weighted(0.5, ScoreExpr::Ks())}));
  Result<RankScheme> r = SchemeRegistry::Global().Register(half);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RankScheme scheme = *r;
  EXPECT_GE(static_cast<uint8_t>(scheme), 3u);
  EXPECT_STREQ(RankSchemeName(scheme), "half-keyword");

  // The engine comparator (registry fall-through) and the algebra's own
  // denotation agree on a grid of score pairs.
  const double grid[] = {0.0, 0.25, 0.5, 1.0, 2.0};
  const SchemeAlgebra* alg = SchemeRegistry::Global().Algebra(scheme);
  ASSERT_NE(alg, nullptr);
  for (double a_ss : grid) {
    for (double a_ks : grid) {
      for (double b_ss : grid) {
        for (double b_ks : grid) {
          const AnswerScore a{a_ss, a_ks};
          const AnswerScore b{b_ss, b_ks};
          EXPECT_EQ(RanksBefore(a, b, scheme),
                    alg->RanksBefore(a_ss, a_ks, b_ss, b_ks));
        }
      }
    }
  }
}

// The built-in fast path in RanksBefore must agree with the built-ins'
// algebra denotations (pinning the hand-inlined comparisons to the IR).
TEST(ScoreAlgebraTest, BuiltinComparatorsMatchTheirAlgebras) {
  const struct {
    RankScheme scheme;
    SchemeAlgebra algebra;
  } cases[] = {
      {RankScheme::kStructureFirst, StructureFirstAlgebra()},
      {RankScheme::kKeywordFirst, KeywordFirstAlgebra()},
      {RankScheme::kCombined, CombinedAlgebra()},
  };
  const double grid[] = {0.0, 0.5, 1.0, 1.5, 3.0};
  for (const auto& c : cases) {
    for (double a_ss : grid) {
      for (double a_ks : grid) {
        for (double b_ss : grid) {
          for (double b_ks : grid) {
            const AnswerScore a{a_ss, a_ks};
            const AnswerScore b{b_ss, b_ks};
            EXPECT_EQ(RanksBefore(a, b, c.scheme),
                      c.algebra.RanksBefore(a_ss, a_ks, b_ss, b_ks))
                << c.algebra.name;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// The certificate gates execution.
// ---------------------------------------------------------------------

class CertifiedExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One exact match for //article[./section[./paragraph]] and two
    // articles that only match after relaxation (section without a
    // paragraph / bare article): under an inverted "prefer more
    // relaxed" scheme the relaxed answers outrank the exact one.
    const char* docs[] = {
        R"(<article><section><paragraph>exact match</paragraph>
           </section></article>)",
        R"(<article><section>relaxed: no paragraph</section></article>)",
        R"(<article>very relaxed: no section</article>)",
    };
    for (const char* xml : docs) {
      Result<DocId> id = fp_.AddDocumentXml(xml);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    ASSERT_TRUE(fp_.Build().ok());
    Result<Tpq> q = fp_.Parse("//article[./section[./paragraph]]");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    q_ = *std::move(q);
  }

  FlexPath fp_;
  Tpq q_;
};

TEST_F(CertifiedExecutionTest, UnregisteredSchemeIsRejectedUpFront) {
  TopKOptions opts;
  opts.k = 3;
  opts.num_threads = 1;
  opts.scheme = static_cast<RankScheme>(29);  // Never registered.
  Result<TopKResult> r = fp_.QueryTpq(q_, opts, Algorithm::kDpo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("register"), std::string::npos)
      << r.status().ToString();
}

TEST_F(CertifiedExecutionTest, FlexPathCertifySchemeSurfacesCertificates) {
  Result<SchemeCertificate> cert = fp_.CertifyScheme(RankScheme::kCombined);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->certified);
  EXPECT_EQ(cert->scheme, "combined");
  EXPECT_FALSE(fp_.CertifyScheme(static_cast<RankScheme>(30)).ok());
}

// The load-bearing test: the certifier's refusal is what keeps the
// optimized paths sound. Force-disable certification through the test
// seam — forge a permissive certificate (at-K stopping) for a provably
// non-monotone scheme — and the DPO run visibly diverges from the
// conservative exhaustive run the honest (refuting) certificate forces.
TEST_F(CertifiedExecutionTest, ForgedCertificateMakesPrunedRunDiverge) {
  SchemeAlgebra inverted;
  inverted.name = "prefer-relaxed-exec";
  inverted.keys.push_back(ScoreExpr::Weighted(-1.0, ScoreExpr::Ss()));
  inverted.keys.push_back(ScoreExpr::Ks());

  // The front door refuses this scheme outright.
  ASSERT_FALSE(SchemeRegistry::Global().Register(inverted).ok());

  // Install it with its honest certificate (monotonicity refuted, so
  // directives are conservative: exhaustive, no pruning). This is the
  // ground truth: every relaxation round runs, and the most-relaxed
  // answer wins under the inverted order.
  const SchemeCertificate honest = CertifyScheme(inverted);
  ASSERT_EQ(honest.stop_rule, DpoStopRule::kExhaustive);
  ASSERT_FALSE(honest.threshold_pruning);
  const RankScheme scheme =
      SchemeRegistry::Global().RegisterForTest(inverted, honest);

  TopKOptions opts;
  opts.k = 1;
  opts.num_threads = 1;
  opts.scheme = scheme;
  Result<TopKResult> truth = fp_.QueryTpq(q_, opts, Algorithm::kDpo);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  ASSERT_EQ(truth->answers.size(), 1u);

  // Forge the certificate the certifier refused to issue: claim the
  // scheme is monotone and licenses at-K stopping (the structure-first
  // directive). DPO now stops at the first round that fills K.
  SchemeCertificate forged = honest;
  forged.relaxation_monotone = PropertyVerdict{true, "", "forged by test"};
  forged.certified = true;
  forged.stop_rule = DpoStopRule::kAtK;
  SchemeRegistry::Global().ReplaceCertificateForTest(scheme, forged);
  Result<TopKResult> pruned = fp_.QueryTpq(q_, opts, Algorithm::kDpo);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  ASSERT_EQ(pruned->answers.size(), 1u);

  // Divergence: the exhaustive run surfaces a more-relaxed (lower-ss)
  // answer that the forged early stop never reaches.
  EXPECT_LT(truth->answers[0].score.ss, pruned->answers[0].score.ss);
  EXPECT_LT(truth->relaxations_used, pruned->relaxations_used + 100);
  EXPECT_NE(AnswersDigest(truth->answers),
            AnswersDigest(pruned->answers));

  // Restore the honest certificate — the registry is process-wide.
  SchemeRegistry::Global().ReplaceCertificateForTest(scheme, honest);
}

// Cache/shard mutual exclusion (DESIGN.md §15): a sharded run that also
// requests the result cache keeps its answers but surfaces the conflict
// through the query.cache_disabled_sharded counter (and an FX310 log
// line + trace annotation).
TEST_F(CertifiedExecutionTest, ShardedRunDisablesCacheAndCountsIt) {
  Counter* disabled =
      MetricsRegistry::Global().counter("query.cache_disabled_sharded");
  const uint64_t before = disabled->Value();

  TopKOptions cached_sharded;
  cached_sharded.k = 3;
  cached_sharded.num_threads = 1;
  cached_sharded.num_shards = 2;
  cached_sharded.result_cache.tier = CacheTier::kShared;
  Result<TopKResult> a = fp_.QueryTpq(q_, cached_sharded, Algorithm::kDpo);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(disabled->Value(), before + 1);

  // Answers match the cache-off sharded run — the cache was dropped,
  // not the sharding.
  TopKOptions plain_sharded = cached_sharded;
  plain_sharded.result_cache.tier = CacheTier::kOff;
  Result<TopKResult> b = fp_.QueryTpq(q_, plain_sharded, Algorithm::kDpo);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(AnswersDigest(a->answers), AnswersDigest(b->answers));
  // The cache-off run does not touch the counter.
  EXPECT_EQ(disabled->Value(), before + 1);
}

}  // namespace
}  // namespace flexpath
