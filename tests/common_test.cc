#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace flexpath {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = []() { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FLEXPATH_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values in [-3,3] should appear";
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // The first 10 of 100 Zipf(1.0) ranks carry ~56% of the mass.
  EXPECT_GT(low, n / 3);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(19);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Weighted(w), 1u);
  }
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("XML Streaming"), "xml streaming");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("contains(...)", "contains"));
  EXPECT_FALSE(StartsWith("con", "contains"));
  EXPECT_TRUE(EndsWith("query.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", "query.xml"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
}

}  // namespace
}  // namespace flexpath
