// Tests for the packed on-disk storage engine (DESIGN.md §17): the
// varint/delta-block codec, writer→reader round trips proving the
// mmap-backed read path serves exactly what the in-memory build serves,
// rejection (with a Status, never a crash) of corrupt / truncated /
// wrong-version files, buffer-pool accounting, and the lazy corpus
// backing that defers document decodes until a query touches them.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "core/flexpath.h"
#include "ir/inverted_index.h"
#include "stats/document_stats.h"
#include "storage/codec.h"
#include "storage/format.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xml/corpus.h"

namespace flexpath {
namespace {

using storage::DecodeKeyBlocks;
using storage::DecodeOneBlock;
using storage::EncodeKeyBlocks;
using storage::GetVarint;
using storage::kBlockKeys;
using storage::PutVarint;
using storage::SkipEntry;
using storage::StorageReader;
using storage::WritePackedCorpus;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- Codec -----------------------------------------------------------------

TEST(StorageCodecTest, VarintRoundTripEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (uint64_t{1} << 32) - 1,
                             uint64_t{1} << 32,
                             uint64_t{1} << 63,
                             ~uint64_t{0}};
  std::string buf;
  for (uint64_t v : values) PutVarint(v, &buf);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(StorageCodecTest, VarintRejectsTruncationAndOverflow) {
  size_t pos = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint("", &pos, &out).ok());
  // A continuation bit with no following byte.
  pos = 0;
  EXPECT_FALSE(GetVarint(std::string("\x80", 1), &pos, &out).ok());
  // 10 continuation bytes followed by a value byte overflows 64 bits.
  std::string over(10, '\xFF');
  over.push_back('\x7F');
  pos = 0;
  EXPECT_FALSE(GetVarint(over, &pos, &out).ok());
}

TEST(StorageCodecTest, KeyBlocksRoundTripAtBlockBoundaries) {
  Rng rng(31337);
  for (size_t n :
       {size_t{1}, kBlockKeys - 1, kBlockKeys, kBlockKeys + 1,
        3 * kBlockKeys + 7}) {
    std::vector<uint64_t> keys;
    uint64_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      k += 1 + rng.Uniform(1000);
      keys.push_back(k);
    }
    std::string bytes;
    std::vector<SkipEntry> skips;
    ASSERT_TRUE(EncodeKeyBlocks(keys, &bytes, &skips).ok()) << n;
    EXPECT_EQ(skips.size(), (n + kBlockKeys - 1) / kBlockKeys) << n;

    std::vector<uint64_t> back;
    ASSERT_TRUE(DecodeKeyBlocks(bytes, n, &back).ok()) << n;
    EXPECT_EQ(back, keys) << n;

    // Per-block decode via the skip table reassembles the sequence
    // (DecodeOneBlock replaces its output: collect block by block).
    std::vector<uint64_t> assembled;
    std::vector<uint64_t> block;
    for (const SkipEntry& s : skips) {
      EXPECT_EQ(s.first_key, keys[assembled.size()]);
      ASSERT_TRUE(DecodeOneBlock(bytes, s.offset, s.count, &block).ok());
      ASSERT_EQ(block.size(), s.count);
      assembled.insert(assembled.end(), block.begin(), block.end());
    }
    EXPECT_EQ(assembled, keys) << n;
  }
}

TEST(StorageCodecTest, KeyBlocksRejectNonIncreasingKeys) {
  std::string bytes;
  std::vector<SkipEntry> skips;
  EXPECT_FALSE(EncodeKeyBlocks({5, 5}, &bytes, &skips).ok());
  bytes.clear();
  skips.clear();
  EXPECT_FALSE(EncodeKeyBlocks({5, 4}, &bytes, &skips).ok());
  // A repeat exactly at the block boundary (key[128] == key[127]) must
  // be caught too — the boundary key starts a fresh block, so a naive
  // delta check would miss it.
  std::vector<uint64_t> boundary;
  for (uint64_t i = 0; i < kBlockKeys; ++i) boundary.push_back(i);
  boundary.push_back(kBlockKeys - 1);
  bytes.clear();
  skips.clear();
  EXPECT_FALSE(EncodeKeyBlocks(boundary, &bytes, &skips).ok());
}

TEST(StorageCodecTest, DecodeKeyBlocksRejectsCorruption) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 1; i <= 200; ++i) keys.push_back(i * 3);
  std::string bytes;
  std::vector<SkipEntry> skips;
  ASSERT_TRUE(EncodeKeyBlocks(keys, &bytes, &skips).ok());

  std::vector<uint64_t> out;
  // Wrong expected count (both directions).
  EXPECT_FALSE(DecodeKeyBlocks(bytes, keys.size() - 1, &out).ok());
  EXPECT_FALSE(DecodeKeyBlocks(bytes, keys.size() + 1, &out).ok());
  // Truncation mid-stream.
  EXPECT_FALSE(
      DecodeKeyBlocks(std::string_view(bytes).substr(0, bytes.size() / 2),
                      keys.size(), &out)
          .ok());
  // Trailing garbage.
  EXPECT_FALSE(DecodeKeyBlocks(bytes + "x", keys.size(), &out).ok());
  // A zero delta (decodes to a non-increasing key) is structural
  // corruption: [first_key=1][delta=0].
  std::string zero_delta;
  PutVarint(1, &zero_delta);
  PutVarint(0, &zero_delta);
  EXPECT_FALSE(DecodeKeyBlocks(zero_delta, 2, &out).ok());
}

// --- Writer → reader round trip -------------------------------------------

// One corpus, packed and re-opened; every reader surface must serve
// exactly what the in-memory structures built over the same corpus
// serve. This is the storage-level half of the byte-identity contract
// (the query-level half lives in differential_test.cc).
class PackedRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(20260807);
    for (int i = 0; i < 5; ++i) {
      corpus_.Add(
          testing_util::RandomDocument(&rng, corpus_.tags(), 120));
    }
    XMarkOptions xmark;
    xmark.target_bytes = 60000;
    xmark.seed = 11;
    Result<Document> doc = GenerateXMark(xmark, corpus_.tags());
    ASSERT_TRUE(doc.ok());
    corpus_.Add(std::move(doc).value());

    path_ = TempPath("storage_roundtrip.fxp");
    ASSERT_TRUE(WritePackedCorpus(corpus_, tok_, path_).ok());
    Result<std::shared_ptr<StorageReader>> reader =
        StorageReader::Open(path_);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    reader_ = std::move(reader).value();
  }

  void TearDown() override { std::remove(path_.c_str()); }

  Corpus corpus_;
  TokenizerOptions tok_;
  std::string path_;
  std::shared_ptr<StorageReader> reader_;
};

TEST_F(PackedRoundTripTest, HeaderAndTagsMatch) {
  EXPECT_EQ(reader_->DocCount(), corpus_.size());
  EXPECT_EQ(reader_->header().total_nodes, corpus_.TotalNodes());
  EXPECT_EQ(reader_->header().tag_count,
            std::as_const(corpus_).tags().size());
  EXPECT_EQ(reader_->tokenizer_options().stem, tok_.stem);
  EXPECT_EQ(reader_->tokenizer_options().drop_stopwords,
            tok_.drop_stopwords);

  TagDict dict;
  ASSERT_TRUE(reader_->LoadTags(&dict).ok());
  ASSERT_EQ(dict.size(), std::as_const(corpus_).tags().size());
  for (TagId t = 0; t < dict.size(); ++t) {
    EXPECT_EQ(dict.Name(t), std::as_const(corpus_).tags().Name(t));
  }
  // Positional ids require an empty dictionary.
  TagDict nonempty;
  nonempty.Intern("pre-existing");
  EXPECT_FALSE(reader_->LoadTags(&nonempty).ok());
}

TEST_F(PackedRoundTripTest, DocumentsMaterializeWithFullFidelity) {
  for (DocId d = 0; d < corpus_.size(); ++d) {
    const Document& expect = corpus_.doc(d);
    EXPECT_EQ(reader_->DocNodeCount(d), expect.size());
    Result<Document> got = reader_->MaterializeDocument(d);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << " doc " << d;
    ASSERT_EQ(got->size(), expect.size()) << "doc " << d;
    for (NodeId n = 0; n < expect.size(); ++n) {
      const Element& a = expect.node(n);
      const Element& b = got->node(n);
      EXPECT_EQ(a.tag, b.tag);
      EXPECT_EQ(a.parent, b.parent);
      EXPECT_EQ(a.first_child, b.first_child);
      EXPECT_EQ(a.next_sibling, b.next_sibling);
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.end, b.end);
      EXPECT_EQ(a.level, b.level);
      EXPECT_EQ(a.text, b.text);
      ASSERT_EQ(a.attrs.size(), b.attrs.size());
      for (size_t i = 0; i < a.attrs.size(); ++i) {
        EXPECT_EQ(a.attrs[i].name, b.attrs[i].name);
        EXPECT_EQ(a.attrs[i].value, b.attrs[i].value);
      }
    }
  }
}

TEST_F(PackedRoundTripTest, ElementTablesMatchCorpusScan) {
  // Reference tables straight from the corpus: per tag, NodeRefs in
  // (doc, node) order — the exact order the in-memory ElementIndex
  // serves.
  std::map<TagId, std::vector<NodeRef>> expect;
  for (DocId d = 0; d < corpus_.size(); ++d) {
    const Document& doc = corpus_.doc(d);
    for (NodeId n = 0; n < doc.size(); ++n) {
      expect[doc.node(n).tag].push_back(NodeRef{d, n});
    }
  }
  for (TagId t = 0; t < std::as_const(corpus_).tags().size(); ++t) {
    const std::vector<NodeRef>& want = expect[t];
    EXPECT_EQ(reader_->TagListCount(t), want.size()) << "tag " << t;
    std::shared_ptr<const std::vector<NodeRef>> got = reader_->TagList(t);
    ASSERT_NE(got, nullptr) << "tag " << t;
    EXPECT_EQ(*got, want) << "tag " << t;
  }
}

TEST_F(PackedRoundTripTest, PostingsMatchInMemoryIndex) {
  InvertedIndex mem(&corpus_, tok_);
  EXPECT_EQ(reader_->TermCount(), mem.vocabulary_size());
  size_t terms_checked = 0;
  mem.ForEachTerm([&](const std::string& term, const PostingList& list) {
    ++terms_checked;
    uint32_t df = 0;
    uint64_t total_tf = 0;
    ASSERT_TRUE(reader_->TermInfo(term, &df, &total_tf)) << term;
    EXPECT_EQ(df, list.postings.size()) << term;
    EXPECT_EQ(total_tf, list.tf_prefix.back()) << term;

    std::shared_ptr<const PostingList> got = reader_->FindPostings(term);
    ASSERT_NE(got, nullptr) << term;
    ASSERT_EQ(got->postings.size(), list.postings.size()) << term;
    for (size_t i = 0; i < list.postings.size(); ++i) {
      EXPECT_EQ(got->postings[i].node, list.postings[i].node) << term;
      EXPECT_EQ(got->postings[i].tf, list.postings[i].tf) << term;
      EXPECT_EQ(got->postings[i].positions, list.postings[i].positions)
          << term;
    }
    EXPECT_EQ(got->tf_prefix, list.tf_prefix) << term;
  });
  EXPECT_GT(terms_checked, 0u);
  uint32_t df = 0;
  uint64_t total_tf = 0;
  EXPECT_FALSE(reader_->TermInfo("no-such-term-anywhere", &df, &total_tf));
  EXPECT_EQ(reader_->FindPostings("no-such-term-anywhere"), nullptr);
}

TEST_F(PackedRoundTripTest, RangeTermFrequencySeeksMatchFullDecode) {
  InvertedIndex mem(&corpus_, tok_);
  Rng rng(4242);
  size_t terms = 0;
  mem.ForEachTerm([&](const std::string& term, const PostingList& list) {
    if (++terms % 17 != 0) return;  // sample: full decode is the oracle
    const uint64_t max_key =
        (uint64_t{list.postings.back().node.doc} << 32 |
         list.postings.back().node.node) +
        2;
    for (int trial = 0; trial < 8; ++trial) {
      uint64_t lo = rng.Uniform(max_key);
      uint64_t hi = rng.Uniform(max_key);
      if (lo > hi) std::swap(lo, hi);
      uint64_t expect = 0;
      for (const Posting& p : list.postings) {
        const uint64_t key = uint64_t{p.node.doc} << 32 | p.node.node;
        if (key >= lo && key < hi) expect += p.tf;
      }
      Result<uint64_t> got = reader_->RangeTermFrequency(term, lo, hi);
      ASSERT_TRUE(got.ok()) << term;
      EXPECT_EQ(*got, expect)
          << term << " [" << lo << "," << hi << ")";
    }
  });
  ASSERT_GT(terms, 0u);
}

TEST_F(PackedRoundTripTest, StatsTablesMatchExport) {
  DocumentStats mem(&corpus_);
  const DocumentStats::Tables expect = mem.ExportTables();
  Result<DocumentStats::Tables> got = reader_->LoadStatsTables();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->tag_counts, expect.tag_counts);
  EXPECT_EQ(got->pc_counts, expect.pc_counts);
  EXPECT_EQ(got->ad_counts, expect.ad_counts);
  EXPECT_EQ(got->pc_exists, expect.pc_exists);
  EXPECT_EQ(got->ad_exists, expect.ad_exists);
}

TEST_F(PackedRoundTripTest, BufferPoolsCountHitsMissesAndEvict) {
  StorageReader::PoolStats s0 = reader_->GetElemPoolStats();
  EXPECT_EQ(s0.hits, 0u);
  EXPECT_EQ(s0.misses, 0u);

  reader_->TagList(0);
  reader_->TagList(0);
  StorageReader::PoolStats s1 = reader_->GetElemPoolStats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.hits, 1u);
  EXPECT_GT(s1.bytes, 0u);

  // A tiny budget forces eviction of unpinned entries; the pool must
  // keep functioning (decode again on miss) and report the eviction.
  reader_->SetPoolBudgets(1, 1);
  for (TagId t = 0; t < std::as_const(corpus_).tags().size(); ++t) {
    reader_->TagList(t);
  }
  StorageReader::PoolStats s2 = reader_->GetElemPoolStats();
  EXPECT_GT(s2.evictions, 0u);
  EXPECT_EQ(s2.budget, 1u);
  std::shared_ptr<const std::vector<NodeRef>> again = reader_->TagList(0);
  ASSERT_NE(again, nullptr);
}

TEST_F(PackedRoundTripTest, InspectJsonNamesEverySection) {
  const std::string json = reader_->InspectJson();
  for (const char* field :
       {"\"magic\"", "\"version\"", "\"page_size\"", "\"sections\"",
        "tag_names", "doc_dir", "node_streams", "elem_dir", "elem_blocks",
        "elem_skips", "stats", "term_dir", "term_strings", "post_blocks",
        "post_skips"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

// --- Corrupt / truncated / wrong-version files -----------------------------

class PackedCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto corpus = testing_util::CorpusFromXml({
        "<site><item id=\"i1\"><name>gold ring</name></item></site>",
        "<site><item><name>silver coin</name></item></site>",
    });
    path_ = TempPath("storage_corrupt.fxp");
    ASSERT_TRUE(WritePackedCorpus(*corpus, TokenizerOptions{}, path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GE(bytes_.size(), sizeof(storage::FileHeader));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Writes `mutated` and expects Open to fail with `needle` in the
  // message.
  void ExpectOpenFails(const std::string& mutated,
                       const std::string& needle) {
    WriteFileBytes(path_, mutated);
    Result<std::shared_ptr<StorageReader>> r = StorageReader::Open(path_);
    ASSERT_FALSE(r.ok()) << "expected failure containing: " << needle;
    EXPECT_NE(r.status().ToString().find(needle), std::string::npos)
        << r.status().ToString();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(PackedCorruptionTest, RejectsBadMagic) {
  std::string m = bytes_;
  m[0] ^= 0x40;
  ExpectOpenFails(m, "bad magic");
}

TEST_F(PackedCorruptionTest, RejectsUnsupportedVersion) {
  std::string m = bytes_;
  uint32_t version = 99;
  std::memcpy(&m[offsetof(storage::FileHeader, version)], &version,
              sizeof(version));
  ExpectOpenFails(m, "unsupported packed corpus version 99");
}

TEST_F(PackedCorruptionTest, RejectsForeignEndianness) {
  std::string m = bytes_;
  uint32_t swapped = __builtin_bswap32(storage::kEndianTag);
  std::memcpy(&m[offsetof(storage::FileHeader, endian_tag)], &swapped,
              sizeof(swapped));
  ExpectOpenFails(m, "endianness");
}

TEST_F(PackedCorruptionTest, RejectsTruncation) {
  ExpectOpenFails(bytes_.substr(0, bytes_.size() - 1), "truncated");
  ExpectOpenFails(bytes_.substr(0, bytes_.size() / 2), "truncated");
  ExpectOpenFails(bytes_.substr(0, 16), "");
}

TEST_F(PackedCorruptionTest, RejectsMissingFile) {
  EXPECT_FALSE(StorageReader::Open(path_ + ".does-not-exist").ok());
}

// --- Lazy corpus backing through FlexPath ----------------------------------

TEST(PackedFlexPathTest, OpenIsLazyAndDocSizeNeedsNoDecode) {
  FlexPath mem;
  Rng rng(808);
  for (int i = 0; i < 4; ++i) {
    mem.AddDocument(testing_util::RandomDocument(&rng, mem.tags(), 80));
  }
  const std::string path = TempPath("storage_lazy.fxp");
  ASSERT_TRUE(mem.SavePacked(path).ok());
  ASSERT_TRUE(mem.Build().ok());

  Counter* decodes = MetricsRegistry::Global().counter("storage.doc_decodes");
  const uint64_t before_open = decodes->Value();
  FlexPath packed;
  ASSERT_TRUE(packed.OpenPacked(path).ok());
  const Corpus& corpus = packed.corpus();
  ASSERT_EQ(corpus.size(), mem.corpus().size());
  for (DocId d = 0; d < corpus.size(); ++d) {
    EXPECT_EQ(corpus.DocSize(d), mem.corpus().doc(d).size());
  }
  // Opening + DocSize must not have decoded a single node stream.
  EXPECT_EQ(decodes->Value(), before_open);

  // First touch decodes exactly one document; a second touch is served
  // from the materialized slot.
  (void)corpus.doc(1);
  EXPECT_EQ(decodes->Value(), before_open + 1);
  (void)corpus.doc(1);
  EXPECT_EQ(decodes->Value(), before_open + 1);

  EXPECT_NE(packed.packed_reader(), nullptr);
  std::remove(path.c_str());
}

TEST(PackedFlexPathTest, OpenPackedRequiresFreshInstance) {
  FlexPath mem;
  Rng rng(809);
  mem.AddDocument(testing_util::RandomDocument(&rng, mem.tags(), 40));
  const std::string path = TempPath("storage_fresh.fxp");
  ASSERT_TRUE(mem.SavePacked(path).ok());
  ASSERT_TRUE(mem.Build().ok());
  // Already built: refuse.
  EXPECT_FALSE(mem.OpenPacked(path).ok());
  // Documents added but not built: refuse too (the packed file is the
  // corpus; mixing is undefined).
  FlexPath half;
  half.AddDocument(testing_util::RandomDocument(&rng, half.tags(), 20));
  EXPECT_FALSE(half.OpenPacked(path).ok());
  std::remove(path.c_str());
}

TEST(PackedFlexPathTest, SavePackedRefusesEmptyCorpus) {
  FlexPath empty;
  EXPECT_FALSE(empty.SavePacked(TempPath("storage_empty.fxp")).ok());
}

}  // namespace
}  // namespace flexpath
