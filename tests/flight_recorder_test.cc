#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace flexpath {
namespace {

// A private recorder per test would be ideal, but the API is a process
// global by design (the pipeline records unconditionally); Reset()
// between tests gives the isolation the assertions need. Tests that
// exercise the pipeline elsewhere in the suite may interleave events, so
// these tests run against a fresh Reset() and assert on their own events
// by type/payload, not on absolute positions.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { FlightRecorder::Global().Reset(); }
  void TearDown() override { FlightRecorder::Global().Reset(); }
};

TEST_F(FlightRecorderTest, RecordsEventsInOrderWithPayloads) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kQueryStart, 0xabcdef, 10);
  rec.Record(FlightEventType::kRoundStart, 1, 0, 0.25);
  rec.Record(FlightEventType::kQueryEnd, 0xabcdef, 7, 3.5);

  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEventType::kQueryStart);
  EXPECT_EQ(events[0].a, 0xabcdefu);
  EXPECT_EQ(events[0].b, 10u);
  EXPECT_EQ(events[1].type, FlightEventType::kRoundStart);
  EXPECT_DOUBLE_EQ(events[1].d, 0.25);
  EXPECT_EQ(events[2].type, FlightEventType::kQueryEnd);
  EXPECT_DOUBLE_EQ(events[2].d, 3.5);
  // Sequence numbers are the global order; timestamps never run backward.
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
  EXPECT_EQ(rec.recorded(), 3u);
}

TEST_F(FlightRecorderTest, RingWrapsKeepingTheMostRecentEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  const size_t total = FlightRecorder::kCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    rec.Record(FlightEventType::kRoundStart, /*a=*/i);
  }
  EXPECT_EQ(rec.recorded(), total);
  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Oldest survivor is the first event not yet overwritten.
  EXPECT_EQ(events.front().a, 100u);
  EXPECT_EQ(events.back().a, total - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST_F(FlightRecorderTest, ConcurrentRecordersNeverProduceTornEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;  // > capacity in total: wraps under race.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // a and b carry the same value; a torn slot would break the pair.
        const uint64_t v = static_cast<uint64_t>(t) * kPerThread + i;
        rec.Record(FlightEventType::kRoundStart, v, v,
                   static_cast<double>(v));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rec.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const std::vector<FlightEvent> events = rec.Snapshot();
  EXPECT_LE(events.size(), FlightRecorder::kCapacity);
  EXPECT_GT(events.size(), 0u);
  for (const FlightEvent& e : events) {
    EXPECT_EQ(e.a, e.b);
    EXPECT_DOUBLE_EQ(e.d, static_cast<double>(e.a));
  }
}

TEST_F(FlightRecorderTest, ToJsonCarriesTypeNamesAndPayloads) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kQueryStart, 42, 5);
  rec.Record(FlightEventType::kBudgetTrip, 1000, 1, 12.5);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\":4096"), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\":\"query_start\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\":\"budget_trip\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"a\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"d\":12.500"), std::string::npos) << json;
}

TEST_F(FlightRecorderTest, DumpToWritesTheSameShapeAsToJson) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kCacheEvict, 3, 4096);
  char path[] = "/tmp/flightrec_dump_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  rec.DumpTo(fd);
  close(fd);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path);
  const std::string dumped = buffer.str();
  EXPECT_NE(dumped.find("\"recorded\":1"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"type\":\"cache_evict\""), std::string::npos)
      << dumped;
  EXPECT_NE(dumped.find("\"a\":3"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"b\":4096"), std::string::npos) << dumped;
}

// The acceptance test for the black box: a child process records a few
// events, installs the crash handler, and dies on a real SIGSEGV; the
// parent finds the ring dumped to disk and the child dead by the
// original signal. fork() rather than a gtest death test so the dump
// file's contents can be asserted on in detail.
TEST_F(FlightRecorderTest, CrashHandlerDumpsRingOnFatalSignal) {
  char path[] = "/tmp/flightrec_crash_XXXXXX";
  const int tmp_fd = mkstemp(path);
  ASSERT_GE(tmp_fd, 0);
  close(tmp_fd);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: seed the ring, arm the handler, crash for real.
    FlightRecorder& rec = FlightRecorder::Global();
    rec.Record(FlightEventType::kQueryStart, 0xdead, 10);
    rec.Record(FlightEventType::kSlowQuery, 0xdead, 2, 99.0);
    FlightRecorder::InstallCrashHandler(path);
    volatile int* null_ptr = nullptr;
    *null_ptr = 1;  // SIGSEGV.
    _exit(0);       // Unreachable.
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  // The handler re-raises with the default disposition, so the child
  // still dies by SIGSEGV (exit semantics preserved).
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path);
  const std::string dumped = buffer.str();
  EXPECT_NE(dumped.find("\"recorded\":2"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"type\":\"query_start\""), std::string::npos)
      << dumped;
  EXPECT_NE(dumped.find("\"type\":\"slow_query\""), std::string::npos)
      << dumped;
  EXPECT_NE(dumped.find("\"a\":57005"), std::string::npos) << dumped;  // 0xdead
}

TEST_F(FlightRecorderTest, ResetEmptiesTheRing) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kQueryStart);
  ASSERT_EQ(rec.recorded(), 1u);
  rec.Reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_NE(rec.ToJson().find("\"events\":[]"), std::string::npos);
}

}  // namespace
}  // namespace flexpath
