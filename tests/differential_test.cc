// Differential-testing harness for the top-K pipeline (DESIGN.md §10):
// random tree pattern queries over random documents, checked two ways.
//   1. The join-based PlanEvaluator against the NaiveEvaluate oracle, at
//      every depth of the relaxation schedule (exact evaluation of each
//      chain query), with the schedule's penalty arithmetic verified.
//   2. Parallel runs (threads ∈ {2, 8}) against the serial baseline
//      (threads = 1) for all three algorithms and all three rank
//      schemes: answers, scores, penalties and every execution counter
//      must be identical — parallelism must never change results.
// Plus a repetition test: the same Hybrid query run 20 times on an
// 8-thread pool yields byte-identical ranked output every time.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/flexpath.h"
#include "exec/evaluator.h"
#include "exec/naive_evaluator.h"
#include "exec/plan.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "query/tpq.h"
#include "relax/penalty.h"
#include "relax/schedule.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"
#include "xml/corpus.h"

namespace flexpath {
namespace {

// A random corpus plus the index/stats/IR stack built over it.
struct Rig {
  Rig(Rng* rng, size_t docs, size_t max_nodes) {
    for (size_t i = 0; i < docs; ++i) {
      corpus.Add(testing_util::RandomDocument(rng, corpus.tags(), max_nodes));
    }
    index = std::make_unique<ElementIndex>(&corpus);
    stats = std::make_unique<DocumentStats>(&corpus);
    ir = std::make_unique<IrEngine>(&corpus);
  }

  Corpus corpus;
  std::unique_ptr<ElementIndex> index;
  std::unique_ptr<DocumentStats> stats;
  std::unique_ptr<IrEngine> ir;
};

std::vector<NodeRef> SortedNodes(const std::vector<RankedAnswer>& answers) {
  std::vector<NodeRef> nodes;
  nodes.reserve(answers.size());
  for (const RankedAnswer& a : answers) nodes.push_back(a.node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::map<std::string, uint64_t> CounterMap(const ExecCounters& c) {
  std::map<std::string, uint64_t> m;
  c.ForEach([&](const char* name, uint64_t value) { m[name] = value; });
  return m;
}

// Serializes everything result-shaped about a run; two runs are
// interchangeable iff their fingerprints are equal byte for byte.
std::string Fingerprint(const TopKResult& r) {
  std::string s;
  for (const RankedAnswer& a : r.answers) {
    // Sequential appends: GCC 12's -Wrestrict misfires on chained +.
    s += std::to_string(a.node.doc);
    s += ":";
    s += std::to_string(a.node.node);
    s += "/";
    s += std::to_string(a.score.ss);
    s += "+";
    s += std::to_string(a.score.ks);
    s += ";";
  }
  s += "relaxations=";
  s += std::to_string(r.relaxations_used);
  s += ",penalty=";
  s += std::to_string(r.penalty_applied);
  s += ",dropped=";
  s += std::to_string(r.predicates_dropped);
  ExecCounters c = r.counters;
  // Sequential appends rather than one chained concatenation: GCC 12's
  // -Wrestrict misfires on the chained operator+ form here.
  c.ForEach([&](const char* name, uint64_t value) {
    s += ',';
    s += name;
    s += '=';
    s += std::to_string(value);
  });
  return s;
}

const char* SchemeName(RankScheme s) {
  switch (s) {
    case RankScheme::kStructureFirst: return "structure-first";
    case RankScheme::kKeywordFirst: return "keyword-first";
    case RankScheme::kCombined: return "combined";
  }
  return "?";
}

// 1. Joins vs the oracle, at every relaxation depth. Each chain query
// Q_d is evaluated exactly by both engines; a divergence pinpoints the
// (query, depth) pair. The schedule's penalty chain is checked to be
// consistent (cumulative = Σ step) and non-decreasing on the way.
TEST(DifferentialTest, PlanMatchesOracleAtEveryRelaxationDepth) {
  Rng rng(20260805);
  for (int iter = 0; iter < 120; ++iter) {
    Rig rig(&rng, 2, 60);
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);
    PenaltyModel pm(q, rig.stats.get(), rig.ir.get(), Weights{});
    const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
    PlanEvaluator evaluator(rig.index.get(), rig.ir.get());

    double prev_penalty = 0.0;
    for (size_t depth = 0; depth <= schedule.size(); ++depth) {
      const Tpq& relaxed = depth == 0 ? q : schedule[depth - 1].relaxed;
      if (depth > 0) {
        const ScheduleEntry& e = schedule[depth - 1];
        EXPECT_NEAR(e.cumulative_penalty, prev_penalty + e.step_penalty,
                    1e-9)
            << "iter " << iter << " depth " << depth;
        EXPECT_GE(e.step_penalty, 0.0) << "iter " << iter;
        prev_penalty = e.cumulative_penalty;
      }

      const std::vector<NodeRef> expected =
          NaiveEvaluate(*rig.index, relaxed, rig.ir.get());
      Result<JoinPlan> plan = JoinPlan::Build(q, relaxed, {}, pm, Weights{});
      ASSERT_TRUE(plan.ok())
          << plan.status().ToString() << " iter " << iter;
      const std::vector<RankedAnswer> got = evaluator.Evaluate(
          *plan, EvalMode::kExact, 0, RankScheme::kStructureFirst, 0.0,
          nullptr);
      EXPECT_EQ(SortedNodes(got), expected)
          << "iter " << iter << " depth " << depth << "/"
          << schedule.size();
    }
  }
}

// 2. Serial vs parallel, full cross product: algorithm × rank scheme ×
// K × thread count. Everything observable about the result — the ranked
// answer list with scores, the relaxation metadata, and each execution
// counter — must match the threads=1 run exactly (not approximately:
// the merge is deterministic, so doubles compare with ==).
TEST(DifferentialTest, SerialMatchesParallelForAllAlgorithms) {
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  constexpr RankScheme kSchemes[] = {RankScheme::kStructureFirst,
                                     RankScheme::kKeywordFirst,
                                     RankScheme::kCombined};
  constexpr size_t kThreadCounts[] = {2, 8};
  constexpr size_t kKs[] = {1, 3, 10};

  Rng rng(424242);
  for (int iter = 0; iter < 80; ++iter) {
    Rig rig(&rng, 2, 60);
    TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);
    const RankScheme scheme = kSchemes[iter % 3];

    for (Algorithm algo : kAlgos) {
      for (size_t k : kKs) {
        TopKOptions opts;
        opts.k = k;
        opts.scheme = scheme;
        opts.num_threads = 1;
        Result<TopKResult> serial = processor.Run(q, algo, opts);
        ASSERT_TRUE(serial.ok()) << serial.status().ToString();

        for (size_t threads : kThreadCounts) {
          opts.num_threads = threads;
          Result<TopKResult> parallel = processor.Run(q, algo, opts);
          ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

          std::string label = std::string("iter ") + std::to_string(iter) +
                              " " + AlgorithmName(algo) + " " +
                              SchemeName(scheme) +
                              " k=" + std::to_string(k) +
                              " threads=" + std::to_string(threads);
          ASSERT_EQ(parallel->answers.size(), serial->answers.size())
              << label;
          for (size_t i = 0; i < serial->answers.size(); ++i) {
            EXPECT_EQ(parallel->answers[i].node, serial->answers[i].node)
                << label << " answer " << i;
            EXPECT_EQ(parallel->answers[i].score, serial->answers[i].score)
                << label << " answer " << i;
          }
          EXPECT_EQ(parallel->relaxations_used, serial->relaxations_used)
              << label;
          EXPECT_EQ(parallel->penalty_applied, serial->penalty_applied)
              << label;
          EXPECT_EQ(parallel->predicates_dropped,
                    serial->predicates_dropped)
              << label;
          EXPECT_EQ(CounterMap(parallel->counters),
                    CounterMap(serial->counters))
              << label;
          // Resource usage is derived from the counters, so every field
          // except thread-CPU time must also be thread-count-invariant.
          std::map<std::string, double> parallel_usage;
          parallel->usage.ForEach([&](const char* name, double value) {
            parallel_usage[name] = value;
          });
          serial->usage.ForEach([&](const char* name, double value) {
            if (std::string(name) == "cpu_ms") return;
            EXPECT_EQ(parallel_usage.at(name), value)
                << label << " usage." << name;
          });
        }
      }
    }
  }
}

// 3. Sharded vs unsharded, full cross product: algorithm × rank scheme ×
// K × shard count × thread count. The scatter-gather path (DESIGN.md
// §15) promises byte-identity with the serial unsharded run — ranked
// answers with scores, relaxation metadata, and every execution counter
// (including the phase-level sort counters and the bucket peak, which
// the sharded path must reconstruct as global quantities). num_shards=1
// is deliberately in the matrix: the one-shard partition runs the whole
// scatter-gather machinery and must still match.
TEST(DifferentialTest, ShardedMatchesSingleShardForAllAlgorithms) {
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  constexpr RankScheme kSchemes[] = {RankScheme::kStructureFirst,
                                     RankScheme::kKeywordFirst,
                                     RankScheme::kCombined};
  constexpr size_t kShardCounts[] = {1, 2, 3, 8};
  constexpr size_t kThreadCounts[] = {1, 4};
  constexpr size_t kKs[] = {1, 3, 10};

  Rng rng(20260808);
  for (int iter = 0; iter < 30; ++iter) {
    Rig rig(&rng, 6, 90);
    TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());
    const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);
    const RankScheme scheme = kSchemes[iter % 3];

    for (Algorithm algo : kAlgos) {
      for (size_t k : kKs) {
        TopKOptions opts;
        opts.k = k;
        opts.scheme = scheme;
        opts.num_threads = 1;
        Result<TopKResult> baseline = processor.Run(q, algo, opts);
        ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
        const std::string reference = Fingerprint(*baseline);

        for (size_t shards : kShardCounts) {
          for (size_t threads : kThreadCounts) {
            opts.num_shards = shards;
            opts.num_threads = threads;
            Result<TopKResult> sharded = processor.Run(q, algo, opts);
            ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

            std::string label = std::string("iter ") + std::to_string(iter) +
                                " " + AlgorithmName(algo) + " " +
                                SchemeName(scheme) +
                                " k=" + std::to_string(k) +
                                " shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);
            EXPECT_EQ(Fingerprint(*sharded), reference) << label;
            // Shard attribution must cover the partition and charge
            // every final answer to the shard owning its document.
            ASSERT_EQ(sharded->shards.size(), shards) << label;
            size_t answers = 0;
            uint64_t probed = 0;
            for (const TopKResult::ShardStats& s : sharded->shards) {
              answers += s.answers;
              probed += s.candidates_probed;
            }
            EXPECT_EQ(answers, sharded->answers.size()) << label;
            EXPECT_EQ(probed, sharded->counters.candidates_probed) << label;
          }
        }
        opts.num_shards = 0;
      }
    }
  }
}

// 4. Packed vs in-memory, full cross product: algorithm × rank scheme ×
// shard count × thread count. One FlexPath instance builds in memory;
// a second opens the packed file the first saved. The storage engine's
// contract (DESIGN.md §17) is byte-identity of everything result-shaped
// — ranked answers with scores, relaxation metadata, and every
// execution counter — because the packed read path serves exactly the
// structures the in-memory build holds, just lazily and from the mmap.
TEST(DifferentialTest, PackedMatchesInMemory) {
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};
  constexpr RankScheme kSchemes[] = {RankScheme::kStructureFirst,
                                     RankScheme::kKeywordFirst,
                                     RankScheme::kCombined};
  constexpr size_t kShardCounts[] = {1, 2};
  constexpr size_t kThreadCounts[] = {1, 4};

  Rng rng(20260809);
  FlexPath mem;
  for (int i = 0; i < 6; ++i) {
    mem.AddDocument(testing_util::RandomDocument(&rng, mem.tags(), 90));
  }
  const std::string path =
      ::testing::TempDir() + "/flexpath_diff_packed.fxp";
  ASSERT_TRUE(mem.SavePacked(path).ok());
  ASSERT_TRUE(mem.Build().ok());

  FlexPath packed;
  const Status open = packed.OpenPacked(path);
  ASSERT_TRUE(open.ok()) << open.ToString();

  for (int iter = 0; iter < 10; ++iter) {
    const Tpq q = testing_util::RandomTpq(&rng, mem.tags(), 5);
    const RankScheme scheme = kSchemes[iter % 3];
    for (Algorithm algo : kAlgos) {
      TopKOptions opts;
      opts.k = 10;
      opts.scheme = scheme;
      for (size_t shards : kShardCounts) {
        for (size_t threads : kThreadCounts) {
          opts.num_shards = shards;
          opts.num_threads = threads;
          Result<TopKResult> a = mem.QueryTpq(q, opts, algo, "diff");
          Result<TopKResult> b = packed.QueryTpq(q, opts, algo, "diff");
          ASSERT_TRUE(a.ok()) << a.status().ToString();
          ASSERT_TRUE(b.ok()) << b.status().ToString();
          EXPECT_EQ(Fingerprint(*b), Fingerprint(*a))
              << "iter " << iter << " " << AlgorithmName(algo) << " "
              << SchemeName(scheme) << " shards=" << shards
              << " threads=" << threads;
        }
      }
    }
  }
  std::remove(path.c_str());
}

// 5. Determinism under repetition: the same Hybrid top-K on an 8-thread
// pool, 20 times over — every repetition must produce a byte-identical
// fingerprint (ranked answers with scores, penalty_applied, counters).
// A scheduling-dependent merge would make this flake immediately.
TEST(DifferentialTest, HybridRepeatedRunsAreByteIdentical) {
  Rng rng(777);
  Rig rig(&rng, 8, 150);
  TopKProcessor processor(rig.index.get(), rig.stats.get(), rig.ir.get());
  const Tpq q = testing_util::RandomTpq(&rng, rig.corpus.tags(), 5);

  TopKOptions opts;
  opts.k = 25;
  opts.num_threads = 8;
  Result<TopKResult> first = processor.Run(q, Algorithm::kHybrid, opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string reference = Fingerprint(*first);
  const double penalty = first->penalty_applied;

  for (int rep = 1; rep < 20; ++rep) {
    Result<TopKResult> again = processor.Run(q, Algorithm::kHybrid, opts);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(Fingerprint(*again), reference) << "repetition " << rep;
    EXPECT_EQ(again->penalty_applied, penalty) << "repetition " << rep;
  }
}

}  // namespace
}  // namespace flexpath
