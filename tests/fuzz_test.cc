// Robustness fuzzing (deterministic): random and mutated inputs must
// never crash the parsers — they either parse or return a ParseError.
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ir/ft_expr.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace flexpath {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->Uniform(max_len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng->Uniform(256));
  }
  return out;
}

std::string Mutate(std::string s, Rng* rng) {
  if (s.empty()) return s;
  const int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < edits; ++i) {
    const size_t pos = rng->Uniform(s.size());
    switch (rng->Uniform(3)) {
      case 0:
        s[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng->Uniform(128)));
        break;
    }
    if (s.empty()) break;
  }
  return s;
}

TEST(FuzzTest, XmlParserSurvivesRandomBytes) {
  Rng rng(1001);
  TagDict dict;
  for (int i = 0; i < 500; ++i) {
    Result<Document> doc = ParseXml(RandomBytes(&rng, 200), &dict);
    if (doc.ok()) {
      EXPECT_GT(doc->size(), 0u);
    }
  }
}

TEST(FuzzTest, XmlParserSurvivesMutatedDocuments) {
  Rng rng(1002);
  const std::string seed =
      "<?xml version=\"1.0\"?><site><item id=\"i1\"><name>gold "
      "ring</name><desc>rare &amp; fine <b>x</b></desc></item>"
      "<!-- c --><![CDATA[raw]]></site>";
  TagDict dict;
  for (int i = 0; i < 500; ++i) {
    Result<Document> doc = ParseXml(Mutate(seed, &rng), &dict);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse.
      std::string xml = SerializeXml(*doc, dict);
      EXPECT_TRUE(ParseXml(xml, &dict).ok());
    }
  }
}

TEST(FuzzTest, XPathParserSurvivesRandomInput) {
  Rng rng(1003);
  const std::string seed =
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]] and @id='a1']";
  for (int i = 0; i < 500; ++i) {
    TagDict dict;
    Result<Tpq> q = ParseXPath(Mutate(seed, &rng), &dict);
    if (q.ok()) {
      EXPECT_TRUE(q->Validate().ok());
    }
  }
  for (int i = 0; i < 300; ++i) {
    TagDict dict;
    (void)ParseXPath(RandomBytes(&rng, 100), &dict);
  }
}

TEST(FuzzTest, FtExprParserSurvivesRandomInput) {
  Rng rng(1004);
  const std::string seed =
      "(\"gold\" and not silver) or near(\"fast\" \"car\", 5)";
  for (int i = 0; i < 500; ++i) {
    Result<FtExpr> e = ParseFtExpr(Mutate(seed, &rng));
    if (e.ok()) {
      // Canonical text of a parsed expression re-parses to an equal tree.
      Result<FtExpr> again = ParseFtExpr(e->ToString());
      ASSERT_TRUE(again.ok()) << e->ToString();
      EXPECT_TRUE(*e == *again) << e->ToString();
    }
  }
}

}  // namespace
}  // namespace flexpath
