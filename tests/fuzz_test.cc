// Robustness fuzzing (deterministic): random and mutated inputs must
// never crash the parsers — they either parse or return a ParseError —
// and the thread-pool primitives must survive adversarial usage
// (concurrent submitters, tasks spawning tasks, teardown under load,
// exceptions, empty fan-outs). Plus shard-boundary fuzzing: random
// partition cut points must never change a query's answer digest, and
// storage fuzzing: the packed-corpus codec round-trips adversarial key
// sequences, and a StorageReader fed corrupted pages returns a Status
// (or correct data) — never a crash.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "ir/ft_expr.h"
#include "query/xpath_parser.h"
#include "rank/score.h"
#include "shard/partition.h"
#include "shard/sharded_corpus.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "storage/codec.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace flexpath {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->Uniform(max_len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng->Uniform(256));
  }
  return out;
}

std::string Mutate(std::string s, Rng* rng) {
  if (s.empty()) return s;
  const int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < edits; ++i) {
    const size_t pos = rng->Uniform(s.size());
    switch (rng->Uniform(3)) {
      case 0:
        s[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng->Uniform(128)));
        break;
    }
    if (s.empty()) break;
  }
  return s;
}

TEST(FuzzTest, XmlParserSurvivesRandomBytes) {
  Rng rng(1001);
  TagDict dict;
  for (int i = 0; i < 500; ++i) {
    Result<Document> doc = ParseXml(RandomBytes(&rng, 200), &dict);
    if (doc.ok()) {
      EXPECT_GT(doc->size(), 0u);
    }
  }
}

TEST(FuzzTest, XmlParserSurvivesMutatedDocuments) {
  Rng rng(1002);
  const std::string seed =
      "<?xml version=\"1.0\"?><site><item id=\"i1\"><name>gold "
      "ring</name><desc>rare &amp; fine <b>x</b></desc></item>"
      "<!-- c --><![CDATA[raw]]></site>";
  TagDict dict;
  for (int i = 0; i < 500; ++i) {
    Result<Document> doc = ParseXml(Mutate(seed, &rng), &dict);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse.
      std::string xml = SerializeXml(*doc, dict);
      EXPECT_TRUE(ParseXml(xml, &dict).ok());
    }
  }
}

TEST(FuzzTest, XPathParserSurvivesRandomInput) {
  Rng rng(1003);
  const std::string seed =
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]] and @id='a1']";
  for (int i = 0; i < 500; ++i) {
    TagDict dict;
    Result<Tpq> q = ParseXPath(Mutate(seed, &rng), &dict);
    if (q.ok()) {
      EXPECT_TRUE(q->Validate().ok());
    }
  }
  for (int i = 0; i < 300; ++i) {
    TagDict dict;
    (void)ParseXPath(RandomBytes(&rng, 100), &dict);
  }
}

// --- Thread-pool stress ----------------------------------------------------

TEST(ThreadPoolFuzzTest, ConcurrentSubmittersAndTeardownUnderLoad) {
  // Several external threads hammer Submit() while the pool is busy;
  // destruction then races a still-full queue. The destructor contract
  // says every queued task runs before the workers exit, so the counter
  // must be exact — no lost and no double-run tasks.
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> ran{0};
    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 250;
    {
      ThreadPool pool(4);
      std::vector<std::thread> submitters;
      submitters.reserve(kSubmitters);
      for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &ran] {
          for (int i = 0; i < kPerSubmitter; ++i) {
            pool.Submit([&ran] { ran.fetch_add(1); });
          }
        });
      }
      for (std::thread& t : submitters) t.join();
      // Pool destructor runs here with much of the queue still pending.
    }
    EXPECT_EQ(ran.load(), uint64_t{kSubmitters * kPerSubmitter})
        << "round " << round;
  }
}

TEST(ThreadPoolFuzzTest, TasksSubmittingTasks) {
  // A task may enqueue follow-up work; the destructor must drain the
  // transitively submitted tasks too. Each root task spawns a short
  // chain, so losing any link shows up in the count.
  std::atomic<uint64_t> ran{0};
  constexpr int kRoots = 100;
  constexpr int kChain = 5;
  {
    ThreadPool pool(3);
    // Recursive lambdas need an explicit holder; keep it alive until the
    // pool (destroyed first, draining all tasks) is gone.
    auto spawn = std::make_shared<std::function<void(int)>>();
    *spawn = [&pool, &ran, spawn](int remaining) {
      ran.fetch_add(1);
      if (remaining > 0) {
        pool.Submit([spawn, remaining] { (*spawn)(remaining - 1); });
      }
    };
    for (int i = 0; i < kRoots; ++i) {
      pool.Submit([spawn] { (*spawn)(kChain - 1); });
    }
  }
  EXPECT_EQ(ran.load(), uint64_t{kRoots * kChain});
}

TEST(ThreadPoolFuzzTest, TaskGroupPropagatesFirstExceptionBySubmission) {
  // Several tasks throw; Wait() must re-throw the *first by submission
  // order* regardless of which worker finished first, and every task
  // must still have run.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 16; ++i) {
      group.Run([&ran, i] {
        ran.fetch_add(1);
        if (i % 3 == 1) {  // tasks 1, 4, 7, ... throw; 1 must win.
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
    }
    try {
      group.Wait();
      FAIL() << "Wait() swallowed the exceptions, round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1") << "round " << round;
    }
    EXPECT_EQ(ran.load(), 16) << "round " << round;
  }
}

TEST(ThreadPoolFuzzTest, ParallelForZeroTasksAndEdgeChunks) {
  ThreadPool pool(4);
  // n == 0: no body call, no hang.
  ParallelFor(&pool, 0, 16, [](size_t, size_t) {
    FAIL() << "body called for n == 0";
  });
  EXPECT_TRUE(ChunkRanges(&pool, 0, 16).empty());

  // Random (n, grain) pairs: chunks must tile [0, n) exactly, in order.
  Rng rng(1005);
  for (int i = 0; i < 200; ++i) {
    const size_t n = rng.Uniform(5000);
    const size_t grain = 1 + rng.Uniform(300);
    const auto ranges = ChunkRanges(&pool, n, grain);
    size_t next = 0;
    for (const auto& [begin, end] : ranges) {
      EXPECT_EQ(begin, next);
      EXPECT_LT(begin, end);
      next = end;
    }
    EXPECT_EQ(next, n);

    // ParallelFor visits every index exactly once.
    std::vector<std::atomic<uint32_t>> hits(n);
    ParallelFor(&pool, n, grain, [&hits](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) hits[j].fetch_add(1);
    });
    const bool all_once =
        std::all_of(hits.begin(), hits.end(),
                    [](const std::atomic<uint32_t>& h) { return h == 1; });
    EXPECT_TRUE(all_once) << "n=" << n << " grain=" << grain;
  }
}

// --- Shard boundaries ------------------------------------------------------

// Shard-boundary fuzzing: answers must be invariant under *any*
// placement of shard cut points — random counts, duplicates, cuts at 0
// or past the corpus end, empty shards anywhere. Each partition's run
// must digest identically to the unsharded run of the same query.
TEST(FuzzTest, ShardBoundariesNeverChangeAnswers) {
  Rng rng(1006);
  Corpus corpus;
  for (int i = 0; i < 7; ++i) {
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 60));
  }
  ElementIndex index(&corpus);
  DocumentStats stats(&corpus);
  IrEngine ir(&corpus);
  TopKProcessor processor(&index, &stats, &ir);
  constexpr Algorithm kAlgos[] = {Algorithm::kDpo, Algorithm::kSso,
                                  Algorithm::kHybrid};

  for (int iter = 0; iter < 60; ++iter) {
    const Tpq q = testing_util::RandomTpq(&rng, corpus.tags(), 4);
    const Algorithm algo = kAlgos[iter % 3];
    TopKOptions opts;
    opts.k = 1 + rng.Uniform(8);
    opts.num_threads = 1 + rng.Uniform(4);
    Result<TopKResult> baseline =
        processor.RunWithShards(q, algo, opts, nullptr);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const uint64_t reference = AnswersDigest(baseline->answers);

    // Random cut points, deliberately unclamped: duplicates and values
    // past the corpus end are PartitionAtCuts's job to tolerate.
    std::vector<DocId> cuts(rng.Uniform(6));
    for (DocId& c : cuts) {
      c = static_cast<DocId>(rng.Uniform(corpus.size() + 3));
    }
    ShardedCorpus sharded(&corpus, nullptr,
                          PartitionAtCuts(corpus.size(), cuts));
    Result<TopKResult> result =
        processor.RunWithShards(q, algo, opts, &sharded);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(AnswersDigest(result->answers), reference)
        << "iter " << iter << " shards=" << sharded.num_shards();
  }
}

// --- Packed storage --------------------------------------------------------

// Codec round-trip fuzzing with adversarial delta shapes: runs of
// delta 1 (worst case for the strict-increase check), huge jumps
// (multi-byte varints), keys starting at 0, and sequences ending at
// uint64 max. Whatever encodes must decode back exactly — via the full
// decode and via each skip entry.
TEST(FuzzTest, StorageKeyBlocksRoundTripAdversarialDeltas) {
  Rng rng(1007);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint64_t> keys;
    const size_t n = 1 + rng.Uniform(600);
    uint64_t k = rng.Bernoulli(0.3) ? 0 : rng.Uniform(1u << 20);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(k);
      uint64_t delta;
      switch (rng.Uniform(4)) {
        case 0: delta = 1; break;                          // dense run
        case 1: delta = 1 + rng.Uniform(100); break;       // typical
        case 2: delta = 1 + rng.Uniform(1u << 30); break;  // large jump
        default:
          // Aim the tail at uint64 max without overflowing.
          delta = (~uint64_t{0} - k) / (n - i) + 1;
          if (delta == 0 || delta > ~uint64_t{0} - k) delta = 1;
          break;
      }
      if (k > ~uint64_t{0} - delta) break;  // would overflow: stop here
      k += delta;
    }
    std::string bytes;
    std::vector<storage::SkipEntry> skips;
    ASSERT_TRUE(storage::EncodeKeyBlocks(keys, &bytes, &skips).ok())
        << "iter " << iter;
    std::vector<uint64_t> back;
    ASSERT_TRUE(
        storage::DecodeKeyBlocks(bytes, keys.size(), &back).ok())
        << "iter " << iter;
    EXPECT_EQ(back, keys) << "iter " << iter;
    std::vector<uint64_t> assembled;
    std::vector<uint64_t> block;
    for (const storage::SkipEntry& s : skips) {
      ASSERT_TRUE(
          storage::DecodeOneBlock(bytes, s.offset, s.count, &block).ok())
          << "iter " << iter;
      assembled.insert(assembled.end(), block.begin(), block.end());
    }
    EXPECT_EQ(assembled, keys) << "iter " << iter;
  }
}

// Mutated encoded blocks must decode or error — never crash, never spin.
TEST(FuzzTest, StorageKeyBlockDecoderSurvivesMutation) {
  Rng rng(1008);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 500; ++i) keys.push_back(i * 7 + 3);
  std::string bytes;
  std::vector<storage::SkipEntry> skips;
  ASSERT_TRUE(storage::EncodeKeyBlocks(keys, &bytes, &skips).ok());
  for (int iter = 0; iter < 400; ++iter) {
    const std::string mutated = Mutate(bytes, &rng);
    std::vector<uint64_t> out;
    Status st = storage::DecodeKeyBlocks(mutated, keys.size(), &out);
    if (st.ok()) {
      // A lucky mutation may still decode; the contract that survives
      // corruption is the count and strict monotonicity.
      ASSERT_EQ(out.size(), keys.size());
      for (size_t i = 1; i < out.size(); ++i) EXPECT_GT(out[i], out[i - 1]);
    }
  }
}

// Corrupted-page fuzzing over the whole packed file: flip random bytes
// (in the header, directories, and payload pages alike) and drive the
// full reader surface. Every operation must either succeed or return a
// Status — no crashes, no sanitizer reports. Decode errors on the
// corpus-backing path surface as empty documents by contract (doc()
// cannot return a Status), which is also exercised here.
TEST(FuzzTest, StorageReaderSurvivesCorruptedPages) {
  Rng rng(1009);
  Corpus corpus;
  for (int i = 0; i < 3; ++i) {
    corpus.Add(testing_util::RandomDocument(&rng, corpus.tags(), 80));
  }
  const std::string path =
      ::testing::TempDir() + "/flexpath_fuzz_packed.fxp";
  ASSERT_TRUE(
      storage::WritePackedCorpus(corpus, TokenizerOptions{}, path).ok());
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(pristine.empty());

  for (int iter = 0; iter < 120; ++iter) {
    std::string mutated = pristine;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Uniform(256));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    Result<std::shared_ptr<storage::StorageReader>> open =
        storage::StorageReader::Open(path);
    if (!open.ok()) continue;  // rejected at validation: the common case
    const std::shared_ptr<storage::StorageReader>& reader = *open;

    for (DocId d = 0; d < static_cast<DocId>(reader->DocCount()); ++d) {
      (void)reader->DocNodeCount(d);
      (void)reader->MaterializeDocument(d);  // Status or document
    }
    for (TagId t = 0; t < static_cast<TagId>(reader->header().tag_count);
         ++t) {
      (void)reader->TagListCount(t);
      (void)reader->TagList(t);  // corrupt tables decode to empty
    }
    uint32_t df = 0;
    uint64_t total_tf = 0;
    for (const char* term : {"a", "the", "zzz"}) {
      if (reader->TermInfo(term, &df, &total_tf)) {
        (void)reader->FindPostings(term);
        (void)reader->RangeTermFrequency(term, 0, ~uint64_t{0});
      }
    }
    TagDict dict;
    (void)reader->LoadTags(&dict);
    (void)reader->LoadStatsTables();
    (void)reader->InspectJson();
  }
  std::remove(path.c_str());
}

TEST(FuzzTest, FtExprParserSurvivesRandomInput) {
  Rng rng(1004);
  const std::string seed =
      "(\"gold\" and not silver) or near(\"fast\" \"car\", 5)";
  for (int i = 0; i < 500; ++i) {
    Result<FtExpr> e = ParseFtExpr(Mutate(seed, &rng));
    if (e.ok()) {
      // Canonical text of a parsed expression re-parses to an equal tree.
      Result<FtExpr> again = ParseFtExpr(e->ToString());
      ASSERT_TRUE(again.ok()) << e->ToString();
      EXPECT_TRUE(*e == *again) << e->ToString();
    }
  }
}

}  // namespace
}  // namespace flexpath
