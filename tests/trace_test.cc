#include "common/trace.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "exec/topk.h"
#include "ir/engine.h"
#include "query/xpath_parser.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "tests/test_util.h"

namespace flexpath {
namespace {

TEST(TraceCollectorTest, NestedSpansFormATree) {
  TraceCollector tc("query");
  {
    Span outer(&tc, "outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner(&tc, "inner");
      inner.Annotate("round", uint64_t{3});
    }
  }
  QueryTrace trace = tc.Finish();
  EXPECT_EQ(trace.root.name, "query");
  ASSERT_EQ(trace.root.children.size(), 1u);
  const TraceSpan& outer = *trace.root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_DOUBLE_EQ(outer.children[0]->NumberOr0("round"), 3.0);
}

TEST(TraceCollectorTest, SiblingsAfterEarlyClose) {
  TraceCollector tc;
  {
    Span a(&tc, "a");
    a.Close();
    a.Close();  // Idempotent.
    EXPECT_FALSE(a.active());
    Span b(&tc, "b");
  }
  QueryTrace trace = tc.Finish();
  ASSERT_EQ(trace.root.children.size(), 2u);
  EXPECT_EQ(trace.root.children[0]->name, "a");
  EXPECT_EQ(trace.root.children[1]->name, "b");
}

TEST(TraceCollectorTest, TimesAreNonNegativeAndNested) {
  TraceCollector tc;
  {
    Span child(&tc, "child");
  }
  QueryTrace trace = tc.Finish();
  const TraceSpan& child = *trace.root.children[0];
  EXPECT_GE(child.start_ms, trace.root.start_ms);
  EXPECT_GE(child.elapsed_ms, 0.0);
  EXPECT_GE(trace.root.elapsed_ms, child.elapsed_ms);
}

TEST(TraceSpanTest, AnnotationLookup) {
  TraceSpan span;
  span.Annotate("label", std::string("hello"));
  span.Annotate("n", 2.5);
  EXPECT_EQ(span.TextOr("label"), "hello");
  EXPECT_DOUBLE_EQ(span.NumberOr0("n"), 2.5);
  EXPECT_DOUBLE_EQ(span.NumberOr0("label"), 0.0);  // Text, not numeric.
  EXPECT_EQ(span.TextOr("n"), "");                 // Numeric, not text.
  EXPECT_DOUBLE_EQ(span.NumberOr0("missing"), 0.0);
  EXPECT_EQ(span.TextOr("missing"), "");
}

TEST(TraceSpanTest, ChildrenNamedAndFind) {
  TraceCollector tc;
  {
    Span r1(&tc, "round");
    {
      Span nested(&tc, "plan_build");
    }
  }
  {
    Span r2(&tc, "round");
  }
  QueryTrace trace = tc.Finish();
  EXPECT_EQ(trace.root.ChildrenNamed("round").size(), 2u);
  EXPECT_EQ(trace.root.ChildrenNamed("plan_build").size(), 0u);  // Direct only.
  const TraceSpan* found = trace.root.Find("plan_build");  // Depth-first.
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, "plan_build");
  EXPECT_EQ(trace.root.Find("nope"), nullptr);
}

TEST(SpanTest, NullCollectorIsANoOp) {
  Span s(nullptr, "phase");
  EXPECT_FALSE(s.active());
  s.Annotate("k", std::string("v"));  // Must not crash.
  s.Annotate("n", 1.0);
  s.Close();
}

TEST(TraceJsonTest, RendersTreeAndAnnotations) {
  TraceCollector tc("query");
  {
    Span round(&tc, "round");
    round.Annotate("dropped", std::string("pc($2,$3)"));
    round.Annotate("penalty", 0.25);
  }
  const std::string json = TraceToJson(tc.Finish());
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":\"pc($2,$3)\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"penalty\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_ms\""), std::string::npos) << json;
}

TEST(TraceTextTest, IndentsChildrenAndShowsAnnotations) {
  TraceCollector tc("query");
  {
    Span round(&tc, "round");
    round.Annotate("round", uint64_t{1});
  }
  const std::string text = TraceToText(tc.Finish());
  EXPECT_NE(text.find("query"), std::string::npos) << text;
  EXPECT_NE(text.find("\n  round"), std::string::npos) << text;
  EXPECT_NE(text.find("[round=1]"), std::string::npos) << text;
}

TEST(ExecCountersTest, AddSumsAllFieldsAndMaxesBucketsPeak) {
  ExecCounters a;
  a.plan_passes = 1;
  a.candidates_probed = 10;
  a.tuples_created = 20;
  a.tuples_pruned = 3;
  a.score_sorts = 2;
  a.score_sorted_items = 40;
  a.buckets_peak = 7;
  ExecCounters b;
  b.plan_passes = 2;
  b.candidates_probed = 5;
  b.tuples_created = 6;
  b.tuples_pruned = 1;
  b.score_sorts = 1;
  b.score_sorted_items = 8;
  b.buckets_peak = 4;  // Below a's peak: Add keeps the max, not the sum.

  a.Add(b);
  EXPECT_EQ(a.plan_passes, 3u);
  EXPECT_EQ(a.candidates_probed, 15u);
  EXPECT_EQ(a.tuples_created, 26u);
  EXPECT_EQ(a.tuples_pruned, 4u);
  EXPECT_EQ(a.score_sorts, 3u);
  EXPECT_EQ(a.score_sorted_items, 48u);
  EXPECT_EQ(a.buckets_peak, 7u);
}

TEST(TraceSpanTest, ShiftByOffsetsSelfAndEveryDescendant) {
  TraceSpan root;
  root.start_ms = 1.0;
  auto child = std::make_unique<TraceSpan>();
  child->start_ms = 2.0;
  auto grandchild = std::make_unique<TraceSpan>();
  grandchild->start_ms = 3.0;
  child->children.push_back(std::move(grandchild));
  root.children.push_back(std::move(child));

  root.ShiftBy(10.0);
  EXPECT_DOUBLE_EQ(root.start_ms, 11.0);
  EXPECT_DOUBLE_EQ(root.children[0]->start_ms, 12.0);
  EXPECT_DOUBLE_EQ(root.children[0]->children[0]->start_ms, 13.0);

  // A zero shift is the identity...
  root.ShiftBy(0.0);
  EXPECT_DOUBLE_EQ(root.start_ms, 11.0);
  EXPECT_DOUBLE_EQ(root.children[0]->children[0]->start_ms, 13.0);

  // ...and a negative shift undoes a positive one exactly.
  root.ShiftBy(-10.0);
  EXPECT_DOUBLE_EQ(root.start_ms, 1.0);
  EXPECT_DOUBLE_EQ(root.children[0]->start_ms, 2.0);
  EXPECT_DOUBLE_EQ(root.children[0]->children[0]->start_ms, 3.0);
}

TEST(TraceCollectorTest, AdoptGraftsDeeplyNestedTreePreservingAnnotations) {
  // Worker side: its own collector, a three-deep span tree with both
  // text and numeric annotations at every level.
  TraceCollector worker("worker_round");
  worker.current()->Annotate("worker", uint64_t{4});
  {
    Span mid(&worker, "plan_build");
    mid.Annotate("steps", uint64_t{7});
    {
      Span leaf(&worker, "join_step");
      leaf.Annotate("tag", std::string("section"));
      leaf.Annotate("tuples", 42.0);
    }
  }
  QueryTrace worker_trace = worker.Finish();

  // Coordinator side: graft under an open child span, shifted onto the
  // parent timeline.
  TraceCollector parent("query");
  {
    Span wave(&parent, "wave");
    worker_trace.root.ShiftBy(parent.NowMs());
    parent.Adopt(std::move(worker_trace.root));
  }
  QueryTrace trace = parent.Finish();

  ASSERT_EQ(trace.root.children.size(), 1u);
  const TraceSpan& wave = *trace.root.children[0];
  ASSERT_EQ(wave.children.size(), 1u);
  const TraceSpan& adopted = *wave.children[0];
  EXPECT_EQ(adopted.name, "worker_round");
  EXPECT_DOUBLE_EQ(adopted.NumberOr0("worker"), 4.0);
  ASSERT_EQ(adopted.children.size(), 1u);
  EXPECT_DOUBLE_EQ(adopted.children[0]->NumberOr0("steps"), 7.0);
  const TraceSpan* leaf = trace.root.Find("join_step");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->TextOr("tag"), "section");
  EXPECT_DOUBLE_EQ(leaf->NumberOr0("tuples"), 42.0);
  // Shifted times stay ordered within the parent timeline.
  EXPECT_GE(adopted.start_ms, trace.root.start_ms);
  EXPECT_GE(leaf->start_ms, adopted.start_ms);
}

TEST(TraceCollectorTest, AdoptIntoRootAfterChildrenKeepsSiblingOrder) {
  TraceCollector tc("query");
  {
    Span first(&tc, "first");
  }
  TraceSpan orphan;
  orphan.name = "adopted";
  tc.Adopt(std::move(orphan));
  {
    Span last(&tc, "last");
  }
  QueryTrace trace = tc.Finish();
  ASSERT_EQ(trace.root.children.size(), 3u);
  EXPECT_EQ(trace.root.children[0]->name, "first");
  EXPECT_EQ(trace.root.children[1]->name, "adopted");
  EXPECT_EQ(trace.root.children[2]->name, "last");
}

TEST(ChromeJsonTest, EmitsCompleteEventsWithRequiredKeys) {
  TraceCollector tc("query");
  {
    Span round(&tc, "initial_round");
    round.Annotate("penalty", 0.25);
    round.Annotate("dropped", std::string("pc($1,$2)"));
  }
  const std::string json = TraceToChromeJson(tc.Finish());
  // Top-level shape.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos)
      << json;
  // Every span is a complete event with the viewer-required keys.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"initial_round\""), std::string::npos)
      << json;
  // Annotations become args, numbers staying numeric.
  EXPECT_NE(json.find("\"penalty\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":\"pc($1,$2)\""), std::string::npos)
      << json;
  // Thread-name metadata labels the coordinator lane.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos) << json;
}

TEST(ChromeJsonTest, WorkerAnnotationMapsSubtreeToWorkerTid) {
  TraceCollector tc("query");
  TraceSpan worker_span;
  worker_span.name = "relaxation_round";
  worker_span.Annotate("worker", uint64_t{0});
  auto nested = std::make_unique<TraceSpan>();
  nested->name = "join_step";
  worker_span.children.push_back(std::move(nested));
  tc.Adopt(std::move(worker_span));
  const std::string json = TraceToChromeJson(tc.Finish());
  // Worker 0 maps to tid 2 (coordinator owns tid 1); the nested span,
  // which carries no annotation of its own, inherits the lane.
  const size_t round = json.find("\"name\":\"relaxation_round\"");
  const size_t step = json.find("\"name\":\"join_step\"");
  ASSERT_NE(round, std::string::npos) << json;
  ASSERT_NE(step, std::string::npos) << json;
  const auto tid_before = [&](size_t pos) {
    const size_t tid = json.rfind("\"tid\":", pos);
    return json.substr(tid, json.find(',', tid) - tid);
  };
  EXPECT_EQ(tid_before(round), "\"tid\":2") << json;
  EXPECT_EQ(tid_before(step), "\"tid\":2") << json;
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos) << json;
}

/// End-to-end: a traced DPO run must expose one span per executed
/// relaxation round, and the per-round counter deltas must reassemble
/// into TopKResult::counters.
class DpoTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = testing_util::ArticleCorpus();
    index_ = std::make_unique<ElementIndex>(corpus_.get());
    stats_ = std::make_unique<DocumentStats>(corpus_.get());
    ir_ = std::make_unique<IrEngine>(corpus_.get());
    processor_ = std::make_unique<TopKProcessor>(index_.get(), stats_.get(),
                                                 ir_.get());
  }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<ElementIndex> index_;
  std::unique_ptr<DocumentStats> stats_;
  std::unique_ptr<IrEngine> ir_;
  std::unique_ptr<TopKProcessor> processor_;
};

TEST_F(DpoTraceTest, RoundSpansMatchRelaxationsAndCounters) {
  // K above the exact-match count forces DPO through relaxation rounds.
  Result<Tpq> q = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      corpus_->tags());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  TopKOptions opts;
  opts.k = 5;
  opts.collect_trace = true;
  Result<TopKResult> result = processor_->Run(*q, Algorithm::kDpo, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  ASSERT_GT(result->relaxations_used, 0u);

  const TraceSpan& root = result->trace->root;
  EXPECT_EQ(root.NumberOr0("relaxations_used"),
            static_cast<double>(result->relaxations_used));

  // Exactly one "relaxation_round" span per relaxation actually executed
  // (round 0, the unrelaxed query, traces as "initial_round").
  EXPECT_EQ(root.ChildrenNamed("relaxation_round").size(),
            result->relaxations_used);
  EXPECT_EQ(root.ChildrenNamed("initial_round").size(), 1u);

  // Each round span carries the delta of every ExecCounters field; the
  // deltas across all rounds must sum back to the result's totals
  // (buckets_peak: DPO runs exact plans, so every delta is zero and the
  // sum equals the max).
  std::vector<const TraceSpan*> rounds = root.ChildrenNamed("initial_round");
  for (const TraceSpan* s : root.ChildrenNamed("relaxation_round")) {
    rounds.push_back(s);
  }
  result->counters.ForEach([&](const char* name, uint64_t total) {
    double sum = 0.0;
    for (const TraceSpan* round : rounds) {
      sum += round->NumberOr0(std::string("counters.") + name);
    }
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(total)) << name;
  });

  // Relaxation rounds name what they dropped.
  for (const TraceSpan* round : root.ChildrenNamed("relaxation_round")) {
    EXPECT_FALSE(round->TextOr("dropped").empty());
    EXPECT_GT(round->NumberOr0("penalty"), 0.0);
  }
}

TEST_F(DpoTraceTest, RootSpanCarriesResourceUsageAnnotations) {
  Result<Tpq> q = ParseXPath("//article[./section]", corpus_->tags());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  TopKOptions opts;
  opts.k = 2;
  opts.collect_trace = true;
  Result<TopKResult> result = processor_->Run(*q, Algorithm::kDpo, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  // Every ResourceUsage field surfaces as a usage.<name> annotation on
  // the root span, matching the result's own figures.
  const TraceSpan& root = result->trace->root;
  result->usage.ForEach([&](const char* name, double value) {
    EXPECT_DOUBLE_EQ(root.NumberOr0(std::string("usage.") + name), value)
        << name;
  });
  EXPECT_GT(result->usage.tuples_scanned, 0u);
  EXPECT_GT(result->usage.bytes_touched, 0u);
  EXPECT_EQ(result->usage.rounds_executed, result->counters.plan_passes);
}

TEST_F(DpoTraceTest, TraceIsNullUnlessRequested) {
  Result<Tpq> q = ParseXPath("//article[./section]", corpus_->tags());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  TopKOptions opts;
  opts.k = 2;
  Result<TopKResult> result = processor_->Run(*q, Algorithm::kDpo, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->trace, nullptr);
}

}  // namespace
}  // namespace flexpath
