#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "xmark/generator.h"
#include "xmark/wordlist.h"
#include "xml/serializer.h"
#include "xml/tag_dict.h"

namespace flexpath {
namespace {

Document Generate(uint64_t bytes, uint64_t seed, TagDict* dict,
                  XMarkStatsSummary* stats = nullptr) {
  XMarkOptions opts;
  opts.target_bytes = bytes;
  opts.seed = seed;
  Result<Document> doc = GenerateXMark(opts, dict, stats);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(WordListTest, NonEmptyAndContainsQueryTerms) {
  ASSERT_GT(WordListSize(), 300u);
  bool has_xml = false;
  bool has_streaming = false;
  for (size_t i = 0; i < WordListSize(); ++i) {
    if (WordAt(i) == "xml") has_xml = true;
    if (WordAt(i) == "streaming") has_streaming = true;
  }
  EXPECT_TRUE(has_xml);
  EXPECT_TRUE(has_streaming);
}

TEST(XMarkTest, DeterministicBySeed) {
  TagDict d1;
  TagDict d2;
  Document a = Generate(50000, 7, &d1);
  Document b = Generate(50000, 7, &d2);
  EXPECT_EQ(SerializeXml(a, d1), SerializeXml(b, d2));
}

TEST(XMarkTest, DifferentSeedsDiffer) {
  TagDict d1;
  TagDict d2;
  Document a = Generate(50000, 7, &d1);
  Document b = Generate(50000, 8, &d2);
  EXPECT_NE(SerializeXml(a, d1), SerializeXml(b, d2));
}

TEST(XMarkTest, SizeTracksTarget) {
  TagDict dict;
  Document doc = Generate(200000, 1, &dict);
  const size_t actual = SerializeXml(doc, dict).size();
  // The generator's byte accounting is approximate; stay within 2x.
  EXPECT_GT(actual, 100000u);
  EXPECT_LT(actual, 400000u);
}

TEST(XMarkTest, SizeMonotoneInTarget) {
  TagDict d1;
  TagDict d2;
  Document small = Generate(20000, 3, &d1);
  Document large = Generate(200000, 3, &d2);
  EXPECT_LT(small.size(), large.size());
}

TEST(XMarkTest, RejectsZeroTarget) {
  TagDict dict;
  XMarkOptions opts;
  opts.target_bytes = 0;
  EXPECT_FALSE(GenerateXMark(opts, &dict).ok());
}

class XMarkSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = Generate(300000, 42, &dict_, &stats_);
  }

  /// Counts (tag, parent-tag) occurrences.
  size_t CountWithParent(std::string_view tag, std::string_view parent) {
    const TagId t = dict_.Lookup(tag);
    const TagId p = dict_.Lookup(parent);
    size_t n = 0;
    for (NodeId i = 0; i < doc_.size(); ++i) {
      if (doc_.node(i).tag != t) continue;
      const NodeId par = doc_.node(i).parent;
      if (par != kInvalidNode && doc_.node(par).tag == p) ++n;
    }
    return n;
  }

  size_t Count(std::string_view tag) {
    const TagId t = dict_.Lookup(tag);
    if (t == kInvalidTag) return 0;
    size_t n = 0;
    for (NodeId i = 0; i < doc_.size(); ++i) {
      if (doc_.node(i).tag == t) ++n;
    }
    return n;
  }

  TagDict dict_;
  Document doc_;
  XMarkStatsSummary stats_;
};

TEST_F(XMarkSchemaTest, HasCoreStructure) {
  EXPECT_EQ(Count("site"), 1u);
  EXPECT_GT(stats_.items, 10u);
  EXPECT_EQ(Count("item"), stats_.items);
  EXPECT_GT(Count("regions"), 0u);
  EXPECT_GT(Count("category"), 0u);
  EXPECT_GT(Count("person"), 0u);
  EXPECT_GT(Count("open_auction"), 0u);
}

TEST_F(XMarkSchemaTest, ItemsHaveRequiredChildren) {
  EXPECT_EQ(CountWithParent("name", "item"), stats_.items);
  EXPECT_EQ(CountWithParent("description", "item"), stats_.items);
  EXPECT_EQ(CountWithParent("mailbox", "item"), stats_.items);
}

TEST_F(XMarkSchemaTest, RecursiveParlistExists) {
  // Axis-generalization enabler: some parlist nested under listitem.
  EXPECT_GT(CountWithParent("parlist", "listitem"), 0u);
  // And the summary wrapper puts parlists under description//, not
  // description/.
  EXPECT_GT(CountWithParent("parlist", "summary"), 0u);
  EXPECT_GT(CountWithParent("parlist", "description"), 0u);
}

TEST_F(XMarkSchemaTest, OptionalIncategory) {
  // Leaf-deletion enabler: incategory exists but not on all items.
  const size_t with = CountWithParent("incategory", "item");
  EXPECT_GT(with, 0u);
  // Count items having at least one incategory child.
  const TagId item = dict_.Lookup("item");
  const TagId incat = dict_.Lookup("incategory");
  size_t items_with = 0;
  for (NodeId i = 0; i < doc_.size(); ++i) {
    if (doc_.node(i).tag != item) continue;
    bool has = false;
    for (NodeId c : doc_.Children(i)) {
      if (doc_.node(c).tag == incat) has = true;
    }
    if (has) ++items_with;
  }
  EXPECT_GT(items_with, 0u);
  EXPECT_LT(items_with, stats_.items) << "some items must lack incategory";
}

TEST_F(XMarkSchemaTest, SharedTextElement) {
  // Subtree-promotion enabler: text under mail, under listitem, and under
  // the reply wrapper.
  EXPECT_GT(CountWithParent("text", "mail"), 0u);
  EXPECT_GT(CountWithParent("text", "listitem"), 0u);
  EXPECT_GT(CountWithParent("text", "reply"), 0u);
}

TEST_F(XMarkSchemaTest, TextHasMarkup) {
  EXPECT_GT(CountWithParent("bold", "text"), 0u);
  EXPECT_GT(CountWithParent("keyword", "text"), 0u);
  EXPECT_GT(CountWithParent("emph", "text"), 0u);
}

TEST_F(XMarkSchemaTest, WellFormedIntervals) {
  for (NodeId i = 0; i < doc_.size(); ++i) {
    const Element& e = doc_.node(i);
    ASSERT_LT(e.start, e.end);
    if (e.parent != kInvalidNode) {
      const Element& p = doc_.node(e.parent);
      ASSERT_LT(p.start, e.start);
      ASSERT_LT(e.end, p.end);
      ASSERT_EQ(e.level, p.level + 1);
    }
  }
}

}  // namespace
}  // namespace flexpath
