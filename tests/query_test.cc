#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/containment.h"
#include "query/logical.h"
#include "query/predicate.h"
#include "query/tpq.h"
#include "query/xpath_parser.h"
#include "xml/tag_dict.h"

namespace flexpath {
namespace {

/// Builds the paper's running example Q1 (Figure 1a):
/// //article[./section[./algorithm and ./paragraph[.contains("XML" and
/// "streaming")]]] with $1=article, $2=section, $3=algorithm,
/// $4=paragraph.
Tpq BuildQ1(TagDict* dict) {
  Tpq q;
  VarId article = q.AddRoot(dict->Intern("article"));
  VarId section = q.AddChild(article, Axis::kChild, dict->Intern("section"));
  q.AddChild(section, Axis::kChild, dict->Intern("algorithm"));
  VarId paragraph =
      q.AddChild(section, Axis::kChild, dict->Intern("paragraph"));
  Result<FtExpr> e = ParseFtExpr("\"XML\" and \"streaming\"");
  EXPECT_TRUE(e.ok());
  q.AddContains(paragraph, *e);
  q.SetDistinguished(article);
  return q;
}

TEST(TpqTest, BuildAndAccessors) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_TRUE(q.Validate().ok());
  const VarId root = q.root();
  EXPECT_EQ(q.distinguished(), root);
  EXPECT_EQ(q.Parent(root), kInvalidVar);
  std::vector<VarId> kids = q.Children(root);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(q.node(kids[0]).tag, dict.Lookup("section"));
  EXPECT_EQ(q.Children(kids[0]).size(), 2u);
  EXPECT_TRUE(q.IsAncestorVar(root, kids[0]));
  EXPECT_FALSE(q.IsAncestorVar(kids[0], root));
  EXPECT_EQ(q.ContainsCount(), 1u);
}

TEST(TpqTest, DeleteLeaf) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId algorithm = q.Vars()[2];
  ASSERT_TRUE(q.DeleteLeaf(algorithm).ok());
  EXPECT_EQ(q.size(), 3u);
  EXPECT_FALSE(q.HasVar(algorithm));
  EXPECT_TRUE(q.Validate().ok());
}

TEST(TpqTest, DeleteLeafRejectsRootAndInternal) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  EXPECT_FALSE(q.DeleteLeaf(q.root()).ok());
  const VarId section = q.Vars()[1];
  EXPECT_FALSE(q.DeleteLeaf(section).ok());
}

TEST(TpqTest, DeleteDistinguishedLeafPromotesParent) {
  TagDict dict;
  Tpq q;
  VarId a = q.AddRoot(dict.Intern("a"));
  VarId b = q.AddChild(a, Axis::kChild, dict.Intern("b"));
  q.SetDistinguished(b);
  ASSERT_TRUE(q.DeleteLeaf(b).ok());
  EXPECT_EQ(q.distinguished(), a);
}

TEST(TpqTest, Reparent) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId article = q.root();
  const VarId algorithm = q.Vars()[2];
  ASSERT_TRUE(q.Reparent(algorithm, article).ok());
  EXPECT_EQ(q.Parent(algorithm), article);
  EXPECT_EQ(q.AxisOf(algorithm), Axis::kDescendant);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(TpqTest, ReparentRejectsIntoOwnSubtree) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId section = q.Vars()[1];
  const VarId algorithm = q.Vars()[2];
  EXPECT_FALSE(q.Reparent(section, algorithm).ok());
}

TEST(TpqTest, PromoteContains) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId section = q.Vars()[1];
  const VarId paragraph = q.Vars()[3];
  ASSERT_TRUE(q.PromoteContains(paragraph).ok());
  EXPECT_TRUE(q.node(paragraph).contains.empty());
  EXPECT_EQ(q.node(section).contains.size(), 1u);
}

TEST(TpqTest, CanonicalStringIgnoresChildOrderAndVarIds) {
  TagDict dict;
  Tpq a;
  VarId ra = a.AddRoot(dict.Intern("r"));
  a.AddChild(ra, Axis::kChild, dict.Intern("x"));
  a.AddChild(ra, Axis::kDescendant, dict.Intern("y"));

  Tpq b;
  VarId rb = b.AddRoot(dict.Intern("r"));
  b.AddChild(rb, Axis::kDescendant, dict.Intern("y"));
  b.AddChild(rb, Axis::kChild, dict.Intern("x"));

  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());

  Tpq c;
  VarId rc = c.AddRoot(dict.Intern("r"));
  c.AddChild(rc, Axis::kChild, dict.Intern("y"));  // axis differs
  c.AddChild(rc, Axis::kChild, dict.Intern("x"));
  EXPECT_NE(a.CanonicalString(), c.CanonicalString());
}

// --- XPath parser --------------------------------------------------------

TEST(XPathParserTest, ParsesPaperQ1) {
  TagDict dict;
  Result<Tpq> q = ParseXPath(
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
      "and \"streaming\")]]]",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  TagDict ref;
  Tpq expected = BuildQ1(&ref);
  EXPECT_EQ(q->size(), 4u);
  EXPECT_EQ(q->distinguished(), q->root());
  // Compare shapes via canonical strings over a shared dictionary.
  Result<Tpq> again = ParseXPath(
      "//article[./section[./paragraph[.contains(\"xml\" and "
      "\"streaming\")] and ./algorithm]]",
      &dict);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(q->CanonicalString(), again->CanonicalString());
}

TEST(XPathParserTest, ParsesDescendantAxis) {
  TagDict dict;
  Result<Tpq> q = ParseXPath("//article[.//algorithm]", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 2u);
  const VarId alg = q->Vars()[1];
  EXPECT_EQ(q->AxisOf(alg), Axis::kDescendant);
}

TEST(XPathParserTest, ParsesXMarkQ3) {
  TagDict dict;
  Result<Tpq> q = ParseXPath(
      "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold "
      "and ./keyword and ./emph] and ./name and ./incategory]",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // item, description, parlist, listitem, mailbox, mail, text, bold,
  // keyword, emph, name, incategory = 12 pattern nodes.
  EXPECT_EQ(q->size(), 12u);
  EXPECT_EQ(q->node(q->distinguished()).tag, dict.Lookup("item"));
}

TEST(XPathParserTest, MainPathSpineSetsDistinguished) {
  TagDict dict;
  Result<Tpq> q = ParseXPath("//article/section/paragraph", &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->node(q->distinguished()).tag, dict.Lookup("paragraph"));
  EXPECT_EQ(q->size(), 3u);
}

TEST(XPathParserTest, ContainsFunctionStyle) {
  TagDict dict;
  Result<Tpq> q =
      ParseXPath("//article[contains(., \"XML\" and \"streaming\")]", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->node(q->root()).contains.size(), 1u);
}

TEST(XPathParserTest, ContainsChainedOnPredicatePath) {
  TagDict dict;
  Result<Tpq> q = ParseXPath(
      "//article[./section[./paragraph and "
      ".contains(\"XML\" and \"streaming\")]]",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // The contains applies to section (the predicate's context), as in Q2.
  const VarId section = q->Vars()[1];
  EXPECT_EQ(q->node(section).contains.size(), 1u);
}

TEST(XPathParserTest, AttributePredicates) {
  TagDict dict;
  Result<Tpq> q = ParseXPath("//item[@id='item7' and @quantity >= 2]", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->node(q->root()).attr_preds.size(), 2u);
  EXPECT_EQ(q->node(q->root()).attr_preds[0].op, AttrPred::Op::kEq);
  EXPECT_EQ(q->node(q->root()).attr_preds[1].op, AttrPred::Op::kGe);
}

TEST(XPathParserTest, RejectsStructuralDisjunction) {
  TagDict dict;
  Result<Tpq> q = ParseXPath("//a[./b or ./c]", &dict);
  EXPECT_FALSE(q.ok());
}

TEST(XPathParserTest, RejectsGarbage) {
  TagDict dict;
  EXPECT_FALSE(ParseXPath("", &dict).ok());
  EXPECT_FALSE(ParseXPath("article", &dict).ok());
  EXPECT_FALSE(ParseXPath("//a[", &dict).ok());
  EXPECT_FALSE(ParseXPath("//a]b", &dict).ok());
  EXPECT_FALSE(ParseXPath("//a[.contains(\"x\"]", &dict).ok());
}

TEST(XPathParserTest, WildcardStep) {
  TagDict dict;
  Result<Tpq> q = ParseXPath("//*[./b]", &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->node(q->root()).tag, kInvalidTag);
}

// --- Logical form, closure, core ----------------------------------------

TEST(LogicalTest, Q1LogicalFormMatchesFigure2) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  LogicalQuery lq = ToLogical(q);
  const VarId v1 = q.Vars()[0];
  const VarId v2 = q.Vars()[1];
  const VarId v3 = q.Vars()[2];
  const VarId v4 = q.Vars()[3];
  // Figure 2: 3 pc predicates, 4 tag predicates, 1 contains.
  EXPECT_EQ(lq.preds.size(), 8u);
  EXPECT_TRUE(lq.Has(Predicate::Pc(v1, v2)));
  EXPECT_TRUE(lq.Has(Predicate::Pc(v2, v3)));
  EXPECT_TRUE(lq.Has(Predicate::Pc(v2, v4)));
  EXPECT_TRUE(lq.Has(Predicate::Tag(v1, dict.Lookup("article"))));
  EXPECT_TRUE(lq.Has(Predicate::ContainsKey(
      v4, "(\"xml\" and \"stream\")")));
}

TEST(LogicalTest, Q1ClosureMatchesFigure4) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  LogicalQuery closure = Closure(ToLogical(q));
  const VarId v1 = q.Vars()[0];
  const VarId v2 = q.Vars()[1];
  const VarId v3 = q.Vars()[2];
  const VarId v4 = q.Vars()[3];
  // Figure 4 adds: ad(1,2), ad(2,3), ad(2,4), ad(1,3), ad(1,4),
  // contains(2,E), contains(1,E) — 7 new predicates.
  EXPECT_EQ(closure.preds.size(), 8u + 7u);
  EXPECT_TRUE(closure.Has(Predicate::Ad(v1, v2)));
  EXPECT_TRUE(closure.Has(Predicate::Ad(v2, v3)));
  EXPECT_TRUE(closure.Has(Predicate::Ad(v2, v4)));
  EXPECT_TRUE(closure.Has(Predicate::Ad(v1, v3)));
  EXPECT_TRUE(closure.Has(Predicate::Ad(v1, v4)));
  const std::string key = "(\"xml\" and \"stream\")";
  EXPECT_TRUE(closure.Has(Predicate::ContainsKey(v2, key)));
  EXPECT_TRUE(closure.Has(Predicate::ContainsKey(v1, key)));
}

TEST(LogicalTest, ClosureIsIdempotent) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  LogicalQuery once = Closure(ToLogical(q));
  LogicalQuery twice = Closure(once);
  EXPECT_EQ(once, twice);
}

TEST(LogicalTest, DerivableDetectsRedundancy) {
  // pc(1,2) ^ ad(2,3) ^ ad(1,3): ad(1,3) is redundant (paper, 3.2).
  std::set<Predicate> preds = {Predicate::Pc(1, 2), Predicate::Ad(2, 3),
                               Predicate::Ad(1, 3)};
  EXPECT_TRUE(Derivable(preds, Predicate::Ad(1, 3)));
  EXPECT_FALSE(Derivable(preds, Predicate::Pc(1, 2)));
  EXPECT_FALSE(Derivable(preds, Predicate::Ad(2, 3)));
}

TEST(LogicalTest, CoreOfClosureEqualsOriginal) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  LogicalQuery original = ToLogical(q);
  LogicalQuery core = Core(Closure(original));
  EXPECT_EQ(core.preds, original.preds);
}

TEST(LogicalTest, CoreMatchesFigure5) {
  // Drop pc($2,$3) and ad($2,$3) from Q1's closure; the core must be Q3:
  // pc(1,2) ^ pc(2,4) ^ ad(1,3) + tags + contains(4).
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId v1 = q.Vars()[0];
  const VarId v2 = q.Vars()[1];
  const VarId v3 = q.Vars()[2];
  const VarId v4 = q.Vars()[3];
  LogicalQuery closure = Closure(ToLogical(q));
  closure.preds.erase(Predicate::Pc(v2, v3));
  closure.preds.erase(Predicate::Ad(v2, v3));
  LogicalQuery core = Core(closure);
  EXPECT_TRUE(core.Has(Predicate::Pc(v1, v2)));
  EXPECT_TRUE(core.Has(Predicate::Pc(v2, v4)));
  EXPECT_TRUE(core.Has(Predicate::Ad(v1, v3)));
  EXPECT_FALSE(core.Has(Predicate::Ad(v1, v2)));
  EXPECT_FALSE(core.Has(Predicate::Ad(v1, v4)));
  const std::string key = "(\"xml\" and \"stream\")";
  EXPECT_TRUE(core.Has(Predicate::ContainsKey(v4, key)));
  EXPECT_FALSE(core.Has(Predicate::ContainsKey(v2, key)));
}

TEST(LogicalTest, CoreUniqueRegardlessOfOrder) {
  // Theorem 1 (uniqueness of core): removing redundant predicates in any
  // order converges to the same set. We simulate different orders by
  // shuffling which derivable predicate gets removed first.
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  LogicalQuery closure = Closure(ToLogical(q));
  const LogicalQuery reference = Core(closure);

  std::mt19937 gen(99);
  for (int trial = 0; trial < 20; ++trial) {
    LogicalQuery work = closure;
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<Predicate> candidates(work.preds.begin(),
                                        work.preds.end());
      std::shuffle(candidates.begin(), candidates.end(), gen);
      for (const Predicate& p : candidates) {
        if (Derivable(work.preds, p)) {
          work.preds.erase(p);
          changed = true;
          break;
        }
      }
    }
    EXPECT_EQ(work.preds, reference.preds) << "trial " << trial;
  }
}

TEST(LogicalTest, LogicalToTpqRoundTrip) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  Result<Tpq> rebuilt = LogicalToTpq(Closure(ToLogical(q)));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt->CanonicalString(), q.CanonicalString());
  EXPECT_EQ(rebuilt->distinguished(), q.distinguished());
}

TEST(LogicalTest, LogicalToTpqRejectsDisconnected) {
  LogicalQuery lq;
  lq.preds.insert(Predicate::Pc(1, 2));
  lq.preds.insert(Predicate::Pc(3, 4));  // second component
  lq.distinguished = 1;
  EXPECT_FALSE(LogicalToTpq(lq).ok());
}

TEST(LogicalTest, LogicalToTpqRejectsMissingDistinguished) {
  LogicalQuery lq;
  lq.preds.insert(Predicate::Pc(1, 2));
  lq.distinguished = 9;
  EXPECT_FALSE(LogicalToTpq(lq).ok());
}

TEST(LogicalTest, IsValidRelaxationDropAcceptsFigure5Drop) {
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId v2 = q.Vars()[1];
  const VarId v3 = q.Vars()[2];
  LogicalQuery closure = Closure(ToLogical(q));
  EXPECT_TRUE(IsValidRelaxationDrop(
      q, {Predicate::Pc(v2, v3), Predicate::Ad(v2, v3)}));
}

TEST(LogicalTest, IsValidRelaxationDropRejectsRedundantDrop) {
  // Dropping only ad($1,$3) keeps an equivalent query (derivable), so it
  // is not a relaxation (Section 3.3).
  TagDict dict;
  Tpq q = BuildQ1(&dict);
  const VarId v1 = q.Vars()[0];
  const VarId v3 = q.Vars()[2];
  LogicalQuery closure = Closure(ToLogical(q));
  EXPECT_FALSE(IsValidRelaxationDrop(q, {Predicate::Ad(v1, v3)}));
}

TEST(LogicalTest, IsValidRelaxationDropRejectsNonTree) {
  // Dropping only pc($1,$2) (keeping ad($1,$2)) is fine; but dropping
  // pc($1,$2) AND ad($1,$2) disconnects $1 from the rest... actually $2's
  // subtree reconnects via ad($1,$3)/ad($1,$4), so craft a genuinely
  // disconnecting drop: a two-node query losing its only edges.
  TagDict dict;
  Tpq q;
  VarId a = q.AddRoot(dict.Intern("a"));
  q.AddChild(a, Axis::kChild, dict.Intern("b"));
  LogicalQuery closure = Closure(ToLogical(q));
  const VarId b = q.Vars()[1];
  EXPECT_FALSE(IsValidRelaxationDrop(
      q, {Predicate::Pc(a, b), Predicate::Ad(a, b)}));
}

// --- Containment ---------------------------------------------------------

class Figure1ContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parse = [&](const char* s) {
      Result<Tpq> q = ParseXPath(s, &dict_);
      EXPECT_TRUE(q.ok()) << q.status().ToString();
      return *std::move(q);
    };
    q1_ = parse(
        "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" "
        "and \"streaming\")]]]");
    q2_ = parse(
        "//article[./section[./algorithm and ./paragraph and "
        ".contains(\"XML\" and \"streaming\")]]");
    q3_ = parse(
        "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" "
        "and \"streaming\")]]]");
    q4_ = parse(
        "//article[.//algorithm and ./section[./paragraph and "
        ".contains(\"XML\" and \"streaming\")]]");
    q5_ = parse(
        "//article[./section[./paragraph and .contains(\"XML\" and "
        "\"streaming\")]]");
    q6_ = parse("//article[.contains(\"XML\" and \"streaming\")]");
  }

  TagDict dict_;
  Tpq q1_, q2_, q3_, q4_, q5_, q6_;
};

TEST_F(Figure1ContainmentTest, PaperRelationshipsHold) {
  // Q1 ⊂ Q2, Q1 ⊂ Q3, Q2 ⊂ Q4, Q3 ⊂ Q4, Q4 ⊂ Q5, Q5 ⊂ Q6.
  EXPECT_TRUE(ContainedIn(q1_, q2_));
  EXPECT_TRUE(ContainedIn(q1_, q3_));
  EXPECT_TRUE(ContainedIn(q2_, q4_));
  EXPECT_TRUE(ContainedIn(q3_, q4_));
  EXPECT_TRUE(ContainedIn(q4_, q5_));
  EXPECT_TRUE(ContainedIn(q5_, q6_));
  // Transitivity spot-checks.
  EXPECT_TRUE(ContainedIn(q1_, q6_));
  EXPECT_TRUE(ContainedIn(q2_, q5_));
}

TEST_F(Figure1ContainmentTest, StrictnessHolds) {
  EXPECT_FALSE(ContainedIn(q2_, q1_));
  EXPECT_FALSE(ContainedIn(q3_, q1_));
  EXPECT_FALSE(ContainedIn(q4_, q2_));
  EXPECT_FALSE(ContainedIn(q5_, q4_));
  EXPECT_FALSE(ContainedIn(q6_, q5_));
}

TEST_F(Figure1ContainmentTest, IncomparablePairs) {
  EXPECT_FALSE(ContainedIn(q2_, q3_));
  EXPECT_FALSE(ContainedIn(q3_, q2_));
}

TEST_F(Figure1ContainmentTest, SelfContainment) {
  EXPECT_TRUE(ContainedIn(q1_, q1_));
  EXPECT_TRUE(ContainedIn(q6_, q6_));
}

TEST(ContainmentTest, DifferentTagsNotContained) {
  TagDict dict;
  Result<Tpq> a = ParseXPath("//x[./y]", &dict);
  Result<Tpq> b = ParseXPath("//x[./z]", &dict);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(ContainedIn(*a, *b));
  EXPECT_FALSE(ContainedIn(*b, *a));
}

TEST(ContainmentTest, PcContainedInAd) {
  TagDict dict;
  Result<Tpq> pc = ParseXPath("//x[./y]", &dict);
  Result<Tpq> ad = ParseXPath("//x[.//y]", &dict);
  ASSERT_TRUE(pc.ok());
  ASSERT_TRUE(ad.ok());
  EXPECT_TRUE(ContainedIn(*pc, *ad));
  EXPECT_FALSE(ContainedIn(*ad, *pc));
}

// --- Predicate basics ----------------------------------------------------

TEST(PredicateTest, OrderingAndEquality) {
  EXPECT_EQ(Predicate::Pc(1, 2), Predicate::Pc(1, 2));
  EXPECT_NE(Predicate::Pc(1, 2), Predicate::Ad(1, 2));
  EXPECT_LT(Predicate::Pc(1, 2), Predicate::Ad(1, 2));  // kind order
  std::set<Predicate> s = {Predicate::Pc(1, 2), Predicate::Pc(1, 2)};
  EXPECT_EQ(s.size(), 1u);
}

TEST(PredicateTest, ToStringForms) {
  EXPECT_EQ(Predicate::Pc(1, 2).ToString(), "pc($1,$2)");
  EXPECT_EQ(Predicate::Ad(3, 4).ToString(), "ad($3,$4)");
  EXPECT_EQ(Predicate::ContainsKey(4, "\"xml\"").ToString(),
            "contains($4,\"xml\")");
}

TEST(AttrPredTest, NumericAndStringComparison) {
  AttrPred p;
  p.op = AttrPred::Op::kGe;
  p.value = "10";
  EXPECT_TRUE(p.Matches("10"));
  EXPECT_TRUE(p.Matches("11"));
  EXPECT_FALSE(p.Matches("9"));
  // "9" < "10" numerically even though "9" > "10" lexicographically.
  p.op = AttrPred::Op::kLt;
  EXPECT_TRUE(p.Matches("9"));

  AttrPred s;
  s.op = AttrPred::Op::kEq;
  s.value = "item7";
  EXPECT_TRUE(s.Matches("item7"));
  EXPECT_FALSE(s.Matches("item8"));
}

}  // namespace
}  // namespace flexpath
