#include "tests/test_util.h"

#include <cassert>

#include "xml/document.h"

namespace flexpath {
namespace testing_util {

std::unique_ptr<Corpus> CorpusFromXml(const std::vector<std::string>& docs) {
  auto corpus = std::make_unique<Corpus>();
  for (const std::string& xml : docs) {
    Result<DocId> id = corpus->AddXml(xml);
    assert(id.ok() && "test corpus XML must parse");
    (void)id;
  }
  return corpus;
}

std::unique_ptr<Corpus> ArticleCorpus() {
  return CorpusFromXml({
      // a1: exact match for Q1 — section contains an algorithm and a
      // paragraph with the keywords.
      R"(<article id="a1"><title>stream processing</title>
         <section><title>evaluation</title>
           <algorithm>stack based join</algorithm>
           <paragraph>XML streaming evaluation with low memory</paragraph>
         </section></article>)",
      // a2: keywords in the section title, not in any paragraph.
      R"(<article id="a2"><title>engines</title>
         <section><title>XML streaming engines</title>
           <algorithm>one pass automaton</algorithm>
           <paragraph>we discuss several engines in depth</paragraph>
         </section></article>)",
      // a3: algorithm outside the section that has the keyword paragraph.
      R"(<article id="a3"><title>joins</title>
         <appendix><algorithm>twig join</algorithm></appendix>
         <section><title>background</title>
           <paragraph>XML streaming joins background material</paragraph>
         </section></article>)",
      // a4: keyword paragraph, but no algorithm anywhere.
      R"(<article id="a4"><title>survey</title>
         <section><title>overview</title>
           <paragraph>a survey of XML streaming systems</paragraph>
         </section></article>)",
      // a5: keywords only in the abstract.
      R"(<article id="a5"><title>notes</title>
         <abstract>notes on XML streaming</abstract>
         <section><title>misc</title>
           <paragraph>miscellaneous remarks</paragraph>
         </section></article>)",
      // a6: no keywords at all.
      R"(<article id="a6"><title>other</title>
         <section><title>unrelated</title>
           <algorithm>sorting</algorithm>
           <paragraph>completely unrelated content</paragraph>
         </section></article>)",
  });
}

Document RandomDocument(Rng* rng, TagDict* dict, size_t max_nodes) {
  static constexpr const char* kTags[] = {"a", "b", "c", "d", "e", "f"};
  static constexpr const char* kWords[] = {"red",  "green", "blue",
                                           "gold", "iron",  "salt"};
  DocumentBuilder builder(dict);
  size_t budget = 1 + rng->Uniform(max_nodes);
  // Random recursive descent: each node spends some of the budget on
  // children.
  struct Gen {
    Rng* rng;
    DocumentBuilder* b;
    size_t* budget;
    void Node(int depth) {
      (*budget)--;
      b->Open(kTags[rng->Uniform(6)]);
      if (rng->Bernoulli(0.6)) {
        std::string text;
        int words = 1 + static_cast<int>(rng->Uniform(3));
        for (int i = 0; i < words; ++i) {
          if (i > 0) text += ' ';
          text += kWords[rng->Uniform(6)];
        }
        (void)b->Text(text);
      }
      while (*budget > 0 && depth < 8 && rng->Bernoulli(0.55)) {
        Node(depth + 1);
      }
      (void)b->Close();
    }
  };
  Gen gen{rng, &builder, &budget};
  gen.Node(0);
  Result<Document> doc = std::move(builder).Finish();
  assert(doc.ok());
  return std::move(doc).value();
}

Tpq RandomTpq(Rng* rng, TagDict* dict, size_t max_nodes) {
  static constexpr const char* kTags[] = {"a", "b", "c", "d", "e", "f"};
  static constexpr const char* kWords[] = {"red",  "green", "blue",
                                           "gold", "iron",  "salt"};
  assert(max_nodes >= 2);
  const size_t n = 2 + rng->Uniform(max_nodes - 1);
  Tpq q;
  std::vector<VarId> vars;
  vars.push_back(q.AddRoot(dict->Intern(kTags[rng->Uniform(6)])));
  for (size_t i = 1; i < n; ++i) {
    const VarId parent = vars[rng->Uniform(vars.size())];
    const Axis axis = rng->Bernoulli(0.5) ? Axis::kChild : Axis::kDescendant;
    vars.push_back(
        q.AddChild(parent, axis, dict->Intern(kTags[rng->Uniform(6)])));
  }
  for (VarId v : vars) {
    if (rng->Bernoulli(0.3)) {
      q.AddContains(v, FtExpr::Term(kWords[rng->Uniform(6)]));
    }
  }
  q.SetDistinguished(vars[rng->Uniform(vars.size())]);
  assert(q.Validate().ok());
  return q;
}

}  // namespace testing_util
}  // namespace flexpath
