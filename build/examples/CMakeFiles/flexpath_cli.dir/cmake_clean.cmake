file(REMOVE_RECURSE
  "CMakeFiles/flexpath_cli.dir/flexpath_cli.cpp.o"
  "CMakeFiles/flexpath_cli.dir/flexpath_cli.cpp.o.d"
  "flexpath_cli"
  "flexpath_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
