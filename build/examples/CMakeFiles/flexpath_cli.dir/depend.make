# Empty dependencies file for flexpath_cli.
# This may be replaced when dependencies are built.
