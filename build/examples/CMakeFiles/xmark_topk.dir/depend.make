# Empty dependencies file for xmark_topk.
# This may be replaced when dependencies are built.
