file(REMOVE_RECURSE
  "CMakeFiles/xmark_topk.dir/xmark_topk.cpp.o"
  "CMakeFiles/xmark_topk.dir/xmark_topk.cpp.o.d"
  "xmark_topk"
  "xmark_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
