# Empty dependencies file for relaxation_explorer.
# This may be replaced when dependencies are built.
