file(REMOVE_RECURSE
  "CMakeFiles/relaxation_explorer.dir/relaxation_explorer.cpp.o"
  "CMakeFiles/relaxation_explorer.dir/relaxation_explorer.cpp.o.d"
  "relaxation_explorer"
  "relaxation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
