file(REMOVE_RECURSE
  "CMakeFiles/fig14_sso_hybrid_docsize.dir/fig14_sso_hybrid_docsize.cc.o"
  "CMakeFiles/fig14_sso_hybrid_docsize.dir/fig14_sso_hybrid_docsize.cc.o.d"
  "fig14_sso_hybrid_docsize"
  "fig14_sso_hybrid_docsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sso_hybrid_docsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
