# Empty dependencies file for fig14_sso_hybrid_docsize.
# This may be replaced when dependencies are built.
