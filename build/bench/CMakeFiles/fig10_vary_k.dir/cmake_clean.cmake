file(REMOVE_RECURSE
  "CMakeFiles/fig10_vary_k.dir/fig10_vary_k.cc.o"
  "CMakeFiles/fig10_vary_k.dir/fig10_vary_k.cc.o.d"
  "fig10_vary_k"
  "fig10_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
