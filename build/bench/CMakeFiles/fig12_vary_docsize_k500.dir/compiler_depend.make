# Empty compiler generated dependencies file for fig12_vary_docsize_k500.
# This may be replaced when dependencies are built.
