file(REMOVE_RECURSE
  "CMakeFiles/fig12_vary_docsize_k500.dir/fig12_vary_docsize_k500.cc.o"
  "CMakeFiles/fig12_vary_docsize_k500.dir/fig12_vary_docsize_k500.cc.o.d"
  "fig12_vary_docsize_k500"
  "fig12_vary_docsize_k500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vary_docsize_k500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
