# Empty dependencies file for abl_join_vs_naive.
# This may be replaced when dependencies are built.
