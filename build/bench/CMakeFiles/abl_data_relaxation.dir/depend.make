# Empty dependencies file for abl_data_relaxation.
# This may be replaced when dependencies are built.
