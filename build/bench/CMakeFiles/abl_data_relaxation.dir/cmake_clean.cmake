file(REMOVE_RECURSE
  "CMakeFiles/abl_data_relaxation.dir/abl_data_relaxation.cc.o"
  "CMakeFiles/abl_data_relaxation.dir/abl_data_relaxation.cc.o.d"
  "abl_data_relaxation"
  "abl_data_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_data_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
