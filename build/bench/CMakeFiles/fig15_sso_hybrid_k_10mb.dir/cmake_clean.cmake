file(REMOVE_RECURSE
  "CMakeFiles/fig15_sso_hybrid_k_10mb.dir/fig15_sso_hybrid_k_10mb.cc.o"
  "CMakeFiles/fig15_sso_hybrid_k_10mb.dir/fig15_sso_hybrid_k_10mb.cc.o.d"
  "fig15_sso_hybrid_k_10mb"
  "fig15_sso_hybrid_k_10mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sso_hybrid_k_10mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
