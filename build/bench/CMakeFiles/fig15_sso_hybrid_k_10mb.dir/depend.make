# Empty dependencies file for fig15_sso_hybrid_k_10mb.
# This may be replaced when dependencies are built.
