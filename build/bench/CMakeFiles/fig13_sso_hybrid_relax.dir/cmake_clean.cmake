file(REMOVE_RECURSE
  "CMakeFiles/fig13_sso_hybrid_relax.dir/fig13_sso_hybrid_relax.cc.o"
  "CMakeFiles/fig13_sso_hybrid_relax.dir/fig13_sso_hybrid_relax.cc.o.d"
  "fig13_sso_hybrid_relax"
  "fig13_sso_hybrid_relax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sso_hybrid_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
