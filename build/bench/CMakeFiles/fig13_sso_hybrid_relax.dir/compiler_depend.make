# Empty compiler generated dependencies file for fig13_sso_hybrid_relax.
# This may be replaced when dependencies are built.
