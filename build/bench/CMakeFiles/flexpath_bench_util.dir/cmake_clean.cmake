file(REMOVE_RECURSE
  "CMakeFiles/flexpath_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/flexpath_bench_util.dir/bench_util.cc.o.d"
  "libflexpath_bench_util.a"
  "libflexpath_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
