# Empty compiler generated dependencies file for flexpath_bench_util.
# This may be replaced when dependencies are built.
