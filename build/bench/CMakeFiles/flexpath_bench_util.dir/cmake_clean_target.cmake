file(REMOVE_RECURSE
  "libflexpath_bench_util.a"
)
