# Empty dependencies file for fig11_vary_docsize_k12.
# This may be replaced when dependencies are built.
