file(REMOVE_RECURSE
  "CMakeFiles/fig11_vary_docsize_k12.dir/fig11_vary_docsize_k12.cc.o"
  "CMakeFiles/fig11_vary_docsize_k12.dir/fig11_vary_docsize_k12.cc.o.d"
  "fig11_vary_docsize_k12"
  "fig11_vary_docsize_k12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vary_docsize_k12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
