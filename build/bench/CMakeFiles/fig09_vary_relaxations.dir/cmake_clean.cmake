file(REMOVE_RECURSE
  "CMakeFiles/fig09_vary_relaxations.dir/fig09_vary_relaxations.cc.o"
  "CMakeFiles/fig09_vary_relaxations.dir/fig09_vary_relaxations.cc.o.d"
  "fig09_vary_relaxations"
  "fig09_vary_relaxations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vary_relaxations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
