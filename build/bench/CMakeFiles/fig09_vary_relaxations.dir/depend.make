# Empty dependencies file for fig09_vary_relaxations.
# This may be replaced when dependencies are built.
