# Empty compiler generated dependencies file for abl_ranking_schemes.
# This may be replaced when dependencies are built.
