file(REMOVE_RECURSE
  "CMakeFiles/abl_ranking_schemes.dir/abl_ranking_schemes.cc.o"
  "CMakeFiles/abl_ranking_schemes.dir/abl_ranking_schemes.cc.o.d"
  "abl_ranking_schemes"
  "abl_ranking_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ranking_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
