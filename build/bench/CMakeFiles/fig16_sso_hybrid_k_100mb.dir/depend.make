# Empty dependencies file for fig16_sso_hybrid_k_100mb.
# This may be replaced when dependencies are built.
