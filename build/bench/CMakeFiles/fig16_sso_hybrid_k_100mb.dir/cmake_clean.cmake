file(REMOVE_RECURSE
  "CMakeFiles/fig16_sso_hybrid_k_100mb.dir/fig16_sso_hybrid_k_100mb.cc.o"
  "CMakeFiles/fig16_sso_hybrid_k_100mb.dir/fig16_sso_hybrid_k_100mb.cc.o.d"
  "fig16_sso_hybrid_k_100mb"
  "fig16_sso_hybrid_k_100mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sso_hybrid_k_100mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
