file(REMOVE_RECURSE
  "CMakeFiles/abl_bucketization.dir/abl_bucketization.cc.o"
  "CMakeFiles/abl_bucketization.dir/abl_bucketization.cc.o.d"
  "abl_bucketization"
  "abl_bucketization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bucketization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
