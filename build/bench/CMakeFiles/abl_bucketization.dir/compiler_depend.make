# Empty compiler generated dependencies file for abl_bucketization.
# This may be replaced when dependencies are built.
