file(REMOVE_RECURSE
  "libflexpath_test_util.a"
)
