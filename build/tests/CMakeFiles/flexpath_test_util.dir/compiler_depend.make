# Empty compiler generated dependencies file for flexpath_test_util.
# This may be replaced when dependencies are built.
