file(REMOVE_RECURSE
  "CMakeFiles/flexpath_test_util.dir/test_util.cc.o"
  "CMakeFiles/flexpath_test_util.dir/test_util.cc.o.d"
  "libflexpath_test_util.a"
  "libflexpath_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
