
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xmark_test.cc" "tests/CMakeFiles/xmark_test.dir/xmark_test.cc.o" "gcc" "tests/CMakeFiles/xmark_test.dir/xmark_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flexpath_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/flexpath_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/flexpath_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/relax/CMakeFiles/flexpath_relax.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/flexpath_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexpath_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/flexpath_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xmark/CMakeFiles/flexpath_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/flexpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexpath_common.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/flexpath_test_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
