# Empty dependencies file for relax_test.
# This may be replaced when dependencies are built.
