# Empty dependencies file for data_relaxation_test.
# This may be replaced when dependencies are built.
