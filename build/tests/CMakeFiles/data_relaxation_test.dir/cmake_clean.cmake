file(REMOVE_RECURSE
  "CMakeFiles/data_relaxation_test.dir/data_relaxation_test.cc.o"
  "CMakeFiles/data_relaxation_test.dir/data_relaxation_test.cc.o.d"
  "data_relaxation_test"
  "data_relaxation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_relaxation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
