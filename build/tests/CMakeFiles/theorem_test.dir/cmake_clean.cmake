file(REMOVE_RECURSE
  "CMakeFiles/theorem_test.dir/theorem_test.cc.o"
  "CMakeFiles/theorem_test.dir/theorem_test.cc.o.d"
  "theorem_test"
  "theorem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
