file(REMOVE_RECURSE
  "CMakeFiles/flexpath_xmark.dir/generator.cc.o"
  "CMakeFiles/flexpath_xmark.dir/generator.cc.o.d"
  "CMakeFiles/flexpath_xmark.dir/wordlist.cc.o"
  "CMakeFiles/flexpath_xmark.dir/wordlist.cc.o.d"
  "libflexpath_xmark.a"
  "libflexpath_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
