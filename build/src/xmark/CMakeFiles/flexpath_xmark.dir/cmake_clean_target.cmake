file(REMOVE_RECURSE
  "libflexpath_xmark.a"
)
