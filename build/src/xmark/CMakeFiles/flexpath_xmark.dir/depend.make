# Empty dependencies file for flexpath_xmark.
# This may be replaced when dependencies are built.
