# Empty compiler generated dependencies file for flexpath_stats.
# This may be replaced when dependencies are built.
