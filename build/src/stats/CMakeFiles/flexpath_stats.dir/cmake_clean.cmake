file(REMOVE_RECURSE
  "CMakeFiles/flexpath_stats.dir/document_stats.cc.o"
  "CMakeFiles/flexpath_stats.dir/document_stats.cc.o.d"
  "CMakeFiles/flexpath_stats.dir/element_index.cc.o"
  "CMakeFiles/flexpath_stats.dir/element_index.cc.o.d"
  "libflexpath_stats.a"
  "libflexpath_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
