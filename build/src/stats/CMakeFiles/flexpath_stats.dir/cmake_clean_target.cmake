file(REMOVE_RECURSE
  "libflexpath_stats.a"
)
