# Empty dependencies file for flexpath_xml.
# This may be replaced when dependencies are built.
