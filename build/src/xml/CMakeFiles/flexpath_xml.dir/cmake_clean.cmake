file(REMOVE_RECURSE
  "CMakeFiles/flexpath_xml.dir/binary_codec.cc.o"
  "CMakeFiles/flexpath_xml.dir/binary_codec.cc.o.d"
  "CMakeFiles/flexpath_xml.dir/corpus.cc.o"
  "CMakeFiles/flexpath_xml.dir/corpus.cc.o.d"
  "CMakeFiles/flexpath_xml.dir/document.cc.o"
  "CMakeFiles/flexpath_xml.dir/document.cc.o.d"
  "CMakeFiles/flexpath_xml.dir/parser.cc.o"
  "CMakeFiles/flexpath_xml.dir/parser.cc.o.d"
  "CMakeFiles/flexpath_xml.dir/serializer.cc.o"
  "CMakeFiles/flexpath_xml.dir/serializer.cc.o.d"
  "CMakeFiles/flexpath_xml.dir/tag_dict.cc.o"
  "CMakeFiles/flexpath_xml.dir/tag_dict.cc.o.d"
  "CMakeFiles/flexpath_xml.dir/type_hierarchy.cc.o"
  "CMakeFiles/flexpath_xml.dir/type_hierarchy.cc.o.d"
  "libflexpath_xml.a"
  "libflexpath_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
