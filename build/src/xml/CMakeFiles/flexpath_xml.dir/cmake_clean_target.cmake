file(REMOVE_RECURSE
  "libflexpath_xml.a"
)
