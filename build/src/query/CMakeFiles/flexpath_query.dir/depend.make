# Empty dependencies file for flexpath_query.
# This may be replaced when dependencies are built.
