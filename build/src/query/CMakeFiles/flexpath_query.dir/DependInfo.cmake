
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/containment.cc" "src/query/CMakeFiles/flexpath_query.dir/containment.cc.o" "gcc" "src/query/CMakeFiles/flexpath_query.dir/containment.cc.o.d"
  "/root/repo/src/query/logical.cc" "src/query/CMakeFiles/flexpath_query.dir/logical.cc.o" "gcc" "src/query/CMakeFiles/flexpath_query.dir/logical.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/flexpath_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/flexpath_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/tpq.cc" "src/query/CMakeFiles/flexpath_query.dir/tpq.cc.o" "gcc" "src/query/CMakeFiles/flexpath_query.dir/tpq.cc.o.d"
  "/root/repo/src/query/xpath_parser.cc" "src/query/CMakeFiles/flexpath_query.dir/xpath_parser.cc.o" "gcc" "src/query/CMakeFiles/flexpath_query.dir/xpath_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/flexpath_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/flexpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
