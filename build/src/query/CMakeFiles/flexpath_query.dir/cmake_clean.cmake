file(REMOVE_RECURSE
  "CMakeFiles/flexpath_query.dir/containment.cc.o"
  "CMakeFiles/flexpath_query.dir/containment.cc.o.d"
  "CMakeFiles/flexpath_query.dir/logical.cc.o"
  "CMakeFiles/flexpath_query.dir/logical.cc.o.d"
  "CMakeFiles/flexpath_query.dir/predicate.cc.o"
  "CMakeFiles/flexpath_query.dir/predicate.cc.o.d"
  "CMakeFiles/flexpath_query.dir/tpq.cc.o"
  "CMakeFiles/flexpath_query.dir/tpq.cc.o.d"
  "CMakeFiles/flexpath_query.dir/xpath_parser.cc.o"
  "CMakeFiles/flexpath_query.dir/xpath_parser.cc.o.d"
  "libflexpath_query.a"
  "libflexpath_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
