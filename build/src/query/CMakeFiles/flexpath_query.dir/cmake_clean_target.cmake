file(REMOVE_RECURSE
  "libflexpath_query.a"
)
