# Empty dependencies file for flexpath_ir.
# This may be replaced when dependencies are built.
