file(REMOVE_RECURSE
  "libflexpath_ir.a"
)
