
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/engine.cc" "src/ir/CMakeFiles/flexpath_ir.dir/engine.cc.o" "gcc" "src/ir/CMakeFiles/flexpath_ir.dir/engine.cc.o.d"
  "/root/repo/src/ir/ft_expr.cc" "src/ir/CMakeFiles/flexpath_ir.dir/ft_expr.cc.o" "gcc" "src/ir/CMakeFiles/flexpath_ir.dir/ft_expr.cc.o.d"
  "/root/repo/src/ir/inverted_index.cc" "src/ir/CMakeFiles/flexpath_ir.dir/inverted_index.cc.o" "gcc" "src/ir/CMakeFiles/flexpath_ir.dir/inverted_index.cc.o.d"
  "/root/repo/src/ir/stemmer.cc" "src/ir/CMakeFiles/flexpath_ir.dir/stemmer.cc.o" "gcc" "src/ir/CMakeFiles/flexpath_ir.dir/stemmer.cc.o.d"
  "/root/repo/src/ir/thesaurus.cc" "src/ir/CMakeFiles/flexpath_ir.dir/thesaurus.cc.o" "gcc" "src/ir/CMakeFiles/flexpath_ir.dir/thesaurus.cc.o.d"
  "/root/repo/src/ir/tokenizer.cc" "src/ir/CMakeFiles/flexpath_ir.dir/tokenizer.cc.o" "gcc" "src/ir/CMakeFiles/flexpath_ir.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/flexpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
