file(REMOVE_RECURSE
  "CMakeFiles/flexpath_ir.dir/engine.cc.o"
  "CMakeFiles/flexpath_ir.dir/engine.cc.o.d"
  "CMakeFiles/flexpath_ir.dir/ft_expr.cc.o"
  "CMakeFiles/flexpath_ir.dir/ft_expr.cc.o.d"
  "CMakeFiles/flexpath_ir.dir/inverted_index.cc.o"
  "CMakeFiles/flexpath_ir.dir/inverted_index.cc.o.d"
  "CMakeFiles/flexpath_ir.dir/stemmer.cc.o"
  "CMakeFiles/flexpath_ir.dir/stemmer.cc.o.d"
  "CMakeFiles/flexpath_ir.dir/thesaurus.cc.o"
  "CMakeFiles/flexpath_ir.dir/thesaurus.cc.o.d"
  "CMakeFiles/flexpath_ir.dir/tokenizer.cc.o"
  "CMakeFiles/flexpath_ir.dir/tokenizer.cc.o.d"
  "libflexpath_ir.a"
  "libflexpath_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
