file(REMOVE_RECURSE
  "CMakeFiles/flexpath_rank.dir/score.cc.o"
  "CMakeFiles/flexpath_rank.dir/score.cc.o.d"
  "libflexpath_rank.a"
  "libflexpath_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
