# Empty compiler generated dependencies file for flexpath_rank.
# This may be replaced when dependencies are built.
