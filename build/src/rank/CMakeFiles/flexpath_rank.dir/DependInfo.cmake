
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/score.cc" "src/rank/CMakeFiles/flexpath_rank.dir/score.cc.o" "gcc" "src/rank/CMakeFiles/flexpath_rank.dir/score.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relax/CMakeFiles/flexpath_relax.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/flexpath_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexpath_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/flexpath_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/flexpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
