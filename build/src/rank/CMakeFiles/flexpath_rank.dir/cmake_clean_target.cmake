file(REMOVE_RECURSE
  "libflexpath_rank.a"
)
