
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/data_relaxation.cc" "src/exec/CMakeFiles/flexpath_exec.dir/data_relaxation.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/data_relaxation.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/exec/CMakeFiles/flexpath_exec.dir/evaluator.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/evaluator.cc.o.d"
  "/root/repo/src/exec/naive_evaluator.cc" "src/exec/CMakeFiles/flexpath_exec.dir/naive_evaluator.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/naive_evaluator.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/flexpath_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/selectivity.cc" "src/exec/CMakeFiles/flexpath_exec.dir/selectivity.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/selectivity.cc.o.d"
  "/root/repo/src/exec/structural_join.cc" "src/exec/CMakeFiles/flexpath_exec.dir/structural_join.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/structural_join.cc.o.d"
  "/root/repo/src/exec/topk.cc" "src/exec/CMakeFiles/flexpath_exec.dir/topk.cc.o" "gcc" "src/exec/CMakeFiles/flexpath_exec.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rank/CMakeFiles/flexpath_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/relax/CMakeFiles/flexpath_relax.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/flexpath_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexpath_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/flexpath_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/flexpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
