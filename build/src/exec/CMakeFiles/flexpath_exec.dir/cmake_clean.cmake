file(REMOVE_RECURSE
  "CMakeFiles/flexpath_exec.dir/data_relaxation.cc.o"
  "CMakeFiles/flexpath_exec.dir/data_relaxation.cc.o.d"
  "CMakeFiles/flexpath_exec.dir/evaluator.cc.o"
  "CMakeFiles/flexpath_exec.dir/evaluator.cc.o.d"
  "CMakeFiles/flexpath_exec.dir/naive_evaluator.cc.o"
  "CMakeFiles/flexpath_exec.dir/naive_evaluator.cc.o.d"
  "CMakeFiles/flexpath_exec.dir/plan.cc.o"
  "CMakeFiles/flexpath_exec.dir/plan.cc.o.d"
  "CMakeFiles/flexpath_exec.dir/selectivity.cc.o"
  "CMakeFiles/flexpath_exec.dir/selectivity.cc.o.d"
  "CMakeFiles/flexpath_exec.dir/structural_join.cc.o"
  "CMakeFiles/flexpath_exec.dir/structural_join.cc.o.d"
  "CMakeFiles/flexpath_exec.dir/topk.cc.o"
  "CMakeFiles/flexpath_exec.dir/topk.cc.o.d"
  "libflexpath_exec.a"
  "libflexpath_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
