file(REMOVE_RECURSE
  "libflexpath_exec.a"
)
