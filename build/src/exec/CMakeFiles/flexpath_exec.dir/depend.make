# Empty dependencies file for flexpath_exec.
# This may be replaced when dependencies are built.
