file(REMOVE_RECURSE
  "CMakeFiles/flexpath_core.dir/flexpath.cc.o"
  "CMakeFiles/flexpath_core.dir/flexpath.cc.o.d"
  "libflexpath_core.a"
  "libflexpath_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
