file(REMOVE_RECURSE
  "libflexpath_core.a"
)
