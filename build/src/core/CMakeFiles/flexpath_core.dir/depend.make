# Empty dependencies file for flexpath_core.
# This may be replaced when dependencies are built.
