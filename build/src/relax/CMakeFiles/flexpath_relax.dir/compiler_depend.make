# Empty compiler generated dependencies file for flexpath_relax.
# This may be replaced when dependencies are built.
