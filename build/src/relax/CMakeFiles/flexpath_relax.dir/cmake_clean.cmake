file(REMOVE_RECURSE
  "CMakeFiles/flexpath_relax.dir/extensions.cc.o"
  "CMakeFiles/flexpath_relax.dir/extensions.cc.o.d"
  "CMakeFiles/flexpath_relax.dir/operators.cc.o"
  "CMakeFiles/flexpath_relax.dir/operators.cc.o.d"
  "CMakeFiles/flexpath_relax.dir/penalty.cc.o"
  "CMakeFiles/flexpath_relax.dir/penalty.cc.o.d"
  "CMakeFiles/flexpath_relax.dir/relaxation.cc.o"
  "CMakeFiles/flexpath_relax.dir/relaxation.cc.o.d"
  "CMakeFiles/flexpath_relax.dir/schedule.cc.o"
  "CMakeFiles/flexpath_relax.dir/schedule.cc.o.d"
  "libflexpath_relax.a"
  "libflexpath_relax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
