
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relax/extensions.cc" "src/relax/CMakeFiles/flexpath_relax.dir/extensions.cc.o" "gcc" "src/relax/CMakeFiles/flexpath_relax.dir/extensions.cc.o.d"
  "/root/repo/src/relax/operators.cc" "src/relax/CMakeFiles/flexpath_relax.dir/operators.cc.o" "gcc" "src/relax/CMakeFiles/flexpath_relax.dir/operators.cc.o.d"
  "/root/repo/src/relax/penalty.cc" "src/relax/CMakeFiles/flexpath_relax.dir/penalty.cc.o" "gcc" "src/relax/CMakeFiles/flexpath_relax.dir/penalty.cc.o.d"
  "/root/repo/src/relax/relaxation.cc" "src/relax/CMakeFiles/flexpath_relax.dir/relaxation.cc.o" "gcc" "src/relax/CMakeFiles/flexpath_relax.dir/relaxation.cc.o.d"
  "/root/repo/src/relax/schedule.cc" "src/relax/CMakeFiles/flexpath_relax.dir/schedule.cc.o" "gcc" "src/relax/CMakeFiles/flexpath_relax.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/flexpath_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/flexpath_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/flexpath_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/flexpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
