file(REMOVE_RECURSE
  "libflexpath_relax.a"
)
