# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("xmark")
subdirs("ir")
subdirs("stats")
subdirs("query")
subdirs("relax")
subdirs("rank")
subdirs("exec")
subdirs("core")
