# Empty dependencies file for flexpath_common.
# This may be replaced when dependencies are built.
