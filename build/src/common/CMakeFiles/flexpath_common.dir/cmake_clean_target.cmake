file(REMOVE_RECURSE
  "libflexpath_common.a"
)
