file(REMOVE_RECURSE
  "CMakeFiles/flexpath_common.dir/random.cc.o"
  "CMakeFiles/flexpath_common.dir/random.cc.o.d"
  "CMakeFiles/flexpath_common.dir/status.cc.o"
  "CMakeFiles/flexpath_common.dir/status.cc.o.d"
  "CMakeFiles/flexpath_common.dir/string_util.cc.o"
  "CMakeFiles/flexpath_common.dir/string_util.cc.o.d"
  "libflexpath_common.a"
  "libflexpath_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexpath_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
