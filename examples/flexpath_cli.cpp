// flexpath_cli: an interactive shell around the FleXPath engine.
//
//   flexpath_cli file1.xml file2.xml ...     # load documents, then REPL
//   flexpath_cli --xmark 5                   # 5MB of generated data
//   flexpath_cli --packed corpus.fxp         # mmap a packed corpus file
//                                            # (flexpath_pack output): no
//                                            # parse, no upfront decode —
//                                            # open is O(directories)
//   flexpath_cli --xmark 5 --explain "<xpath>"
//                                            # one-shot EXPLAIN ANALYZE:
//                                            # run the query with tracing
//                                            # on, print the span tree
//                                            # (per-round timings, dropped
//                                            # predicates, counter deltas)
//   flexpath_cli --xmark 5 --explain-json "<xpath>"
//                                            # same, as a JSON trace
//   flexpath_cli --xmark 5 --check "<xpath>"
//                                            # one-shot static analysis:
//                                            # run the semantic analyzer
//                                            # (closure rules + corpus
//                                            # statistics), print the
//                                            # diagnostics, exit 1 if any
//                                            # error (unsatisfiable query)
//   flexpath_cli --xmark 5 --check-json "<xpath>"
//                                            # same, as a JSON report
//   flexpath_cli --certify                   # print every rank scheme's
//                                            # certificate (flexcheck v2,
//                                            # DESIGN.md §16); exit 1
//                                            # unless all schemes certify
//   flexpath_cli --certify-json              # same, as a JSON array
//
// Commands (one per line):
//   <xpath>                    run a top-K query (default settings)
//   :k N                       set K (default 10)
//   :algo dpo|sso|hybrid       choose the top-K algorithm
//   :scheme structure|keyword|combined
//   :threads N                 worker threads (0 = all cores, 1 = serial;
//                              results are identical either way)
//   :shards N                  document-range shards for scatter-gather
//                              execution (0 = unsharded; results are
//                              identical at any shard count)
//   :explain <xpath>           show closure, operators and the schedule
//   :analyze <xpath>           run with tracing, print the span tree
//   :lint <xpath>              static analysis: semantic diagnostics plus
//                              a Theorem-2 verification of the schedule
//   :certify [json]            rank-scheme certificates: the statically
//                              proved properties and the optimization
//                              directives derived from them
//   :synonym A B               register B as a synonym of A
//   :stats                     corpus + per-query-shape statistics
//   :slowlog                   slow-query log (see --slow-query-ms)
//   :cache [off|run|shared]    show cache statistics (JSON), or switch
//                              the sub-plan result-cache tier
//   :trace [FILE]              Chrome-trace JSON of the last traced query
//                              (stdout, or written to FILE); load it in
//                              chrome://tracing or ui.perfetto.dev
//   :flightrec                 dump the crash-safe flight recorder ring
//                              as JSON (most recent ~4k runtime events)
//   :watch [SECONDS]           windowed metric rates (QPS, cache hit
//                              rate, rounds pruned/s, cpu_ms/s, mean
//                              latency) over the trailing window
//                              (default 60s); needs --admin-port or a
//                              prior :watch to start the sampler
//   :help / :quit
//
// Corpus flags:
//   --packed FILE              open a packed corpus (see flexpath_pack)
//                              instead of parsing XML / generating XMark;
//                              mutually exclusive with document inputs
//   --subtype SUPER SUB        declare SUB a subtype of SUPER before the
//                              index is built (tag generalization,
//                              Section 3.4); repeatable
//
// Observability flags:
//   --log-json                 structured logs as JSON lines on stderr
//   --log-level LEVEL          trace|debug|info|warn|error|off
//   --slow-query-ms N          queries at least N ms slow are logged at
//                              WARN and appended (with their trace) to
//                              the slow-query log
//   --threads N                worker threads for query execution
//                              (0 = hardware concurrency, 1 = serial)
//   --shards N                 document-range shards for scatter-gather
//                              execution (0 = unsharded)
//   --metrics-prom             print a Prometheus text exposition of all
//                              metrics on exit (stdout)
//   --trace-out FILE           collect a trace for every query and write
//                              the last one, in the Chrome Trace Event
//                              Format, to FILE on exit (falls back to the
//                              build trace when no query ran)
//   --flightrec-out FILE       write the flight-recorder JSON dump to
//                              FILE on exit
//   --crash-dump FILE          install fatal-signal handlers (SIGSEGV,
//                              SIGBUS, SIGFPE, SIGILL, SIGABRT) that dump
//                              the flight-recorder ring to FILE before
//                              re-raising; SIGTERM/SIGINT also dump there
//                              (via the normal exit path) before exiting
//   --admin-port N             serve the embedded admin endpoint on this
//                              port (0 = ephemeral, printed on stderr);
//                              routes: /healthz /buildz /metrics /statsz
//                              /varz /tracez /flightrecz /timeseriesz.
//                              Off by default: without the flag no socket
//                              is opened and no thread started
//   --admin-bind ADDR          admin bind address (default 127.0.0.1;
//                              loopback-only unless overridden)
//   --query-log FILE           append one JSON line per query (text,
//                              options, result metadata, resource usage,
//                              answers digest); replay the file with
//                              flexpath_replay
//   --stats-shapes N           per-shape statistics table capacity
//   --stats-ring N             recent-executions ring capacity
//   --stats-slowlog N          slow-query log capacity
//
// Budget flags (soft, checked between relaxation rounds):
//   --max-cpu-ms N             per-query thread-CPU budget in ms; a run
//                              that trips it stops relaxing and returns
//                              its partial answers, flagged
//   --max-tuples N             per-query tuple-creation budget
//
// Cache flags (DESIGN.md §12):
//   --cache off|run|shared     sub-plan result-cache tier (default off;
//                              answers are identical at every tier)
//   --cache-mb N               byte budget, in MB, of the process-wide
//                              shared tier (and of each run-local tier)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/log.h"
#include "common/string_util.h"
#include "core/flexpath.h"
#include "obs/admin_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_history.h"
#include "obs/query_log.h"
#include "query/logical.h"
#include "relax/operators.h"
#include "relax/penalty.h"
#include "relax/schedule.h"
#include "xmark/generator.h"

namespace {

// Set by the SIGTERM/SIGINT handlers. The handlers only set this flag;
// the dump itself runs on the normal exit path in main() (full C++,
// not the async-signal-safe DumpTo path --crash-dump uses for fatal
// signals).
volatile std::sig_atomic_t g_shutdown_signal = 0;

void OnShutdownSignal(int sig) { g_shutdown_signal = sig; }

// sigaction without SA_RESTART: a signal mid-getline makes the read fail
// with EINTR, so the REPL loop exits and main() runs its cleanup.
void InstallShutdownHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

struct CliState {
  flexpath::FlexPath fp;
  flexpath::MetricsHistory history;  ///< Inert until StartHistory().
  size_t k = 10;
  flexpath::Algorithm algo = flexpath::Algorithm::kHybrid;
  flexpath::RankScheme scheme = flexpath::RankScheme::kStructureFirst;
  double slow_query_ms = -1.0;  ///< Negative: slow-query log disabled.
  size_t threads = 0;           ///< 0: hardware concurrency; 1: serial.
  size_t shards = 0;            ///< 0: unsharded; N: scatter-gather.
  flexpath::ResultCacheOptions cache;  ///< Sub-plan result cache knobs.
  double max_cpu_ms = 0.0;      ///< Soft per-query CPU budget (0: off).
  uint64_t max_tuples = 0;      ///< Soft per-query tuple budget (0: off).
  std::string trace_out;        ///< --trace-out target (empty: off).
};

flexpath::TopKOptions MakeOptions(const CliState& state) {
  flexpath::TopKOptions opts;
  opts.k = state.k;
  opts.scheme = state.scheme;
  opts.slow_query_ms = state.slow_query_ms;
  opts.num_threads = state.threads;
  opts.num_shards = state.shards;
  opts.result_cache = state.cache;
  opts.max_cpu_ms = state.max_cpu_ms;
  opts.max_tuples = state.max_tuples;
  // --trace-out wants a Chrome trace of whatever ran last, so every
  // query collects one.
  opts.collect_trace = !state.trace_out.empty();
  return opts;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

// Starts the metrics-history sampler on first use (admin endpoint or
// :watch). Idempotent; without either, no sampler thread ever runs.
void StartHistory(CliState& state) {
  if (!state.history.running()) state.history.Start();
}

// Parses ?window=SECONDS (default 60, clamped to something sane).
double WindowParam(const flexpath::HttpRequest& req) {
  double window_s = 60.0;
  if (const std::string* w = req.Param("window")) {
    window_s = std::atof(w->c_str());
  }
  if (window_s <= 0.0) window_s = 60.0;
  return std::min(window_s, 86400.0);
}

// Registers every admin route against the engine. The server owns
// nothing: handlers read from `state` (alive for the whole process) and
// every underlying accessor is thread-safe, so scrapes run concurrently
// with REPL queries.
void RegisterAdminRoutes(CliState& state, flexpath::AdminServer& server) {
  auto json = [](std::string body) {
    flexpath::HttpResponse resp;
    resp.body = std::move(body);
    return resp;
  };
  server.Handle("/healthz", [json](const flexpath::HttpRequest&) {
    return json("{\"status\":\"ok\"}");
  });
  server.Handle("/buildz", [&state, json](const flexpath::HttpRequest&) {
    return json(state.fp.BuildInfoJson());
  });
  server.Handle("/metrics", [&state](const flexpath::HttpRequest&) {
    flexpath::HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = state.fp.MetricsPrometheus();
    return resp;
  });
  server.Handle("/statsz", [&state, json](const flexpath::HttpRequest& req) {
    // ?recent=N caps the recent/slow_log arrays; the explicit ceiling
    // keeps a scrape from asking for an unbounded render.
    size_t recent = 1024;
    if (const std::string* n = req.Param("recent")) {
      recent = std::min<size_t>(
          static_cast<size_t>(std::max(0L, std::atol(n->c_str()))), 1024);
    }
    return json(state.fp.query_stats()->ToJson(recent));
  });
  server.Handle("/varz", [&state, json](const flexpath::HttpRequest&) {
    return json(state.fp.VarzJson());
  });
  server.Handle("/cachez", [&state, json](const flexpath::HttpRequest&) {
    return json(state.fp.CacheStatsJson());
  });
  server.Handle("/tracez", [&state, json](const flexpath::HttpRequest&) {
    const std::string chrome = state.fp.LastTraceChromeJson();
    return json(chrome.empty() ? "{\"traceEvents\":[]}" : chrome);
  });
  server.Handle("/flightrecz", [&state, json](const flexpath::HttpRequest&) {
    return json(state.fp.FlightRecorderJson());
  });
  server.Handle("/timeseriesz",
                [&state, json](const flexpath::HttpRequest& req) {
                  return json(state.history.ToJson(WindowParam(req)));
                });
}

// :watch — the same derived rates /timeseriesz serves, as one terminal
// line. Starts the sampler on first use.
void Watch(CliState& state, double window_s) {
  StartHistory(state);
  state.history.SampleNow();
  const flexpath::DerivedRates rates = state.history.Derived(window_s);
  std::printf("window %.0fs: qps=%.3f errors/s=%.3f cache_hit=%.1f%% "
              "rounds_pruned/s=%.3f cpu_ms/s=%.3f mean_latency=%.3fms\n",
              window_s, rates.qps, rates.errors_per_s,
              rates.cache_hit_rate * 100.0, rates.rounds_pruned_per_s,
              rates.cpu_ms_per_s, rates.latency_mean_ms);
}

void PrintHelp() {
  std::printf(
      "  <xpath>                  run a top-K query\n"
      "  :k N                     set K (current answers cap)\n"
      "  :algo dpo|sso|hybrid     choose the algorithm\n"
      "  :scheme structure|keyword|combined\n"
      "  :threads N               worker threads (0 = all cores, 1 = serial)\n"
      "  :shards N                document-range shards (0 = unsharded)\n"
      "  :explain <xpath>         closure, operators, schedule\n"
      "  :analyze <xpath>         run with tracing, print the span tree\n"
      "  :lint <xpath>            static diagnostics + schedule verification\n"
      "  :certify [json]          rank-scheme certificates (flexcheck v2)\n"
      "  :synonym A B             thesaurus entry (B relaxes A)\n"
      "  :stats                   corpus + per-query-shape statistics\n"
      "  :slowlog                 slow-query log\n"
      "  :cache [off|run|shared]  cache statistics / result-cache tier\n"
      "  :trace [FILE]            Chrome-trace JSON of the last traced query\n"
      "  :flightrec               dump the flight-recorder ring as JSON\n"
      "  :watch [SECONDS]         windowed metric rates (default 60s)\n"
      "  :help, :quit\n");
}

void RunQuery(CliState& state, const std::string& xpath) {
  flexpath::Result<flexpath::Tpq> q = state.fp.Parse(xpath);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  // QueryTpq (not Query) so budget trips are visible on the result.
  flexpath::Result<flexpath::TopKResult> result =
      state.fp.QueryTpq(*q, MakeOptions(state), state.algo, xpath);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->budget_exhausted) {
    std::printf("(budget exhausted after %zu relaxations; "
                "partial answers)\n",
                result->relaxations_used);
  }
  if (result->answers.empty()) {
    std::printf("(no answers)\n");
    return;
  }
  const flexpath::Corpus& corpus = state.fp.corpus();
  int rank = 1;
  for (const flexpath::RankedAnswer& a : result->answers) {
    const std::string& tag =
        std::as_const(corpus).tags().Name(corpus.node(a.node).tag);
    std::string snippet = corpus.doc(a.node.doc).SubtreeText(a.node.node);
    std::printf("%3d. <%s> ss=%.3f ks=%.3f  %.70s\n", rank++, tag.c_str(),
                a.score.ss, a.score.ks, snippet.c_str());
  }
}

void Explain(CliState& state, const std::string& xpath) {
  flexpath::Result<flexpath::Tpq> q = state.fp.Parse(xpath);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  const flexpath::TagDict& dict = std::as_const(state.fp.corpus()).tags();
  std::printf("pattern: %s\n", state.fp.Describe(*q).c_str());
  flexpath::LogicalQuery closure =
      flexpath::Closure(flexpath::ToLogical(*q));
  std::printf("closure: %s\n", closure.ToString(&dict).c_str());
  std::printf("operators:\n");
  for (const flexpath::RelaxOp& op : flexpath::ApplicableOps(*q)) {
    std::printf("  %s\n", op.ToString().c_str());
  }
  flexpath::PenaltyModel pm(*q, state.fp.stats(), state.fp.ir_engine(),
                            flexpath::Weights{});
  std::printf("schedule:\n");
  for (const flexpath::ScheduleEntry& e : flexpath::BuildSchedule(*q, pm)) {
    std::printf("  pi=%.4f cum=%.4f %-24s %s\n", e.step_penalty,
                e.cumulative_penalty, e.op.ToString().c_str(),
                state.fp.Describe(e.relaxed).c_str());
  }
}

// EXPLAIN ANALYZE: runs the query with trace collection on and prints
// the execution span tree — one span per relaxation round with its
// wall-clock time, dropped predicates, and ExecCounters delta. Returns
// nonzero on error so the one-shot flags can exit with a status.
int ExplainAnalyze(CliState& state, const std::string& xpath,
                   bool as_json) {
  flexpath::Result<flexpath::Tpq> q = state.fp.Parse(xpath);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  flexpath::TopKOptions opts = MakeOptions(state);
  opts.collect_trace = true;
  flexpath::Result<flexpath::TopKResult> result =
      state.fp.QueryTpq(*q, opts, state.algo, xpath);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->trace == nullptr) {
    std::printf("error: no trace collected\n");
    return 1;
  }
  if (as_json) {
    std::printf("%s\n", flexpath::TraceToJson(*result->trace).c_str());
  } else {
    std::printf("%s", flexpath::TraceToText(*result->trace).c_str());
    std::printf("answers: %zu, relaxations used: %zu\n",
                result->answers.size(), result->relaxations_used);
  }
  return 0;
}

// Static analysis (--check / --check-json): parses the query and runs
// the semantic analyzer — closure-based structural checks plus
// corpus-level unsatisfiability. Exit status 1 when the report carries
// an error (the query, or some relaxation round, is provably useless).
int Check(CliState& state, const std::string& xpath, bool as_json) {
  flexpath::Result<flexpath::AnalysisReport> report =
      state.fp.AnalyzeXPath(xpath);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (as_json) {
    std::printf("%s\n", flexpath::DiagnosticsJson(*report).c_str());
  } else if (report->diagnostics.empty()) {
    std::printf("no diagnostics\n");
  } else {
    for (const flexpath::Diagnostic& d : report->diagnostics) {
      std::printf("%s\n", d.ToString().c_str());
    }
  }
  return report->ErrorCount() > 0 ? 1 : 0;
}

// :lint — the --check diagnostics plus the relaxation-plan verifier:
// every schedule entry is checked against Theorem 2 (V001-V006) and
// provably-empty rounds are called out; those are exactly the rounds
// TopKOptions::static_prune skips at execution time.
void Lint(CliState& state, const std::string& xpath) {
  flexpath::Result<flexpath::Tpq> q = state.fp.Parse(xpath);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  flexpath::AnalysisReport report = state.fp.Analyze(*q);
  if (report.diagnostics.empty()) {
    std::printf("no diagnostics\n");
  } else {
    for (const flexpath::Diagnostic& d : report.diagnostics) {
      std::printf("%s\n", d.ToString().c_str());
    }
  }
  flexpath::Result<std::vector<flexpath::PlanVerdict>> verdicts =
      state.fp.VerifySchedule(*q);
  if (!verdicts.ok()) {
    std::printf("error: %s\n", verdicts.status().ToString().c_str());
    return;
  }
  std::printf("schedule: %zu relaxations\n", verdicts->size());
  for (size_t i = 0; i < verdicts->size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1, (*verdicts)[i].ToString().c_str());
  }
}

// Scheme certification (--certify / :certify): the flexcheck-v2 view of
// every registered rank scheme — its score-algebra expression, the four
// statically proved/refuted properties (FX301-FX304, DESIGN.md §16),
// and the optimization directives the engine derives from the proof.
// Exit status 1 when any registered scheme fails certification (cannot
// happen with only the built-ins; a custom scheme can only get in
// uncertified through the test seam).
int Certify(bool as_json) {
  if (as_json) {
    std::printf("%s\n",
                flexpath::FlexPath::SchemeCertificatesJson().c_str());
    return 0;
  }
  flexpath::SchemeRegistry& reg = flexpath::SchemeRegistry::Global();
  int rc = 0;
  for (flexpath::RankScheme s : reg.Registered()) {
    const flexpath::SchemeCertificate* cert = reg.Certificate(s);
    if (cert == nullptr) continue;
    std::printf("%s: %s  [%s]\n", cert->scheme.c_str(),
                cert->expression.c_str(),
                cert->certified ? "certified" : "NOT CERTIFIED");
    const std::pair<const char*, const flexpath::PropertyVerdict*> props[] = {
        {"well_formed", &cert->well_formed},
        {"relaxation_monotone", &cert->relaxation_monotone},
        {"order_invariant", &cert->order_invariant},
        {"truncation_safe", &cert->truncation_safe},
        {"cache_exact", &cert->cache_exact},
    };
    for (const auto& [name, v] : props) {
      std::string note = v->code.empty() ? "" : "[" + v->code + "] ";
      std::printf("  %-20s %-8s %s%s\n", name,
                  v->holds ? "proved" : "refuted", note.c_str(),
                  v->detail.c_str());
    }
    std::printf("  directives: stop_rule=%s threshold_pruning=%s "
                "prune_ks_factor=%g\n",
                flexpath::DpoStopRuleName(cert->stop_rule),
                cert->threshold_pruning ? "on" : "off",
                cert->prune_ks_factor);
    if (!cert->certified) rc = 1;
  }
  return rc;
}

// Matches `--flag VALUE` or `--flag=VALUE`; returns the value (advancing
// *i past a separate-argument value) or null when argv[*i] is a
// different flag or the value is missing.
const char* FlagValue(int argc, char** argv, int* i, const char* flag) {
  const size_t len = std::strlen(flag);
  const char* arg = argv[*i];
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

// Parses a result-cache tier name; returns false on anything else.
bool ParseCacheTier(const std::string& name, flexpath::CacheTier* out) {
  if (name == "off") {
    *out = flexpath::CacheTier::kOff;
  } else if (name == "run") {
    *out = flexpath::CacheTier::kRun;
  } else if (name == "shared") {
    *out = flexpath::CacheTier::kShared;
  } else {
    return false;
  }
  return true;
}

void PrintStats(CliState& state) {
  const flexpath::Corpus& corpus = state.fp.corpus();
  std::printf("documents: %zu, elements: %zu, distinct tags: %zu\n",
              corpus.size(), corpus.TotalNodes(),
              std::as_const(corpus).tags().size());
  std::printf("result cache: tier=%s  %s\n",
              flexpath::CacheTierName(state.cache.tier),
              state.fp.CacheStatsJson().c_str());
  const std::vector<flexpath::ShapeStatsSnapshot> shapes =
      state.fp.query_stats()->Shapes();
  if (shapes.empty()) return;
  std::printf("\nquery shapes (%zu):\n", shapes.size());
  std::printf("%-16s %6s %4s %9s %9s %8s %6s %7s %8s  %s\n", "fingerprint",
              "execs", "errs", "p50ms", "p99ms", "cpums", "relax", "dropped",
              "penalty", "query");
  for (const flexpath::ShapeStatsSnapshot& s : shapes) {
    std::printf(
        "%-16s %6llu %4llu %9.3f %9.3f %8.3f %6.2f %7.2f %8.3f  %.60s\n",
        flexpath::FingerprintHex(s.fingerprint).c_str(),
        static_cast<unsigned long long>(s.executions),
        static_cast<unsigned long long>(s.errors),
        s.latency_ms.Quantile(0.5), s.latency_ms.Quantile(0.99),
        s.MeanCpuMs(), s.MeanRelaxations(), s.MeanPredicatesDropped(),
        s.MeanPenalty(), s.example_query.c_str());
  }
}

void PrintSlowLog(CliState& state) {
  const std::vector<flexpath::SlowQueryEntry> entries =
      state.fp.query_stats()->SlowLog();
  if (entries.empty()) {
    std::printf("(slow-query log empty%s)\n",
                state.slow_query_ms < 0.0 ? "; enable with --slow-query-ms"
                                          : "");
    return;
  }
  for (const flexpath::SlowQueryEntry& e : entries) {
    std::printf("%.3fms (threshold %.3fms) %s [%s] %s\n",
                e.execution.latency_ms, e.threshold_ms,
                flexpath::FingerprintHex(e.execution.fingerprint).c_str(),
                e.execution.algorithm.c_str(), e.execution.query.c_str());
    if (e.trace != nullptr) {
      std::printf("%s", flexpath::TraceToText(*e.trace).c_str());
    }
  }
}

int Repl(CliState& state) {
  std::printf("FleXPath ready. :help for commands.\n");
  std::string line;
  while (std::printf("flexpath> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string_view trimmed = flexpath::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] != ':') {
      RunQuery(state, std::string(trimmed));
      continue;
    }
    std::istringstream words{std::string(trimmed)};
    std::string cmd;
    words >> cmd;
    if (cmd == ":quit" || cmd == ":q" || cmd == ":exit") break;
    if (cmd == ":help") {
      PrintHelp();
    } else if (cmd == ":k") {
      size_t k = 0;
      if (words >> k && k > 0) {
        state.k = k;
        std::printf("k = %zu\n", state.k);
      } else {
        std::printf("usage: :k N\n");
      }
    } else if (cmd == ":algo") {
      std::string name;
      words >> name;
      if (name == "dpo") {
        state.algo = flexpath::Algorithm::kDpo;
      } else if (name == "sso") {
        state.algo = flexpath::Algorithm::kSso;
      } else if (name == "hybrid") {
        state.algo = flexpath::Algorithm::kHybrid;
      } else {
        std::printf("usage: :algo dpo|sso|hybrid\n");
        continue;
      }
      std::printf("algorithm = %s\n", flexpath::AlgorithmName(state.algo));
    } else if (cmd == ":scheme") {
      std::string name;
      words >> name;
      if (name == "structure") {
        state.scheme = flexpath::RankScheme::kStructureFirst;
      } else if (name == "keyword") {
        state.scheme = flexpath::RankScheme::kKeywordFirst;
      } else if (name == "combined") {
        state.scheme = flexpath::RankScheme::kCombined;
      } else {
        std::printf("usage: :scheme structure|keyword|combined\n");
        continue;
      }
      std::printf("scheme = %s\n", flexpath::RankSchemeName(state.scheme));
    } else if (cmd == ":threads") {
      size_t n = 0;
      if (words >> n) {
        state.threads = n;
        std::printf("threads = %zu%s\n", state.threads,
                    state.threads == 0 ? " (hardware concurrency)" : "");
      } else {
        std::printf("usage: :threads N (0 = all cores, 1 = serial)\n");
      }
    } else if (cmd == ":shards") {
      size_t n = 0;
      if (words >> n) {
        state.shards = n;
        std::printf("shards = %zu%s\n", state.shards,
                    state.shards == 0 ? " (unsharded)" : "");
      } else {
        std::printf("usage: :shards N (0 = unsharded)\n");
      }
    } else if (cmd == ":explain") {
      std::string rest;
      std::getline(words, rest);
      Explain(state, std::string(flexpath::Trim(rest)));
    } else if (cmd == ":analyze") {
      std::string rest;
      std::getline(words, rest);
      ExplainAnalyze(state, std::string(flexpath::Trim(rest)),
                     /*as_json=*/false);
    } else if (cmd == ":lint") {
      std::string rest;
      std::getline(words, rest);
      Lint(state, std::string(flexpath::Trim(rest)));
    } else if (cmd == ":certify") {
      std::string arg;
      words >> arg;
      Certify(/*as_json=*/arg == "json");
    } else if (cmd == ":synonym") {
      std::string a, b;
      if (words >> a >> b) {
        state.fp.thesaurus()->AddSynonym(a, b);
        std::printf("synonym registered\n");
      } else {
        std::printf("usage: :synonym A B\n");
      }
    } else if (cmd == ":stats") {
      PrintStats(state);
    } else if (cmd == ":slowlog") {
      PrintSlowLog(state);
    } else if (cmd == ":cache") {
      std::string name;
      if (words >> name) {
        if (ParseCacheTier(name, &state.cache.tier)) {
          std::printf("result cache tier = %s\n",
                      flexpath::CacheTierName(state.cache.tier));
        } else {
          std::printf("usage: :cache [off|run|shared]\n");
        }
      } else {
        // Two distinct cache families live behind one engine: the
        // query-level result/IR caches (answers, contains results,
        // merged scans) and — for a packed corpus — the storage buffer
        // pools, which cache *decoded file blocks*, not query results.
        std::printf("query result/IR caches:\n  %s\n",
                    state.fp.CacheStatsJson().c_str());
        const flexpath::storage::StorageReader* reader =
            state.fp.packed_reader();
        if (reader == nullptr) {
          std::printf("storage buffer pools: (not a packed corpus)\n");
        } else {
          const auto print_pool =
              [](const char* pool_name,
                 const flexpath::storage::StorageReader::PoolStats& s) {
                std::printf(
                    "  %-15s %llu hits / %llu misses / %llu evictions, "
                    "%zu entries, %zu of %zu bytes\n",
                    pool_name, static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.evictions),
                    s.entries, s.bytes, s.budget);
              };
          std::printf(
              "storage buffer pools (decoded-block pools of the packed "
              "file, not result caches):\n");
          print_pool("element tables:", reader->GetElemPoolStats());
          print_pool("posting lists:", reader->GetPostPoolStats());
        }
      }
    } else if (cmd == ":trace") {
      const std::string chrome = state.fp.LastTraceChromeJson();
      if (chrome.empty()) {
        std::printf(
            "(no trace collected; run :analyze <xpath>, or start with "
            "--trace-out)\n");
        continue;
      }
      std::string file;
      if (words >> file) {
        if (WriteFile(file, chrome)) {
          std::printf("trace written to %s (load in chrome://tracing or "
                      "ui.perfetto.dev)\n",
                      file.c_str());
        }
      } else {
        std::printf("%s\n", chrome.c_str());
      }
    } else if (cmd == ":flightrec") {
      std::printf("%s\n", state.fp.FlightRecorderJson().c_str());
    } else if (cmd == ":watch") {
      double window_s = 60.0;
      words >> window_s;
      Watch(state, window_s > 0.0 ? window_s : 60.0);
    } else {
      std::printf("unknown command %s (:help)\n", cmd.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliState state;
  bool loaded = false;
  std::string packed_path;
  bool metrics_prom = false;
  const char* explain_query = nullptr;
  bool explain_json = false;
  const char* check_query = nullptr;
  bool check_json = false;
  std::string flightrec_out;
  std::string crash_dump;
  std::string query_log_path;
  bool admin_enabled = false;
  flexpath::AdminServerOptions admin_opts;
  flexpath::QueryStatsOptions stats_opts;
  bool stats_opts_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log-json") == 0) {
      flexpath::Logger::Global().SetJsonOutput(true);
      continue;
    }
    if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      flexpath::LogLevel level;
      if (!flexpath::ParseLogLevel(argv[++i], &level)) {
        std::fprintf(stderr, "unknown log level %s\n", argv[i]);
        return 2;
      }
      flexpath::Logger::Global().SetLevel(level);
      continue;
    }
    if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      state.slow_query_ms = std::atof(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      state.threads = static_cast<size_t>(std::atol(argv[++i]));
      continue;
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      state.shards = static_cast<size_t>(std::atol(argv[++i]));
      continue;
    }
    if (std::strcmp(argv[i], "--metrics-prom") == 0) {
      metrics_prom = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--trace-out")) {
      state.trace_out = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--flightrec-out")) {
      flightrec_out = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--crash-dump")) {
      crash_dump = v;
      flexpath::FlightRecorder::InstallCrashHandler(v);
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--admin-port")) {
      admin_enabled = true;
      admin_opts.port = static_cast<uint16_t>(std::atoi(v));
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--admin-bind")) {
      admin_opts.bind_address = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--query-log")) {
      query_log_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--stats-shapes")) {
      stats_opts.max_shapes = static_cast<size_t>(std::atol(v));
      stats_opts_set = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--stats-ring")) {
      stats_opts.ring_capacity = static_cast<size_t>(std::atol(v));
      stats_opts_set = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--stats-slowlog")) {
      stats_opts.slowlog_capacity = static_cast<size_t>(std::atol(v));
      stats_opts_set = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--max-cpu-ms")) {
      state.max_cpu_ms = std::atof(v);
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--max-tuples")) {
      state.max_tuples = static_cast<uint64_t>(std::atoll(v));
      continue;
    }
    if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      if (!ParseCacheTier(argv[++i], &state.cache.tier)) {
        std::fprintf(stderr, "--cache: expected off|run|shared, got %s\n",
                     argv[i]);
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      const double mb = std::atof(argv[++i]);
      if (mb <= 0) {
        std::fprintf(stderr, "--cache-mb: expected a positive number\n");
        return 2;
      }
      const size_t bytes = static_cast<size_t>(mb * 1024 * 1024);
      state.cache.run_budget_bytes = bytes;
      state.fp.SetSharedResultCacheBudget(bytes);
      continue;
    }
    if (std::strcmp(argv[i], "--explain") == 0 ||
        std::strcmp(argv[i], "--explain-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a query argument\n", argv[i]);
        return 2;
      }
      explain_json = std::strcmp(argv[i], "--explain-json") == 0;
      explain_query = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--certify") == 0 ||
        std::strcmp(argv[i], "--certify-json") == 0) {
      // Corpus independent: certify the registered schemes and exit.
      return Certify(std::strcmp(argv[i], "--certify-json") == 0);
    }
    if (std::strcmp(argv[i], "--check") == 0 ||
        std::strcmp(argv[i], "--check-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a query argument\n", argv[i]);
        return 2;
      }
      check_json = std::strcmp(argv[i], "--check-json") == 0;
      check_query = argv[++i];
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--packed")) {
      packed_path = v;
      continue;
    }
    if (std::strcmp(argv[i], "--subtype") == 0 && i + 2 < argc) {
      // Interns into the tag dictionary, which a packed open needs empty
      // (packed tag ids are positional).
      if (!packed_path.empty()) {
        std::fprintf(stderr,
                     "--subtype cannot be combined with --packed: pass "
                     "--subtype when packing instead\n");
        return 2;
      }
      const flexpath::TagId super = state.fp.tags()->Intern(argv[i + 1]);
      const flexpath::TagId sub = state.fp.tags()->Intern(argv[i + 2]);
      i += 2;
      if (flexpath::Status st =
              state.fp.type_hierarchy()->AddSubtype(super, sub);
          !st.ok()) {
        std::fprintf(stderr, "--subtype: %s\n", st.ToString().c_str());
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--xmark") == 0 && i + 1 < argc) {
      flexpath::XMarkOptions opts;
      opts.target_bytes = static_cast<uint64_t>(
          std::atof(argv[++i]) * 1024 * 1024);
      opts.seed = 42;
      flexpath::Result<flexpath::Document> doc =
          flexpath::GenerateXMark(opts, state.fp.tags());
      if (!doc.ok()) {
        std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
        return 1;
      }
      state.fp.AddDocument(std::move(doc).value());
      loaded = true;
      continue;
    }
    flexpath::Result<flexpath::DocId> id = state.fp.AddDocumentFile(argv[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   id.status().ToString().c_str());
      return 1;
    }
    loaded = true;
  }
  if (!packed_path.empty() && loaded) {
    std::fprintf(stderr,
                 "--packed is mutually exclusive with XML inputs and "
                 "--xmark (the packed file *is* the corpus)\n");
    return 2;
  }
  if (!loaded && packed_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--xmark MB] [--packed FILE] "
                 "[--explain \"<xpath>\"] "
                 "[--explain-json \"<xpath>\"] [--check \"<xpath>\"] "
                 "[--check-json \"<xpath>\"] [--certify] [--certify-json] "
                 "[--subtype SUPER SUB] "
                 "[--log-json] [--log-level L] [--slow-query-ms N] "
                 "[--threads N] [--shards N] [--metrics-prom] "
                 "[--cache off|run|shared] [--cache-mb N] "
                 "[--trace-out FILE] [--flightrec-out FILE] "
                 "[--crash-dump FILE] [--admin-port N] [--admin-bind ADDR] "
                 "[--query-log FILE] "
                 "[--stats-shapes N] [--stats-ring N] "
                 "[--stats-slowlog N] [--max-cpu-ms N] [--max-tuples N] "
                 "[file.xml ...]\n"
                 "loads documents, then starts an interactive shell;\n"
                 "--explain runs one traced query and exits;\n"
                 "--check runs the static analyzer and exits (1 on error);\n"
                 "--certify prints every rank scheme's certificate and "
                 "exits (1 unless all certify);\n"
                 "--metrics-prom prints Prometheus metrics on exit;\n"
                 "--trace-out writes a Chrome/Perfetto trace of the last "
                 "query on exit\n",
                 argv[0]);
    return 2;
  }
  if (!packed_path.empty()) {
    if (flexpath::Status st = state.fp.OpenPacked(packed_path); !st.ok()) {
      std::fprintf(stderr, "--packed %s: %s\n", packed_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  } else if (flexpath::Status st = state.fp.Build(); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (stats_opts_set) state.fp.SetQueryStatsOptions(stats_opts);
  std::unique_ptr<flexpath::QueryLogWriter> query_log;
  if (!query_log_path.empty()) {
    flexpath::Result<std::unique_ptr<flexpath::QueryLogWriter>> writer =
        flexpath::QueryLogWriter::Open(query_log_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "--query-log: %s\n",
                   writer.status().ToString().c_str());
      return 2;
    }
    query_log = std::move(writer).value();
    state.fp.SetQueryLog(query_log.get());
    std::fprintf(stderr, "query log: %s\n", query_log_path.c_str());
  }
  flexpath::AdminServer admin(admin_opts);
  if (admin_enabled) {
    StartHistory(state);
    RegisterAdminRoutes(state, admin);
    if (flexpath::Status st = admin.Start(); !st.ok()) {
      std::fprintf(stderr, "--admin-port: %s\n", st.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "admin endpoint: http://%s:%u/\n",
                 admin_opts.bind_address.c_str(), admin.port());
  }
  InstallShutdownHandlers();
  int rc = 0;
  if (check_query != nullptr) {
    rc = Check(state, check_query, check_json);
  } else if (explain_query != nullptr) {
    rc = ExplainAnalyze(state, explain_query, explain_json);
  } else {
    PrintStats(state);
    rc = Repl(state);
  }
  if (admin_enabled) admin.Stop();
  state.fp.SetQueryLog(nullptr);
  state.history.Stop();
  if (!state.trace_out.empty()) {
    std::string chrome = state.fp.LastTraceChromeJson();
    if (chrome.empty() && state.fp.build_trace() != nullptr) {
      // No query ran (or none was traced): the build trace still gives
      // the file a valid, loadable timeline.
      chrome = flexpath::TraceToChromeJson(*state.fp.build_trace());
    }
    if (chrome.empty()) {
      std::fprintf(stderr, "--trace-out: no trace collected\n");
    } else if (WriteFile(state.trace_out, chrome)) {
      std::fprintf(stderr, "trace written to %s\n", state.trace_out.c_str());
    }
  }
  if (!flightrec_out.empty() && WriteFile(flightrec_out,
                                          state.fp.FlightRecorderJson())) {
    std::fprintf(stderr, "flight recorder dumped to %s\n",
                 flightrec_out.c_str());
  }
  if (metrics_prom) {
    std::printf("%s", state.fp.MetricsPrometheus().c_str());
  }
  if (g_shutdown_signal != 0) {
    // Graceful SIGTERM/SIGINT: dump the flight-recorder ring through the
    // normal (full-C++) path — same file --crash-dump uses for fatal
    // signals — then exit with the conventional 128+signal status.
    if (!crash_dump.empty() &&
        WriteFile(crash_dump, state.fp.FlightRecorderJson())) {
      std::fprintf(stderr, "flight recorder dumped to %s (signal %d)\n",
                   crash_dump.c_str(), static_cast<int>(g_shutdown_signal));
    }
    return 128 + static_cast<int>(g_shutdown_signal);
  }
  return rc;
}
