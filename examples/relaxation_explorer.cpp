// Relaxation explorer: shows the machinery of Sections 3 and 4 on the
// paper's running example — the closure of Q1, the applicable operators,
// the greedy increasing-penalty relaxation schedule, and the data-derived
// penalty of every step. Useful for understanding why a given answer got
// the score it did.
#include <cstdio>

#include "core/flexpath.h"
#include "query/logical.h"
#include "relax/operators.h"
#include "relax/penalty.h"
#include "relax/relaxation.h"
#include "relax/schedule.h"

namespace {

constexpr const char* kDocs[] = {
    R"(<article id="a1"><section><algorithm>join</algorithm>
       <paragraph>XML streaming evaluation</paragraph></section></article>)",
    R"(<article id="a2"><section><title>XML streaming engines</title>
       <algorithm>automaton</algorithm>
       <paragraph>engine survey</paragraph></section></article>)",
    R"(<article id="a3"><appendix><algorithm>twig</algorithm></appendix>
       <section><paragraph>XML streaming background</paragraph>
       </section></article>)",
    R"(<article id="a4"><section>
       <paragraph>XML streaming survey</paragraph></section></article>)",
};

}  // namespace

int main() {
  flexpath::FlexPath fp;
  for (const char* xml : kDocs) {
    if (!fp.AddDocumentXml(xml).ok()) return 1;
  }
  if (!fp.Build().ok()) return 1;

  const char* query =
      "//article[./section[./algorithm and "
      "./paragraph[.contains(\"XML\" and \"streaming\")]]]";
  flexpath::Result<flexpath::Tpq> q = fp.Parse(query);
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 1;
  }

  const flexpath::TagDict& dict = std::as_const(fp.corpus()).tags();
  std::printf("query: %s\n", fp.Describe(*q).c_str());

  // 1. Logical form and closure (Figures 2 and 4 of the paper).
  flexpath::LogicalQuery logical = flexpath::ToLogical(*q);
  flexpath::LogicalQuery closure = flexpath::Closure(logical);
  std::printf("\nlogical form (%zu predicates):\n  %s\n",
              logical.preds.size(), logical.ToString(&dict).c_str());
  std::printf("\nclosure (%zu predicates):\n  %s\n", closure.preds.size(),
              closure.ToString(&dict).c_str());

  // 2. Applicable relaxation operators (Section 3.5).
  std::printf("\napplicable operators:\n");
  for (const flexpath::RelaxOp& op : flexpath::ApplicableOps(*q)) {
    std::printf("  %s\n", op.ToString().c_str());
  }

  // 3. The greedy increasing-penalty schedule with data-derived penalties
  //    (Section 4.3.1) — what DPO walks round by round and SSO encodes.
  flexpath::PenaltyModel pm(*q, fp.stats(), fp.ir_engine(),
                            flexpath::Weights{});
  std::printf("\nrelaxation schedule (increasing penalty):\n");
  std::printf("  %-28s %10s %10s  %s\n", "operator", "step pi", "cum pi",
              "relaxed query");
  for (const flexpath::ScheduleEntry& entry :
       flexpath::BuildSchedule(*q, pm)) {
    std::printf("  %-28s %10.4f %10.4f  %s\n", entry.op.ToString().c_str(),
                entry.step_penalty, entry.cumulative_penalty,
                fp.Describe(entry.relaxed).c_str());
  }

  // 4. The distinct relaxation space reachable by composing operators.
  std::vector<flexpath::Tpq> space = flexpath::RelaxationSpace(*q, 64);
  std::printf("\nrelaxation space: %zu distinct queries (capped at 64)\n",
              space.size());

  // 5. Every article, with its score under the flexible semantics.
  flexpath::TopKOptions opts;
  opts.k = 10;
  flexpath::Result<std::vector<flexpath::QueryAnswer>> answers =
      fp.Query(query, opts);
  if (!answers.ok()) return 1;
  std::printf("\ntop answers:\n");
  for (const flexpath::QueryAnswer& a : *answers) {
    std::printf("  ss=%.4f ks=%.4f  %s\n", a.score.ss, a.score.ks,
                a.snippet.c_str());
  }
  return 0;
}
