// flexpath_pack: build and inspect packed corpus files (DESIGN.md §17).
//
//   flexpath_pack --xmark 100 --out corpus.fxp   # 100MB generated corpus
//   flexpath_pack a.xml b.xml --out corpus.fxp   # pack parsed XML files
//   flexpath_pack --inspect corpus.fxp           # header + section dump
//
// Packing parses/generates the documents, builds the inverted index and
// statistics once, and serializes everything into the page-structured
// single-file format. flexpath_cli --packed FILE (or any embedder calling
// FlexPath::OpenPacked) then maps the file and answers queries
// byte-identically to an in-memory build, without re-parsing or decoding
// anything upfront.
//
// Flags:
//   --out FILE            output path (required unless --inspect)
//   --xmark MB            generate an XMark document of ~MB megabytes
//                         (seed 42, reproducible) instead of parsing XML
//   --stem                enable stemming in the stored tokenizer options
//   --keep-stopwords      index stopwords (default drops them)
//   --subtype SUPER SUB   declare SUB a subtype of SUPER (repeatable);
//                         recorded in the element tables' merge order
//   --inspect FILE        validate FILE, print its header and section
//                         table as JSON, and exit (also the CI artifact)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/flexpath.h"
#include "storage/reader.h"
#include "xmark/generator.h"

namespace {

// Matches `--flag VALUE` or `--flag=VALUE` (same contract as
// flexpath_cli's FlagValue).
const char* FlagValue(int argc, char** argv, int* i, const char* flag) {
  const size_t len = std::strlen(flag);
  const char* arg = argv[*i];
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--xmark MB | file.xml ...] --out FILE\n"
               "       %s [--stem] [--keep-stopwords] [--subtype SUPER SUB]\n"
               "       %s --inspect FILE\n"
               "packs documents into the single-file corpus format, or\n"
               "validates and dumps an existing packed file as JSON\n",
               argv0, argv0, argv0);
  return 2;
}

int Inspect(const std::string& path) {
  flexpath::Result<std::shared_ptr<flexpath::storage::StorageReader>>
      reader = flexpath::storage::StorageReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", (*reader)->InspectJson().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string inspect_path;
  double xmark_mb = 0.0;
  flexpath::TokenizerOptions tok;
  std::vector<std::string> xml_files;
  std::vector<std::pair<std::string, std::string>> subtypes;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argc, argv, &i, "--out")) {
      out_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--inspect")) {
      inspect_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--xmark")) {
      xmark_mb = std::atof(v);
      continue;
    }
    if (std::strcmp(argv[i], "--stem") == 0) {
      tok.stem = true;
      continue;
    }
    if (std::strcmp(argv[i], "--keep-stopwords") == 0) {
      tok.drop_stopwords = false;
      continue;
    }
    if (std::strcmp(argv[i], "--subtype") == 0 && i + 2 < argc) {
      subtypes.emplace_back(argv[i + 1], argv[i + 2]);
      i += 2;
      continue;
    }
    if (argv[i][0] == '-') return Usage(argv[0]);
    xml_files.emplace_back(argv[i]);
  }

  if (!inspect_path.empty()) {
    if (!out_path.empty() || xmark_mb > 0.0 || !xml_files.empty()) {
      return Usage(argv[0]);
    }
    return Inspect(inspect_path);
  }
  if (out_path.empty() || (xmark_mb <= 0.0 && xml_files.empty())) {
    return Usage(argv[0]);
  }

  flexpath::FlexPath fp(tok);
  for (const auto& [super_name, sub_name] : subtypes) {
    const flexpath::TagId super = fp.tags()->Intern(super_name);
    const flexpath::TagId sub = fp.tags()->Intern(sub_name);
    if (flexpath::Status st = fp.type_hierarchy()->AddSubtype(super, sub);
        !st.ok()) {
      std::fprintf(stderr, "--subtype: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (xmark_mb > 0.0) {
    flexpath::XMarkOptions opts;
    opts.target_bytes = static_cast<uint64_t>(xmark_mb * 1024 * 1024);
    opts.seed = 42;
    flexpath::Result<flexpath::Document> doc =
        flexpath::GenerateXMark(opts, fp.tags());
    if (!doc.ok()) {
      std::fprintf(stderr, "--xmark: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    fp.AddDocument(std::move(doc).value());
  }
  for (const std::string& file : xml_files) {
    if (flexpath::Result<flexpath::DocId> id = fp.AddDocumentFile(file);
        !id.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
  }
  if (flexpath::Status st = fp.SavePacked(out_path); !st.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", st.ToString().c_str());
    return 1;
  }
  // Re-open what we wrote: proves the file validates, and gives the
  // summary numbers straight from its header.
  flexpath::Result<std::shared_ptr<flexpath::storage::StorageReader>>
      reader = flexpath::storage::StorageReader::Open(out_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "packed file fails validation: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const flexpath::storage::FileHeader& h = (*reader)->header();
  std::fprintf(stderr,
               "packed %s: %llu bytes, %llu docs, %llu nodes, %llu tags, "
               "%llu terms\n",
               out_path.c_str(),
               static_cast<unsigned long long>(h.file_bytes),
               static_cast<unsigned long long>(h.doc_count),
               static_cast<unsigned long long>(h.total_nodes),
               static_cast<unsigned long long>(h.tag_count),
               static_cast<unsigned long long>(h.term_count));
  return 0;
}
