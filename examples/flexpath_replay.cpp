// flexpath_replay: re-executes a captured workload log against a corpus.
//
//   flexpath_replay --log queries.jsonl --xmark 5
//   flexpath_replay --log queries.jsonl corpus1.xml corpus2.xml
//   flexpath_replay --log queries.jsonl --xmark 5 --check --out report.json
//
// Each record of the JSON-lines log (written by flexpath_cli --query-log,
// or any FlexPath instance with SetQueryLog) is re-run with the options
// it was captured with — algorithm, K, ranking scheme, thread count,
// cache tier — and its answers are digested and compared against the
// captured AnswersDigest. Against the same corpus (e.g. the deterministic
// --xmark generator with its fixed seed) every digest must match: the
// engine's answers are byte-identical across runs, thread counts and
// cache tiers, so a mismatch means the corpus differs or a change broke
// answer reproducibility.
//
// The report (text on stdout; JSON with --out) gives per-workload counts
// and latency percentiles: captured p50/p99 vs replayed p50/p99.
//
// Flags:
//   --log FILE    the captured workload (required)
//   --xmark MB    generate an XMark corpus (same fixed seed as the CLI)
//   --check       exit 1 when any record fails to parse, errors, or
//                 digests differently
//   --out FILE    write the report as one JSON object to FILE
//   --threads N   override the captured thread counts (answers must not
//                 change; useful for timing comparisons)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_util.h"
#include "core/flexpath.h"
#include "xmark/generator.h"

namespace {

const char* FlagValue(int argc, char** argv, int* i, const char* flag) {
  const size_t len = std::strlen(flag);
  const char* arg = argv[*i];
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

bool ParseAlgorithm(const std::string& name, flexpath::Algorithm* out) {
  if (name == "DPO") {
    *out = flexpath::Algorithm::kDpo;
  } else if (name == "SSO") {
    *out = flexpath::Algorithm::kSso;
  } else if (name == "Hybrid") {
    *out = flexpath::Algorithm::kHybrid;
  } else {
    return false;
  }
  return true;
}

bool ParseScheme(const std::string& name, flexpath::RankScheme* out) {
  if (name == "structure-first") {
    *out = flexpath::RankScheme::kStructureFirst;
  } else if (name == "keyword-first") {
    *out = flexpath::RankScheme::kKeywordFirst;
  } else if (name == "combined") {
    *out = flexpath::RankScheme::kCombined;
  } else {
    return false;
  }
  return true;
}

bool ParseTier(const std::string& name, flexpath::CacheTier* out) {
  if (name == "off") {
    *out = flexpath::CacheTier::kOff;
  } else if (name == "run") {
    *out = flexpath::CacheTier::kRun;
  } else if (name == "shared") {
    *out = flexpath::CacheTier::kShared;
  } else {
    return false;
  }
  return true;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct ReplayReport {
  size_t records = 0;
  size_t truncated = 0;      ///< Partial trailing lines dropped on read.
  size_t replayed = 0;       ///< Ran to completion.
  size_t parse_failures = 0; ///< Query text did not re-parse.
  size_t errors = 0;         ///< Execution returned a non-OK status.
  size_t digest_matches = 0;
  size_t digest_mismatches = 0;
  std::vector<double> captured_ms;
  std::vector<double> replayed_ms;

  bool Clean() const {
    return parse_failures == 0 && errors == 0 && digest_mismatches == 0;
  }

  std::string ToJson() const {
    std::string out = "{\"records\":" + std::to_string(records);
    out += ",\"truncated_lines\":" + std::to_string(truncated);
    out += ",\"replayed\":" + std::to_string(replayed);
    out += ",\"parse_failures\":" + std::to_string(parse_failures);
    out += ",\"errors\":" + std::to_string(errors);
    out += ",\"digest_matches\":" + std::to_string(digest_matches);
    out += ",\"digest_mismatches\":" + std::to_string(digest_mismatches);
    out += ",\"captured_ms\":{\"p50\":" +
           flexpath::FormatDouble(Percentile(captured_ms, 0.5));
    out += ",\"p99\":" + flexpath::FormatDouble(Percentile(captured_ms, 0.99));
    out += "},\"replayed_ms\":{\"p50\":" +
           flexpath::FormatDouble(Percentile(replayed_ms, 0.5));
    out += ",\"p99\":" + flexpath::FormatDouble(Percentile(replayed_ms, 0.99));
    out += "}}";
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string log_path;
  std::string out_path;
  bool check = false;
  long threads_override = -1;
  flexpath::FlexPath fp;
  bool loaded = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argc, argv, &i, "--log")) {
      log_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--out")) {
      out_path = v;
      continue;
    }
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--threads")) {
      threads_override = std::atol(v);
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--xmark")) {
      flexpath::XMarkOptions opts;
      opts.target_bytes =
          static_cast<uint64_t>(std::atof(v) * 1024 * 1024);
      // Same fixed seed as flexpath_cli --xmark: both sides of a
      // capture/replay pair regenerate the identical corpus.
      opts.seed = 42;
      flexpath::Result<flexpath::Document> doc =
          flexpath::GenerateXMark(opts, fp.tags());
      if (!doc.ok()) {
        std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
        return 1;
      }
      fp.AddDocument(std::move(doc).value());
      loaded = true;
      continue;
    }
    flexpath::Result<flexpath::DocId> id = fp.AddDocumentFile(argv[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   id.status().ToString().c_str());
      return 1;
    }
    loaded = true;
  }
  if (log_path.empty() || !loaded) {
    std::fprintf(stderr,
                 "usage: %s --log FILE (--xmark MB | file.xml ...) "
                 "[--check] [--out FILE] [--threads N]\n"
                 "re-executes a captured query log and verifies the\n"
                 "answers still digest identically\n",
                 argv[0]);
    return 2;
  }

  size_t truncated = 0;
  flexpath::Result<std::vector<flexpath::QueryLogRecord>> records =
      flexpath::ReadQueryLog(log_path, &truncated);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  if (flexpath::Status st = fp.Build(); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  ReplayReport report;
  report.records = records->size();
  report.truncated = truncated;
  for (const flexpath::QueryLogRecord& r : *records) {
    flexpath::Result<flexpath::Tpq> q = fp.Parse(r.query);
    if (!q.ok()) {
      ++report.parse_failures;
      std::fprintf(stderr, "parse failure: %s: %s\n", r.query.c_str(),
                   q.status().ToString().c_str());
      continue;
    }
    flexpath::TopKOptions opts;
    opts.k = static_cast<size_t>(r.k);
    opts.num_threads = threads_override >= 0
                           ? static_cast<size_t>(threads_override)
                           : static_cast<size_t>(r.threads);
    flexpath::Algorithm algo = flexpath::Algorithm::kHybrid;
    // Unknown names (a log from a newer build) fall back to defaults
    // rather than failing: the digest check still validates the answers.
    ParseAlgorithm(r.algorithm, &algo);
    ParseScheme(r.scheme, &opts.scheme);
    ParseTier(r.cache_tier, &opts.result_cache.tier);
    const auto start = std::chrono::steady_clock::now();
    flexpath::Result<flexpath::TopKResult> result =
        fp.QueryTpq(*q, opts, algo, r.query);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (!result.ok()) {
      ++report.errors;
      std::fprintf(stderr, "error: %s: %s\n", r.query.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    ++report.replayed;
    report.captured_ms.push_back(r.latency_ms);
    report.replayed_ms.push_back(elapsed_ms);
    const uint64_t digest = flexpath::AnswersDigest(result->answers);
    if (digest == r.answers_digest) {
      ++report.digest_matches;
    } else {
      ++report.digest_mismatches;
      std::fprintf(stderr,
                   "digest mismatch: %s (captured %016llx, replayed "
                   "%016llx, %zu answers)\n",
                   r.query.c_str(),
                   static_cast<unsigned long long>(r.answers_digest),
                   static_cast<unsigned long long>(digest),
                   result->answers.size());
    }
  }

  std::printf("replayed %zu/%zu records (%zu parse failures, %zu errors, "
              "%zu truncated lines)\n",
              report.replayed, report.records, report.parse_failures,
              report.errors, report.truncated);
  std::printf("digests: %zu match, %zu mismatch\n", report.digest_matches,
              report.digest_mismatches);
  std::printf("latency captured: p50 %.3fms p99 %.3fms\n",
              Percentile(report.captured_ms, 0.5),
              Percentile(report.captured_ms, 0.99));
  std::printf("latency replayed: p50 %.3fms p99 %.3fms\n",
              Percentile(report.replayed_ms, 0.5),
              Percentile(report.replayed_ms, 0.99));
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << report.ToJson() << '\n';
    std::fprintf(stderr, "report written to %s\n", out_path.c_str());
  }
  return check && !report.Clean() ? 1 : 0;
}
