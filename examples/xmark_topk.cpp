// XMark top-K: generates an auction document with the bundled XMark-style
// generator, then runs the paper's Section 6 benchmark queries with all
// three top-K algorithms (DPO, SSO, Hybrid), reporting answers found,
// relaxations used and the evaluator work counters.
//
// Usage: xmark_topk [megabytes] [k]   (defaults: 5 MB, K = 100)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/flexpath.h"
#include "xmark/generator.h"

namespace {

constexpr const char* kQueries[] = {
    "//item[./description/parlist]",
    "//item[./description/parlist and ./mailbox/mail/text]",
    "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold "
    "and ./keyword and ./emph] and ./name and ./incategory]",
};

}  // namespace

int main(int argc, char** argv) {
  const double mb = argc > 1 ? std::atof(argv[1]) : 5.0;
  const size_t k = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 100;

  flexpath::FlexPath fp;
  flexpath::XMarkOptions gen_opts;
  gen_opts.target_bytes = static_cast<uint64_t>(mb * 1024 * 1024);
  gen_opts.seed = 42;
  flexpath::XMarkStatsSummary summary;
  flexpath::Result<flexpath::Document> doc =
      flexpath::GenerateXMark(gen_opts, fp.tags(), &summary);
  if (!doc.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  fp.AddDocument(std::move(doc).value());
  if (!fp.Build().ok()) return 1;
  std::printf(
      "generated ~%.1f MB: %u items, %u categories, %u people, %u "
      "auctions\n\n",
      static_cast<double>(summary.approx_bytes) / (1024 * 1024),
      summary.items, summary.categories, summary.people,
      summary.open_auctions);

  for (int qi = 0; qi < 3; ++qi) {
    std::printf("Q%d: %s\n", qi + 1, kQueries[qi]);
    flexpath::Result<flexpath::Tpq> q = fp.Parse(kQueries[qi]);
    if (!q.ok()) {
      std::fprintf(stderr, "  parse error: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-8s %10s %8s %8s %12s %14s %12s\n", "algo", "time(ms)",
                "answers", "relax", "passes", "tuples", "score-sorts");
    for (flexpath::Algorithm algo :
         {flexpath::Algorithm::kDpo, flexpath::Algorithm::kSso,
          flexpath::Algorithm::kHybrid}) {
      flexpath::TopKOptions opts;
      opts.k = k;
      const auto t0 = std::chrono::steady_clock::now();
      flexpath::Result<flexpath::TopKResult> result =
          fp.QueryTpq(*q, opts, algo);
      const auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "  %s failed: %s\n",
                     flexpath::AlgorithmName(algo),
                     result.status().ToString().c_str());
        return 1;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      std::printf("  %-8s %10.2f %8zu %8zu %12llu %14llu %12llu\n",
                  flexpath::AlgorithmName(algo), ms,
                  result->answers.size(), result->relaxations_used,
                  static_cast<unsigned long long>(
                      result->counters.plan_passes),
                  static_cast<unsigned long long>(
                      result->counters.tuples_created),
                  static_cast<unsigned long long>(
                      result->counters.score_sorts));
    }
    std::printf("\n");
  }
  return 0;
}
