// Full-text search example: exercises the IR side of FleXPath — boolean
// full-text expressions (and/or/not, phrases), the three ranking schemes,
// and the interplay between keyword scores and structural context.
//
// The scenario is a small digital-library collection; the same keyword
// search is run with three different structural contexts, demonstrating
// the paper's point that XPath context *focuses* keyword search without
// (thanks to relaxation) filtering out near-misses.
#include <cstdio>

#include "core/flexpath.h"

namespace {

constexpr const char* kDocs[] = {
    R"(<book id="b1"><title>Query Processing</title>
       <chapter><title>Top-K Algorithms</title>
         <abstract>ranking and pruning for top-k query answering</abstract>
         <body>threshold algorithms compute ranked results lazily. gold
         standard benchmarks confirm the pruning pays off.</body>
       </chapter></book>)",
    R"(<book id="b2"><title>Information Retrieval</title>
       <chapter><title>Scoring</title>
         <abstract>term frequency and inverse document frequency</abstract>
         <body>vector space scoring ranks documents by relevance. ranked
         retrieval with ranked lists everywhere.</body>
       </chapter>
       <chapter><title>Indexes</title>
         <body>inverted indexes map terms to postings</body>
       </chapter></book>)",
    // b3 has no abstract at all: its keywords sit in a chapter body, so
    // the focused query below only reaches it through leaf deletion +
    // contains promotion — visible as a lower structural score.
    R"(<book id="b3"><title>Databases</title>
       <chapter><title>Joins</title>
         <body>hash joins and merge joins; ranked retrieval of join
         results is a niche topic</body>
       </chapter></book>)",
};

void Run(flexpath::FlexPath& fp, const char* label, const char* query,
         flexpath::RankScheme scheme) {
  std::printf("--- %s\n    %s  [%s]\n", label, query,
              flexpath::RankSchemeName(scheme));
  flexpath::TopKOptions opts;
  opts.k = 5;
  opts.scheme = scheme;
  flexpath::Result<std::vector<flexpath::QueryAnswer>> answers =
      fp.Query(query, opts);
  if (!answers.ok()) {
    std::fprintf(stderr, "    error: %s\n",
                 answers.status().ToString().c_str());
    return;
  }
  if (answers->empty()) std::printf("    (no answers)\n");
  for (const flexpath::QueryAnswer& a : *answers) {
    std::printf("    <%s> ss=%.3f ks=%.3f  %.55s\n", a.tag.c_str(),
                a.score.ss, a.score.ks, a.snippet.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  flexpath::FlexPath fp;
  for (const char* xml : kDocs) {
    if (!fp.AddDocumentXml(xml).ok()) return 1;
  }
  if (!fp.Build().ok()) return 1;

  // 1. Pure keyword search: anywhere in a book (the paper's Q6 style).
  Run(fp, "keyword search, loose context",
      "//book[.contains(\"ranked\" and \"retrieval\")]",
      flexpath::RankScheme::kStructureFirst);

  // 2. Focused: the keywords must be inside a chapter's abstract. Books
  //    whose keywords appear elsewhere still surface via relaxation,
  //    penalized on structure.
  Run(fp, "focused context with relaxation",
      "//book[./chapter/abstract[.contains(\"ranked\" and \"retrieval\")]]",
      flexpath::RankScheme::kStructureFirst);

  // 3. Keyword-first ranking: the best keyword match wins regardless of
  //    how much structure it satisfies.
  Run(fp, "keyword-first ranking",
      "//book[./chapter/abstract[.contains(\"ranked\" and \"retrieval\")]]",
      flexpath::RankScheme::kKeywordFirst);

  // 4. Boolean full-text: phrases and negation.
  Run(fp, "phrase query",
      "//chapter[.contains(\"vector space\")]",
      flexpath::RankScheme::kStructureFirst);
  Run(fp, "negation",
      "//chapter[.contains(\"joins\" and not \"hash\")]",
      flexpath::RankScheme::kStructureFirst);
  return 0;
}
