// Quickstart: load a handful of XML documents, build the indexes, and run
// a flexible structure + full-text query.
//
// The query asks for articles whose section contains an algorithm and a
// paragraph with the keywords "XML" and "streaming". Under strict XPath
// semantics only one of the articles below qualifies; FleXPath treats the
// structure as a template, so near-misses are returned too, ranked by how
// much of the structure they satisfy.
#include <cstdio>

#include "core/flexpath.h"

namespace {

constexpr const char* kDocs[] = {
    // Exact match: algorithm + keyword paragraph inside one section.
    R"(<article id="a1"><title>stream processing</title>
       <section><title>evaluation</title>
         <algorithm>stack based join</algorithm>
         <paragraph>XML streaming evaluation with low memory</paragraph>
       </section></article>)",
    // Keywords in the section title rather than a paragraph.
    R"(<article id="a2"><title>engines</title>
       <section><title>XML streaming engines</title>
         <algorithm>one pass automaton</algorithm>
         <paragraph>we discuss several engines in depth</paragraph>
       </section></article>)",
    // The algorithm lives outside the keyword-bearing section.
    R"(<article id="a3"><title>joins</title>
       <appendix><algorithm>twig join</algorithm></appendix>
       <section><title>background</title>
         <paragraph>XML streaming joins background material</paragraph>
       </section></article>)",
    // No algorithm at all.
    R"(<article id="a4"><title>survey</title>
       <section><title>overview</title>
         <paragraph>a survey of XML streaming systems</paragraph>
       </section></article>)",
};

}  // namespace

int main() {
  flexpath::FlexPath fp;
  for (const char* xml : kDocs) {
    flexpath::Result<flexpath::DocId> id = fp.AddDocumentXml(xml);
    if (!id.ok()) {
      std::fprintf(stderr, "failed to load document: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  if (flexpath::Status st = fp.Build(); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const char* query =
      "//article[./section[./algorithm and "
      "./paragraph[.contains(\"XML\" and \"streaming\")]]]";
  std::printf("query: %s\n\n", query);

  flexpath::TopKOptions opts;
  opts.k = 4;
  flexpath::Result<std::vector<flexpath::QueryAnswer>> answers =
      fp.Query(query, opts);
  if (!answers.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }

  std::printf("%-4s %-10s %8s %8s  %s\n", "#", "element", "ss", "ks",
              "snippet");
  int rank = 1;
  for (const flexpath::QueryAnswer& a : *answers) {
    std::printf("%-4d %-10s %8.3f %8.3f  %.60s\n", rank++, a.tag.c_str(),
                a.score.ss, a.score.ks, a.snippet.c_str());
  }
  std::printf(
      "\nThe top answer satisfies the pattern exactly (ss = 3, one unit per"
      "\nstructural predicate); the others were admitted by relaxations and"
      "\nscore lower on structure.\n");
  return 0;
}
