#include "common/json_util.h"

#include <cstdio>

namespace flexpath {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == v) {
    return shorter;
  }
  return buf;
}

}  // namespace flexpath
