#ifndef FLEXPATH_COMMON_JSON_UTIL_H_
#define FLEXPATH_COMMON_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace flexpath {

/// Escapes `s` for embedding in a JSON string literal (quotes, backslash,
/// control characters). Shared by every JSON renderer in the library
/// (traces, metrics, query stats, bench lines).
std::string JsonEscape(std::string_view s);

/// Shortest rendering of a double that round-trips exactly: tries %g and
/// falls back to %.17g when the short form loses precision. Suitable for
/// JSON number values.
std::string FormatDouble(double v);

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_JSON_UTIL_H_
