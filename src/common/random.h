#ifndef FLEXPATH_COMMON_RANDOM_H_
#define FLEXPATH_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexpath {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Used by the XMark generator and by property tests so runs
/// are reproducible across platforms; never use std::rand in the library.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (s=1 is classic Zipf).
  /// Lower ranks are more likely; used to draw skewed term frequencies.
  uint64_t Zipf(uint64_t n, double s);

  /// Returns a uniformly chosen element index weighted by `weights`
  /// (weights need not be normalized; all must be >= 0, sum > 0).
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_RANDOM_H_
