#ifndef FLEXPATH_COMMON_LRU_CACHE_H_
#define FLEXPATH_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

namespace flexpath {

/// A byte-budgeted least-recently-used cache. Values are held as
/// shared_ptr<const V>, so a reader that obtained an entry keeps it alive
/// even if the cache evicts it a moment later — eviction can never
/// invalidate a handed-out result.
///
/// Not thread-safe: callers that share an instance across threads guard
/// it with their own mutex (see ResultCache, ElementIndex, IrEngine).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruByteCache {
 public:
  explicit LruByteCache(size_t budget_bytes) : budget_(budget_bytes) {}

  LruByteCache(const LruByteCache&) = delete;
  LruByteCache& operator=(const LruByteCache&) = delete;

  /// Returns the entry and marks it most-recently-used; null on miss.
  std::shared_ptr<const Value> Get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts (or refreshes) `value`, charged at `bytes`, evicting from
  /// the LRU tail until the budget holds. An entry larger than the whole
  /// budget is refused (returns false) rather than flushing everything
  /// for a value that cannot be kept anyway.
  bool Put(const Key& key, std::shared_ptr<const Value> value, size_t bytes) {
    if (bytes > budget_) return false;
    auto it = map_.find(key);
    if (it != map_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      bytes_ += bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Entry{key, std::move(value), bytes});
      map_.emplace(key, order_.begin());
      bytes_ += bytes;
    }
    EvictToBudget();
    return true;
  }

  /// Shrinks (or grows) the budget, evicting immediately if over.
  void SetBudget(size_t budget_bytes) {
    budget_ = budget_bytes;
    EvictToBudget();
  }

  void Clear() {
    map_.clear();
    order_.clear();
    bytes_ = 0;
  }

  size_t size() const { return map_.size(); }
  size_t bytes() const { return bytes_; }
  size_t budget() const { return budget_; }
  uint64_t evictions() const { return evictions_; }

  /// Visits every resident entry as fn(key, value, bytes), most recent
  /// first, without touching recency. Lets owners audit entries — e.g.
  /// counting values still pinned by handed-out shared_ptr references.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : order_) fn(e.key, e.value, e.bytes);
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    size_t bytes = 0;
  };

  void EvictToBudget() {
    while (bytes_ > budget_ && !order_.empty()) {
      const Entry& back = order_.back();
      bytes_ -= back.bytes;
      map_.erase(back.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t budget_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
  std::list<Entry> order_;  ///< Front = most recent.
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
};

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_LRU_CACHE_H_
