#ifndef FLEXPATH_COMMON_METRICS_H_
#define FLEXPATH_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flexpath {

/// A monotonically increasing event count. Increment is one relaxed
/// atomic add, so counters are safe to touch on hot paths.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (queue depth, cache size, live buckets).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below (peak tracking).
  void Max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram: per-bucket counts plus the usual
/// aggregates. `bounds[i]` is bucket i's inclusive upper edge; the last
/// bucket (counts.size() == bounds.size() + 1) is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Linear-interpolated quantile estimate from the bucket counts,
  /// `q` in [0, 1]. Overflow-bucket hits interpolate between the top
  /// finite edge and the observed max.
  double Quantile(double q) const;
};

/// A fixed-bucket histogram. Bucket edges are chosen at construction and
/// never change, so Observe() is a binary search plus relaxed atomic
/// adds — no locks on the record path.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an overflow bucket is added
  /// above the last edge automatically.
  explicit Histogram(std::vector<double> bounds);

  /// Default edges for millisecond latencies: 1us to ~100s in roughly
  /// 1-2-5 steps.
  static std::vector<double> DefaultLatencyBoundsMs();

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Everything the registry knows at one instant, keyed by metric name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// A process-wide table of named metrics. Lookup by name takes a mutex;
/// call sites cache the returned pointer (metrics live for the registry's
/// lifetime), after which recording is lock-free:
///
///   static Counter* probes =
///       MetricsRegistry::Global().counter("exec.candidates_probed");
///   probes->Inc();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. The pointer stays valid for the registry's life.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` applies only on first creation; empty means the default
  /// millisecond-latency edges.
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (tests). Registered metrics stay registered.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders a snapshot as one JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
///                          "mean":..,"p50":..,"p99":..,
///                          "bounds":[..],"buckets":[..]}}}
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format (0.0.4):
/// HELP/TYPE lines per metric family, counters suffixed `_total`,
/// histograms as cumulative `_bucket{le="..."}` series (ending with
/// `le="+Inf"`) plus `_sum` and `_count`. Metric names are prefixed with
/// `<prefix>_` and sanitized (every character outside [a-zA-Z0-9_]
/// becomes '_'), so "query.latency_ms.dpo" with the default prefix
/// exposes as "flexpath_query_latency_ms_dpo".
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot,
                                std::string_view prefix = "flexpath");

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_METRICS_H_
