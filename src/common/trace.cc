#include "common/trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/json_util.h"

namespace flexpath {

namespace {

std::string FormatNumber(double v) {
  // Annotation numbers are counts and penalties; %g keeps integers
  // integral and trims trailing zeros.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void SpanToJson(const TraceSpan& span, std::string* out) {
  *out += "{\"name\":\"";
  *out += JsonEscape(span.name);
  *out += "\",\"start_ms\":" + FormatMs(span.start_ms);
  *out += ",\"elapsed_ms\":" + FormatMs(span.elapsed_ms);
  *out += ",\"annotations\":{";
  for (size_t i = 0; i < span.annotations.size(); ++i) {
    const TraceAnnotation& a = span.annotations[i];
    if (i > 0) *out += ',';
    *out += '"';
    *out += JsonEscape(a.key);
    *out += "\":";
    if (a.is_number) {
      *out += FormatNumber(a.number);
    } else {
      *out += '"';
      *out += JsonEscape(a.text);
      *out += '"';
    }
  }
  *out += "},\"children\":[";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) *out += ',';
    SpanToJson(*span.children[i], out);
  }
  *out += "]}";
}

/// Microseconds for Chrome trace "ts"/"dur" fields. Perfetto truncates
/// fractional microseconds anyway, so emit integers.
std::string FormatUs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(ms * 1000.0 + 0.5));
  return buf;
}

void SpanToChromeEvents(const TraceSpan& span, int pid, int tid,
                        bool* first, std::string* out,
                        std::vector<int>* tids_seen) {
  // A wave-worker round span carries its worker index; the whole subtree
  // it assembled ran on that worker, so the tid is inherited downward.
  for (const TraceAnnotation& a : span.annotations) {
    if (a.is_number && a.key == "worker") {
      tid = static_cast<int>(a.number) + 2;
      break;
    }
  }
  if (std::find(tids_seen->begin(), tids_seen->end(), tid) ==
      tids_seen->end()) {
    tids_seen->push_back(tid);
  }
  if (!*first) *out += ',';
  *first = false;
  *out += "{\"ph\":\"X\",\"ts\":";
  *out += FormatUs(span.start_ms);
  *out += ",\"dur\":";
  *out += FormatUs(span.elapsed_ms);
  *out += ",\"pid\":";
  *out += std::to_string(pid);
  *out += ",\"tid\":";
  *out += std::to_string(tid);
  *out += ",\"name\":\"";
  *out += JsonEscape(span.name);
  *out += "\",\"args\":{";
  for (size_t i = 0; i < span.annotations.size(); ++i) {
    const TraceAnnotation& a = span.annotations[i];
    if (i > 0) *out += ',';
    *out += '"';
    *out += JsonEscape(a.key);
    *out += "\":";
    if (a.is_number) {
      *out += FormatNumber(a.number);
    } else {
      *out += '"';
      *out += JsonEscape(a.text);
      *out += '"';
    }
  }
  *out += "}}";
  for (const std::unique_ptr<TraceSpan>& child : span.children) {
    SpanToChromeEvents(*child, pid, tid, first, out, tids_seen);
  }
}

void SpanToText(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  *out += "  ";
  *out += FormatMs(span.elapsed_ms);
  *out += "ms";
  if (!span.annotations.empty()) {
    *out += "  [";
    for (size_t i = 0; i < span.annotations.size(); ++i) {
      const TraceAnnotation& a = span.annotations[i];
      if (i > 0) *out += ' ';
      *out += a.key;
      *out += '=';
      *out += a.is_number ? FormatNumber(a.number) : a.text;
    }
    *out += ']';
  }
  *out += '\n';
  for (const std::unique_ptr<TraceSpan>& child : span.children) {
    SpanToText(*child, depth + 1, out);
  }
}

}  // namespace

void TraceSpan::Annotate(std::string key, std::string value) {
  TraceAnnotation a;
  a.key = std::move(key);
  a.text = std::move(value);
  annotations.push_back(std::move(a));
}

void TraceSpan::Annotate(std::string key, double value) {
  TraceAnnotation a;
  a.key = std::move(key);
  a.number = value;
  a.is_number = true;
  annotations.push_back(std::move(a));
}

double TraceSpan::NumberOr0(std::string_view key) const {
  for (const TraceAnnotation& a : annotations) {
    if (a.key == key && a.is_number) return a.number;
  }
  return 0.0;
}

std::string_view TraceSpan::TextOr(std::string_view key) const {
  for (const TraceAnnotation& a : annotations) {
    if (a.key == key && !a.is_number) return a.text;
  }
  return {};
}

std::vector<const TraceSpan*> TraceSpan::ChildrenNamed(
    std::string_view span_name) const {
  std::vector<const TraceSpan*> out;
  for (const std::unique_ptr<TraceSpan>& child : children) {
    if (child->name == span_name) out.push_back(child.get());
  }
  return out;
}

const TraceSpan* TraceSpan::Find(std::string_view span_name) const {
  for (const std::unique_ptr<TraceSpan>& child : children) {
    if (child->name == span_name) return child.get();
    if (const TraceSpan* hit = child->Find(span_name)) return hit;
  }
  return nullptr;
}

void TraceSpan::ShiftBy(double offset_ms) {
  start_ms += offset_ms;
  for (const std::unique_ptr<TraceSpan>& child : children) {
    child->ShiftBy(offset_ms);
  }
}

TraceCollector::TraceCollector(std::string root_name)
    : start_(std::chrono::steady_clock::now()) {
  trace_.root.name = std::move(root_name);
  trace_.root.start_ms = 0.0;
  stack_.push_back(&trace_.root);
}

double TraceCollector::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void TraceCollector::Adopt(TraceSpan&& span) {
  stack_.back()->children.push_back(
      std::make_unique<TraceSpan>(std::move(span)));
}

TraceSpan* TraceCollector::OpenSpan(std::string_view name) {
  auto span = std::make_unique<TraceSpan>();
  span->name = std::string(name);
  span->start_ms = NowMs();
  TraceSpan* raw = span.get();
  stack_.back()->children.push_back(std::move(span));
  stack_.push_back(raw);
  return raw;
}

void TraceCollector::CloseSpan(TraceSpan* span) {
  assert(!stack_.empty() && stack_.back() == span &&
         "spans must close in LIFO order");
  span->elapsed_ms = NowMs() - span->start_ms;
  stack_.pop_back();
}

QueryTrace TraceCollector::Finish() {
  assert(stack_.size() == 1 && "unclosed spans at Finish()");
  trace_.root.elapsed_ms = NowMs();
  stack_.clear();
  return std::move(trace_);
}

std::string TraceToJson(const QueryTrace& trace) {
  std::string out;
  SpanToJson(trace.root, &out);
  return out;
}

std::string TraceToText(const QueryTrace& trace) {
  std::string out;
  SpanToText(trace.root, 0, &out);
  return out;
}

std::string TraceToChromeJson(const QueryTrace& trace, int pid) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::vector<int> tids_seen;
  SpanToChromeEvents(trace.root, pid, /*tid=*/1, &first, &out, &tids_seen);
  // Label each lane so Perfetto shows "coordinator"/"worker N" instead of
  // bare tids. Metadata events are timeless; emitting them after the
  // slice events is valid.
  std::sort(tids_seen.begin(), tids_seen.end());
  for (int tid : tids_seen) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"ts\":0,\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    out += tid == 1 ? "coordinator" : "worker " + std::to_string(tid - 2);
    out += "\"}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace flexpath
