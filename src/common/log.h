#ifndef FLEXPATH_COMMON_LOG_H_
#define FLEXPATH_COMMON_LOG_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace flexpath {

/// Severity levels, least to most severe. kOff disables everything.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* LogLevelName(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// One key/value attached to a log record. Values are either text or a
/// number, mirroring TraceAnnotation so the same quantities flow into
/// both logs and traces.
struct LogField {
  std::string key;
  std::string text;     ///< Set when !is_number.
  double number = 0.0;  ///< Set when is_number.
  bool is_number = false;

  LogField(std::string k, std::string v)
      : key(std::move(k)), text(std::move(v)) {}
  LogField(std::string k, std::string_view v) : key(std::move(k)), text(v) {}
  LogField(std::string k, const char* v) : key(std::move(k)), text(v) {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  LogField(std::string k, T v)
      : key(std::move(k)), number(static_cast<double>(v)), is_number(true) {}
};

/// A leveled, thread-safe structured logger. One process-wide instance
/// (Global()); records carry a module name, a message, and key/value
/// fields, and render to either a human-readable text line or one JSON
/// object per line (JSON-lines).
///
/// Hot-path cost: a disabled record is one relaxed atomic load plus an
/// integer compare (see Enabled()); the record is never formatted.
/// Per-module level overrides (e.g. debug just "exec") only add a mutex
/// acquisition for records that pass that first gate.
class Logger {
 public:
  static Logger& Global();

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Global minimum severity; records below it are dropped. Default kInfo.
  void SetLevel(LogLevel level);
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// Per-module override: records from `module` use `level` as their
  /// threshold instead of the global one. Overrides may be more or less
  /// verbose than the global level.
  void SetModuleLevel(std::string module, LogLevel level);
  void ClearModuleLevels();

  /// When true, records render as one JSON object per line; otherwise as
  /// a human-readable text line. Default text.
  void SetJsonOutput(bool json) {
    json_.store(json, std::memory_order_relaxed);
  }
  bool json_output() const { return json_.load(std::memory_order_relaxed); }

  /// Output stream for rendered lines (default stderr).
  void SetSink(std::FILE* sink);

  /// Test hook: when set, rendered lines go to `fn` instead of the FILE
  /// sink. Pass nullptr to restore the FILE sink.
  void SetCaptureSink(std::function<void(std::string_view)> fn);

  /// Cheap front gate: false means a record at `level` from `module`
  /// would be dropped. The common no-override path is one relaxed load.
  bool Enabled(LogLevel level, std::string_view module) const {
    // floor_ is min(global, every module override), so a level below it
    // is disabled for every module — the one-load fast path.
    if (static_cast<int>(level) < floor_.load(std::memory_order_relaxed)) {
      return false;
    }
    if (!has_overrides_.load(std::memory_order_relaxed)) return true;
    return EnabledSlow(level, module);
  }

  /// Formats and emits one record. Call Enabled() first (the macros do).
  void Log(LogLevel level, std::string_view module, std::string_view message,
           std::initializer_list<LogField> fields = {});

 private:
  bool EnabledSlow(LogLevel level, std::string_view module) const;
  void RecomputeFloorLocked();

  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<int> floor_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> has_overrides_{false};
  std::atomic<bool> json_{false};
  mutable std::mutex mu_;  ///< Guards overrides_, sink_, capture_, writes.
  std::map<std::string, int, std::less<>> overrides_;
  std::FILE* sink_ = nullptr;  ///< nullptr means stderr.
  std::function<void(std::string_view)> capture_;
};

// Records below FLEXPATH_MIN_LOG_LEVEL compile to nothing (the argument
// expressions are never evaluated), for shaving even the Enabled() load
// off hot paths. Values match LogLevel. Default: keep everything.
#ifndef FLEXPATH_MIN_LOG_LEVEL
#define FLEXPATH_MIN_LOG_LEVEL 0
#endif

#define FLEXPATH_LOG_IMPL(level_int, level_enum, module, message, ...)   \
  do {                                                                   \
    if constexpr ((level_int) >= FLEXPATH_MIN_LOG_LEVEL) {               \
      ::flexpath::Logger& flexpath_logger = ::flexpath::Logger::Global(); \
      if (flexpath_logger.Enabled((level_enum), (module))) {             \
        flexpath_logger.Log((level_enum), (module), (message),           \
                            {__VA_ARGS__});                              \
      }                                                                  \
    }                                                                    \
  } while (0)

#define FLEXPATH_LOG_TRACE(module, message, ...) \
  FLEXPATH_LOG_IMPL(0, ::flexpath::LogLevel::kTrace, module, message, __VA_ARGS__)
#define FLEXPATH_LOG_DEBUG(module, message, ...) \
  FLEXPATH_LOG_IMPL(1, ::flexpath::LogLevel::kDebug, module, message, __VA_ARGS__)
#define FLEXPATH_LOG_INFO(module, message, ...) \
  FLEXPATH_LOG_IMPL(2, ::flexpath::LogLevel::kInfo, module, message, __VA_ARGS__)
#define FLEXPATH_LOG_WARN(module, message, ...) \
  FLEXPATH_LOG_IMPL(3, ::flexpath::LogLevel::kWarn, module, message, __VA_ARGS__)
#define FLEXPATH_LOG_ERROR(module, message, ...) \
  FLEXPATH_LOG_IMPL(4, ::flexpath::LogLevel::kError, module, message, __VA_ARGS__)

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_LOG_H_
