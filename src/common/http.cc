#include "common/http.h"

#include <unistd.h>

namespace flexpath {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) close(fd_);
  fd_ = fd;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += '%';
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

const std::string* HttpRequest::Param(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool ParseHttpRequest(std::string_view head, HttpRequest* out,
                      std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return fail("no method");
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return fail("no request target");
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return fail("unsupported HTTP version");
  }
  out->method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return fail("bad request target");
  out->target = std::string(target);
  const size_t qmark = target.find('?');
  out->path = UrlDecode(target.substr(0, qmark));
  out->params.clear();
  if (qmark != std::string_view::npos) {
    std::string_view query = target.substr(qmark + 1);
    while (!query.empty()) {
      const size_t amp = query.find('&');
      std::string_view pair = query.substr(0, amp);
      query = amp == std::string_view::npos ? std::string_view{}
                                            : query.substr(amp + 1);
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out->params.emplace_back(UrlDecode(pair), "");
      } else {
        out->params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                 UrlDecode(pair.substr(eq + 1)));
      }
    }
  }
  return true;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace flexpath
