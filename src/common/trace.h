#ifndef FLEXPATH_COMMON_TRACE_H_
#define FLEXPATH_COMMON_TRACE_H_

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace flexpath {

/// One key/value attached to a span. Values are either text or a number;
/// numbers stay numeric so tools (and tests) can aggregate them without
/// parsing strings.
struct TraceAnnotation {
  std::string key;
  std::string text;      ///< Set when !is_number.
  double number = 0.0;   ///< Set when is_number.
  bool is_number = false;
};

/// One timed phase of an execution, possibly with nested sub-phases.
/// Times are wall-clock (steady_clock), in milliseconds, relative to the
/// start of the trace.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double elapsed_ms = 0.0;
  std::vector<TraceAnnotation> annotations;
  std::vector<std::unique_ptr<TraceSpan>> children;

  void Annotate(std::string key, std::string value);
  void Annotate(std::string key, double value);
  void Annotate(std::string key, uint64_t value) {
    Annotate(std::move(key), static_cast<double>(value));
  }

  /// The annotation's numeric value, or 0 when absent / non-numeric.
  double NumberOr0(std::string_view key) const;
  /// The annotation's text, or "" when absent / numeric.
  std::string_view TextOr(std::string_view key) const;

  /// Direct children with the given span name.
  std::vector<const TraceSpan*> ChildrenNamed(std::string_view span_name) const;
  /// First descendant (depth-first, self excluded) with the given name;
  /// nullptr when none.
  const TraceSpan* Find(std::string_view span_name) const;

  /// Adds `offset_ms` to this span's start time and, recursively, to
  /// every descendant's. Used when grafting a worker-local trace (whose
  /// clock started at task launch) into a parent trace: shifting by the
  /// parent's launch-time offset puts both on one timeline.
  void ShiftBy(double offset_ms);
};

/// A finished per-query execution trace: the root span covers the whole
/// query; children are pipeline phases (relaxation rounds, plan builds,
/// join steps, ...).
struct QueryTrace {
  TraceSpan root;
};

/// Assembles a QueryTrace from nested Span lifetimes. Confined to one
/// thread by design: spans must close in LIFO order, which the Span RAII
/// type guarantees. Parallel pipeline stages do NOT share a collector —
/// each worker task assembles its own (fork), and the coordinating thread
/// grafts the finished subtrees into the parent collector with Adopt()
/// after joining, in a deterministic order (join). See DESIGN.md §10.
class TraceCollector {
 public:
  /// Starts the clock and opens the root span.
  explicit TraceCollector(std::string root_name = "query");

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Closes the root span and returns the assembled trace. The collector
  /// must not be used afterwards.
  QueryTrace Finish();

  /// The innermost open span (the root before any child opens).
  TraceSpan* current() { return stack_.back(); }

  /// Milliseconds since the collector started.
  double NowMs() const;

  /// Grafts a finished span tree (typically a worker collector's
  /// Finish()ed root, ShiftBy()-adjusted by the caller) under the
  /// innermost open span. The adopted tree is taken as-is — it is never
  /// on the open-span stack.
  void Adopt(TraceSpan&& span);

  // Used by Span; not part of the public surface.
  TraceSpan* OpenSpan(std::string_view name);
  void CloseSpan(TraceSpan* span);

 private:
  QueryTrace trace_;
  std::vector<TraceSpan*> stack_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII handle for one span. A null collector makes every operation a
/// no-op — instrumented code pays one pointer test when tracing is off,
/// and in particular never reads the clock.
class Span {
 public:
  Span(TraceCollector* collector, std::string_view name)
      : collector_(collector),
        span_(collector != nullptr ? collector->OpenSpan(name) : nullptr) {}
  ~Span() { Close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes early (before scope exit); idempotent.
  void Close() {
    if (span_ != nullptr) {
      collector_->CloseSpan(span_);
      span_ = nullptr;
    }
  }

  bool active() const { return span_ != nullptr; }

  void Annotate(std::string key, std::string value) {
    if (span_ != nullptr) span_->Annotate(std::move(key), std::move(value));
  }
  void Annotate(std::string key, double value) {
    if (span_ != nullptr) span_->Annotate(std::move(key), value);
  }
  void Annotate(std::string key, uint64_t value) {
    if (span_ != nullptr) span_->Annotate(std::move(key), value);
  }

 private:
  TraceCollector* collector_;
  TraceSpan* span_;
};

/// Renders the trace as one JSON object:
///   {"name":..,"start_ms":..,"elapsed_ms":..,
///    "annotations":{..},"children":[..]}
std::string TraceToJson(const QueryTrace& trace);

/// Renders the trace as an indented, human-readable tree (the CLI's
/// --explain output), EXPLAIN ANALYZE-style:
///   query  12.41ms
///     dpo_round  4.02ms  [round=1 dropped=gamma($2) penalty=0.125 ...]
std::string TraceToText(const QueryTrace& trace);

/// Renders the trace in the Chrome Trace Event Format, loadable in
/// Perfetto (ui.perfetto.dev) and chrome://tracing:
///   {"traceEvents":[{"ph":"X","ts":0,"dur":12410,"pid":1,"tid":1,
///                    "name":"query","args":{...}},...],
///    "displayTimeUnit":"ms"}
/// Every span becomes one complete ("X") event with ts/dur in
/// microseconds; annotations become its args (numbers stay numeric).
/// Spans carrying a numeric "worker" annotation — the wave-worker rounds
/// — map to tid worker+2 (and pass the tid to their subtree), everything
/// else to tid 1, so per-worker attribution survives into the timeline;
/// "M"-phase thread_name metadata labels each lane.
std::string TraceToChromeJson(const QueryTrace& trace, int pid = 1);

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_TRACE_H_
