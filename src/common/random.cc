#include "common/random.h"

#include <cassert>
#include <cmath>

namespace flexpath {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Inverse-CDF sampling over the (small-n) harmonic weights. XMark word
  // lists are a few thousand entries, so the linear scan is fine; we cache
  // nothing because callers draw with varying n.
  double h = 0.0;
  for (uint64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = NextDouble() * h;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace flexpath
