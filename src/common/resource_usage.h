#ifndef FLEXPATH_COMMON_RESOURCE_USAGE_H_
#define FLEXPATH_COMMON_RESOURCE_USAGE_H_

#include <cstdint>

namespace flexpath {

/// Milliseconds of CPU time consumed by the *calling thread* so far
/// (clock_gettime(CLOCK_THREAD_CPUTIME_ID)). Unlike wall-clock time this
/// excludes time spent blocked or descheduled, so sums across threads
/// measure work, not waiting. Returns 0.0 where the clock is unavailable.
double ThreadCpuNowMs();

/// Measures the calling thread's CPU time across a scope. The timer must
/// be read on the same thread that constructed it.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_ms_(ThreadCpuNowMs()) {}

  /// CPU-milliseconds this thread has burned since construction.
  double ElapsedMs() const { return ThreadCpuNowMs() - start_ms_; }

 private:
  double start_ms_;
};

/// What one query (or one stage of it) actually consumed — the accounting
/// layer under the wall-clock spans and work counters (DESIGN.md §13).
/// CPU is attributed where it runs: each pool worker's task time is
/// measured at the task boundary and folded in, so cpu_ms can exceed the
/// query's wall-clock latency on a multi-core run. The byte figure is an
/// estimate (scan entries examined, tuple bindings materialized, cached
/// entries copied), not an allocator-exact count; it exists so relative
/// comparisons between queries, rounds and plans are meaningful.
struct ResourceUsage {
  double cpu_ms = 0.0;          ///< Thread-CPU ms, all participating threads.
  uint64_t tuples_scanned = 0;  ///< Scan/probe entries examined.
  uint64_t tuples_produced = 0; ///< Tuples / join pairs materialized.
  uint64_t bytes_touched = 0;   ///< Approximate bytes read+written.
  uint64_t cache_hits = 0;      ///< Result-cache steps served from cache.
  uint64_t cache_misses = 0;    ///< Result-cache steps computed.
  uint64_t rounds_executed = 0; ///< Relaxation rounds / encoded passes run.
  uint64_t rounds_pruned = 0;   ///< Rounds skipped by static analysis.

  /// Accumulates `other` into this (plain sums; every field is additive).
  void Add(const ResourceUsage& other);

  /// Calls fn(name, value-as-double) for every field, in declaration
  /// order — the single source of truth for exporting usage (span
  /// annotations, JSON, metrics).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    fn("cpu_ms", cpu_ms);
    fn("tuples_scanned", static_cast<double>(tuples_scanned));
    fn("tuples_produced", static_cast<double>(tuples_produced));
    fn("bytes_touched", static_cast<double>(bytes_touched));
    fn("cache_hits", static_cast<double>(cache_hits));
    fn("cache_misses", static_cast<double>(cache_misses));
    fn("rounds_executed", static_cast<double>(rounds_executed));
    fn("rounds_pruned", static_cast<double>(rounds_pruned));
  }
};

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_RESOURCE_USAGE_H_
