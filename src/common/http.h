#ifndef FLEXPATH_COMMON_HTTP_H_
#define FLEXPATH_COMMON_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flexpath {

/// Owns one file descriptor; closes it on destruction. The moved-from
/// state is -1 (no descriptor), so containers of ScopedFd work.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Returns the descriptor and gives up ownership.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Decodes %XX escapes and '+' (as space) in a URL component. Malformed
/// escapes are passed through verbatim.
std::string UrlDecode(std::string_view s);

/// One parsed HTTP request head. Only what the admin plane needs: the
/// request line (method, target split into path + query parameters).
/// Headers are tolerated and skipped; bodies are not supported.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...; uppercase as received.
  std::string target;  ///< Raw request target ("/statsz?recent=5").
  std::string path;    ///< Decoded path component ("/statsz").
  /// Decoded query parameters in request order. Keys repeat as sent.
  std::vector<std::pair<std::string, std::string>> params;

  /// First value of `key`, or null when absent.
  const std::string* Param(std::string_view key) const;
};

/// Parses a request head (everything up to and including the blank line).
/// Returns false — with a short reason in `error` when non-null — on a
/// malformed request line or an unsupported HTTP version.
bool ParseHttpRequest(std::string_view head, HttpRequest* out,
                      std::string* error = nullptr);

/// One response. Serialized with Content-Length and `Connection: close` —
/// the admin server is strictly one request per connection.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// The standard reason phrase for `status` ("OK", "Not Found", ...);
/// "Unknown" for statuses the admin plane never emits.
const char* HttpStatusReason(int status);

/// Renders the full HTTP/1.1 response (status line, headers, body).
std::string SerializeHttpResponse(const HttpResponse& response);

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_HTTP_H_
