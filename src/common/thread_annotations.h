#ifndef FLEXPATH_COMMON_THREAD_ANNOTATIONS_H_
#define FLEXPATH_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes (-Wthread-safety), following
/// the naming of the official documentation and Abseil. Under any other
/// compiler every macro expands to nothing, so annotated code stays
/// portable; the dedicated Clang CI job promotes the analysis to an
/// error (-Werror=thread-safety), turning lock discipline into a
/// build-time proof rather than a TSan-at-runtime hope.
///
/// Usage policy (DESIGN.md §11): every mutex that guards concurrently
/// mutated state is a flexpath::Mutex (common/mutex.h) and every member
/// it protects carries GUARDED_BY(mu_). Functions that expect the lock
/// held are annotated REQUIRES(mu_); private helpers called both ways do
/// not exist — split them instead.

#if defined(__clang__) && (!defined(SWIG))
#define FLEXPATH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FLEXPATH_THREAD_ANNOTATION(x)  // no-op
#endif

/// Documents that a class models a lockable capability ("mutex").
#define CAPABILITY(x) FLEXPATH_THREAD_ANNOTATION(capability(x))

/// Documents an RAII class that acquires on construction and releases on
/// destruction.
#define SCOPED_CAPABILITY FLEXPATH_THREAD_ANNOTATION(scoped_lockable)

/// Documents that a data member is protected by the given capability:
/// reads require the capability shared or exclusive, writes exclusive.
#define GUARDED_BY(x) FLEXPATH_THREAD_ANNOTATION(guarded_by(x))

/// Same, for the data a pointer member points at.
#define PT_GUARDED_BY(x) FLEXPATH_THREAD_ANNOTATION(pt_guarded_by(x))

/// The calling thread must hold the capability (exclusively) on entry,
/// and still holds it on exit.
#define REQUIRES(...) \
  FLEXPATH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The calling thread must NOT hold the capability (non-reentrancy).
#define EXCLUDES(...) \
  FLEXPATH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define ACQUIRE(...) \
  FLEXPATH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define RELEASE(...) \
  FLEXPATH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function tries to acquire and returns `b` on success.
#define TRY_ACQUIRE(...) \
  FLEXPATH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the named capability (for wrapper accessors).
#define RETURN_CAPABILITY(x) FLEXPATH_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function intentionally sidesteps the analysis
/// (e.g. a condition-variable wait that unlocks/relocks underneath).
#define NO_THREAD_SAFETY_ANALYSIS \
  FLEXPATH_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // FLEXPATH_COMMON_THREAD_ANNOTATIONS_H_
