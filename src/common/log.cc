#include "common/log.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <ctime>

#include "common/json_util.h"
#include "common/string_util.h"

namespace flexpath {

namespace {

std::string FormatNumber(double v) {
  // Field numbers are counts, latencies and penalties; %g keeps integers
  // integral and trims trailing zeros (same convention as traces).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// ISO-8601 UTC with millisecond precision: 2026-08-05T09:41:00.123Z.
std::string FormatTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  // Sized for the worst case GCC's -Wformat-truncation assumes (every
  // %d at full int width), not the 24 bytes a real timestamp needs.
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  const std::string lower = ToLowerAscii(text);
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    if (lower == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  // Common aliases.
  if (lower == "warning") {
    *out = LogLevel::kWarn;
    return true;
  }
  return false;
}

Logger& Logger::Global() {
  static auto* logger = new Logger();
  return *logger;
}

void Logger::SetLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
  RecomputeFloorLocked();
}

void Logger::SetModuleLevel(std::string module, LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  overrides_[std::move(module)] = static_cast<int>(level);
  has_overrides_.store(true, std::memory_order_relaxed);
  RecomputeFloorLocked();
}

void Logger::ClearModuleLevels() {
  std::lock_guard<std::mutex> lock(mu_);
  overrides_.clear();
  has_overrides_.store(false, std::memory_order_relaxed);
  RecomputeFloorLocked();
}

void Logger::RecomputeFloorLocked() {
  int floor = level_.load(std::memory_order_relaxed);
  for (const auto& [module, level] : overrides_) {
    floor = std::min(floor, level);
  }
  floor_.store(floor, std::memory_order_relaxed);
}

bool Logger::EnabledSlow(LogLevel level, std::string_view module) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = overrides_.find(module);
  const int threshold = it != overrides_.end()
                            ? it->second
                            : level_.load(std::memory_order_relaxed);
  return static_cast<int>(level) >= threshold;
}

void Logger::SetSink(std::FILE* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

void Logger::SetCaptureSink(std::function<void(std::string_view)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = std::move(fn);
}

void Logger::Log(LogLevel level, std::string_view module,
                 std::string_view message,
                 std::initializer_list<LogField> fields) {
  std::string line;
  if (json_output()) {
    // One JSON object per line. "ts", "level", "module" and "msg" are
    // reserved keys; fields render after them at the top level.
    line = "{\"ts\":\"" + FormatTimestamp() + "\"";
    line += ",\"level\":\"";
    line += LogLevelName(level);
    line += "\",\"module\":\"";
    line += JsonEscape(module);
    line += "\",\"msg\":\"";
    line += JsonEscape(message);
    line += '"';
    for (const LogField& f : fields) {
      line += ",\"";
      line += JsonEscape(f.key);
      line += "\":";
      if (f.is_number) {
        line += FormatDouble(f.number);
      } else {
        line += '"';
        line += JsonEscape(f.text);
        line += '"';
      }
    }
    line += '}';
  } else {
    line = FormatTimestamp();
    line += ' ';
    const char* name = LogLevelName(level);
    line += name;
    // Pad to the widest level name so columns line up.
    for (size_t i = std::strlen(name); i < 5; ++i) line += ' ';
    line += " [";
    line += module;
    line += "] ";
    line += message;
    for (const LogField& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      if (f.is_number) {
        line += FormatNumber(f.number);
      } else if (f.text.find_first_of(" =\"") != std::string::npos) {
        line += '"';
        line += f.text;
        line += '"';
      } else {
        line += f.text;
      }
    }
  }
  line += '\n';

  std::lock_guard<std::mutex> lock(mu_);
  if (capture_) {
    capture_(line);
    return;
  }
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace flexpath
