#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/resource_usage.h"

namespace flexpath {

namespace {

/// -1 off-pool; the worker's index inside its pool otherwise. A plain
/// thread_local int (not per-pool) deliberately: nested-fan-out detection
/// must work across pools, and one thread never serves two pools.
thread_local int t_worker_id = -1;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
#ifndef NDEBUG
  {
    MutexLock lock(mu_);
    assert(queue_.empty() && "workers drain the queue before exiting");
  }
#endif
}

void ThreadPool::Submit(std::function<void()> task) {
  assert(task != nullptr);
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::OnWorkerThread() { return t_worker_id >= 0; }

int ThreadPool::CurrentWorkerId() { return t_worker_id; }

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop(int worker_id) {
  t_worker_id = worker_id;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // An explicit wait loop (not the predicate overload) keeps the
      // guarded reads in this scope, where the analysis sees mu_ held.
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      // Drain-before-exit: stop_ alone is not enough to leave while
      // queued tasks remain (a finishing task may have submitted more).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool),
      inline_only_(pool == nullptr || pool->size() <= 1 ||
                   ThreadPool::OnWorkerThread()) {}

TaskGroup::~TaskGroup() {
#ifndef NDEBUG
  // A group abandoned mid-flight would leave tasks writing into a dead
  // object; Wait() is part of the contract, so enforce it.
  MutexLock lock(mu_);
  assert(scheduled_ == finished_ && "TaskGroup destroyed before Wait()");
#endif
}

void TaskGroup::Run(std::function<void()> fn) {
  ++scheduled_;
  // The deque never moves elements on push_back, so the slot pointer a
  // task carries stays valid while later Run() calls append.
  errors_.push_back(nullptr);
  std::exception_ptr* slot = &errors_.back();
  if (inline_only_) {
    try {
      fn();
    } catch (...) {
      *slot = std::current_exception();
    }
    MutexLock lock(mu_);
    ++finished_;
    return;
  }
  pool_->Submit([this, slot, fn = std::move(fn)] {
    const ThreadCpuTimer cpu;
    try {
      fn();
    } catch (...) {
      *slot = std::current_exception();
    }
    MutexLock lock(mu_);
    worker_cpu_ms_ += cpu.ElapsedMs();
    ++finished_;
    done_cv_.NotifyAll();
  });
}

double TaskGroup::WorkerCpuMs() const {
  MutexLock lock(mu_);
  return worker_cpu_ms_;
}

void TaskGroup::Wait() {
  if (!inline_only_) {
    MutexLock lock(mu_);
    while (finished_ != scheduled_) done_cv_.Wait(lock);
  }
  for (std::exception_ptr& e : errors_) {
    if (e != nullptr) {
      std::exception_ptr first = std::move(e);
      e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

std::vector<std::pair<size_t, size_t>> ChunkRanges(const ThreadPool* pool,
                                                   size_t n, size_t grain) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  grain = std::max<size_t>(1, grain);
  if (pool == nullptr || pool->size() <= 1 || n <= grain ||
      ThreadPool::OnWorkerThread()) {
    ranges.emplace_back(0, n);
    return ranges;
  }
  // More chunks than workers (4x) so an uneven chunk cannot serialize
  // the tail; the cap keeps per-chunk overhead negligible.
  const size_t max_chunks = pool->size() * 4;
  const size_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  const size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t begin = 0; begin < n; begin += per_chunk) {
    ranges.emplace_back(begin, std::min(n, begin + per_chunk));
  }
  return ranges;
}

void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  const std::vector<std::pair<size_t, size_t>> ranges =
      ChunkRanges(pool, n, grain);
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    body(ranges[0].first, ranges[0].second);
    return;
  }
  TaskGroup group(pool);
  for (const auto& [begin, end] : ranges) {
    group.Run([&body, begin = begin, end = end] { body(begin, end); });
  }
  group.Wait();
}

}  // namespace flexpath
