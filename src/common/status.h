#ifndef FLEXPATH_COMMON_STATUS_H_
#define FLEXPATH_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace flexpath {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return a Status (or a Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input supplied by the caller.
  kParseError,        ///< XML / XPath / full-text expression syntax error.
  kNotFound,          ///< A requested entity (tag, document, ...) is absent.
  kOutOfRange,        ///< An index or position is out of bounds.
  kInternal,          ///< An invariant was violated inside the library.
  kUnimplemented,     ///< The operation is not supported.
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modeled on the RocksDB / Arrow
/// idiom. Cheap to copy in the OK case; carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "<CodeName>: <message>" (or "OK").
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder: either a T (when status().ok()) or an error
/// Status. Dereferencing a non-OK Result is a programming error (asserts).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr ergonomics.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status (must not be OK).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flexpath

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define FLEXPATH_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::flexpath::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // FLEXPATH_COMMON_STATUS_H_
