#ifndef FLEXPATH_COMMON_MUTEX_H_
#define FLEXPATH_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace flexpath {

/// A std::mutex wrapper that carries the Clang capability annotation so
/// the thread-safety analysis can check GUARDED_BY/REQUIRES contracts at
/// compile time (std::mutex itself is unannotated under libstdc++).
/// Zero-cost: the wrapper is exactly a std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated as a scoped capability so the
/// analysis tracks its acquire/release. Use instead of std::lock_guard /
/// std::unique_lock for flexpath::Mutex (the std guards carry no
/// annotations under libstdc++ and would leave the analysis blind).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to flexpath::Mutex via MutexLock. Wait()
/// unlocks and relocks underneath — invisible to the static analysis,
/// which (correctly) sees the capability held whenever the predicate
/// runs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Pred>
  void Wait(MutexLock& lock, Pred&& pred) {
    cv_.wait(lock.lock_, std::forward<Pred>(pred));
  }

  /// Waits until notified (or spuriously woken) or `timeout` elapses;
  /// returns true when the wait timed out. No predicate overload — an
  /// explicit wait loop keeps guarded reads where the thread-safety
  /// analysis can see the mutex held (see ThreadPool::WorkerLoop).
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock, std::chrono::duration<Rep, Period> timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_MUTEX_H_
