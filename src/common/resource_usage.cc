#include "common/resource_usage.h"

#include <ctime>

namespace flexpath {

double ThreadCpuNowMs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
#else
  return 0.0;
#endif
}

void ResourceUsage::Add(const ResourceUsage& other) {
  cpu_ms += other.cpu_ms;
  tuples_scanned += other.tuples_scanned;
  tuples_produced += other.tuples_produced;
  bytes_touched += other.bytes_touched;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  rounds_executed += other.rounds_executed;
  rounds_pruned += other.rounds_pruned;
}

}  // namespace flexpath
