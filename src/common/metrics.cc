#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/json_util.h"

namespace flexpath {

namespace {

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t below = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(below + in_bucket) >= target) {
      // Interpolate within [lower edge, upper edge]; the overflow bucket
      // and observed extremes are clamped to what we actually saw.
      const double lo = i == 0 ? std::min(min, bounds.front()) : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : std::max(max, lo);
      const double frac =
          (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    below += in_bucket;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bucket edges must be increasing");
  assert(!bounds_.empty() && "histogram needs at least one bucket edge");
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  return {0.001, 0.002, 0.005, 0.01, 0.02,  0.05,  0.1,   0.2,
          0.5,   1.0,   2.0,   5.0,  10.0,  20.0,  50.0,  100.0,
          200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0, 100000.0};
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First observation seeds min/max; racing observers correct it below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& b : buckets_) {
    snap.counts.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultLatencyBoundsMs()
                       : std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + FormatDouble(h.sum);
    out += ",\"min\":" + FormatDouble(h.min);
    out += ",\"max\":" + FormatDouble(h.max);
    out += ",\"mean\":" + FormatDouble(h.Mean());
    out += ",\"p50\":" + FormatDouble(h.Quantile(0.5));
    out += ",\"p99\":" + FormatDouble(h.Quantile(0.99));
    out += ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += FormatDouble(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:]; we map everything else
/// (the library's '.' separators in particular) to '_'.
std::string PromName(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  out += prefix;
  if (!prefix.empty()) out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP text escaping: backslash and newline only (the exposition format's
/// rule for HELP lines).
std::string PromHelpEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void PromHeader(std::string* out, const std::string& name,
                std::string_view original, const char* type) {
  *out += "# HELP " + name + " FleXPath metric " + PromHelpEscape(original) +
          "\n";
  *out += "# TYPE " + name + " ";
  *out += type;
  *out += '\n';
}

}  // namespace

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot,
                                std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    // Prometheus convention: counter sample names end in _total.
    std::string prom = PromName(prefix, name) + "_total";
    PromHeader(&out, prom, name, "counter");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PromName(prefix, name);
    PromHeader(&out, prom, name, "gauge");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string prom = PromName(prefix, name);
    PromHeader(&out, prom, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + FormatDouble(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace flexpath
