#ifndef FLEXPATH_COMMON_STRING_UTIL_H_
#define FLEXPATH_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace flexpath {

/// Returns `s` lowercased (ASCII only; XML tag names and query keywords in
/// this library are ASCII).
std::string ToLowerAscii(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Escapes the five XML special characters (& < > " ') for serialization.
std::string XmlEscape(std::string_view s);

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_STRING_UTIL_H_
