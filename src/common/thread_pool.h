#ifndef FLEXPATH_COMMON_THREAD_POOL_H_
#define FLEXPATH_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace flexpath {

/// A fixed-size worker pool with one shared FIFO work queue. Built for
/// the query pipeline's fan-out points (relaxation rounds, per-step tuple
/// chunks): tasks are small closures over shared *immutable* state, so
/// the pool provides scheduling only — no per-task results, no futures.
/// Use TaskGroup or ParallelFor on top for joining and exception
/// propagation.
///
/// Threads are started in the constructor and joined in the destructor;
/// destruction drains every task already queued (tasks submitted by
/// running tasks included) before the workers exit, so a pool going out
/// of scope never strands work.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then stops and joins every worker.
  ~ThreadPool();

  size_t size() const { return threads_.size(); }

  /// Enqueues one task. Safe to call from any thread, including pool
  /// workers (a task may submit follow-up tasks). Tasks must not throw —
  /// an escaping exception terminates the process, as from any thread;
  /// route fallible work through TaskGroup/ParallelFor, which catch and
  /// re-throw on the joining thread.
  void Submit(std::function<void()> task);

  /// True when the calling thread is a worker of *any* ThreadPool. Used
  /// to run nested fan-outs inline: a task that itself calls ParallelFor
  /// must not block on sub-tasks queued behind it (deadlock when every
  /// worker waits this way), and the outer fan-out already owns the
  /// parallelism.
  static bool OnWorkerThread();

  /// Index of the calling worker within its pool, or -1 off-pool. Stable
  /// for a worker's lifetime; used to attribute trace spans and per-worker
  /// scratch space.
  static int CurrentWorkerId();

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop(int worker_id);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

/// Joins a batch of tasks and re-throws the first exception any of them
/// raised ("first" by submission order, so which exception wins never
/// depends on thread scheduling):
///
///   TaskGroup group(pool);
///   for (auto& item : items) group.Run([&item] { Process(item); });
///   group.Wait();  // re-throws here, on the calling thread
///
/// With a null pool (or from inside a pool worker — see
/// ThreadPool::OnWorkerThread) tasks run inline on the calling thread at
/// Run(), preserving the sequential order; Wait() is then a no-op check.
class TaskGroup {
 public:
  /// `pool` may be null: every task then runs inline.
  explicit TaskGroup(ThreadPool* pool);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Wait() must have returned (or never-Run) before destruction.
  ~TaskGroup();

  /// Schedules `fn`. Must not be called concurrently with itself or with
  /// Wait() (one thread drives a group).
  void Run(std::function<void()> fn);

  /// Blocks until every task scheduled so far has finished, then
  /// re-throws the first (by submission order) captured exception.
  void Wait();

  /// Thread-CPU milliseconds the group's tasks burned *on pool workers*
  /// (measured per task with CLOCK_THREAD_CPUTIME_ID at the task
  /// boundary). Inline-run tasks contribute nothing — their CPU already
  /// belongs to the calling thread, which the caller times itself; the
  /// split lets resource accounting sum caller + worker CPU without
  /// double counting. Call after Wait().
  double WorkerCpuMs() const;

 private:
  ThreadPool* pool_;
  bool inline_only_;
  mutable Mutex mu_;
  CondVar done_cv_;
  size_t scheduled_ = 0;  ///< Only the driving thread writes/reads.
  size_t finished_ GUARDED_BY(mu_) = 0;
  double worker_cpu_ms_ GUARDED_BY(mu_) = 0.0;
  /// Captured exceptions in submission order; first non-null wins. A
  /// deque so slots stay at stable addresses while Run() keeps appending
  /// — in-flight tasks hold pointers to their own slot. Deliberately not
  /// GUARDED_BY(mu_): each task writes only its own slot, and Wait()'s
  /// finished_ == scheduled_ read under mu_ publishes every slot before
  /// the driving thread scans them.
  std::deque<std::exception_ptr> errors_;
};

/// Splits [0, n) into contiguous chunks for a pool fan-out. The split is
/// a pure function of (n, grain, pool size): at most 4 chunks per worker,
/// none smaller than `grain` (except the last), one single chunk when the
/// fan-out would be pointless (null pool, single worker, n <= grain, or
/// the caller is itself a pool worker — nested fan-outs run inline).
/// Callers that keep per-chunk outputs and merge them by chunk index get
/// results independent of thread count and scheduling.
std::vector<std::pair<size_t, size_t>> ChunkRanges(const ThreadPool* pool,
                                                   size_t n, size_t grain);

/// Splits [0, n) into contiguous chunks of at most `grain` items and runs
/// `body(begin, end)` over them on the pool, blocking until all chunks
/// finish. Exceptions propagate like TaskGroup's (first chunk wins).
/// Chunk boundaries depend only on (n, grain, pool size) and results are
/// typically concatenated in chunk order, so outputs are independent of
/// thread scheduling — the caller-side pattern for deterministic merges.
///
/// Runs entirely inline (one body(0, n) call) when `pool` is null, has a
/// single worker, n <= grain, or the caller is itself a pool worker
/// (nested fan-out; see ThreadPool::OnWorkerThread). n == 0 is a no-op.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_THREAD_POOL_H_
