#ifndef FLEXPATH_COMMON_HASH_H_
#define FLEXPATH_COMMON_HASH_H_

#include <bit>
#include <cstdint>
#include <string_view>

namespace flexpath {

/// The finalizer of the splitmix64 generator: a cheap 64-bit bijection
/// with full avalanche, used to mix fingerprint fields. Stable across
/// platforms and builds, so fingerprints are reproducible.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds the value `v` into the running hash `h`.
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return HashMix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Folds a double in by its bit pattern (exact, not approximate: two
/// doubles hash equal iff they are bitwise equal).
inline uint64_t HashCombine(uint64_t h, double v) {
  return HashCombine(h, std::bit_cast<uint64_t>(v));
}

/// Folds a byte string in via FNV-1a.
inline uint64_t HashCombine(uint64_t h, std::string_view s) {
  uint64_t f = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    f ^= c;
    f *= 0x100000001b3ULL;
  }
  return HashCombine(h, f);
}

}  // namespace flexpath

#endif  // FLEXPATH_COMMON_HASH_H_
