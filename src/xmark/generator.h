#ifndef FLEXPATH_XMARK_GENERATOR_H_
#define FLEXPATH_XMARK_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "xml/document.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Tuning knobs for the XMark-style generator. Defaults reproduce the
/// schema features the paper's Section 6 relies on:
///  - recursive `parlist` (enables axis generalization),
///  - optional `incategory` (enables leaf deletion),
///  - `text` shared between `mail`, `listitem` and a `reply` wrapper
///    (enables subtree promotion),
///  - `description` content that is sometimes a `summary` wrapper around
///    `parlist` (so `description//parlist` strictly contains
///    `description/parlist`).
struct XMarkOptions {
  /// Approximate serialized size of the generated document, in bytes.
  uint64_t target_bytes = 1 << 20;  // 1 MB
  /// RNG seed; equal seeds + options produce identical documents.
  uint64_t seed = 42;

  // Content-mix probabilities (see the schema notes above). The defaults
  // are calibrated so that, at the paper's 1MB/K=50 operating point, the
  // Section 6 queries need roughly the same number of relaxations the
  // paper reports (Q1: none, Q2: a couple, Q3: around six).
  double p_description_parlist = 0.15;  ///< description -> parlist directly.
  double p_description_summary = 0.15;  ///< description -> summary -> parlist.
  double p_listitem_nested_parlist = 0.30;  ///< listitem recurses.
  int max_parlist_depth = 3;
  double p_item_has_incategory = 0.75;  ///< else the optional leaf is absent.
  double p_mail_direct_text = 0.35;     ///< mail -> text directly.
  double p_mail_reply_text = 0.15;      ///< mail -> reply -> text.
  int max_mails_per_mailbox = 2;
  double p_text_markup = 0.55;  ///< each of bold/keyword/emph, independently.
  double zipf_s = 1.0;          ///< word-draw skew.
};

/// Summary of what was generated (useful for calibrating benchmarks and in
/// tests).
struct XMarkStatsSummary {
  uint64_t approx_bytes = 0;
  uint32_t items = 0;
  uint32_t categories = 0;
  uint32_t people = 0;
  uint32_t open_auctions = 0;
};

/// Generates one XMark-style auction document into `dict`. Deterministic
/// in (options, seed). If `out_stats` is non-null it receives generation
/// counters.
Result<Document> GenerateXMark(const XMarkOptions& options, TagDict* dict,
                               XMarkStatsSummary* out_stats = nullptr);

}  // namespace flexpath

#endif  // FLEXPATH_XMARK_GENERATOR_H_
