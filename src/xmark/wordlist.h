#ifndef FLEXPATH_XMARK_WORDLIST_H_
#define FLEXPATH_XMARK_WORDLIST_H_

#include <cstddef>
#include <string_view>

namespace flexpath {

/// Fixed vocabulary used by the XMark-style generator. The original XMark
/// xmlgen draws words from a Shakespeare-derived list; we embed a smaller
/// list with a similar flavor and draw from it Zipf-distributed, which
/// reproduces the skewed term-frequency distribution the IR engine sees.
/// Entries are lowercase and stable across releases (tests depend on
/// determinism, not on specific entries).
size_t WordListSize();

/// Returns the i-th word; i must be < WordListSize().
std::string_view WordAt(size_t i);

}  // namespace flexpath

#endif  // FLEXPATH_XMARK_WORDLIST_H_
