#include "xmark/generator.h"

#include <string>

#include "common/random.h"
#include "xmark/wordlist.h"

namespace flexpath {

namespace {

/// Stateful generation helper. Tracks an approximate serialized byte count
/// so documents land near the requested size without serializing twice.
class XMarkGen {
 public:
  XMarkGen(const XMarkOptions& opts, TagDict* dict)
      : opts_(opts), rng_(opts.seed), builder_(dict) {}

  Result<Document> Run(XMarkStatsSummary* out_stats) {
    Open("site");
    // ~70% of the byte budget goes to region items (the query targets);
    // the rest to categories / people / auctions for realistic bulk.
    const uint64_t item_budget = opts_.target_bytes * 7 / 10;
    const uint64_t aux_budget = opts_.target_bytes - item_budget;

    Open("regions");
    static constexpr const char* kRegions[] = {
        "africa", "asia", "australia", "europe", "namerica", "samerica"};
    size_t region = 0;
    Open(kRegions[region]);
    while (bytes_ < item_budget) {
      EmitItem();
      // Rotate regions every few items so all six are populated.
      if (stats_.items % 5 == 0) {
        Close();
        region = (region + 1) % 6;
        Open(kRegions[region]);
      }
    }
    Close();  // last region
    Close();  // regions

    const uint64_t cat_budget = bytes_ + aux_budget / 3;
    Open("categories");
    while (bytes_ < cat_budget) EmitCategory();
    Close();

    const uint64_t people_budget = bytes_ + aux_budget / 3;
    Open("people");
    while (bytes_ < people_budget) EmitPerson();
    Close();

    Open("open_auctions");
    while (bytes_ < opts_.target_bytes) EmitOpenAuction();
    Close();

    Close();  // site
    if (out_stats != nullptr) {
      stats_.approx_bytes = bytes_;
      *out_stats = stats_;
    }
    return std::move(builder_).Finish();
  }

 private:
  void Open(std::string_view tag) {
    builder_.Open(tag);
    bytes_ += 2 * tag.size() + 5;  // "<t>" + "</t>"
  }
  void Close() { builder_.Close(); }

  void Attr(std::string_view name, std::string_view value) {
    (void)builder_.Attr(name, value);
    bytes_ += name.size() + value.size() + 4;
  }

  void Text(const std::string& t) {
    (void)builder_.Text(t);
    bytes_ += t.size();
  }

  std::string Words(int min_words, int max_words) {
    int n = static_cast<int>(rng_.UniformRange(min_words, max_words));
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += WordAt(rng_.Zipf(WordListSize(), opts_.zipf_s));
    }
    return out;
  }

  void Leaf(std::string_view tag, const std::string& text) {
    Open(tag);
    Text(text);
    Close();
  }

  /// `text` element: PCDATA interleaved with optional bold/keyword/emph
  /// markup children (the XMark "rich text" production).
  void EmitText() {
    Open("text");
    Text(Words(6, 20));
    if (rng_.Bernoulli(opts_.p_text_markup)) Leaf("bold", Words(1, 3));
    if (rng_.Bernoulli(opts_.p_text_markup)) Leaf("keyword", Words(1, 3));
    if (rng_.Bernoulli(opts_.p_text_markup)) Leaf("emph", Words(1, 3));
    if (rng_.Bernoulli(0.5)) Text(Words(4, 12));
    Close();
  }

  void EmitParlist(int depth) {
    Open("parlist");
    int items = static_cast<int>(rng_.UniformRange(1, 4));
    for (int i = 0; i < items; ++i) {
      Open("listitem");
      if (depth < opts_.max_parlist_depth &&
          rng_.Bernoulli(opts_.p_listitem_nested_parlist)) {
        EmitParlist(depth + 1);
      } else {
        EmitText();
      }
      Close();
    }
    Close();
  }

  void EmitDescription() {
    Open("description");
    double u = rng_.NextDouble();
    if (u < opts_.p_description_parlist) {
      EmitParlist(1);
    } else if (u < opts_.p_description_parlist + opts_.p_description_summary) {
      // `summary` wrapper: parlist is a descendant, not a child, of
      // description — axis generalization on description/parlist finds it.
      Open("summary");
      EmitText();
      EmitParlist(1);
      Close();
    } else {
      EmitText();
    }
    Close();
  }

  void EmitMail() {
    Open("mail");
    Leaf("from", Words(2, 3));
    Leaf("to", Words(2, 3));
    Leaf("date", Date());
    double u = rng_.NextDouble();
    if (u < opts_.p_mail_direct_text) {
      EmitText();
    } else if (u < opts_.p_mail_direct_text + opts_.p_mail_reply_text) {
      // `reply` wrapper: text is a descendant, not a child, of mail —
      // subtree promotion on text finds it.
      Open("reply");
      EmitText();
      Close();
    }
    // else: mail with no text at all.
    Close();
  }

  void EmitItem() {
    ++stats_.items;
    Open("item");
    Attr("id", "item" + std::to_string(stats_.items));
    Leaf("location", Words(1, 2));
    Leaf("quantity", std::to_string(rng_.UniformRange(1, 10)));
    Leaf("name", Words(2, 4));
    Leaf("payment", Words(2, 5));
    EmitDescription();
    Leaf("shipping", Words(3, 6));
    if (rng_.Bernoulli(opts_.p_item_has_incategory)) {
      int cats = static_cast<int>(rng_.UniformRange(1, 4));
      for (int i = 0; i < cats; ++i) {
        Open("incategory");
        Attr("category",
             "category" + std::to_string(rng_.UniformRange(1, 50)));
        Close();
      }
    }
    Open("mailbox");
    int mails = static_cast<int>(
        rng_.UniformRange(0, opts_.max_mails_per_mailbox));
    for (int i = 0; i < mails; ++i) EmitMail();
    Close();
    Close();
  }

  void EmitCategory() {
    ++stats_.categories;
    Open("category");
    Attr("id", "category" + std::to_string(stats_.categories));
    Leaf("name", Words(1, 3));
    EmitDescription();
    Close();
  }

  void EmitPerson() {
    ++stats_.people;
    Open("person");
    Attr("id", "person" + std::to_string(stats_.people));
    Leaf("name", Words(2, 2));
    Leaf("emailaddress",
         "mailto:" + Words(1, 1) + std::to_string(stats_.people) +
             "@example.com");
    if (rng_.Bernoulli(0.5)) Leaf("phone", Phone());
    if (rng_.Bernoulli(0.3)) {
      Open("address");
      Leaf("street", Words(2, 3));
      Leaf("city", Words(1, 1));
      Leaf("country", Words(1, 1));
      Close();
    }
    Close();
  }

  void EmitOpenAuction() {
    ++stats_.open_auctions;
    Open("open_auction");
    Attr("id", "auction" + std::to_string(stats_.open_auctions));
    Leaf("initial", Money());
    Leaf("current", Money());
    int bids = static_cast<int>(rng_.UniformRange(0, 4));
    for (int i = 0; i < bids; ++i) {
      Open("bidder");
      Leaf("date", Date());
      Leaf("increase", Money());
      Close();
    }
    Open("itemref");
    Attr("item", "item" + std::to_string(rng_.UniformRange(
                     1, stats_.items > 0 ? stats_.items : 1)));
    Close();
    if (rng_.Bernoulli(0.6)) {
      Open("annotation");
      EmitDescription();
      Close();
    }
    Close();
  }

  std::string Date() {
    return std::to_string(rng_.UniformRange(1, 12)) + "/" +
           std::to_string(rng_.UniformRange(1, 28)) + "/" +
           std::to_string(rng_.UniformRange(1998, 2003));
  }

  std::string Money() {
    return std::to_string(rng_.UniformRange(1, 5000)) + "." +
           std::to_string(rng_.UniformRange(0, 99));
  }

  std::string Phone() {
    return "+1 (" + std::to_string(rng_.UniformRange(100, 999)) + ") " +
           std::to_string(rng_.UniformRange(1000000, 9999999));
  }

  const XMarkOptions& opts_;
  Rng rng_;
  DocumentBuilder builder_;
  uint64_t bytes_ = 0;
  XMarkStatsSummary stats_;
};

}  // namespace

Result<Document> GenerateXMark(const XMarkOptions& options, TagDict* dict,
                               XMarkStatsSummary* out_stats) {
  if (options.target_bytes == 0) {
    return Status::InvalidArgument("target_bytes must be > 0");
  }
  XMarkGen gen(options, dict);
  return gen.Run(out_stats);
}

}  // namespace flexpath
