#include "xmark/wordlist.h"

namespace flexpath {

namespace {

// A ~360-word vocabulary. The first few dozen entries (most likely under a
// Zipf draw) are common English words; later entries include the
// domain-flavored terms the example queries search for ("xml",
// "streaming", "algorithm", ...), so full-text predicates have realistic,
// non-trivial selectivity.
constexpr std::string_view kWords[] = {
    "the", "and", "of", "to", "a", "in", "that", "is", "was", "he",
    "for", "it", "with", "as", "his", "on", "be", "at", "by", "had",
    "not", "are", "but", "from", "or", "have", "an", "they", "which",
    "one", "you", "were", "her", "all", "she", "there", "would", "their",
    "we", "him", "been", "has", "when", "who", "will", "more", "no",
    "if", "out", "so", "said", "what", "up", "its", "about", "into",
    "than", "them", "can", "only", "other", "new", "some", "could",
    "time", "these", "two", "may", "then", "do", "first", "any", "my",
    "now", "such", "like", "our", "over", "man", "me", "even", "most",
    "made", "after", "also", "did", "many", "before", "must", "through",
    "years", "where", "much", "your", "way", "well", "down", "should",
    "because", "each", "just", "those", "people", "how", "too", "little",
    "state", "good", "very", "make", "world", "still", "own", "see",
    "men", "work", "long", "get", "here", "between", "both", "life",
    "being", "under", "never", "day", "same", "another", "know", "while",
    "last", "might", "us", "great", "old", "year", "off", "come",
    "since", "against", "go", "came", "right", "used", "take", "three",
    "states", "himself", "few", "house", "use", "during", "without",
    "again", "place", "american", "around", "however", "home", "small",
    "found", "thought", "went", "say", "part", "once", "general", "high",
    "upon", "school", "every", "dont", "does", "got", "united", "left",
    "number", "course", "war", "until", "always", "away", "something",
    "fact", "though", "water", "less", "public", "put", "think",
    "almost", "hand", "enough", "far", "took", "head", "yet",
    "government", "system", "better", "set", "told", "nothing", "night",
    "end", "why", "called", "didnt", "eyes", "find", "going", "look",
    "asked", "later", "point", "knew", "next", "city", "business",
    "program", "give", "group", "toward", "young", "days", "let",
    "room", "side", "social", "present", "given", "several", "order",
    "national", "second", "possible", "rather", "per", "face", "among",
    "form", "important", "often", "things", "looked", "early", "white",
    "case", "become", "large", "need", "big", "four", "within", "felt",
    "along", "children", "saw", "best", "church", "ever", "least",
    "power", "development", "light", "thing", "family", "interest",
    "seemed", "want", "members", "mind", "country", "area", "others",
    "although", "turned", "done", "open", "service", "certain", "kind",
    "problem", "began", "different", "door", "thus", "help", "means",
    "god", "sense", "whole", "matter", "perhaps", "itself", "york",
    "times", "human", "law", "line", "above", "name", "example",
    "action", "company", "hands", "local", "show", "whether", "five",
    "history", "gave", "today", "either", "act", "feet", "across",
    "taken", "past", "quite", "anything", "seen", "having", "death",
    "week", "field", "car", "experience", "money", "word", "really",
    // Domain-flavored tail so query keywords exist with low frequency.
    "xml", "streaming", "algorithm", "database", "query", "index",
    "search", "structure", "pattern", "engine", "keyword", "ranking",
    "relaxation", "semantics", "parser", "document", "element", "schema",
    "fragment", "retrieval", "auction", "bidder", "reserve", "shipping",
    "payment", "category", "vintage", "antique", "gold", "silver",
    "platinum", "rare", "collector", "estate", "auctioneer", "lot",
    "appraisal", "certified", "authentic", "restored", "mint",
    "condition", "original", "limited", "edition", "signed", "numbered",
};

}  // namespace

size_t WordListSize() { return sizeof(kWords) / sizeof(kWords[0]); }

std::string_view WordAt(size_t i) { return kWords[i]; }

}  // namespace flexpath
