#include "stats/document_stats.h"

#include <algorithm>
#include <utility>

namespace flexpath {

namespace {

/// Small dynamic bitset over tag ids (tag alphabets are small — tens of
/// entries for XMark-like corpora).
class TagSet {
 public:
  explicit TagSet(size_t words) : bits_(words, 0) {}

  void Set(TagId t) { bits_[t >> 6] |= uint64_t{1} << (t & 63); }

  void UnionWith(const TagSet& other) {
    for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  }

  void Clear() { std::fill(bits_.begin(), bits_.end(), 0); }

  /// Invokes `fn(tag)` for every set tag.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < bits_.size(); ++w) {
      uint64_t word = bits_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<TagId>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;
      }
    }
  }

 private:
  std::vector<uint64_t> bits_;
};

}  // namespace

DocumentStats::DocumentStats(const Corpus* corpus)
    : DocumentStats(corpus, 0, static_cast<DocId>(corpus->size())) {}

DocumentStats::DocumentStats(const Corpus* corpus, DocId doc_begin,
                             DocId doc_end)
    : corpus_(corpus), doc_begin_(doc_begin), doc_end_(doc_end) {
  const size_t num_tags = corpus_->tags().size();
  tag_counts_.assign(num_tags, 0);
  const size_t words = (num_tags + 63) / 64;

  // Per open-path entry: the node, the set of its descendant tags seen so
  // far, and the set of its (direct) child tags.
  struct Frame {
    NodeId node;
    TagSet desc;
    TagSet child;
    Frame(NodeId n, size_t w) : node(n), desc(w), child(w) {}
  };

  for (DocId d = doc_begin_; d < doc_end_; ++d) {
    const Document& doc = corpus_->doc(d);
    std::vector<Frame> stack;
    auto pop = [&]() {
      Frame& top = stack.back();
      const TagId t = doc.node(top.node).tag;
      // Flush existence counts for the completed node.
      top.desc.ForEach([&](TagId dt) { ++ad_exists_[PairKey(t, dt)]; });
      top.child.ForEach([&](TagId ct) { ++pc_exists_[PairKey(t, ct)]; });
      if (stack.size() > 1) {
        Frame& parent = stack[stack.size() - 2];
        parent.desc.UnionWith(top.desc);
        parent.desc.Set(t);
      }
      stack.pop_back();
    };

    for (NodeId n = 0; n < doc.size(); ++n) {
      const Element& e = doc.node(n);
      ++tag_counts_[e.tag];
      while (!stack.empty() && stack.back().node != e.parent) pop();
      // Pair counts along the full ancestor chain.
      if (e.parent != kInvalidNode) {
        ++pc_counts_[PairKey(doc.node(e.parent).tag, e.tag)];
        stack.back().child.Set(e.tag);
        for (NodeId a = e.parent; a != kInvalidNode; a = doc.node(a).parent) {
          ++ad_counts_[PairKey(doc.node(a).tag, e.tag)];
        }
      }
      stack.emplace_back(n, words);
    }
    while (!stack.empty()) pop();
  }
}

DocumentStats::DocumentStats(const Corpus* corpus, Tables tables)
    : corpus_(corpus),
      doc_begin_(0),
      doc_end_(static_cast<DocId>(corpus->size())),
      tag_counts_(std::move(tables.tag_counts)),
      pc_counts_(std::move(tables.pc_counts)),
      ad_counts_(std::move(tables.ad_counts)),
      pc_exists_(std::move(tables.pc_exists)),
      ad_exists_(std::move(tables.ad_exists)) {}

DocumentStats::Tables DocumentStats::ExportTables() const {
  Tables t;
  t.tag_counts = tag_counts_;
  t.pc_counts = pc_counts_;
  t.ad_counts = ad_counts_;
  t.pc_exists = pc_exists_;
  t.ad_exists = ad_exists_;
  return t;
}

uint64_t DocumentStats::TagCount(TagId t) const {
  return t < tag_counts_.size() ? tag_counts_[t] : 0;
}

uint64_t DocumentStats::PcCount(TagId t1, TagId t2) const {
  auto it = pc_counts_.find(PairKey(t1, t2));
  return it == pc_counts_.end() ? 0 : it->second;
}

uint64_t DocumentStats::AdCount(TagId t1, TagId t2) const {
  auto it = ad_counts_.find(PairKey(t1, t2));
  return it == ad_counts_.end() ? 0 : it->second;
}

double DocumentStats::PcFraction(TagId t1, TagId t2) const {
  const uint64_t total = TagCount(t1);
  if (total == 0) return 0.0;
  auto it = pc_exists_.find(PairKey(t1, t2));
  const uint64_t have = it == pc_exists_.end() ? 0 : it->second;
  return static_cast<double>(have) / static_cast<double>(total);
}

double DocumentStats::AdFraction(TagId t1, TagId t2) const {
  const uint64_t total = TagCount(t1);
  if (total == 0) return 0.0;
  auto it = ad_exists_.find(PairKey(t1, t2));
  const uint64_t have = it == ad_exists_.end() ? 0 : it->second;
  return static_cast<double>(have) / static_cast<double>(total);
}

}  // namespace flexpath
