#include "stats/element_index.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"

namespace flexpath {

namespace {

/// Charged size of a merged scan list held by the cache.
size_t MergedBytes(const std::vector<NodeRef>& list) {
  return sizeof(std::vector<NodeRef>) + list.capacity() * sizeof(NodeRef);
}

}  // namespace

ElementIndex::ElementIndex(const Corpus* corpus,
                           const TypeHierarchy* hierarchy)
    : ElementIndex(corpus, hierarchy, 0,
                   static_cast<DocId>(corpus->size())) {}

ElementIndex::ElementIndex(const Corpus* corpus,
                           const TypeHierarchy* hierarchy, DocId doc_begin,
                           DocId doc_end)
    : corpus_(corpus),
      hierarchy_(hierarchy),
      doc_begin_(doc_begin),
      doc_end_(doc_end),
      source_generation_(corpus->generation()),
      merged_(kDefaultMergedBudgetBytes) {
  by_tag_.resize(corpus_->tags().size());
  for (DocId d = doc_begin_; d < doc_end_; ++d) {
    const Document& doc = corpus_->doc(d);
    for (NodeId n = 0; n < doc.size(); ++n) {
      const TagId tag = doc.node(n).tag;
      if (tag < by_tag_.size()) by_tag_[tag].push_back(NodeRef{d, n});
    }
  }
}

ElementIndex::ElementIndex(const Corpus* corpus,
                           const TypeHierarchy* hierarchy,
                           std::shared_ptr<const ElementTableSource> source)
    : corpus_(corpus),
      hierarchy_(hierarchy),
      doc_begin_(0),
      doc_end_(static_cast<DocId>(corpus->size())),
      source_generation_(corpus->generation()),
      table_source_(std::move(source)),
      merged_(kDefaultMergedBudgetBytes) {}

size_t ElementIndex::OutstandingPins() const {
  MutexLock lock(merged_mu_);
  size_t pinned = 0;
  merged_.ForEach(
      [&](const TagId& /*tag*/,
          const std::shared_ptr<const std::vector<NodeRef>>& list,
          size_t /*bytes*/) {
        // The cache itself holds one reference; anything above that is a
        // live ScanHandle (or a copy of one) still pinning the list.
        if (list.use_count() > 1) ++pinned;
      });
  return pinned;
}

ScanHandle ElementIndex::Scan(TagId tag) const {
  if (tag == kInvalidTag) return ScanHandle(&empty_);
  if (hierarchy_ != nullptr && !hierarchy_->empty()) {
    const std::vector<TagId> closure = hierarchy_->SubtypeClosure(tag);
    if (closure.size() > 1) {
      MutexLock lock(merged_mu_);
      if (std::shared_ptr<const std::vector<NodeRef>> hit = merged_.Get(tag)) {
        ++merged_hits_;
        return ScanHandle(std::move(hit));
      }
      ++merged_misses_;
      auto merged = std::make_shared<std::vector<NodeRef>>();
      for (TagId t : closure) {
        if (table_source_ != nullptr) {
          const std::shared_ptr<const std::vector<NodeRef>> list =
              table_source_->TagList(t);
          merged->insert(merged->end(), list->begin(), list->end());
        } else if (t < by_tag_.size()) {
          merged->insert(merged->end(), by_tag_[t].begin(),
                         by_tag_[t].end());
        }
      }
      std::sort(merged->begin(), merged->end());
      const size_t bytes = MergedBytes(*merged);
      std::shared_ptr<const std::vector<NodeRef>> owned = std::move(merged);
      merged_.Put(tag, owned, bytes);
      static Gauge* g_bytes =
          MetricsRegistry::Global().gauge("stats.element_index.merged_bytes");
      static Gauge* g_entries = MetricsRegistry::Global().gauge(
          "stats.element_index.merged_entries");
      g_bytes->Set(static_cast<int64_t>(merged_.bytes()));
      g_entries->Set(static_cast<int64_t>(merged_.size()));
      return ScanHandle(std::move(owned));
    }
  }
  if (table_source_ != nullptr) {
    return ScanHandle(table_source_->TagList(tag));
  }
  if (tag >= by_tag_.size()) return ScanHandle(&empty_);
  return ScanHandle(&by_tag_[tag]);
}

size_t ElementIndex::Count(TagId tag) const {
  if (tag == kInvalidTag) return 0;
  if (hierarchy_ != nullptr && !hierarchy_->empty() &&
      hierarchy_->SubtypeClosure(tag).size() > 1) {
    return Scan(tag).size();  // Merged supertype scan; no directory shortcut.
  }
  if (table_source_ != nullptr) return table_source_->TagListCount(tag);
  return tag < by_tag_.size() ? by_tag_[tag].size() : 0;
}

void ElementIndex::SetMergedScanBudget(size_t budget_bytes) {
  MutexLock lock(merged_mu_);
  merged_.SetBudget(budget_bytes);
}

ElementIndex::MergedCacheStats ElementIndex::GetMergedCacheStats() const {
  MutexLock lock(merged_mu_);
  MergedCacheStats s;
  s.hits = merged_hits_;
  s.misses = merged_misses_;
  s.evictions = merged_.evictions();
  s.entries = merged_.size();
  s.bytes = merged_.bytes();
  s.budget = merged_.budget();
  return s;
}

}  // namespace flexpath
