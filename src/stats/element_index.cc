#include "stats/element_index.h"

#include <algorithm>

namespace flexpath {

ElementIndex::ElementIndex(const Corpus* corpus,
                           const TypeHierarchy* hierarchy)
    : corpus_(corpus), hierarchy_(hierarchy) {
  by_tag_.resize(corpus_->tags().size());
  for (DocId d = 0; d < corpus_->size(); ++d) {
    const Document& doc = corpus_->doc(d);
    for (NodeId n = 0; n < doc.size(); ++n) {
      const TagId tag = doc.node(n).tag;
      if (tag < by_tag_.size()) by_tag_[tag].push_back(NodeRef{d, n});
    }
  }
}

const std::vector<NodeRef>& ElementIndex::Scan(TagId tag) const {
  if (tag == kInvalidTag) return empty_;
  if (hierarchy_ != nullptr && !hierarchy_->empty()) {
    const std::vector<TagId> closure = hierarchy_->SubtypeClosure(tag);
    if (closure.size() > 1) {
      MutexLock lock(merged_mu_);
      auto it = merged_.find(tag);
      if (it != merged_.end()) return it->second;
      std::vector<NodeRef> merged;
      for (TagId t : closure) {
        if (t < by_tag_.size()) {
          merged.insert(merged.end(), by_tag_[t].begin(), by_tag_[t].end());
        }
      }
      std::sort(merged.begin(), merged.end());
      return merged_.emplace(tag, std::move(merged)).first->second;
    }
  }
  if (tag >= by_tag_.size()) return empty_;
  return by_tag_[tag];
}

}  // namespace flexpath
