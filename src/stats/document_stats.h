#ifndef FLEXPATH_STATS_DOCUMENT_STATS_H_
#define FLEXPATH_STATS_DOCUMENT_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "xml/corpus.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Corpus statistics backing penalty computation (Section 4.3.1) and
/// selectivity estimation (Section 6):
///  - #(t)          — number of elements with tag t;
///  - #pc(t1, t2)   — number of (parent, child) element pairs typed
///                    (t1, t2);
///  - #ad(t1, t2)   — number of (ancestor, descendant) pairs typed
///                    (t1, t2).
/// Built with one pass that walks each node's ancestor chain, O(N * depth).
class DocumentStats {
 public:
  /// `corpus` must outlive the stats and not change afterwards.
  explicit DocumentStats(const Corpus* corpus);

  DocumentStats(const DocumentStats&) = delete;
  DocumentStats& operator=(const DocumentStats&) = delete;

  /// #(t): elements with tag `t`.
  uint64_t TagCount(TagId t) const;

  /// #pc(t1, t2): parent-child pairs.
  uint64_t PcCount(TagId t1, TagId t2) const;

  /// #ad(t1, t2): ancestor-descendant pairs (proper; includes pc pairs).
  uint64_t AdCount(TagId t1, TagId t2) const;

  /// Fraction of t1-elements with at least one t2 child — the "60% of A's
  /// have a B child" statistic of the paper's estimator. In [0, 1].
  double PcFraction(TagId t1, TagId t2) const;

  /// Fraction of t1-elements with at least one t2 proper descendant.
  double AdFraction(TagId t1, TagId t2) const;

  const Corpus& corpus() const { return *corpus_; }

 private:
  static uint64_t PairKey(TagId a, TagId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  const Corpus* corpus_;
  std::vector<uint64_t> tag_counts_;
  std::unordered_map<uint64_t, uint64_t> pc_counts_;
  std::unordered_map<uint64_t, uint64_t> ad_counts_;
  /// Number of t1-elements having >= 1 t2 child / descendant (for the
  /// existence fractions used by selectivity estimation).
  std::unordered_map<uint64_t, uint64_t> pc_exists_;
  std::unordered_map<uint64_t, uint64_t> ad_exists_;
};

}  // namespace flexpath

#endif  // FLEXPATH_STATS_DOCUMENT_STATS_H_
