#ifndef FLEXPATH_STATS_DOCUMENT_STATS_H_
#define FLEXPATH_STATS_DOCUMENT_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "xml/corpus.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Corpus statistics backing penalty computation (Section 4.3.1) and
/// selectivity estimation (Section 6):
///  - #(t)          — number of elements with tag t;
///  - #pc(t1, t2)   — number of (parent, child) element pairs typed
///                    (t1, t2);
///  - #ad(t1, t2)   — number of (ancestor, descendant) pairs typed
///                    (t1, t2).
/// Built with one pass that walks each node's ancestor chain, O(N * depth).
class DocumentStats {
 public:
  /// The raw statistics tables, exposed so a packed corpus can persist
  /// them at pack time and restore them at open time without the
  /// O(N * depth) corpus pass. Pair maps are keyed (t1 << 32) | t2.
  struct Tables {
    std::vector<uint64_t> tag_counts;
    std::unordered_map<uint64_t, uint64_t> pc_counts;
    std::unordered_map<uint64_t, uint64_t> ad_counts;
    std::unordered_map<uint64_t, uint64_t> pc_exists;
    std::unordered_map<uint64_t, uint64_t> ad_exists;
  };

  /// `corpus` must outlive the stats and not change afterwards.
  explicit DocumentStats(const Corpus* corpus);

  /// Restores whole-corpus statistics from pre-computed tables (packed
  /// open path). The tables must have been produced by ExportTables()
  /// over an identical corpus — byte-identical penalties depend on it.
  DocumentStats(const Corpus* corpus, Tables tables);

  /// Snapshot of the tables for serialization.
  Tables ExportTables() const;

  /// Statistics over documents [doc_begin, doc_end) only — one shard's
  /// tables. Every statistic is a per-document sum (pairs never cross
  /// documents), so shard tables over a partition of the corpus merge
  /// *exactly* to the full-corpus tables; ShardedCorpus::ReconcileWith
  /// verifies that identity at shard-build time (DESIGN.md §15).
  DocumentStats(const Corpus* corpus, DocId doc_begin, DocId doc_end);

  DocumentStats(const DocumentStats&) = delete;
  DocumentStats& operator=(const DocumentStats&) = delete;

  /// #(t): elements with tag `t`.
  uint64_t TagCount(TagId t) const;

  /// #pc(t1, t2): parent-child pairs.
  uint64_t PcCount(TagId t1, TagId t2) const;

  /// #ad(t1, t2): ancestor-descendant pairs (proper; includes pc pairs).
  uint64_t AdCount(TagId t1, TagId t2) const;

  /// Fraction of t1-elements with at least one t2 child — the "60% of A's
  /// have a B child" statistic of the paper's estimator. In [0, 1].
  double PcFraction(TagId t1, TagId t2) const;

  /// Fraction of t1-elements with at least one t2 proper descendant.
  double AdFraction(TagId t1, TagId t2) const;

  const Corpus& corpus() const { return *corpus_; }

  /// Document range these statistics cover: [doc_begin, doc_end).
  DocId doc_begin() const { return doc_begin_; }
  DocId doc_end() const { return doc_end_; }

  /// Number of tag-count slots (the tag alphabet size at build time).
  size_t NumTags() const { return tag_counts_.size(); }

  /// Visit every nonzero pair statistic as fn(t1, t2, count) — the
  /// iteration shard reconciliation sums over. Order is unspecified.
  template <typename Fn>
  void ForEachPcCount(Fn&& fn) const { ForEachPair(pc_counts_, fn); }
  template <typename Fn>
  void ForEachAdCount(Fn&& fn) const { ForEachPair(ad_counts_, fn); }
  template <typename Fn>
  void ForEachPcExists(Fn&& fn) const { ForEachPair(pc_exists_, fn); }
  template <typename Fn>
  void ForEachAdExists(Fn&& fn) const { ForEachPair(ad_exists_, fn); }

 private:
  static uint64_t PairKey(TagId a, TagId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  template <typename Fn>
  static void ForEachPair(const std::unordered_map<uint64_t, uint64_t>& m,
                          Fn&& fn) {
    for (const auto& [key, count] : m) {
      fn(static_cast<TagId>(key >> 32),
         static_cast<TagId>(key & 0xffffffffULL), count);
    }
  }

  const Corpus* corpus_;
  DocId doc_begin_ = 0;
  DocId doc_end_ = 0;
  std::vector<uint64_t> tag_counts_;
  std::unordered_map<uint64_t, uint64_t> pc_counts_;
  std::unordered_map<uint64_t, uint64_t> ad_counts_;
  /// Number of t1-elements having >= 1 t2 child / descendant (for the
  /// existence fractions used by selectivity estimation).
  std::unordered_map<uint64_t, uint64_t> pc_exists_;
  std::unordered_map<uint64_t, uint64_t> ad_exists_;
};

}  // namespace flexpath

#endif  // FLEXPATH_STATS_DOCUMENT_STATS_H_
