#ifndef FLEXPATH_STATS_ELEMENT_INDEX_H_
#define FLEXPATH_STATS_ELEMENT_INDEX_H_

#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "xml/corpus.h"
#include "xml/tag_dict.h"
#include "xml/type_hierarchy.h"

namespace flexpath {

/// Tag-based access path: for each tag, the list of elements with that tag
/// in global document order — i.e. sorted by (doc, start), which is the
/// input format required by the structural join of Al-Khalifa et al. [1].
///
/// With a TypeHierarchy attached (the tag-generalization extension of
/// Section 3.4), Scan(t) returns elements of t *or any transitive
/// subtype*, so a query node constrained to a supertype matches all of
/// its subtypes throughout the engine.
class ElementIndex {
 public:
  /// Builds the index in one corpus pass. `corpus` (and `hierarchy` if
  /// non-null) must outlive the index and not change afterwards.
  explicit ElementIndex(const Corpus* corpus,
                        const TypeHierarchy* hierarchy = nullptr);

  ElementIndex(const ElementIndex&) = delete;
  ElementIndex& operator=(const ElementIndex&) = delete;

  /// Elements with tag `tag` (or a subtype), in document order. Empty
  /// list for unknown tags (including kInvalidTag). Safe to call from
  /// concurrent query workers; returned references stay valid for the
  /// index's lifetime.
  const std::vector<NodeRef>& Scan(TagId tag) const;

  /// Number of elements the scan returns — #(t), subtypes included.
  size_t Count(TagId tag) const { return Scan(tag).size(); }

  const Corpus& corpus() const { return *corpus_; }
  const TypeHierarchy* hierarchy() const { return hierarchy_; }

 private:
  const Corpus* corpus_;
  const TypeHierarchy* hierarchy_;
  std::vector<std::vector<NodeRef>> by_tag_;  ///< Indexed by TagId.
  /// Lazily merged supertype scans (only when hierarchy_ is set). A
  /// node-based map so references handed out stay valid while the guarded
  /// cache keeps growing under concurrent Scan calls.
  mutable Mutex merged_mu_;
  mutable std::map<TagId, std::vector<NodeRef>> merged_
      GUARDED_BY(merged_mu_);
  std::vector<NodeRef> empty_;
};

}  // namespace flexpath

#endif  // FLEXPATH_STATS_ELEMENT_INDEX_H_
