#ifndef FLEXPATH_STATS_ELEMENT_INDEX_H_
#define FLEXPATH_STATS_ELEMENT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/lru_cache.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "xml/corpus.h"
#include "xml/tag_dict.h"
#include "xml/type_hierarchy.h"

namespace flexpath {

/// A scan list handed out by ElementIndex::Scan. Behaves like a const
/// std::vector<NodeRef>& (iteration, size, indexing, implicit conversion),
/// but additionally pins the list: when the list came from the bounded
/// merged-scan cache it holds a shared reference, so a concurrent LRU
/// eviction can never invalidate it.
///
/// Lifetime rule: bind the *handle* — `const auto scan = index.Scan(t);`
/// or iterate the temporary directly (`for (NodeRef r : index.Scan(t))`,
/// where the range-for extends the handle's lifetime). Do NOT bind a
/// reference to the converted vector of a temporary handle
/// (`const std::vector<NodeRef>& v = index.Scan(t);` dangles once the
/// handle dies).
class ScanHandle {
 public:
  explicit ScanHandle(const std::vector<NodeRef>* list) : list_(list) {}
  explicit ScanHandle(std::shared_ptr<const std::vector<NodeRef>> owned)
      : owner_(std::move(owned)), list_(owner_.get()) {}

  const std::vector<NodeRef>& operator*() const { return *list_; }
  const std::vector<NodeRef>* operator->() const { return list_; }
  operator const std::vector<NodeRef>&() const { return *list_; }

  std::vector<NodeRef>::const_iterator begin() const {
    return list_->begin();
  }
  std::vector<NodeRef>::const_iterator end() const { return list_->end(); }
  size_t size() const { return list_->size(); }
  bool empty() const { return list_->empty(); }
  NodeRef operator[](size_t i) const { return (*list_)[i]; }

 private:
  std::shared_ptr<const std::vector<NodeRef>> owner_;  ///< Null: unowned.
  const std::vector<NodeRef>* list_;
};

/// On-demand provider of per-tag element tables, already in global
/// document order. A packed corpus (storage/reader.h) implements this
/// over its block-compressed element section so ElementIndex can serve
/// Scan() without an index-building corpus pass; lists come back as
/// shared_ptrs pinned by the reader's buffer pool, which slots straight
/// into ScanHandle's pinning contract. Declared here so stats/ stays
/// independent of storage/.
class ElementTableSource {
 public:
  virtual ~ElementTableSource() = default;

  /// #(t) — list length without decoding the list.
  virtual size_t TagListCount(TagId tag) const = 0;

  /// The full list for `tag`, decoded (or served from the buffer pool).
  /// Never null; unknown tags yield an empty list.
  virtual std::shared_ptr<const std::vector<NodeRef>> TagList(
      TagId tag) const = 0;
};

/// Tag-based access path: for each tag, the list of elements with that tag
/// in global document order — i.e. sorted by (doc, start), which is the
/// input format required by the structural join of Al-Khalifa et al. [1].
///
/// With a TypeHierarchy attached (the tag-generalization extension of
/// Section 3.4), Scan(t) returns elements of t *or any transitive
/// subtype*, so a query node constrained to a supertype matches all of
/// its subtypes throughout the engine. Merged supertype scans are built
/// lazily and kept in a byte-budgeted LRU (they used to accumulate
/// without limit); evicted lists stay valid through the ScanHandle that
/// pinned them.
class ElementIndex {
 public:
  /// Default byte budget of the merged-scan cache.
  static constexpr size_t kDefaultMergedBudgetBytes = size_t{64} << 20;

  /// Builds the index in one corpus pass. `corpus` (and `hierarchy` if
  /// non-null) must outlive the index and not change afterwards.
  explicit ElementIndex(const Corpus* corpus,
                        const TypeHierarchy* hierarchy = nullptr);

  /// Builds an index restricted to documents [doc_begin, doc_end) of
  /// `corpus` — the per-shard access path of sharded execution (DESIGN.md
  /// §15). NodeRefs stay *global* (they name documents of the full
  /// corpus), so tuples produced against a shard index join and rank
  /// exactly as they would against the full index; each scan list is the
  /// full index's list restricted to the shard's document range.
  ElementIndex(const Corpus* corpus, const TypeHierarchy* hierarchy,
               DocId doc_begin, DocId doc_end);

  /// Builds a *packed* index: no corpus pass, no in-memory by-tag lists.
  /// Scans are answered by `source` (the packed reader's element section)
  /// and Count() by its directory — this is what makes OpenPacked O(1)
  /// in corpus size. Merged supertype scans still work and still land in
  /// the byte-budgeted merged cache.
  ElementIndex(const Corpus* corpus, const TypeHierarchy* hierarchy,
               std::shared_ptr<const ElementTableSource> source);

  ElementIndex(const ElementIndex&) = delete;
  ElementIndex& operator=(const ElementIndex&) = delete;

  /// Elements with tag `tag` (or a subtype), in document order. Empty
  /// list for unknown tags (including kInvalidTag). Safe to call from
  /// concurrent query workers; the returned handle keeps its list valid
  /// for the handle's lifetime (see ScanHandle).
  ScanHandle Scan(TagId tag) const;

  /// Number of elements the scan returns — #(t), subtypes included. In
  /// packed mode a plain (non-supertype) count comes from the directory
  /// without decoding the list.
  size_t Count(TagId tag) const;

  /// Adjusts the merged-scan cache budget, evicting immediately if over.
  void SetMergedScanBudget(size_t budget_bytes);

  struct MergedCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t budget = 0;
  };
  MergedCacheStats GetMergedCacheStats() const;

  const Corpus& corpus() const { return *corpus_; }
  const TypeHierarchy* hierarchy() const { return hierarchy_; }

  /// Document range this index covers: [doc_begin, doc_end). The default
  /// constructor covers the whole corpus.
  DocId doc_begin() const { return doc_begin_; }
  DocId doc_end() const { return doc_end_; }

  /// Corpus::generation() at build time. A later Corpus::Add leaves the
  /// index silently stale; sharded execution compares this against the
  /// live generation and hard-errors on mismatch (DESIGN.md §15).
  uint64_t source_generation() const { return source_generation_; }

  /// Merged-scan cache entries currently pinned by a live ScanHandle
  /// somewhere (shared use_count above the cache's own reference). Zero
  /// once every handle from this index has been dropped — the leak check
  /// the sharded differential suite asserts after scatter-gather runs.
  size_t OutstandingPins() const;

 private:
  const Corpus* corpus_;
  const TypeHierarchy* hierarchy_;
  DocId doc_begin_ = 0;
  DocId doc_end_ = 0;
  uint64_t source_generation_ = 0;
  std::vector<std::vector<NodeRef>> by_tag_;  ///< Indexed by TagId.
  /// Packed mode: lists come from here instead of by_tag_ (which stays
  /// empty). Shared with the StorageReader that owns the mapping.
  std::shared_ptr<const ElementTableSource> table_source_;
  /// Lazily merged supertype scans (only when hierarchy_ is set),
  /// byte-bounded; entries are shared so eviction never dangles a
  /// handed-out handle. Sizes are exported as the
  /// stats.element_index.merged_* gauges.
  mutable Mutex merged_mu_;
  mutable LruByteCache<TagId, std::vector<NodeRef>> merged_
      GUARDED_BY(merged_mu_);
  mutable uint64_t merged_hits_ GUARDED_BY(merged_mu_) = 0;
  mutable uint64_t merged_misses_ GUARDED_BY(merged_mu_) = 0;
  std::vector<NodeRef> empty_;
};

}  // namespace flexpath

#endif  // FLEXPATH_STATS_ELEMENT_INDEX_H_
