#ifndef FLEXPATH_ANALYSIS_ANALYZER_H_
#define FLEXPATH_ANALYSIS_ANALYZER_H_

#include <optional>
#include <string>

#include "analysis/diagnostic.h"
#include "ir/engine.h"
#include "query/logical.h"
#include "query/tpq.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Corpus-side inputs of the analysis passes. Every pointer may be null:
/// the analyzer then runs the corpus-independent checks only (FX0xx and
/// FX2xx), which is what pre-Build linting gets. `dict` is used for
/// rendering paths; without it, variables print as bare `$n`.
struct AnalyzerContext {
  const ElementIndex* index = nullptr;  ///< FX101 tag-emptiness.
  const DocumentStats* stats = nullptr;  ///< FX103 dead pc/ad edges.
  IrEngine* ir = nullptr;                ///< FX102 empty contains.
  const TagDict* dict = nullptr;         ///< Path / message rendering.
};

/// The TPQ semantic analyzer ("flexcheck" pass 1): runs the closure
/// inference rules of Figure 3 to completion and reports structured
/// diagnostics — unsatisfiable structure (tag conflicts, pc/ad
/// contradictions), predicates already implied by the rest of the query
/// (whose drop is a no-op relaxation that wastes a DPO round), dangling
/// contains targets, answer-node reachability, and — when `ctx` carries
/// corpus statistics — tags, edges and contains expressions that
/// provably match nothing. Diagnostics come in a deterministic order
/// (by code, then variable).
AnalysisReport AnalyzeTpq(const Tpq& q, const AnalyzerContext& ctx);

/// Same checks over a raw logical form, for inputs that never were a
/// tree (hand-built predicate sets, mutated plans). Structural
/// malformedness that Tpq construction rules out (conflicting tags on
/// one variable, cycles, disconnected components) is reachable here.
AnalysisReport AnalyzeLogical(const LogicalQuery& q,
                              const AnalyzerContext& ctx);

/// Sound corpus-level emptiness test: returns a reason string when the
/// statistics *prove* `q` has no answers on the indexed corpus —
///  - a node's tag occurs in zero elements (subtype-aware via the
///    element index, so sound under a TypeHierarchy);
///  - a contains expression whose satisfying set is empty;
///  - a pc/ad edge between tags with zero such pairs in the corpus
///    (checked only without a TypeHierarchy, where pair counts are
///    exact).
/// nullopt means "cannot prove empty" — never "non-empty". Wildcard
/// nodes and attribute predicates are conservatively ignored. This is
/// the predicate behind TopKOptions::static_prune: a provably-empty
/// relaxation round can be skipped with byte-identical answers.
std::optional<std::string> ProvablyEmptyReason(const Tpq& q,
                                               const AnalyzerContext& ctx);

/// Renders $var plus its spine from the query root, e.g.
/// "$3 (/article//section)". Falls back to "$3" when `q` lacks the
/// variable or `dict` is null.
std::string VarPath(const Tpq& q, VarId var, const TagDict* dict);

}  // namespace flexpath

#endif  // FLEXPATH_ANALYSIS_ANALYZER_H_
