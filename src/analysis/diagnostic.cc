#include "analysis/diagnostic.h"

#include "common/json_util.h"
#include "common/log.h"

namespace flexpath {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = DiagSeverityName(severity);
  out += " [";
  out += code;
  out += "] ";
  out += message;
  if (!path.empty()) {
    out += " at ";
    out += path;
  }
  return out;
}

size_t AnalysisReport::ErrorCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::WarningCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kWarning) ++n;
  }
  return n;
}

bool AnalysisReport::Has(std::string_view code) const {
  return Find(code) != nullptr;
}

const Diagnostic* AnalysisReport::Find(std::string_view code) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string DiagnosticsJson(const AnalysisReport& report) {
  std::string out = "{\"errors\":" + std::to_string(report.ErrorCount());
  out += ",\"warnings\":" + std::to_string(report.WarningCount());
  out += ",\"unsatisfiable\":";
  out += report.unsatisfiable() ? "true" : "false";
  out += ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) out += ',';
    first = false;
    out += "{\"severity\":\"";
    out += DiagSeverityName(d.severity);
    out += "\",\"code\":\"" + JsonEscape(d.code);
    out += "\",\"message\":\"" + JsonEscape(d.message);
    out += "\",\"path\":\"" + JsonEscape(d.path);
    out += "\"";
    if (d.var != kInvalidVar) {
      out += ",\"var\":" + std::to_string(d.var);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void LogReport(const AnalysisReport& report, std::string_view query) {
  for (const Diagnostic& d : report.diagnostics) {
    switch (d.severity) {
      case DiagSeverity::kError:
        FLEXPATH_LOG_WARN("analysis", "query diagnostic",
                          {"code", d.code}, {"severity", "error"},
                          {"message", d.message}, {"path", d.path},
                          {"query", query});
        break;
      case DiagSeverity::kWarning:
        FLEXPATH_LOG_INFO("analysis", "query diagnostic",
                          {"code", d.code}, {"severity", "warning"},
                          {"message", d.message}, {"path", d.path},
                          {"query", query});
        break;
      case DiagSeverity::kNote:
        FLEXPATH_LOG_DEBUG("analysis", "query diagnostic",
                           {"code", d.code}, {"severity", "note"},
                           {"message", d.message}, {"path", d.path},
                           {"query", query});
        break;
    }
  }
}

}  // namespace flexpath
