#include "analysis/score_algebra.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json_util.h"

namespace flexpath {

namespace {

std::string KeyLabel(size_t i) { return "key " + std::to_string(i + 1); }

}  // namespace

// --- ScoreExpr --------------------------------------------------------------

ScoreExpr ScoreExpr::Ss() {
  ScoreExpr e;
  e.kind = Kind::kStructural;
  return e;
}

ScoreExpr ScoreExpr::Ks() {
  ScoreExpr e;
  e.kind = Kind::kKeyword;
  return e;
}

ScoreExpr ScoreExpr::Penalty() {
  ScoreExpr e;
  e.kind = Kind::kPenalty;
  return e;
}

ScoreExpr ScoreExpr::Const(double v) {
  ScoreExpr e;
  e.kind = Kind::kConst;
  e.value = v;
  return e;
}

ScoreExpr ScoreExpr::Weighted(double w, ScoreExpr child) {
  ScoreExpr e;
  e.kind = Kind::kWeighted;
  e.value = w;
  e.children.push_back(std::move(child));
  return e;
}

ScoreExpr ScoreExpr::Sum(std::vector<ScoreExpr> es) {
  ScoreExpr e;
  e.kind = Kind::kSum;
  e.children = std::move(es);
  return e;
}

ScoreExpr ScoreExpr::Min(std::vector<ScoreExpr> es) {
  ScoreExpr e;
  e.kind = Kind::kMin;
  e.children = std::move(es);
  return e;
}

ScoreExpr ScoreExpr::Max(std::vector<ScoreExpr> es) {
  ScoreExpr e;
  e.kind = Kind::kMax;
  e.children = std::move(es);
  return e;
}

ScoreExpr ScoreExpr::Opaque(std::string label) {
  ScoreExpr e;
  e.kind = Kind::kOpaque;
  e.label = std::move(label);
  return e;
}

double ScoreExpr::Eval(double ss, double ks) const {
  switch (kind) {
    case Kind::kStructural:
      return ss;
    case Kind::kKeyword:
      return ks;
    case Kind::kPenalty:
      return -ss;
    case Kind::kConst:
      return value;
    case Kind::kWeighted:
      return children.empty() ? 0.0 : value * children[0].Eval(ss, ks);
    case Kind::kSum: {
      double total = 0.0;
      for (const ScoreExpr& c : children) total += c.Eval(ss, ks);
      return total;
    }
    case Kind::kMin: {
      if (children.empty()) return 0.0;
      double best = children[0].Eval(ss, ks);
      for (size_t i = 1; i < children.size(); ++i) {
        best = std::min(best, children[i].Eval(ss, ks));
      }
      return best;
    }
    case Kind::kMax: {
      if (children.empty()) return 0.0;
      double best = children[0].Eval(ss, ks);
      for (size_t i = 1; i < children.size(); ++i) {
        best = std::max(best, children[i].Eval(ss, ks));
      }
      return best;
    }
    case Kind::kOpaque:
      return 0.0;
  }
  return 0.0;
}

std::string ScoreExpr::ToString() const {
  auto join = [this](const char* open, const char* sep,
                     const char* close) {
    std::string out = open;
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += sep;
      out += children[i].ToString();
    }
    out += close;
    return out;
  };
  switch (kind) {
    case Kind::kStructural:
      return "ss";
    case Kind::kKeyword:
      return "ks";
    case Kind::kPenalty:
      return "penalty";
    case Kind::kConst:
      return FormatDouble(value);
    case Kind::kWeighted:
      return FormatDouble(value) + "*" +
             (children.empty() ? "0" : children[0].ToString());
    case Kind::kSum:
      return join("(", " + ", ")");
    case Kind::kMin:
      return join("min(", ", ", ")");
    case Kind::kMax:
      return join("max(", ", ", ")");
    case Kind::kOpaque:
      return "opaque(" + label + ")";
  }
  return "?";
}

// --- SchemeAlgebra ----------------------------------------------------------

bool SchemeAlgebra::RanksBefore(double a_ss, double a_ks, double b_ss,
                                double b_ks) const {
  for (const ScoreExpr& key : keys) {
    const double a = key.Eval(a_ss, a_ks);
    const double b = key.Eval(b_ss, b_ks);
    if (std::fabs(a - b) <= tie_epsilon) continue;
    return a > b;
  }
  return false;
}

std::string SchemeAlgebra::ToString() const {
  if (keys.size() == 1) return keys[0].ToString();
  std::string out = "lex(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].ToString();
  }
  out += ")";
  return out;
}

SchemeAlgebra StructureFirstAlgebra() {
  return SchemeAlgebra{"structure-first",
                       {ScoreExpr::Ss(), ScoreExpr::Ks()},
                       0.0};
}

SchemeAlgebra KeywordFirstAlgebra() {
  return SchemeAlgebra{"keyword-first",
                       {ScoreExpr::Ks(), ScoreExpr::Ss()},
                       0.0};
}

SchemeAlgebra CombinedAlgebra() {
  return SchemeAlgebra{
      "combined", {ScoreExpr::Sum({ScoreExpr::Ss(), ScoreExpr::Ks()})}, 0.0};
}

// --- Certifier --------------------------------------------------------------

const char* DpoStopRuleName(DpoStopRule rule) {
  switch (rule) {
    case DpoStopRule::kAtK:
      return "at-k";
    case DpoStopRule::kPenaltyMargin:
      return "penalty-margin";
    case DpoStopRule::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

namespace {

/// Closed interval bound on a partial derivative.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

Interval Scale(Interval iv, double w) {
  Interval out{iv.lo * w, iv.hi * w};
  if (out.lo > out.hi) std::swap(out.lo, out.hi);
  return out;
}

Interval Add(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }

Interval Hull(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// What the abstract interpretation knows about one expression: bounds
/// on d(expr)/d(ss) and d(expr)/d(ks) (subgradient bounds for min/max),
/// whether the expression is affine in (ss, ks), and whether it contains
/// an opaque term (in which case the intervals are meaningless and every
/// property is refuted).
struct ExprFacts {
  Interval ss;
  Interval ks;
  bool affine = true;
  bool opaque = false;
};

ExprFacts Analyze(const ScoreExpr& e) {
  ExprFacts f;
  switch (e.kind) {
    case ScoreExpr::Kind::kStructural:
      f.ss = {1.0, 1.0};
      return f;
    case ScoreExpr::Kind::kKeyword:
      f.ks = {1.0, 1.0};
      return f;
    case ScoreExpr::Kind::kPenalty:
      f.ss = {-1.0, -1.0};
      return f;
    case ScoreExpr::Kind::kConst:
      return f;
    case ScoreExpr::Kind::kWeighted: {
      if (e.children.empty()) return f;
      ExprFacts c = Analyze(e.children[0]);
      c.ss = Scale(c.ss, e.value);
      c.ks = Scale(c.ks, e.value);
      return c;
    }
    case ScoreExpr::Kind::kSum: {
      for (const ScoreExpr& child : e.children) {
        const ExprFacts c = Analyze(child);
        f.ss = Add(f.ss, c.ss);
        f.ks = Add(f.ks, c.ks);
        f.affine = f.affine && c.affine;
        f.opaque = f.opaque || c.opaque;
      }
      return f;
    }
    case ScoreExpr::Kind::kMin:
    case ScoreExpr::Kind::kMax: {
      if (e.children.empty()) return f;
      f = Analyze(e.children[0]);
      for (size_t i = 1; i < e.children.size(); ++i) {
        const ExprFacts c = Analyze(e.children[i]);
        f.ss = Hull(f.ss, c.ss);
        f.ks = Hull(f.ks, c.ks);
        f.opaque = f.opaque || c.opaque;
        // min/max of monotone pieces stays monotone but not affine.
        f.affine = false;
      }
      return f;
    }
    case ScoreExpr::Kind::kOpaque:
      f.opaque = true;
      f.affine = false;
      return f;
  }
  return f;
}

/// Structural well-formedness walk: arity of every combinator, finite
/// constants and weights. Returns an FX305 detail string, empty when OK.
std::string CheckWellFormed(const ScoreExpr& e) {
  switch (e.kind) {
    case ScoreExpr::Kind::kStructural:
    case ScoreExpr::Kind::kKeyword:
    case ScoreExpr::Kind::kPenalty:
    case ScoreExpr::Kind::kOpaque:
      if (!e.children.empty()) return "leaf term carries children";
      return "";
    case ScoreExpr::Kind::kConst:
      if (!e.children.empty()) return "constant carries children";
      if (!std::isfinite(e.value)) return "non-finite constant";
      return "";
    case ScoreExpr::Kind::kWeighted:
      if (e.children.size() != 1) return "weighted term needs one operand";
      if (!std::isfinite(e.value)) return "non-finite weight";
      return CheckWellFormed(e.children[0]);
    case ScoreExpr::Kind::kSum:
    case ScoreExpr::Kind::kMin:
    case ScoreExpr::Kind::kMax: {
      if (e.children.empty()) return "empty combinator";
      for (const ScoreExpr& c : e.children) {
        std::string err = CheckWellFormed(c);
        if (!err.empty()) return err;
      }
      return "";
    }
  }
  return "unknown expression kind";
}

PropertyVerdict Hold(std::string detail) {
  return PropertyVerdict{true, "", std::move(detail)};
}

PropertyVerdict Refute(std::string_view code, std::string detail) {
  return PropertyVerdict{false, std::string(code), std::move(detail)};
}

std::string IntervalString(Interval iv) {
  return "[" + FormatDouble(iv.lo) + ", " + FormatDouble(iv.hi) + "]";
}

std::string VerdictJson(const char* name, const PropertyVerdict& v) {
  std::string out = "\"";
  out += name;
  out += "\":{\"holds\":";
  out += v.holds ? "true" : "false";
  out += ",\"code\":\"" + JsonEscape(v.code) + "\"";
  out += ",\"detail\":\"" + JsonEscape(v.detail) + "\"}";
  return out;
}

}  // namespace

SchemeCertificate CertifyScheme(const SchemeAlgebra& algebra) {
  SchemeCertificate cert;
  cert.scheme = algebra.name;
  cert.expression = algebra.ToString();

  // Well-formedness first: the interval analysis assumes sane arity and
  // finite coefficients, so nothing else is evaluated on failure.
  std::string malformed;
  if (algebra.keys.empty()) {
    malformed = "no ranking keys";
  } else {
    for (size_t i = 0; i < algebra.keys.size() && malformed.empty(); ++i) {
      std::string err = CheckWellFormed(algebra.keys[i]);
      if (!err.empty()) malformed = KeyLabel(i) + ": " + err;
    }
    if (malformed.empty() && !std::isfinite(algebra.tie_epsilon)) {
      malformed = "non-finite tie_epsilon";
    }
  }
  if (!malformed.empty()) {
    cert.well_formed = Refute(kDiagSchemeMalformed, malformed);
    const std::string skipped = "not evaluated: malformed algebra (FX305)";
    cert.relaxation_monotone = Refute(kDiagSchemeMalformed, skipped);
    cert.order_invariant = Refute(kDiagSchemeMalformed, skipped);
    cert.truncation_safe = Refute(kDiagSchemeMalformed, skipped);
    cert.cache_exact = Refute(kDiagSchemeMalformed, skipped);
    return cert;
  }
  cert.well_formed = Hold("keys have sound arity and finite coefficients");

  std::vector<ExprFacts> facts;
  facts.reserve(algebra.keys.size());
  for (const ScoreExpr& key : algebra.keys) facts.push_back(Analyze(key));

  // Relaxation monotonicity (Theorem 3): relaxing a query only lowers
  // ss, so with every key non-decreasing in ss a more-relaxed
  // incarnation can never outrank a less-relaxed one on structure. This
  // is what DPO stopping rules, static round pruning and threshold
  // pruning assume.
  cert.relaxation_monotone =
      Hold("every key is non-decreasing in ss (d(key)/d(ss) >= 0)");
  for (size_t i = 0; i < facts.size(); ++i) {
    if (facts[i].opaque) {
      cert.relaxation_monotone = Refute(
          kDiagSchemeNotMonotone,
          KeyLabel(i) + " contains an opaque term: monotonicity in ss is "
                        "not provable, so DPO stopping rules, static_prune "
                        "and threshold pruning would be unsound");
      break;
    }
    if (facts[i].ss.lo < 0.0) {
      cert.relaxation_monotone = Refute(
          kDiagSchemeNotMonotone,
          KeyLabel(i) + " can decrease as ss increases (d(key)/d(ss) in " +
              IntervalString(facts[i].ss) +
              "): a more-relaxed answer may outrank a less-relaxed one, "
              "breaking Theorem 3 prefix monotonicity");
      break;
    }
  }

  // Order invariance: the comparator must be a pure deterministic
  // function of (ss, ks) with exact ties, or merge order (thread
  // schedule, shard interleaving) leaks into the answer list.
  bool any_opaque = false;
  for (const ExprFacts& f : facts) any_opaque = any_opaque || f.opaque;
  if (any_opaque) {
    cert.order_invariant =
        Refute(kDiagSchemeNotOrderInvariant,
               "an opaque term makes the comparator not provably "
               "deterministic; serial-order merge may reorder answers");
  } else if (algebra.tie_epsilon != 0.0) {
    cert.order_invariant = Refute(
        kDiagSchemeNotOrderInvariant,
        "epsilon tie-banding (|a-b| <= " + FormatDouble(algebra.tie_epsilon) +
            " compares equal) is not transitive, so the merged order "
            "depends on encounter order");
  } else {
    cert.order_invariant = Hold(
        "comparator is a pure deterministic function of (ss, ks) with "
        "exact ties");
  }

  // Truncation safety: with a deterministic total preference over
  // (ss, ks), the global order restricted to one shard is exactly the
  // shard's local order, so a per-shard top-K' (K' >= K) retains every
  // global top-K answer.
  if (cert.order_invariant.holds) {
    cert.truncation_safe = Hold(
        "global order restricted to a shard is the shard's local order; "
        "per-shard top-K' retains every global top-K answer");
  } else {
    cert.truncation_safe =
        Refute(kDiagSchemeNotTruncationSafe,
               "not provable without order invariance: a truncated shard "
               "list may drop an answer the merged order needs");
  }

  // Cache exactness: sub-plan tuples are scheme-independent facts, and
  // reusing them across schemes and K is exact as long as the scheme
  // ranks purely on (ss, ks) computed from those tuples.
  if (any_opaque) {
    cert.cache_exact =
        Refute(kDiagSchemeNotCacheExact,
               "score is not provably a pure function of (ss, ks): cached "
               "sub-plan results cannot be marked kExact for this scheme");
  } else {
    cert.cache_exact = Hold(
        "ranking is a pure function of (ss, ks), so kExact sub-plan "
        "cache entries are valid regardless of scheme and K");
  }

  cert.certified = cert.well_formed.holds && cert.relaxation_monotone.holds &&
                   cert.order_invariant.holds && cert.truncation_safe.holds &&
                   cert.cache_exact.holds;

  // Directives: what the proof licenses on the primary key. Threshold
  // pruning compares bounds in ss units with an optimistic keyword
  // bonus, which is sound exactly when key 1 is affine with a strictly
  // positive constant ss coefficient and a non-negative ks coefficient;
  // the bonus scales by ks_hi / ss_lo.
  const ExprFacts& k1 = facts[0];
  if (cert.relaxation_monotone.holds && cert.order_invariant.holds &&
      !k1.opaque && k1.affine && k1.ss.lo > 0.0 && k1.ks.lo >= 0.0) {
    cert.threshold_pruning = true;
    cert.prune_ks_factor = k1.ks.hi / k1.ss.lo;
    cert.stop_margin_factor = cert.prune_ks_factor;
    cert.stop_rule = (k1.ks.lo == 0.0 && k1.ks.hi == 0.0)
                         ? DpoStopRule::kAtK
                         : DpoStopRule::kPenaltyMargin;
  } else {
    cert.threshold_pruning = false;
    cert.prune_ks_factor = 0.0;
    cert.stop_margin_factor = 0.0;
    cert.stop_rule = DpoStopRule::kExhaustive;
  }

  return cert;
}

std::string SchemeCertificate::ToJson() const {
  std::string out = "{";
  out += "\"scheme\":\"" + JsonEscape(scheme) + "\"";
  out += ",\"expression\":\"" + JsonEscape(expression) + "\"";
  out += ",\"certified\":";
  out += certified ? "true" : "false";
  out += ",\"properties\":{";
  out += VerdictJson("well_formed", well_formed);
  out += ",";
  out += VerdictJson("relaxation_monotone", relaxation_monotone);
  out += ",";
  out += VerdictJson("order_invariant", order_invariant);
  out += ",";
  out += VerdictJson("truncation_safe", truncation_safe);
  out += ",";
  out += VerdictJson("cache_exact", cache_exact);
  out += "},\"directives\":{";
  out += "\"threshold_pruning\":";
  out += threshold_pruning ? "true" : "false";
  out += ",\"prune_ks_factor\":" + FormatDouble(prune_ks_factor);
  out += ",\"stop_rule\":\"";
  out += DpoStopRuleName(stop_rule);
  out += "\",\"stop_margin_factor\":" + FormatDouble(stop_margin_factor);
  out += "}}";
  return out;
}

AnalysisReport SchemeCertificate::Report() const {
  AnalysisReport report;
  auto add = [&](const PropertyVerdict& v) {
    if (v.holds) return;
    Diagnostic d;
    d.severity = DiagSeverity::kError;
    d.code = v.code;
    d.message = "scheme '" + scheme + "' (" + expression + "): " + v.detail;
    report.diagnostics.push_back(std::move(d));
  };
  add(well_formed);
  if (!well_formed.holds) return report;  // FX305 alone; the rest is noise.
  add(relaxation_monotone);
  add(order_invariant);
  add(truncation_safe);
  add(cache_exact);
  return report;
}

}  // namespace flexpath
