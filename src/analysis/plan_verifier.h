#ifndef FLEXPATH_ANALYSIS_PLAN_VERIFIER_H_
#define FLEXPATH_ANALYSIS_PLAN_VERIFIER_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "query/tpq.h"
#include "relax/schedule.h"

namespace flexpath {

// Verifier reason codes. Stable identifiers, mirroring the FXnnn
// diagnostic codes of the analyzer pass.
inline constexpr std::string_view kVerdictEmptyDrop = "V001";
inline constexpr std::string_view kVerdictDropNotInClosure = "V002";
inline constexpr std::string_view kVerdictNotStrict = "V003";
inline constexpr std::string_view kVerdictCoreNotTree = "V004";
inline constexpr std::string_view kVerdictClosureMismatch = "V005";
inline constexpr std::string_view kVerdictNoOperatorPath = "V006";

/// Outcome of statically checking one relaxation against Theorem 2.
struct PlanVerdict {
  bool ok = true;
  std::string code;    ///< V001..V006 when !ok, empty otherwise.
  std::string detail;  ///< Human-readable explanation of the failure.

  /// When the verifier ran with corpus statistics: a proof that the
  /// relaxed query has no answers on the indexed corpus (so the round
  /// can be skipped), or nullopt when emptiness cannot be proven.
  /// Orthogonal to `ok` — a valid relaxation can still be provably
  /// empty.
  std::optional<std::string> provably_empty;

  /// The γ/λ/σ/κ sequence found by the reachability check (empty when
  /// the check failed or was not reached).
  std::vector<RelaxOp> op_path;

  std::string ToString() const;
};

/// Statically verifies one schedule entry against the original query,
/// checking the Theorem 2 contract end to end:
///  - V001: the drop set is empty — the "relaxation" is a no-op;
///  - V002: a dropped predicate is not in the original closure;
///  - V003: the remainder (closure − dropped) is equivalent to the
///    original — containment is not strict, so the entry buys nothing;
///  - V004: the core of the remainder is not a well-formed tree pattern
///    (Theorem 1's minimal form fails to reconstruct);
///  - V005: the entry's relaxed tree is inconsistent with its drop-set
///    bookkeeping — Closure(relaxed) ≠ original closure − dropped, or
///    the distinguished variable moved;
///  - V006: no finite γ/λ/σ/κ composition rewrites the original into
///    the relaxed query (Theorem 2 completeness says one must exist for
///    every valid relaxation; the search is exact up to `budget`
///    expanded states, and a budget exhaustion is reported in `detail`).
/// When `ctx` carries corpus statistics the verdict also carries the
/// static-selectivity result (`provably_empty`).
PlanVerdict VerifyRelaxation(const Tpq& original, const ScheduleEntry& entry,
                             const AnalyzerContext& ctx,
                             size_t budget = 50000);

/// Verifies every entry of a schedule (as produced by BuildSchedule)
/// against the original query; verdict i corresponds to schedule[i].
std::vector<PlanVerdict> VerifySchedule(
    const Tpq& original, const std::vector<ScheduleEntry>& schedule,
    const AnalyzerContext& ctx, size_t budget = 50000);

}  // namespace flexpath

#endif  // FLEXPATH_ANALYSIS_PLAN_VERIFIER_H_
