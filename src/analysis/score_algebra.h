#ifndef FLEXPATH_ANALYSIS_SCORE_ALGEBRA_H_
#define FLEXPATH_ANALYSIS_SCORE_ALGEBRA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"

namespace flexpath {

/// Expression IR for rank-scheme scoring functions (flexcheck v2,
/// DESIGN.md §16). A scheme is expressed as a lexicographic list of
/// scalar keys over an answer's two scores; the certifier below proves
/// or refutes, from the expression structure alone, the properties each
/// optimization in the engine relies on. The IR is deliberately small:
/// it has to be rich enough for Section 4.3.2's schemes plus the
/// preference-weighted families of ROADMAP item 5, and poor enough that
/// the proofs are decidable by interval analysis.
struct ScoreExpr {
  enum class Kind : uint8_t {
    kStructural,  ///< The answer's structural score ss (Section 4.3.2).
    kKeyword,     ///< The answer's keyword score ks (sum of IR scores).
    kPenalty,     ///< The accumulated relaxation penalty. Evaluates as
                  ///< -ss: the true value is base - ss, but the base
                  ///< structural score is constant across the answers of
                  ///< one query, so dropping it is rank-invariant.
    kConst,       ///< A constant (`value`).
    kWeighted,    ///< value * children[0].
    kSum,         ///< children[0] + children[1] + ...
    kMin,         ///< min over children.
    kMax,         ///< max over children.
    kOpaque,      ///< A black-box term (e.g. an external UDF). Nothing
                  ///< is provable about it; every property is refuted.
  };

  Kind kind = Kind::kConst;
  double value = 0.0;  ///< kConst: the constant. kWeighted: the weight.
  std::string label;   ///< kOpaque: a diagnostic name for the term.
  std::vector<ScoreExpr> children;

  // Factories (the only supported way to build expressions).
  static ScoreExpr Ss();
  static ScoreExpr Ks();
  static ScoreExpr Penalty();
  static ScoreExpr Const(double v);
  static ScoreExpr Weighted(double w, ScoreExpr e);
  static ScoreExpr Sum(std::vector<ScoreExpr> es);
  static ScoreExpr Min(std::vector<ScoreExpr> es);
  static ScoreExpr Max(std::vector<ScoreExpr> es);
  static ScoreExpr Opaque(std::string label);

  /// Evaluates the expression for an answer with scores (ss, ks).
  /// kPenalty evaluates as -ss (see above); kOpaque evaluates as 0 —
  /// opaque terms never certify, so they reach evaluation only through
  /// the test seam.
  double Eval(double ss, double ks) const;

  /// Human-readable rendering, e.g. "(ss + ks)" or "0.5*ks".
  std::string ToString() const;
};

/// A rank scheme expressed in the algebra: an ordered list of keys,
/// compared lexicographically with higher key values ranking first.
/// `tie_epsilon` > 0 widens key ties to |a-b| <= epsilon — supported by
/// the comparator but refused by the certifier (epsilon bands are not
/// transitive, so merge order would leak into the answer list).
struct SchemeAlgebra {
  std::string name;
  std::vector<ScoreExpr> keys;
  double tie_epsilon = 0.0;

  /// The comparator the algebra denotes: true when `a` ranks strictly
  /// before `b`. With tie_epsilon == 0 this is a strict weak ordering.
  bool RanksBefore(double a_ss, double a_ks, double b_ss, double b_ks) const;

  /// Rendering of the key list, e.g. "lex(ss, ks)".
  std::string ToString() const;
};

/// The three built-in Section 4.3.2 schemes re-expressed in the algebra.
/// Order and names match RankScheme / RankSchemeName.
SchemeAlgebra StructureFirstAlgebra();
SchemeAlgebra KeywordFirstAlgebra();
SchemeAlgebra CombinedAlgebra();

/// The DPO stopping rule a certificate licenses (consumed by
/// TopKProcessor::RunDpo / RunEncoded):
///  - kAtK:           the primary key is strictly increasing in ss and
///                    independent of ks, so relaxation rounds only ever
///                    produce worse answers — stop as soon as K are held.
///  - kPenaltyMargin: the primary key is affine in (ss, ks) with positive
///                    ss coefficient, so a round is unbeatable once the
///                    best achievable key (base - round penalty plus
///                    stop_margin_factor x the maximum keyword mass)
///                    falls below the current K-th answer.
///  - kExhaustive:    no bound on future rounds is provable (e.g. the
///                    keyword-first scheme); every relaxation runs.
enum class DpoStopRule : uint8_t {
  kAtK = 0,
  kPenaltyMargin = 1,
  kExhaustive = 2,
};

const char* DpoStopRuleName(DpoStopRule rule);

/// One certified (or refuted) property. `code` is the stable FX3xx
/// diagnostic refuting the property, empty when it holds; `detail` is
/// the proof sketch or the counterexample condition.
struct PropertyVerdict {
  bool holds = false;
  std::string code;
  std::string detail;
};

/// The machine-readable output of the certifier: four property verdicts
/// (plus well-formedness), and the optimization directives they license.
/// Every optimization site consults a directive instead of switching on
/// the scheme by name:
///  - relaxation_monotone (FX301, Theorem 3)  -> DPO stopping rules,
///    static_prune, and SSO/Hybrid threshold pruning are meaningful;
///  - order_invariant (FX302)                 -> parallel / serial-order
///    merges may reorder work without changing the answer list;
///  - truncation_safe (FX303)                 -> shard scatter-gather may
///    truncate per-shard result lists to K' (shard/merge.cc);
///  - cache_exact (FX304)                     -> sub-plan result-cache
///    entries may be marked kExact and shared across schemes and K
///    (exec/result_cache.h).
struct SchemeCertificate {
  std::string scheme;      ///< SchemeAlgebra::name.
  std::string expression;  ///< SchemeAlgebra::ToString().

  PropertyVerdict well_formed;          ///< FX305 when refuted.
  PropertyVerdict relaxation_monotone;  ///< FX301 when refuted.
  PropertyVerdict order_invariant;      ///< FX302 when refuted.
  PropertyVerdict truncation_safe;      ///< FX303 when refuted.
  PropertyVerdict cache_exact;          ///< FX304 when refuted.

  /// True iff every property above holds. SchemeRegistry::Register
  /// refuses algebras that do not certify.
  bool certified = false;

  // Directives derived from the proof (all conservative defaults when
  // the relevant property is refuted).
  bool threshold_pruning = false;   ///< Score-threshold pruning is sound.
  double prune_ks_factor = 0.0;     ///< Optimistic ks bonus per unit of
                                    ///< the plan's max keyword mass used
                                    ///< in pruning bounds (0 for
                                    ///< structure-first, 1 for combined).
  DpoStopRule stop_rule = DpoStopRule::kExhaustive;
  double stop_margin_factor = 0.0;  ///< kPenaltyMargin: margin per unit
                                    ///< of maximum keyword mass.

  /// One JSON object with the verdicts and directives (stable schema;
  /// uploaded as a CI artifact and served by the CLI --certify path).
  std::string ToJson() const;

  /// The refuted properties as FX3xx error diagnostics (empty report
  /// when certified). A malformed algebra reports FX305 alone.
  AnalysisReport Report() const;
};

/// Statically proves or refutes the four properties for `algebra` by
/// interval analysis over the key expressions: for each key the
/// certifier bounds the partial derivatives d(key)/d(ss) and
/// d(key)/d(ks), tracks affineness, and rejects opaque terms. Pure
/// function of the algebra; never consults the corpus.
SchemeCertificate CertifyScheme(const SchemeAlgebra& algebra);

}  // namespace flexpath

#endif  // FLEXPATH_ANALYSIS_SCORE_ALGEBRA_H_
