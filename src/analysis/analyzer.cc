#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace flexpath {

namespace {

// Sequential appends rather than chained operator+ in both helpers:
// GCC 12's -Wrestrict misfires on the chained form.
std::string TagName(TagId tag, const TagDict* dict) {
  if (tag == kInvalidTag) return "*";
  if (dict == nullptr || tag >= dict->size()) {
    std::string out = "#";
    out += std::to_string(tag);
    return out;
  }
  return dict->Name(tag);
}

std::string VarLabel(VarId var) {
  std::string out = "$";
  out += std::to_string(var);
  return out;
}

/// Path renderer shared by every diagnostic: tree spine when the input
/// was a Tpq, bare variable otherwise.
struct PathRenderer {
  const Tpq* tree = nullptr;  ///< Null for raw logical inputs.
  const TagDict* dict = nullptr;

  std::string operator()(VarId var) const {
    if (tree == nullptr || var == kInvalidVar || !tree->HasVar(var)) {
      return VarLabel(var);
    }
    return VarPath(*tree, var, dict);
  }
};

void Add(AnalysisReport* report, DiagSeverity severity,
         std::string_view code, std::string message, std::string path,
         VarId var) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::string(code);
  d.message = std::move(message);
  d.path = std::move(path);
  d.var = var;
  report->diagnostics.push_back(std::move(d));
}

/// Undirected connected component of `seed` over the pc/ad predicates.
std::set<VarId> StructuralComponent(const std::set<Predicate>& preds,
                                    VarId seed) {
  std::map<VarId, std::vector<VarId>> adj;
  for (const Predicate& p : preds) {
    if (p.kind != PredKind::kPc && p.kind != PredKind::kAd) continue;
    adj[p.x].push_back(p.y);
    adj[p.y].push_back(p.x);
  }
  std::set<VarId> seen;
  std::vector<VarId> frontier;
  seen.insert(seed);
  frontier.push_back(seed);
  while (!frontier.empty()) {
    VarId v = frontier.back();
    frontier.pop_back();
    auto it = adj.find(v);
    if (it == adj.end()) continue;
    for (VarId w : it->second) {
      if (seen.insert(w).second) frontier.push_back(w);
    }
  }
  return seen;
}

/// The shared pass body. `tree` is non-null when the caller analyzed a
/// Tpq (richer paths, per-node corpus checks in tree order).
AnalysisReport AnalyzeImpl(const LogicalQuery& q, const Tpq* tree,
                           const AnalyzerContext& ctx) {
  AnalysisReport report;
  PathRenderer path{tree, ctx.dict};

  // --- Closure-based structural checks (corpus-independent) ----------
  const LogicalQuery closure = Closure(q);

  // FX002: two different tag constraints on one variable. Tag predicates
  // are never dropped, so a conflict is unsatisfiable at every
  // relaxation depth — relaxation rounds on such a query are all wasted.
  std::map<VarId, std::set<TagId>> tags;
  for (const Predicate& p : closure.preds) {
    if (p.kind == PredKind::kTag) tags[p.x].insert(p.tag);
  }
  for (const auto& [var, tag_set] : tags) {
    if (tag_set.size() < 2) continue;
    std::string names;
    for (TagId t : tag_set) {
      if (!names.empty()) names += " vs ";
      names += TagName(t, ctx.dict);
    }
    Add(&report, DiagSeverity::kError, kDiagTagConflict,
        "conflicting tag constraints on " + VarLabel(var) + ": " + names,
        path(var), var);
  }

  // FX003: structural contradiction. The inference rules close ad under
  // transitivity without excluding x == z, so any pc/ad cycle surfaces
  // as a derived ad(x,x) — an element that is its own proper ancestor.
  std::set<VarId> cyclic;
  for (const Predicate& p : closure.preds) {
    if ((p.kind == PredKind::kAd || p.kind == PredKind::kPc) &&
        p.x == p.y) {
      cyclic.insert(p.x);
    }
  }
  for (VarId var : cyclic) {
    Add(&report, DiagSeverity::kError, kDiagStructuralCycle,
        "structural predicates place " + VarLabel(var) +
            " strictly above itself (pc/ad cycle)",
        path(var), var);
  }

  // FX004 / FX005: connectivity to the answer node. Variables the
  // structural predicates do not tie to the distinguished component can
  // never constrain (or be) an answer.
  if (q.distinguished == kInvalidVar) {
    Add(&report, DiagSeverity::kError, kDiagUnreachableAnswer,
        "query has no distinguished (answer) variable", "", kInvalidVar);
  } else {
    const std::set<VarId> component =
        StructuralComponent(q.preds, q.distinguished);
    std::set<VarId> all_vars;
    for (const Predicate& p : q.preds) {
      all_vars.insert(p.x);
      if (p.kind == PredKind::kPc || p.kind == PredKind::kAd) {
        all_vars.insert(p.y);
      }
    }
    std::set<VarId> has_contains;
    for (const Predicate& p : q.preds) {
      if (p.kind == PredKind::kContains) has_contains.insert(p.x);
    }
    for (VarId var : all_vars) {
      if (component.count(var) > 0) continue;
      if (has_contains.count(var) > 0) {
        Add(&report, DiagSeverity::kError, kDiagDanglingContains,
            "contains target " + VarLabel(var) +
                " is not connected to the answer variable " +
                VarLabel(q.distinguished),
            path(var), var);
      } else {
        Add(&report, DiagSeverity::kError, kDiagUnreachableAnswer,
            VarLabel(var) + " is not connected to the answer variable " +
                VarLabel(q.distinguished),
            path(var), var);
      }
    }
  }

  // FX201: a stated predicate already implied by the rest of the query.
  // Dropping it is a no-op relaxation — the remainder is equivalent, so
  // a DPO round spent on it re-evaluates the same query.
  for (const Predicate& p : q.preds) {
    if (p.kind == PredKind::kTag) continue;
    if (!Derivable(q.preds, p)) continue;
    Add(&report, DiagSeverity::kWarning, kDiagRedundantPredicate,
        "predicate " + p.ToString(ctx.dict) +
            " is implied by the rest of the query; dropping it is a "
            "no-op relaxation",
        path(p.x), p.x);
  }

  // --- Corpus-level unsatisfiability (needs context) ------------------
  const bool exact_pairs =
      ctx.stats != nullptr &&
      (ctx.index == nullptr || ctx.index->hierarchy() == nullptr);

  // FX101: tag with zero elements (subtype-aware via the element index).
  if (ctx.index != nullptr) {
    for (const auto& [var, tag_set] : tags) {
      for (TagId t : tag_set) {
        if (ctx.index->Count(t) > 0) continue;
        Add(&report, DiagSeverity::kError, kDiagEmptyTag,
            "tag <" + TagName(t, ctx.dict) + "> matches no element in "
            "the corpus",
            path(var), var);
      }
    }
  }

  // FX102: contains expression with an empty satisfying set.
  if (ctx.ir != nullptr) {
    for (const Predicate& p : q.preds) {
      if (p.kind != PredKind::kContains) continue;
      auto it = q.exprs.find(p.expr_key);
      if (it == q.exprs.end()) continue;
      if (!ctx.ir->Evaluate(it->second)->satisfying().empty()) continue;
      Add(&report, DiagSeverity::kError, kDiagEmptyContains,
          "contains(" + VarLabel(p.x) + ", " + p.expr_key +
              ") matches no element in the corpus",
          path(p.x), p.x);
    }
  }

  // FX103: an edge between tags with zero such pairs anywhere in the
  // corpus. Pair counts are exact only without a TypeHierarchy, so the
  // check is gated on that (soundness over coverage).
  if (exact_pairs) {
    auto single_tag = [&](VarId v) -> TagId {
      auto it = tags.find(v);
      if (it == tags.end() || it->second.size() != 1) return kInvalidTag;
      return *it->second.begin();
    };
    for (const Predicate& p : q.preds) {
      if (p.kind != PredKind::kPc && p.kind != PredKind::kAd) continue;
      const TagId t1 = single_tag(p.x);
      const TagId t2 = single_tag(p.y);
      if (t1 == kInvalidTag || t2 == kInvalidTag) continue;
      const bool pc = p.kind == PredKind::kPc;
      const uint64_t pairs = pc ? ctx.stats->PcCount(t1, t2)
                                : ctx.stats->AdCount(t1, t2);
      if (pairs > 0) continue;
      Add(&report, DiagSeverity::kError, kDiagDeadEdge,
          std::string("no <") + TagName(t1, ctx.dict) + "> has a <" +
              TagName(t2, ctx.dict) + "> " +
              (pc ? "child" : "descendant") + " anywhere in the corpus",
          path(p.y), p.y);
    }
  }

  // Deterministic order: by code, then variable, then message.
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.code != b.code) return a.code < b.code;
              if (a.var != b.var) return a.var < b.var;
              return a.message < b.message;
            });
  return report;
}

}  // namespace

std::string VarPath(const Tpq& q, VarId var, const TagDict* dict) {
  if (!q.HasVar(var)) return VarLabel(var);
  std::vector<VarId> spine;
  for (VarId v = var; v != kInvalidVar; v = q.Parent(v)) {
    spine.push_back(v);
  }
  std::string out = VarLabel(var) + " (";
  for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
    if (*it == q.root()) {
      out += "/";
    } else {
      out += q.AxisOf(*it) == Axis::kChild ? "/" : "//";
    }
    out += TagName(q.node(*it).tag, dict);
  }
  out += ")";
  return out;
}

AnalysisReport AnalyzeTpq(const Tpq& q, const AnalyzerContext& ctx) {
  if (Status st = q.Validate(); !st.ok()) {
    AnalysisReport report;
    Add(&report, DiagSeverity::kError, kDiagMalformed,
        "malformed tree pattern: " + st.message(), "", kInvalidVar);
    return report;
  }
  return AnalyzeImpl(ToLogical(q), &q, ctx);
}

AnalysisReport AnalyzeLogical(const LogicalQuery& q,
                              const AnalyzerContext& ctx) {
  return AnalyzeImpl(q, nullptr, ctx);
}

std::optional<std::string> ProvablyEmptyReason(const Tpq& q,
                                               const AnalyzerContext& ctx) {
  const bool exact_pairs =
      ctx.stats != nullptr &&
      (ctx.index == nullptr || ctx.index->hierarchy() == nullptr);
  for (VarId v : q.Vars()) {
    const TpqNode& n = q.node(v);
    if (n.tag != kInvalidTag && ctx.index != nullptr &&
        ctx.index->Count(n.tag) == 0) {
      return "tag <" + TagName(n.tag, ctx.dict) + "> matches no element";
    }
    if (ctx.ir != nullptr) {
      for (const FtExpr& e : n.contains) {
        if (ctx.ir->Evaluate(e)->satisfying().empty()) {
          return "contains(" + VarLabel(v) + ", " + e.ToString() +
                 ") matches nothing";
        }
      }
    }
    const VarId parent = q.Parent(v);
    if (parent != kInvalidVar && exact_pairs) {
      const TagId t1 = q.node(parent).tag;
      const TagId t2 = n.tag;
      if (t1 != kInvalidTag && t2 != kInvalidTag) {
        const bool pc = q.AxisOf(v) == Axis::kChild;
        const uint64_t pairs = pc ? ctx.stats->PcCount(t1, t2)
                                  : ctx.stats->AdCount(t1, t2);
        if (pairs == 0) {
          return std::string("no <") + TagName(t1, ctx.dict) + "> has a <" +
                 TagName(t2, ctx.dict) + "> " +
                 (pc ? "child" : "descendant");
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace flexpath
