#include "analysis/plan_verifier.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "relax/operators.h"

namespace flexpath {

namespace {

PlanVerdict Fail(std::string_view code, std::string detail) {
  PlanVerdict v;
  v.ok = false;
  v.code = std::string(code);
  v.detail = std::move(detail);
  return v;
}

std::set<VarId> VarsOf(const Tpq& q) {
  std::vector<VarId> vars = q.Vars();
  return std::set<VarId>(vars.begin(), vars.end());
}

/// Reconstructs a γ/λ/σ/κ sequence from `original` to `target` by
/// depth-first search over the operator algebra. Sound pruning:
/// operators only ever drop closure predicates and delete variables, so
/// any state whose closure no longer contains the target closure — or
/// that lost a variable the target still has, or moved the
/// distinguished variable away from the target's — is a dead end.
/// Closure shrinks by at least one predicate per step, which bounds the
/// path length; `budget` bounds the total states expanded.
/// Returns true and fills `path` on success; `*exhausted` is set when
/// the search ran out of budget (so failure is inconclusive).
bool FindOpPath(const Tpq& original, const Tpq& target, size_t budget,
                std::vector<RelaxOp>* path, bool* exhausted) {
  const std::string goal = target.CanonicalString();
  const LogicalQuery target_closure = Closure(ToLogical(target));
  const std::set<VarId> target_vars = VarsOf(target);
  const VarId target_dist = target.distinguished();

  struct Frame {
    Tpq query;
    std::vector<RelaxOp> ops;
  };
  std::vector<Frame> stack;
  stack.push_back({original, {}});
  std::set<std::string> seen;
  seen.insert(original.CanonicalString());
  size_t expanded = 0;
  *exhausted = false;

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.query.CanonicalString() == goal) {
      *path = std::move(frame.ops);
      return true;
    }
    if (++expanded > budget) {
      *exhausted = true;
      return false;
    }
    for (const RelaxOp& op : ApplicableOps(frame.query)) {
      Result<Tpq> next = ApplyOp(frame.query, op);
      if (!next.ok()) continue;
      if (next->distinguished() != target_dist) continue;
      const std::set<VarId> next_vars = VarsOf(*next);
      if (!std::includes(next_vars.begin(), next_vars.end(),
                         target_vars.begin(), target_vars.end())) {
        continue;
      }
      const LogicalQuery next_closure = Closure(ToLogical(*next));
      if (!std::includes(next_closure.preds.begin(),
                         next_closure.preds.end(),
                         target_closure.preds.begin(),
                         target_closure.preds.end())) {
        continue;
      }
      if (!seen.insert(next->CanonicalString()).second) continue;
      std::vector<RelaxOp> ops = frame.ops;
      ops.push_back(op);
      stack.push_back({*std::move(next), std::move(ops)});
    }
  }
  return false;
}

}  // namespace

std::string PlanVerdict::ToString() const {
  // Sequential appends rather than chained operator+: GCC 12's
  // -Wrestrict misfires on the chained form.
  if (ok) {
    std::string out = "ok";
    if (!op_path.empty()) {
      out += " via";
      for (const RelaxOp& op : op_path) {
        out += " ";
        out += op.ToString();
      }
    }
    if (provably_empty) {
      out += " [provably empty: ";
      out += *provably_empty;
      out += "]";
    }
    return out;
  }
  std::string out(code);
  out += ": ";
  out += detail;
  return out;
}

PlanVerdict VerifyRelaxation(const Tpq& original, const ScheduleEntry& entry,
                             const AnalyzerContext& ctx, size_t budget) {
  const LogicalQuery closure = Closure(ToLogical(original));

  // V001: Definition 1 requires a non-empty drop set — dropping nothing
  // re-evaluates the same query and cannot admit new answers.
  if (entry.dropped.empty()) {
    return Fail(kVerdictEmptyDrop, "relaxation drops no predicate");
  }

  // V002: every dropped predicate must come from the original closure.
  for (const Predicate& p : entry.dropped) {
    if (!closure.Has(p)) {
      return Fail(kVerdictDropNotInClosure,
                  "dropped predicate " + p.ToString(ctx.dict) +
                      " is not in the original closure");
    }
  }

  // The remainder: closure minus the (cumulative) drop set.
  LogicalQuery remainder;
  remainder.distinguished = closure.distinguished;
  remainder.exprs = closure.exprs;
  remainder.attr_preds = closure.attr_preds;
  for (const Predicate& p : closure.preds) {
    if (entry.dropped.count(p) == 0) remainder.preds.insert(p);
  }

  // V003: strict containment. If the remainder is equivalent to the
  // original (every dropped predicate is re-derivable from what is
  // left), the relaxation admits exactly the original answers.
  if (Equivalent(remainder, closure)) {
    return Fail(kVerdictNotStrict,
                "remainder is equivalent to the original query; "
                "containment is not strict");
  }

  // V004: the core of the remainder must be a well-formed TPQ
  // (Theorem 1 minimal form; Definition 2's well-formedness condition).
  Result<Tpq> core_tree = LogicalToTpq(Core(remainder));
  if (!core_tree.ok()) {
    return Fail(kVerdictCoreNotTree,
                "core of the remainder is not a tree pattern: " +
                    core_tree.status().message());
  }

  // V005: the emitted tree must match its own bookkeeping —
  // Closure(relaxed) has to be exactly closure − dropped, with the
  // distinguished variable unmoved.
  const LogicalQuery relaxed_closure = Closure(ToLogical(entry.relaxed));
  if (relaxed_closure.distinguished != closure.distinguished) {
    return Fail(kVerdictClosureMismatch,
                "relaxed query moved the distinguished variable");
  }
  if (relaxed_closure.preds != remainder.preds) {
    std::string detail =
        "Closure(relaxed) != original closure - dropped;";
    for (const Predicate& p : relaxed_closure.preds) {
      if (remainder.preds.count(p) == 0) {
        detail += " +" + p.ToString(ctx.dict);
      }
    }
    for (const Predicate& p : remainder.preds) {
      if (relaxed_closure.preds.count(p) == 0) {
        detail += " -" + p.ToString(ctx.dict);
      }
    }
    return Fail(kVerdictClosureMismatch, detail);
  }

  // V006: Theorem 2 completeness — some γ/λ/σ/κ composition must
  // rewrite the original into the relaxed query.
  PlanVerdict verdict;
  bool exhausted = false;
  if (!FindOpPath(original, entry.relaxed, budget, &verdict.op_path,
                  &exhausted)) {
    return Fail(kVerdictNoOperatorPath,
                exhausted
                    ? "operator-path search budget exhausted (" +
                          std::to_string(budget) + " states)"
                    : "no gamma/lambda/sigma/kappa composition reaches "
                      "the relaxed query");
  }

  // Static selectivity: flag rounds the corpus statistics prove empty.
  verdict.provably_empty = ProvablyEmptyReason(entry.relaxed, ctx);
  return verdict;
}

std::vector<PlanVerdict> VerifySchedule(
    const Tpq& original, const std::vector<ScheduleEntry>& schedule,
    const AnalyzerContext& ctx, size_t budget) {
  std::vector<PlanVerdict> verdicts;
  verdicts.reserve(schedule.size());
  for (const ScheduleEntry& entry : schedule) {
    verdicts.push_back(VerifyRelaxation(original, entry, ctx, budget));
  }
  return verdicts;
}

}  // namespace flexpath
