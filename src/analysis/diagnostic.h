#ifndef FLEXPATH_ANALYSIS_DIAGNOSTIC_H_
#define FLEXPATH_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "query/predicate.h"

namespace flexpath {

/// Severity of a static-analysis finding.
///  - kError:   the query (or plan) cannot produce answers / is invalid;
///  - kWarning: legal but wasteful — e.g. a predicate whose drop is a
///              no-op relaxation that costs a DPO round;
///  - kNote:    informational (schedule shape, estimates).
enum class DiagSeverity : uint8_t {
  kError = 0,
  kWarning = 1,
  kNote = 2,
};

const char* DiagSeverityName(DiagSeverity severity);

/// Stable diagnostic codes ("flexcheck" pass, DESIGN.md §11/§16). The
/// code string is part of the tool contract: scripts grep for it, tests
/// pin it. Numbering: FX0xx structural unsatisfiability / malformedness
/// (corpus-independent), FX1xx corpus-level unsatisfiability (statistics
/// prove zero answers), FX2xx redundancy warnings, FX3xx rank-scheme
/// certification (the score-algebra certifier, DESIGN.md §16).
inline constexpr std::string_view kDiagMalformed = "FX001";
inline constexpr std::string_view kDiagTagConflict = "FX002";
inline constexpr std::string_view kDiagStructuralCycle = "FX003";
inline constexpr std::string_view kDiagDanglingContains = "FX004";
inline constexpr std::string_view kDiagUnreachableAnswer = "FX005";
inline constexpr std::string_view kDiagEmptyTag = "FX101";
inline constexpr std::string_view kDiagEmptyContains = "FX102";
inline constexpr std::string_view kDiagDeadEdge = "FX103";
inline constexpr std::string_view kDiagRedundantPredicate = "FX201";
// Scheme certification (src/analysis/score_algebra.h). FX301-FX304 are
// refutations of the four certified properties, one per optimization
// they gate; FX305 is a malformed algebra; FX310 is the runtime
// advisory that sharding bypassed the result cache.
inline constexpr std::string_view kDiagSchemeNotMonotone = "FX301";
inline constexpr std::string_view kDiagSchemeNotOrderInvariant = "FX302";
inline constexpr std::string_view kDiagSchemeNotTruncationSafe = "FX303";
inline constexpr std::string_view kDiagSchemeNotCacheExact = "FX304";
inline constexpr std::string_view kDiagSchemeMalformed = "FX305";
inline constexpr std::string_view kDiagCacheDisabledSharded = "FX310";

/// One static-analysis finding.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  std::string code;     ///< Stable code, e.g. "FX101".
  std::string message;  ///< Human-readable explanation.
  /// Offending node path: the variable plus its spine from the query
  /// root, e.g. "$3 (/article//section)"; "$3" alone when the input is a
  /// logical form with no tree to walk. Empty for whole-query findings.
  std::string path;
  VarId var = kInvalidVar;  ///< Offending variable; kInvalidVar if none.

  std::string ToString() const;
};

/// The result of one analysis pass over a query.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  size_t ErrorCount() const;
  size_t WarningCount() const;

  /// True when any error-severity diagnostic proves the query can return
  /// no answers (every FX0xx/FX1xx error implies that).
  bool unsatisfiable() const { return ErrorCount() > 0; }

  /// True when the report contains a diagnostic with this code.
  bool Has(std::string_view code) const;

  /// First diagnostic with this code, or nullptr.
  const Diagnostic* Find(std::string_view code) const;
};

/// Renders a report as one JSON object:
///   {"errors":N,"warnings":N,"unsatisfiable":bool,
///    "diagnostics":[{"severity":"error","code":"FX101",
///                    "message":...,"path":...,"var":N},...]}
std::string DiagnosticsJson(const AnalysisReport& report);

/// Renders each diagnostic through the structured logger (module
/// "analysis"): errors at WARN, warnings at INFO, notes at DEBUG.
/// `query` labels the records with the analyzed pattern.
void LogReport(const AnalysisReport& report, std::string_view query);

}  // namespace flexpath

#endif  // FLEXPATH_ANALYSIS_DIAGNOSTIC_H_
