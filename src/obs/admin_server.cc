#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/json_util.h"
#include "common/log.h"
#include "common/metrics.h"

namespace flexpath {

namespace {

/// Requests larger than this (the head alone; bodies are unsupported) are
/// rejected with 431 — nothing on the admin plane needs a long URL.
constexpr size_t kMaxRequestBytes = 8192;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// One accepted client: read the request head, write the response, close.
struct AdminServer::Connection {
  ScopedFd fd;
  std::string in;         ///< Bytes read so far (at most kMaxRequestBytes).
  std::string out;        ///< Serialized response once dispatched.
  size_t out_offset = 0;  ///< Bytes of `out` already written.
  bool dispatched = false;
  bool done = false;      ///< Close and drop at the end of the poll pass.
  int64_t deadline_ms = 0;
};

AdminServer::AdminServer(AdminServerOptions opts) : opts_(std::move(opts)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

std::vector<std::string> AdminServer::Routes() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

bool AdminServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

Status AdminServer::Start() {
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::InvalidArgument("admin server already running");
    }
    stop_requested_ = false;
  }
  ScopedFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal("socket() failed");
  const int one = 1;
  setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address " + opts_.bind_address);
  }
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal("cannot bind " + opts_.bind_address + ":" +
                            std::to_string(opts_.port) + " (" +
                            std::strerror(errno) + ")");
  }
  if (listen(fd.get(), 16) != 0) return Status::Internal("listen() failed");
  if (!SetNonBlocking(fd.get())) {
    return Status::Internal("cannot set listen socket non-blocking");
  }
  // Read the bound port back: with opts_.port == 0 the kernel picked one.
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    return Status::Internal("getsockname() failed");
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return Status::Internal("pipe() failed");
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  SetNonBlocking(wake_read_.get());
  listen_fd_ = std::move(fd);
  port_ = ntohs(bound.sin_port);
  {
    MutexLock lock(mu_);
    running_ = true;
  }
  thread_ = std::thread([this] { Serve(); });
  FLEXPATH_LOG_INFO("admin", "admin server listening",
                    {"address", opts_.bind_address},
                    {"port", static_cast<uint64_t>(port_)});
  return Status::OK();
}

void AdminServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  // Wake the poll loop; the byte's value is irrelevant.
  if (wake_write_.valid()) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = write(wake_write_.get(), &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  listen_fd_.reset();
  wake_read_.reset();
  wake_write_.reset();
  port_ = 0;
  MutexLock lock(mu_);
  running_ = false;
}

HttpResponse AdminServer::RouteRequest(const HttpRequest& request) {
  static Counter* m_requests =
      MetricsRegistry::Global().counter("admin.requests");
  static Counter* m_errors =
      MetricsRegistry::Global().counter("admin.request_errors");
  m_requests->Inc();
  if (request.method != "GET" && request.method != "HEAD") {
    m_errors->Inc();
    return {405, "application/json",
            "{\"error\":\"method not allowed; the admin plane is read-only\"}"};
  }
  if (request.path == "/") {
    std::string body = "FleXPath admin endpoint. Routes:\n";
    for (const std::string& route : Routes()) body += "  " + route + "\n";
    return {200, "text/plain; charset=utf-8", std::move(body)};
  }
  const auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    m_errors->Inc();
    return {404, "application/json",
            "{\"error\":\"no such route\",\"path\":\"" +
                JsonEscape(request.path) + "\"}"};
  }
  try {
    return it->second(request);
  } catch (const std::exception& e) {
    m_errors->Inc();
    return {500, "application/json",
            "{\"error\":\"handler failed\",\"what\":\"" +
                JsonEscape(e.what()) + "\"}"};
  }
}

void AdminServer::Dispatch(Connection* conn) {
  HttpRequest request;
  std::string error;
  HttpResponse response;
  bool head = false;
  if (ParseHttpRequest(conn->in, &request, &error)) {
    response = RouteRequest(request);
    head = request.method == "HEAD";
  } else {
    response = {400, "application/json",
                "{\"error\":\"malformed request\",\"detail\":\"" +
                    JsonEscape(error) + "\"}"};
  }
  conn->out = SerializeHttpResponse(response);
  if (head) {
    // Per RFC 7231: identical headers (Content-Length included), no body.
    conn->out.resize(conn->out.size() - response.body.size());
  }
  conn->dispatched = true;
}

void AdminServer::Serve() {
  std::vector<Connection> conns;
  std::vector<pollfd> fds;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) break;
    }
    fds.clear();
    fds.push_back({wake_read_.get(), POLLIN, 0});
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    for (const Connection& c : conns) {
      fds.push_back({c.fd.get(),
                     static_cast<short>(c.dispatched ? POLLOUT : POLLIN), 0});
    }
    const int ready = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                           /*timeout_ms=*/250);
    if (ready < 0 && errno != EINTR) break;
    const int64_t now = NowMs();

    // `fds[i + 2]` belongs to `conns[i]` for the connections that existed
    // when the poll set was built; anything accepted below this point has
    // no revents yet. Closures are deferred to one erase pass at the end
    // so the correspondence holds throughout.
    const size_t polled = conns.size();

    // Accept every pending client (the listen socket is non-blocking).
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        ScopedFd client(accept(listen_fd_.get(), nullptr, nullptr));
        if (!client.valid()) break;
        SetNonBlocking(client.get());
        if (conns.size() >= static_cast<size_t>(opts_.max_connections)) {
          // Over capacity: a terse 503, best-effort, then close.
          const std::string busy = SerializeHttpResponse(
              {503, "application/json",
               "{\"error\":\"too many connections\"}"});
          [[maybe_unused]] ssize_t n =
              write(client.get(), busy.data(), busy.size());
          continue;
        }
        Connection conn;
        conn.fd = std::move(client);
        conn.deadline_ms = now + opts_.idle_timeout_ms;
        conns.push_back(std::move(conn));
      }
    }

    for (size_t i = 0; i < polled; ++i) {
      Connection& conn = conns[i];
      const short revents = fds[i + 2].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn.done = true;
      } else if ((revents & POLLHUP) != 0 && !conn.dispatched) {
        conn.done = true;
      } else if (!conn.dispatched && (revents & POLLIN) != 0) {
        char buf[2048];
        const ssize_t n = read(conn.fd.get(), buf, sizeof(buf));
        if (n == 0 ||
            (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          conn.done = true;
        } else if (n > 0) {
          conn.in.append(buf, static_cast<size_t>(n));
          conn.deadline_ms = now + opts_.idle_timeout_ms;
          if (conn.in.size() > kMaxRequestBytes) {
            conn.out = SerializeHttpResponse(
                {431, "application/json",
                 "{\"error\":\"request too large\"}"});
            conn.dispatched = true;
          } else if (conn.in.find("\r\n\r\n") != std::string::npos ||
                     conn.in.find("\n\n") != std::string::npos) {
            Dispatch(&conn);
          }
        }
      }
      if (conn.dispatched && !conn.done &&
          (revents & (POLLOUT | POLLIN)) != 0) {
        while (conn.out_offset < conn.out.size()) {
          const ssize_t n =
              write(conn.fd.get(), conn.out.data() + conn.out_offset,
                    conn.out.size() - conn.out_offset);
          if (n > 0) {
            conn.out_offset += static_cast<size_t>(n);
            conn.deadline_ms = now + opts_.idle_timeout_ms;
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            conn.done = true;
            break;
          }
        }
        if (conn.out_offset == conn.out.size()) conn.done = true;
      }
      if (now > conn.deadline_ms) conn.done = true;
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Connection& c) { return c.done; }),
                conns.end());

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[16];
      while (read(wake_read_.get(), drain, sizeof(drain)) > 0) {
      }
    }
  }
}

}  // namespace flexpath
