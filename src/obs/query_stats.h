#ifndef FLEXPATH_OBS_QUERY_STATS_H_
#define FLEXPATH_OBS_QUERY_STATS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/resource_usage.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "query/tpq.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Canonical shape key of a TPQ, pg_stat_statements-style: tags are
/// rendered by *name* (so the key survives tag-id reassignment across
/// corpora), edges by axis (c/d), contains and attribute predicates by
/// their canonical text, and the answer node by a positional marker.
/// Child order and variable numbering are normalized away — two queries
/// built in different orders, or parsed from differently-spelled XPath,
/// share a key iff they are the same tree pattern.
std::string QueryShapeKey(const Tpq& q, const TagDict& dict);

/// 64-bit FNV-1a hash of QueryShapeKey — the fingerprint per-shape
/// statistics aggregate under.
uint64_t FingerprintTpq(const Tpq& q, const TagDict& dict);

/// Fingerprint rendered as 16 lowercase hex digits (JSON-safe; 64-bit
/// integers don't survive a double round-trip).
std::string FingerprintHex(uint64_t fingerprint);

/// One finished query execution, as reported by the top-K processor.
struct QueryExecution {
  uint64_t fingerprint = 0;
  std::string query;       ///< Human-readable pattern (Tpq::ToString).
  std::string algorithm;   ///< "DPO" / "SSO" / "Hybrid".
  std::string scheme;      ///< Ranking scheme name.
  size_t k = 0;
  double latency_ms = 0.0;
  size_t relaxations = 0;          ///< Relaxation rounds applied/encoded.
  uint64_t predicates_dropped = 0; ///< Predicates relaxed away.
  double penalty = 0.0;            ///< Cumulative structural penalty applied.
  size_t answers = 0;
  bool error = false;
  /// What the run consumed (TopKResult::usage): thread-CPU ms across the
  /// coordinator and pool workers, plus the counter-derived work figures.
  ResourceUsage usage;
  /// True when a soft budget (TopKOptions::max_cpu_ms / max_tuples)
  /// stopped the run early.
  bool budget_exhausted = false;
};

/// Aggregated statistics for one query shape (a Snapshot copy).
struct ShapeStatsSnapshot {
  uint64_t fingerprint = 0;
  std::string example_query;  ///< First-seen rendering of the shape.
  uint64_t executions = 0;
  uint64_t errors = 0;
  HistogramSnapshot latency_ms;
  uint64_t total_relaxations = 0;
  uint64_t total_predicates_dropped = 0;
  double total_penalty = 0.0;
  uint64_t total_answers = 0;
  double total_cpu_ms = 0.0;
  uint64_t total_tuples_produced = 0;
  uint64_t total_bytes_touched = 0;
  uint64_t budget_exhausted = 0;  ///< Executions that tripped a budget.

  double MeanCpuMs() const {
    return executions == 0 ? 0.0
                           : total_cpu_ms / static_cast<double>(executions);
  }
  double MeanTuplesProduced() const {
    return executions == 0
               ? 0.0
               : static_cast<double>(total_tuples_produced) /
                     static_cast<double>(executions);
  }
  double MeanBytesTouched() const {
    return executions == 0
               ? 0.0
               : static_cast<double>(total_bytes_touched) /
                     static_cast<double>(executions);
  }
  double MeanRelaxations() const {
    return executions == 0
               ? 0.0
               : static_cast<double>(total_relaxations) /
                     static_cast<double>(executions);
  }
  double MeanPredicatesDropped() const {
    return executions == 0
               ? 0.0
               : static_cast<double>(total_predicates_dropped) /
                     static_cast<double>(executions);
  }
  double MeanPenalty() const {
    return executions == 0 ? 0.0
                           : total_penalty / static_cast<double>(executions);
  }
  double MeanAnswers() const {
    return executions == 0 ? 0.0
                           : static_cast<double>(total_answers) /
                                 static_cast<double>(executions);
  }
};

/// One slow-query log entry: the execution, the threshold it crossed, and
/// (when the run collected one) its trace.
struct SlowQueryEntry {
  QueryExecution execution;
  double threshold_ms = 0.0;
  std::shared_ptr<const QueryTrace> trace;  ///< May be null.
};

struct QueryStatsOptions {
  size_t max_shapes = 256;       ///< LRU-evicted beyond this.
  size_t ring_capacity = 128;    ///< Recent-executions ring buffer.
  size_t slowlog_capacity = 64;  ///< Slow-query log ring buffer.
};

/// How many entries each bounded structure has dropped since construction
/// (or the last Reset). Monotone; also mirrored as query_stats.*
/// eviction counters in the global metrics registry.
struct QueryStatsEvictions {
  uint64_t shapes = 0;   ///< LRU shape evictions past max_shapes.
  uint64_t ring = 0;     ///< Recent-ring entries displaced.
  uint64_t slowlog = 0;  ///< Slow-log entries displaced.
};

/// Cumulative, fingerprint-keyed query statistics: per-shape execution
/// counts and latency histograms, a bounded ring buffer of recent
/// executions, and a slow-query log. All methods are thread-safe; the
/// store is deliberately off the per-tuple hot path (one Record() call
/// per query).
class QueryStatsStore {
 public:
  explicit QueryStatsStore(QueryStatsOptions opts = {});

  QueryStatsStore(const QueryStatsStore&) = delete;
  QueryStatsStore& operator=(const QueryStatsStore&) = delete;

  /// Folds one execution into its shape's aggregate and the recent ring.
  void Record(const QueryExecution& e);

  /// Appends to the slow-query log (callers decide the threshold test so
  /// they can attach the trace only when one exists).
  void RecordSlow(const QueryExecution& e, double threshold_ms,
                  std::shared_ptr<const QueryTrace> trace);

  /// Replaces the capacity options at runtime, trimming each structure
  /// (oldest-first; least-recently-touched shapes first) if the new
  /// capacities are smaller. Trims count as evictions.
  void SetOptions(const QueryStatsOptions& opts);
  QueryStatsOptions options() const;

  /// Cumulative eviction counts (shapes / recent ring / slow log).
  QueryStatsEvictions Evictions() const;

  /// Per-shape aggregates, most-executed first.
  std::vector<ShapeStatsSnapshot> Shapes() const;

  /// Recent executions, oldest first; at most ring_capacity entries.
  std::vector<QueryExecution> Recent() const;

  /// The newest `limit` recent executions, oldest first. The admin
  /// endpoint's /statsz?recent=N path — callers cap N so a scrape can't
  /// ask for an unbounded render.
  std::vector<QueryExecution> Recent(size_t limit) const;

  /// Slow-query entries, oldest first; at most slowlog_capacity entries.
  std::vector<SlowQueryEntry> SlowLog() const;

  size_t shape_count() const;
  void Reset();

  /// One JSON object:
  ///   {"shapes":[{"fingerprint":"...","query":...,"executions":...,
  ///               "errors":...,"latency_ms":{count,sum,mean,p50,p99,min,
  ///               max},"relaxations_mean":...,"predicates_dropped_mean":
  ///               ...,"penalty_mean":...,"answers_mean":...}],
  ///    "recent":[...], "slow_log":[...]}
  std::string ToJson() const;

  /// Same, but the "recent" and "slow_log" arrays keep only the newest
  /// `recent_limit` entries each (still rendered oldest first).
  std::string ToJson(size_t recent_limit) const;

 private:
  struct ShapeStats {
    std::string example_query;
    uint64_t executions = 0;
    uint64_t errors = 0;
    Histogram latency_ms{Histogram::DefaultLatencyBoundsMs()};
    uint64_t total_relaxations = 0;
    uint64_t total_predicates_dropped = 0;
    double total_penalty = 0.0;
    uint64_t total_answers = 0;
    double total_cpu_ms = 0.0;
    uint64_t total_tuples_produced = 0;
    uint64_t total_bytes_touched = 0;
    uint64_t budget_exhausted = 0;
    uint64_t last_touched = 0;  ///< Record() sequence, for LRU eviction.
  };

  void EvictShapesLocked() REQUIRES(mu_);
  void TrimRingsLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  QueryStatsOptions opts_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, ShapeStats> shapes_ GUARDED_BY(mu_);
  std::deque<QueryExecution> ring_ GUARDED_BY(mu_);
  std::deque<SlowQueryEntry> slowlog_ GUARDED_BY(mu_);
  uint64_t seq_ GUARDED_BY(mu_) = 0;
  QueryStatsEvictions evictions_ GUARDED_BY(mu_);
};

}  // namespace flexpath

#endif  // FLEXPATH_OBS_QUERY_STATS_H_
