#include "obs/query_stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/json_util.h"

namespace flexpath {

namespace {

/// Order-insensitive canonical rendering of the subtree rooted at `var`.
/// Mirrors Tpq::CanonicalString but renders tags by name so the key is
/// stable across corpora with different interning orders.
std::string ShapeSubtree(const Tpq& q, VarId var, const TagDict& dict,
                         bool is_root) {
  const TpqNode& n = q.node(var);
  std::string out = "(";
  out += is_root ? 'r' : (q.AxisOf(var) == Axis::kChild ? 'c' : 'd');
  out += ':';
  out += n.tag == kInvalidTag ? "*" : dict.Name(n.tag);
  if (var == q.distinguished()) out += '!';
  std::vector<std::string> preds;
  // Sequential appends: GCC 12's -Wrestrict misfires on "C" + ToString().
  for (const FtExpr& e : n.contains) {
    std::string pr = "C";
    pr += e.ToString();
    preds.push_back(std::move(pr));
  }
  for (const AttrPred& a : n.attr_preds) {
    std::string pr = "A";
    pr += a.ToString(&dict);
    preds.push_back(std::move(pr));
  }
  std::vector<std::string> kids;
  for (VarId c : q.Children(var)) {
    kids.push_back(ShapeSubtree(q, c, dict, false));
  }
  std::sort(preds.begin(), preds.end());
  std::sort(kids.begin(), kids.end());
  for (const std::string& p : preds) out += p;
  for (const std::string& k : kids) out += k;
  out += ')';
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendHistogramJson(std::string* out, const HistogramSnapshot& h) {
  *out += "{\"count\":" + std::to_string(h.count);
  *out += ",\"sum\":" + FormatDouble(h.sum);
  *out += ",\"mean\":" + FormatDouble(h.Mean());
  *out += ",\"p50\":" + FormatDouble(h.Quantile(0.5));
  *out += ",\"p99\":" + FormatDouble(h.Quantile(0.99));
  *out += ",\"min\":" + FormatDouble(h.min);
  *out += ",\"max\":" + FormatDouble(h.max);
  *out += '}';
}

void AppendUsageJson(std::string* out, const ResourceUsage& u) {
  *out += '{';
  bool first = true;
  u.ForEach([&](const char* name, double value) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    *out += name;
    *out += "\":";
    *out += FormatDouble(value);
  });
  *out += '}';
}

void AppendExecutionJson(std::string* out, const QueryExecution& e) {
  *out += "{\"fingerprint\":\"" + FingerprintHex(e.fingerprint);
  *out += "\",\"query\":\"" + JsonEscape(e.query);
  *out += "\",\"algorithm\":\"" + JsonEscape(e.algorithm);
  *out += "\",\"scheme\":\"" + JsonEscape(e.scheme);
  *out += "\",\"k\":" + std::to_string(e.k);
  *out += ",\"latency_ms\":" + FormatDouble(e.latency_ms);
  *out += ",\"relaxations\":" + std::to_string(e.relaxations);
  *out += ",\"predicates_dropped\":" + std::to_string(e.predicates_dropped);
  *out += ",\"penalty\":" + FormatDouble(e.penalty);
  *out += ",\"answers\":" + std::to_string(e.answers);
  *out += ",\"error\":";
  *out += e.error ? "true" : "false";
  *out += ",\"budget_exhausted\":";
  *out += e.budget_exhausted ? "true" : "false";
  *out += ",\"usage\":";
  AppendUsageJson(out, e.usage);
  *out += '}';
}

/// Mirrors eviction deltas into the global registry as they happen.
/// Unlike ResultCache (a singleton), many stores may coexist, so the
/// metrics aggregate across all of them; Counter::Inc is thread-safe.
void ExportEvictionDeltas(uint64_t shapes, uint64_t ring, uint64_t slowlog) {
  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* m_shapes = reg.counter("query_stats.shape_evictions");
  static Counter* m_ring = reg.counter("query_stats.ring_evictions");
  static Counter* m_slowlog = reg.counter("query_stats.slowlog_evictions");
  if (shapes > 0) m_shapes->Inc(shapes);
  if (ring > 0) m_ring->Inc(ring);
  if (slowlog > 0) m_slowlog->Inc(slowlog);
}

}  // namespace

std::string QueryShapeKey(const Tpq& q, const TagDict& dict) {
  if (q.empty()) return "()";
  return ShapeSubtree(q, q.root(), dict, true);
}

uint64_t FingerprintTpq(const Tpq& q, const TagDict& dict) {
  return Fnv1a64(QueryShapeKey(q, dict));
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

QueryStatsStore::QueryStatsStore(QueryStatsOptions opts) : opts_(opts) {}

void QueryStatsStore::Record(const QueryExecution& e) {
  MutexLock lock(mu_);
  ++seq_;
  ShapeStats& s = shapes_[e.fingerprint];
  if (s.executions == 0) s.example_query = e.query;
  ++s.executions;
  if (e.error) ++s.errors;
  s.latency_ms.Observe(e.latency_ms);
  s.total_relaxations += e.relaxations;
  s.total_predicates_dropped += e.predicates_dropped;
  s.total_penalty += e.penalty;
  s.total_answers += e.answers;
  s.total_cpu_ms += e.usage.cpu_ms;
  s.total_tuples_produced += e.usage.tuples_produced;
  s.total_bytes_touched += e.usage.bytes_touched;
  if (e.budget_exhausted) ++s.budget_exhausted;
  s.last_touched = seq_;
  EvictShapesLocked();

  ring_.push_back(e);
  uint64_t dropped = 0;
  while (ring_.size() > opts_.ring_capacity) {
    ring_.pop_front();
    ++dropped;
  }
  evictions_.ring += dropped;
  ExportEvictionDeltas(0, dropped, 0);
}

void QueryStatsStore::RecordSlow(const QueryExecution& e, double threshold_ms,
                                 std::shared_ptr<const QueryTrace> trace) {
  MutexLock lock(mu_);
  slowlog_.push_back(SlowQueryEntry{e, threshold_ms, std::move(trace)});
  uint64_t dropped = 0;
  while (slowlog_.size() > opts_.slowlog_capacity) {
    slowlog_.pop_front();
    ++dropped;
  }
  evictions_.slowlog += dropped;
  ExportEvictionDeltas(0, 0, dropped);
}

void QueryStatsStore::SetOptions(const QueryStatsOptions& opts) {
  MutexLock lock(mu_);
  opts_ = opts;
  EvictShapesLocked();
  TrimRingsLocked();
}

QueryStatsOptions QueryStatsStore::options() const {
  MutexLock lock(mu_);
  return opts_;
}

QueryStatsEvictions QueryStatsStore::Evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

void QueryStatsStore::EvictShapesLocked() {
  uint64_t dropped = 0;
  while (shapes_.size() > opts_.max_shapes) {
    auto victim = shapes_.begin();
    for (auto it = shapes_.begin(); it != shapes_.end(); ++it) {
      if (it->second.last_touched < victim->second.last_touched) victim = it;
    }
    shapes_.erase(victim);
    ++dropped;
  }
  evictions_.shapes += dropped;
  ExportEvictionDeltas(dropped, 0, 0);
}

void QueryStatsStore::TrimRingsLocked() {
  uint64_t ring_dropped = 0;
  while (ring_.size() > opts_.ring_capacity) {
    ring_.pop_front();
    ++ring_dropped;
  }
  uint64_t slow_dropped = 0;
  while (slowlog_.size() > opts_.slowlog_capacity) {
    slowlog_.pop_front();
    ++slow_dropped;
  }
  evictions_.ring += ring_dropped;
  evictions_.slowlog += slow_dropped;
  ExportEvictionDeltas(0, ring_dropped, slow_dropped);
}

std::vector<ShapeStatsSnapshot> QueryStatsStore::Shapes() const {
  MutexLock lock(mu_);
  std::vector<ShapeStatsSnapshot> out;
  out.reserve(shapes_.size());
  for (const auto& [fingerprint, s] : shapes_) {
    ShapeStatsSnapshot snap;
    snap.fingerprint = fingerprint;
    snap.example_query = s.example_query;
    snap.executions = s.executions;
    snap.errors = s.errors;
    snap.latency_ms = s.latency_ms.Snapshot();
    snap.total_relaxations = s.total_relaxations;
    snap.total_predicates_dropped = s.total_predicates_dropped;
    snap.total_penalty = s.total_penalty;
    snap.total_answers = s.total_answers;
    snap.total_cpu_ms = s.total_cpu_ms;
    snap.total_tuples_produced = s.total_tuples_produced;
    snap.total_bytes_touched = s.total_bytes_touched;
    snap.budget_exhausted = s.budget_exhausted;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const ShapeStatsSnapshot& a, const ShapeStatsSnapshot& b) {
              if (a.executions != b.executions) {
                return a.executions > b.executions;
              }
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

std::vector<QueryExecution> QueryStatsStore::Recent() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<QueryExecution> QueryStatsStore::Recent(size_t limit) const {
  MutexLock lock(mu_);
  const size_t n = std::min(limit, ring_.size());
  return {ring_.end() - static_cast<std::ptrdiff_t>(n), ring_.end()};
}

std::vector<SlowQueryEntry> QueryStatsStore::SlowLog() const {
  MutexLock lock(mu_);
  return {slowlog_.begin(), slowlog_.end()};
}

size_t QueryStatsStore::shape_count() const {
  MutexLock lock(mu_);
  return shapes_.size();
}

void QueryStatsStore::Reset() {
  MutexLock lock(mu_);
  shapes_.clear();
  ring_.clear();
  slowlog_.clear();
  seq_ = 0;
  evictions_ = {};
}

std::string QueryStatsStore::ToJson() const {
  return ToJson(std::numeric_limits<size_t>::max());
}

std::string QueryStatsStore::ToJson(size_t recent_limit) const {
  const std::vector<ShapeStatsSnapshot> shapes = Shapes();
  std::vector<QueryExecution> recent = Recent(recent_limit);
  std::vector<SlowQueryEntry> slow = SlowLog();
  if (slow.size() > recent_limit) {
    slow.erase(slow.begin(),
               slow.end() - static_cast<std::ptrdiff_t>(recent_limit));
  }

  std::string out = "{\"shapes\":[";
  bool first = true;
  for (const ShapeStatsSnapshot& s : shapes) {
    if (!first) out += ',';
    first = false;
    out += "{\"fingerprint\":\"" + FingerprintHex(s.fingerprint);
    out += "\",\"query\":\"" + JsonEscape(s.example_query);
    out += "\",\"executions\":" + std::to_string(s.executions);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"latency_ms\":";
    AppendHistogramJson(&out, s.latency_ms);
    out += ",\"relaxations_mean\":" + FormatDouble(s.MeanRelaxations());
    out += ",\"predicates_dropped_mean\":" +
           FormatDouble(s.MeanPredicatesDropped());
    out += ",\"penalty_mean\":" + FormatDouble(s.MeanPenalty());
    out += ",\"answers_mean\":" + FormatDouble(s.MeanAnswers());
    out += ",\"cpu_ms_mean\":" + FormatDouble(s.MeanCpuMs());
    out += ",\"tuples_produced_mean\":" + FormatDouble(s.MeanTuplesProduced());
    out += ",\"bytes_touched_mean\":" + FormatDouble(s.MeanBytesTouched());
    out += ",\"budget_exhausted\":" + std::to_string(s.budget_exhausted);
    out += '}';
  }
  const QueryStatsEvictions ev = Evictions();
  out += "],\"evictions\":{\"shapes\":" + std::to_string(ev.shapes);
  out += ",\"ring\":" + std::to_string(ev.ring);
  out += ",\"slowlog\":" + std::to_string(ev.slowlog);
  out += "},\"recent\":[";
  first = true;
  for (const QueryExecution& e : recent) {
    if (!first) out += ',';
    first = false;
    AppendExecutionJson(&out, e);
  }
  out += "],\"slow_log\":[";
  first = true;
  for (const SlowQueryEntry& entry : slow) {
    if (!first) out += ',';
    first = false;
    out += "{\"threshold_ms\":" + FormatDouble(entry.threshold_ms);
    out += ",\"execution\":";
    AppendExecutionJson(&out, entry.execution);
    if (entry.trace != nullptr) {
      out += ",\"trace\":" + TraceToJson(*entry.trace);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace flexpath
