#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <ctime>

#include "common/thread_pool.h"

namespace flexpath {

namespace {

/// Where the crash handler writes; fixed storage because a signal handler
/// cannot touch std::string.
char g_crash_path[512] = {0};

/// Formats `v` in decimal into `buf` (must hold >= 21 bytes); returns the
/// digit count. No snprintf — it is not async-signal-safe.
size_t FormatU64(uint64_t v, char* buf) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

/// A write(2)-backed buffer usable from a signal handler.
class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  ~FdWriter() { Flush(); }

  void Str(const char* s) {
    while (*s != '\0') Byte(*s++);
  }
  void U64(uint64_t v) {
    char buf[21];
    const size_t n = FormatU64(v, buf);
    for (size_t i = 0; i < n; ++i) Byte(buf[i]);
  }
  /// Fixed three decimal places — enough for latency/CPU milliseconds,
  /// and integer-only formatting stays signal-safe.
  void F3(double v) {
    if (v < 0) {
      Byte('-');
      v = -v;
    }
    const uint64_t milli = static_cast<uint64_t>(v * 1000.0 + 0.5);
    U64(milli / 1000);
    Byte('.');
    const uint64_t frac = milli % 1000;
    Byte(static_cast<char>('0' + frac / 100));
    Byte(static_cast<char>('0' + frac / 10 % 10));
    Byte(static_cast<char>('0' + frac % 10));
  }
  void Flush() {
    size_t off = 0;
    while (off < len_) {
      const ssize_t n = write(fd_, buf_ + off, len_ - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    len_ = 0;
  }

 private:
  void Byte(char c) {
    if (len_ == sizeof(buf_)) Flush();
    buf_[len_++] = c;
  }

  int fd_;
  char buf_[512];
  size_t len_ = 0;
};

void CrashHandler(int signo) {
  if (g_crash_path[0] != '\0') {
    const int fd =
        open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::Global().DumpTo(fd);
      close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition; re-raising kills the
  // process with the original signal, preserving exit status and cores.
  raise(signo);
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kQueryStart:
      return "query_start";
    case FlightEventType::kQueryEnd:
      return "query_end";
    case FlightEventType::kRoundStart:
      return "round_start";
    case FlightEventType::kRoundSkip:
      return "round_skip";
    case FlightEventType::kRoundDiscard:
      return "round_discard";
    case FlightEventType::kCacheEvict:
      return "cache_evict";
    case FlightEventType::kSlowQuery:
      return "slow_query";
    case FlightEventType::kBudgetTrip:
      return "budget_trip";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() {
  timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0) {
    base_ns_ = static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<uint64_t>(ts.tv_nsec);
  }
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint64_t FlightRecorder::NowUs() const {
  timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  const uint64_t now = static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
                       static_cast<uint64_t>(ts.tv_nsec);
  return (now - base_ns_) / 1000;
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b,
                            double d) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (kCapacity - 1)];
  slot.state.store(2 * seq + 1, std::memory_order_release);
  slot.ts_us.store(NowUs(), std::memory_order_relaxed);
  const int worker = ThreadPool::CurrentWorkerId();
  slot.tid.store(worker < 0 ? 1u : static_cast<uint32_t>(worker) + 2,
                 std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.d_bits.store(std::bit_cast<uint64_t>(d), std::memory_order_relaxed);
  slot.state.store(2 * seq + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq & (kCapacity - 1)];
    const uint64_t published = 2 * seq + 2;
    if (slot.state.load(std::memory_order_acquire) != published) continue;
    FlightEvent e;
    e.seq = seq;
    e.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    e.tid = slot.tid.load(std::memory_order_relaxed);
    e.type = static_cast<FlightEventType>(
        slot.type.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    e.d = std::bit_cast<double>(slot.d_bits.load(std::memory_order_relaxed));
    // A writer that lapped us mid-copy bumped the state; the copy is then
    // a mix of two events, so drop it.
    if (slot.state.load(std::memory_order_acquire) != published) continue;
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "{\"recorded\":";
  out += std::to_string(recorded());
  out += ",\"capacity\":";
  out += std::to_string(kCapacity);
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i > 0) out += ',';
    out += "{\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"ts_us\":";
    out += std::to_string(e.ts_us);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"type\":\"";
    out += FlightEventTypeName(e.type);
    out += "\",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += ",\"d\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", e.d);
    out += buf;
    out += '}';
  }
  out += "]}";
  return out;
}

void FlightRecorder::DumpTo(int fd) const {
  FdWriter w(fd);
  w.Str("{\"recorded\":");
  w.U64(next_.load(std::memory_order_acquire));
  w.Str(",\"capacity\":");
  w.U64(kCapacity);
  w.Str(",\"events\":[");
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  bool first = true;
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq & (kCapacity - 1)];
    const uint64_t published = 2 * seq + 2;
    if (slot.state.load(std::memory_order_acquire) != published) continue;
    if (!first) w.Str(",");
    first = false;
    w.Str("{\"seq\":");
    w.U64(seq);
    w.Str(",\"ts_us\":");
    w.U64(slot.ts_us.load(std::memory_order_relaxed));
    w.Str(",\"tid\":");
    w.U64(slot.tid.load(std::memory_order_relaxed));
    w.Str(",\"type\":\"");
    w.Str(FlightEventTypeName(static_cast<FlightEventType>(
        slot.type.load(std::memory_order_relaxed))));
    w.Str("\",\"a\":");
    w.U64(slot.a.load(std::memory_order_relaxed));
    w.Str(",\"b\":");
    w.U64(slot.b.load(std::memory_order_relaxed));
    w.Str(",\"d\":");
    w.F3(std::bit_cast<double>(
        slot.d_bits.load(std::memory_order_relaxed)));
    w.Str("}");
  }
  w.Str("]}\n");
  w.Flush();
}

void FlightRecorder::Reset() {
  next_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.state.store(0, std::memory_order_relaxed);
  }
}

void FlightRecorder::InstallCrashHandler(const char* path) {
  std::strncpy(g_crash_path, path, sizeof(g_crash_path) - 1);
  g_crash_path[sizeof(g_crash_path) - 1] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sigemptyset(&sa.sa_mask);
  // One shot: the handler runs once, the disposition reverts to default,
  // and the re-raise terminates — a fault inside the handler cannot loop.
  sa.sa_flags = SA_RESETHAND;
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(signo, &sa, nullptr);
  }
}

}  // namespace flexpath
