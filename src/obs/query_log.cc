#include "obs/query_log.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/json_util.h"

namespace flexpath {

namespace {

/// Minimal JSON scanner for the flat (one nested "usage" object) records
/// this log writes. Not a general JSON parser: tolerates whitespace,
/// string escapes, numbers, booleans and one object level — exactly the
/// grammar QueryLogRecordToJson emits, plus unknown keys of those shapes.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool Fail(std::string msg) {
    if (error_.empty()) {
      error_ = std::move(msg) + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // The writer only \u-escapes control characters (< 0x20), so a
          // single byte suffices; anything else is preserved as UTF-8 by
          // the escaper and never reaches this branch.
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    last_number_token_.assign(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(last_number_token_.c_str(), &end);
    if (end != last_number_token_.c_str() + last_number_token_.size()) {
      return Fail("bad number");
    }
    return true;
  }

  /// Raw text of the most recent number parsed — lets callers re-read
  /// full-width uint64 fields (digests) that a double round-trip would
  /// truncate past 2^53.
  const std::string& last_number_token() const { return last_number_token_; }

  /// Parses any value of the writer's grammar, keeping only what the
  /// caller asked for: string into `*s` (when non-null), number/bool into
  /// `*d`. Nested objects are handed to `object_cb(key-scanner)`.
  template <typename ObjectFn>
  bool ParseValue(std::string* s, double* d, ObjectFn&& object_cb) {
    const char c = Peek();
    if (c == '"') {
      std::string tmp;
      if (!ParseString(s != nullptr ? s : &tmp)) return false;
      return true;
    }
    if (c == '{') return object_cb(*this);
    if (c == 't') return ConsumeWord("true", d, 1.0);
    if (c == 'f') return ConsumeWord("false", d, 0.0);
    if (c == 'n') return ConsumeWord("null", d, 0.0);
    double tmp = 0.0;
    return ParseNumber(d != nullptr ? d : &tmp);
  }

 private:
  bool ConsumeWord(std::string_view word, double* d, double value) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    if (d != nullptr) *d = value;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
  std::string last_number_token_;
};

/// Exact uint64 from a number token (digests use all 64 bits; the double
/// path would round them).
uint64_t ParseU64Token(const std::string& token) {
  return std::strtoull(token.c_str(), nullptr, 10);
}

/// Parses a `{ "key": value, ... }` object, invoking `field_cb(key,
/// scanner)` per member; the callback must consume exactly one value.
template <typename FieldFn>
bool ParseObject(JsonScanner& scanner, FieldFn&& field_cb) {
  if (!scanner.Consume('{')) return false;
  if (scanner.Peek() == '}') return scanner.Consume('}');
  for (;;) {
    std::string key;
    if (!scanner.ParseString(&key)) return false;
    if (!scanner.Consume(':')) return false;
    if (!field_cb(key)) return false;
    const char c = scanner.Peek();
    if (c == ',') {
      scanner.Consume(',');
      continue;
    }
    return scanner.Consume('}');
  }
}

void AppendField(std::string& out, const char* key, const std::string& value,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":\"";
  out += JsonEscape(value);
  out += '"';
}

void AppendField(std::string& out, const char* key, double value,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += FormatDouble(value);
}

void AppendField(std::string& out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string QueryLogRecordToJson(const QueryLogRecord& r) {
  std::string out = "{";
  bool first = true;
  AppendField(out, "ts", r.ts_unix_s, &first);
  AppendField(out, "query", r.query, &first);
  AppendField(out, "fingerprint", r.fingerprint, &first);
  AppendField(out, "algorithm", r.algorithm, &first);
  AppendField(out, "scheme", r.scheme, &first);
  AppendField(out, "k", r.k, &first);
  AppendField(out, "threads", r.threads, &first);
  AppendField(out, "cache_tier", r.cache_tier, &first);
  AppendField(out, "latency_ms", r.latency_ms, &first);
  AppendField(out, "answers", r.answers, &first);
  AppendField(out, "relaxations", r.relaxations, &first);
  AppendField(out, "predicates_dropped", r.predicates_dropped, &first);
  AppendField(out, "penalty", r.penalty, &first);
  if (!first) out += ',';
  out += "\"budget_exhausted\":";
  out += r.budget_exhausted ? "true" : "false";
  AppendField(out, "answers_digest", r.answers_digest, &first);
  out += ",\"usage\":{";
  bool usage_first = true;
  r.usage.ForEach([&out, &usage_first](const char* name, double value) {
    AppendField(out, name, value, &usage_first);
  });
  out += "}}";
  return out;
}

bool ParseQueryLogRecord(std::string_view line, QueryLogRecord* out,
                         std::string* error) {
  *out = QueryLogRecord();
  JsonScanner scanner(line);
  const auto skip_object = [](JsonScanner& s) {
    return ParseObject(s, [&s](const std::string&) {
      return s.ParseValue(nullptr, nullptr,
                          [](JsonScanner&) { return false; });
    });
  };
  const auto parse_usage = [out](JsonScanner& s) {
    return ParseObject(s, [out, &s](const std::string& key) {
      double v = 0.0;
      if (!s.ParseValue(nullptr, &v,
                        [](JsonScanner&) { return false; })) {
        return false;
      }
      ResourceUsage& u = out->usage;
      if (key == "cpu_ms") u.cpu_ms = v;
      else if (key == "tuples_scanned") u.tuples_scanned = static_cast<uint64_t>(v);
      else if (key == "tuples_produced") u.tuples_produced = static_cast<uint64_t>(v);
      else if (key == "bytes_touched") u.bytes_touched = static_cast<uint64_t>(v);
      else if (key == "cache_hits") u.cache_hits = static_cast<uint64_t>(v);
      else if (key == "cache_misses") u.cache_misses = static_cast<uint64_t>(v);
      else if (key == "rounds_executed") u.rounds_executed = static_cast<uint64_t>(v);
      else if (key == "rounds_pruned") u.rounds_pruned = static_cast<uint64_t>(v);
      return true;
    });
  };
  const bool ok = ParseObject(scanner, [&](const std::string& key) {
    if (key == "usage") return parse_usage(scanner);
    std::string s;
    double d = 0.0;
    if (!scanner.ParseValue(&s, &d, skip_object)) return false;
    if (key == "ts") out->ts_unix_s = d;
    else if (key == "query") out->query = std::move(s);
    else if (key == "fingerprint") {
      out->fingerprint = ParseU64Token(scanner.last_number_token());
    } else if (key == "algorithm") out->algorithm = std::move(s);
    else if (key == "scheme") out->scheme = std::move(s);
    else if (key == "k") out->k = static_cast<uint64_t>(d);
    else if (key == "threads") out->threads = static_cast<uint64_t>(d);
    else if (key == "cache_tier") out->cache_tier = std::move(s);
    else if (key == "latency_ms") out->latency_ms = d;
    else if (key == "answers") out->answers = static_cast<uint64_t>(d);
    else if (key == "relaxations") out->relaxations = static_cast<uint64_t>(d);
    else if (key == "predicates_dropped") {
      out->predicates_dropped = static_cast<uint64_t>(d);
    } else if (key == "penalty") out->penalty = d;
    else if (key == "budget_exhausted") out->budget_exhausted = d != 0.0;
    else if (key == "answers_digest") {
      out->answers_digest = ParseU64Token(scanner.last_number_token());
    }
    return true;
  });
  if (!ok || !scanner.AtEnd()) {
    if (error != nullptr) {
      *error = scanner.error().empty() ? "trailing garbage" : scanner.error();
    }
    return false;
  }
  return true;
}

Result<std::vector<QueryLogRecord>> ReadQueryLog(const std::string& path,
                                                 size_t* truncated_lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open query log: " + path);
  }
  if (truncated_lines != nullptr) *truncated_lines = 0;
  std::vector<QueryLogRecord> records;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const bool had_newline = !in.eof();
    if (line.empty()) continue;
    QueryLogRecord record;
    std::string error;
    if (!ParseQueryLogRecord(line, &record, &error)) {
      if (!had_newline) {
        // Partial final line: a capture cut off mid-append (crash or
        // kill -9). Drop it rather than fail the whole replay.
        if (truncated_lines != nullptr) ++*truncated_lines;
        break;
      }
      return Status::ParseError("query log " + path + " line " +
                                std::to_string(line_no) + ": " + error);
    }
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::unique_ptr<QueryLogWriter>> QueryLogWriter::Open(
    const std::string& path) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open query log for append: " +
                                   path);
  }
  return std::unique_ptr<QueryLogWriter>(
      new QueryLogWriter(path, std::move(out)));
}

QueryLogWriter::QueryLogWriter(std::string path, std::ofstream out)
    : path_(std::move(path)), out_(std::move(out)) {}

void QueryLogWriter::Append(const QueryLogRecord& record) {
  const std::string line = QueryLogRecordToJson(record);
  MutexLock lock(mu_);
  out_ << line << '\n';
  out_.flush();
  ++records_;
}

uint64_t QueryLogWriter::records_written() const {
  MutexLock lock(mu_);
  return records_;
}

}  // namespace flexpath
