#ifndef FLEXPATH_OBS_QUERY_LOG_H_
#define FLEXPATH_OBS_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/resource_usage.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace flexpath {

/// One captured top-K run: everything flexpath_replay needs to re-execute
/// the query with the same options and check it still produces the same
/// answers. Serialized as one JSON object per line (JSON-lines), so logs
/// append cheaply, survive crashes up to the last complete line, and
/// stream through standard tooling.
struct QueryLogRecord {
  double ts_unix_s = 0.0;       ///< Wall-clock capture time (Unix seconds).
  std::string query;            ///< The query text as submitted (re-parseable).
  uint64_t fingerprint = 0;     ///< Shape fingerprint (FingerprintTpq).
  std::string algorithm;        ///< "DPO" / "SSO" / "Hybrid".
  std::string scheme;           ///< Ranking scheme name.
  uint64_t k = 0;
  uint64_t threads = 0;         ///< TopKOptions::num_threads as run.
  std::string cache_tier;       ///< "off" / "run" / "shared".
  double latency_ms = 0.0;
  uint64_t answers = 0;
  uint64_t relaxations = 0;
  uint64_t predicates_dropped = 0;
  double penalty = 0.0;
  bool budget_exhausted = false;
  uint64_t answers_digest = 0;  ///< AnswersDigest over the result list.
  ResourceUsage usage;
};

/// Renders one record as a single JSON line (no trailing newline).
std::string QueryLogRecordToJson(const QueryLogRecord& record);

/// Parses one JSON line back into a record. Unknown keys are skipped (so
/// the format can grow); missing keys keep their zero defaults. Returns
/// false — with a reason in `error` when non-null — on malformed JSON.
bool ParseQueryLogRecord(std::string_view line, QueryLogRecord* out,
                         std::string* error = nullptr);

/// Reads a JSON-lines query log. Blank lines are skipped; a malformed
/// line fails the whole read (a capture log is machine-written — damage
/// means truncation or corruption worth surfacing, not tolerating).
/// A trailing partial line (crash mid-append) is the one exception: it is
/// dropped with a count in `truncated_lines` when non-null.
Result<std::vector<QueryLogRecord>> ReadQueryLog(const std::string& path,
                                                 size_t* truncated_lines =
                                                     nullptr);

/// Appends query-log records to a file, one JSON line each, flushed per
/// record. Thread-safe: concurrent Append calls serialize under a mutex,
/// so lines never interleave. Opt-in by construction — no writer, no
/// capture cost anywhere.
class QueryLogWriter {
 public:
  /// Opens `path` for appending (creating it if needed).
  static Result<std::unique_ptr<QueryLogWriter>> Open(const std::string& path);

  void Append(const QueryLogRecord& record);

  uint64_t records_written() const;
  const std::string& path() const { return path_; }

 private:
  explicit QueryLogWriter(std::string path, std::ofstream out);

  const std::string path_;
  mutable Mutex mu_;
  std::ofstream out_ GUARDED_BY(mu_);
  uint64_t records_ GUARDED_BY(mu_) = 0;
};

}  // namespace flexpath

#endif  // FLEXPATH_OBS_QUERY_LOG_H_
