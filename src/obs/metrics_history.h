#ifndef FLEXPATH_OBS_METRICS_HISTORY_H_
#define FLEXPATH_OBS_METRICS_HISTORY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace flexpath {

struct MetricsHistoryOptions {
  /// Sampling period of the background snapshotter.
  double interval_s = 1.0;
  /// Ring capacity per metric: with the 1s default interval, 10 minutes
  /// of history per metric.
  size_t capacity = 600;
};

/// Windowed view of one metric's history. For counters (and histogram
/// count/sum series) `delta` is last-minus-first inside the window and
/// `rate_per_s` is that delta over the covered seconds; for gauges the
/// delta/rate are level changes, and `last` is the current level. All
/// rates are 0 — never NaN or inf — when the window holds fewer than two
/// samples or spans zero seconds.
struct SeriesWindow {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  double last = 0.0;      ///< Most recent sampled value (hist: count).
  double delta = 0.0;     ///< last - first-in-window (counters: >= 0).
  double rate_per_s = 0.0;
  double seconds = 0.0;   ///< Seconds the window actually covers.
  size_t samples = 0;     ///< Samples inside the window.
  /// Histogram series only: the observed-value sum alongside the count.
  double sum_last = 0.0;
  double sum_delta = 0.0;
  double sum_rate_per_s = 0.0;
};

/// The headline rates a dashboard (or the CLI :watch command) wants,
/// derived from the standard pipeline metrics. Fields are 0 when the
/// underlying series has no traffic in the window.
struct DerivedRates {
  double qps = 0.0;                 ///< rate(query.count)
  double errors_per_s = 0.0;        ///< rate(query.errors)
  double cache_hit_rate = 0.0;      ///< Δhits / (Δhits + Δmisses), result cache.
  double rounds_pruned_per_s = 0.0; ///< rate(query.rounds_pruned_static)
  double cpu_ms_per_s = 0.0;        ///< sum-rate(query.cpu_ms)
  double latency_mean_ms = 0.0;     ///< Δsum/Δcount over query.latency_ms.*
};

/// Turns the registry's point-in-time counters into trends: a background
/// thread (or explicit SampleNow() calls) appends a timestamped sample of
/// every metric to fixed-size per-metric rings, and Window() computes
/// deltas and per-second rates over the trailing N seconds. Entirely
/// in-process — no external collector — and inert until Start() or the
/// first SampleNow(): construction allocates nothing and starts no
/// thread.
class MetricsHistory {
 public:
  explicit MetricsHistory(MetricsRegistry* registry = nullptr,
                          MetricsHistoryOptions opts = {});
  ~MetricsHistory();

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// Spawns the sampler thread (one sample immediately, then every
  /// interval). No-op when already running.
  void Start();

  /// Stops and joins the sampler thread. Idempotent; rings are kept.
  void Stop();

  bool running() const;

  /// Takes one sample now, on the calling thread. The deterministic path
  /// tests use; also what the sampler thread calls.
  void SampleNow();

  /// Samples taken so far (across all metrics; monotone).
  uint64_t samples() const;

  /// Windowed deltas and rates over the trailing `window_s` seconds,
  /// keyed by metric name (histograms under their base name).
  std::map<std::string, SeriesWindow> Window(double window_s) const;

  /// The headline rates over the trailing `window_s` seconds.
  DerivedRates Derived(double window_s) const;

  /// One JSON object:
  ///   {"interval_s":..,"capacity":..,"samples":..,"window_s":..,
  ///    "derived":{"qps":..,"errors_per_s":..,"cache_hit_rate":..,
  ///               "rounds_pruned_per_s":..,"cpu_ms_per_s":..,
  ///               "latency_mean_ms":..},
  ///    "series":{"query.count":{"kind":"counter","last":..,"delta":..,
  ///              "rate_per_s":..,"seconds":..,"samples":..}, ...}}
  std::string ToJson(double window_s) const;

  const MetricsHistoryOptions& options() const { return opts_; }

 private:
  struct Point {
    double ts_s = 0.0;    ///< Steady-clock seconds (monotonic).
    double value = 0.0;   ///< Counter/gauge value; histogram count.
    double sum = 0.0;     ///< Histogram observed-value sum; else 0.
  };
  struct Series {
    SeriesWindow::Kind kind = SeriesWindow::Kind::kCounter;
    std::deque<Point> points;
  };

  void SamplerLoop();
  /// Appends one point. `prev_ts` is the previous sample's timestamp (0
  /// on the first sample): a series first seen on a later sample gets a
  /// synthetic zero point there, because registry metrics are created
  /// lazily on first use — the value genuinely was 0 one sample ago, and
  /// without the baseline the traffic that created the metric would never
  /// show up in any window's delta.
  void AppendLocked(const std::string& name, SeriesWindow::Kind kind,
                    Point p, double prev_ts) REQUIRES(mu_);
  static SeriesWindow WindowOf(const Series& series, double cutoff_ts);

  MetricsRegistry* registry_;  ///< Defaults to MetricsRegistry::Global().
  MetricsHistoryOptions opts_;
  std::thread thread_;
  mutable Mutex mu_;
  CondVar stop_cv_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_requested_ GUARDED_BY(mu_) = false;
  uint64_t samples_ GUARDED_BY(mu_) = 0;
  double last_sample_ts_ GUARDED_BY(mu_) = 0.0;
  std::map<std::string, Series> series_ GUARDED_BY(mu_);
};

}  // namespace flexpath

#endif  // FLEXPATH_OBS_METRICS_HISTORY_H_
