#ifndef FLEXPATH_OBS_ADMIN_SERVER_H_
#define FLEXPATH_OBS_ADMIN_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/http.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace flexpath {

struct AdminServerOptions {
  /// Loopback by default: the admin plane exposes metrics, query text and
  /// traces, none of which belong on a routable interface unguarded.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Accepted connections beyond this are answered 503 and closed.
  int max_connections = 32;
  /// A connection idle (no readable request, unwritten response) longer
  /// than this is dropped.
  int idle_timeout_ms = 5000;
};

/// Serves the in-process observability surface over HTTP/1.1: a blocking
/// poll() loop on one dedicated thread, one request per connection, no
/// keep-alive, GET/HEAD only. Handlers are plain callbacks registered per
/// path before Start(); they run on the server thread, so anything they
/// read must be thread-safe against the query pipeline (every exporter in
/// this codebase is). Deliberately dependency-free — sockets and poll(2)
/// only — and entirely inert until Start() is called: constructing the
/// server allocates no socket and starts no thread.
class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminServer(AdminServerOptions opts = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `handler` for exact-match `path`. Must be called before
  /// Start(). Re-registering a path replaces its handler.
  void Handle(std::string path, Handler handler);

  /// Binds, listens and spawns the serving thread. Fails when the address
  /// cannot be bound (port in use, bad bind address) or Start() was
  /// already called.
  Status Start();

  /// Stops the serving thread and closes every socket. Idempotent; also
  /// run by the destructor.
  void Stop();

  bool running() const;

  /// The bound port (useful with options().port == 0); 0 before Start().
  uint16_t port() const { return port_; }

  const AdminServerOptions& options() const { return opts_; }

  /// The registered paths, sorted — what the index page ("/") lists.
  std::vector<std::string> Routes() const;

 private:
  struct Connection;

  void Serve();
  /// Parses and dispatches a complete request head; fills the
  /// connection's output buffer.
  void Dispatch(Connection* conn);
  HttpResponse RouteRequest(const HttpRequest& request);

  AdminServerOptions opts_;
  std::map<std::string, Handler> handlers_;
  ScopedFd listen_fd_;
  ScopedFd wake_read_;   ///< Self-pipe: Stop() wakes the poll loop.
  ScopedFd wake_write_;
  uint16_t port_ = 0;
  std::thread thread_;
  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_requested_ GUARDED_BY(mu_) = false;
};

}  // namespace flexpath

#endif  // FLEXPATH_OBS_ADMIN_SERVER_H_
