#ifndef FLEXPATH_OBS_FLIGHT_RECORDER_H_
#define FLEXPATH_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace flexpath {

/// What happened. The payload fields (a, b, d) are typed per event:
///   kQueryStart   a=shape fingerprint  b=k
///   kQueryEnd     a=shape fingerprint  b=answers          d=latency_ms
///   kRoundStart   a=round index        b=0                d=penalty
///   kRoundSkip    a=round index (statically pruned)       d=penalty
///   kRoundDiscard a=round index (speculation past the stopping point)
///   kCacheEvict   a=entries evicted    b=bytes freed
///   kSlowQuery    a=shape fingerprint  b=answers          d=latency_ms
///   kBudgetTrip   a=tuples created     b=max_tuples       d=cpu_ms
enum class FlightEventType : uint8_t {
  kQueryStart,
  kQueryEnd,
  kRoundStart,
  kRoundSkip,
  kRoundDiscard,
  kCacheEvict,
  kSlowQuery,
  kBudgetTrip,
};

const char* FlightEventTypeName(FlightEventType type);

/// One decoded ring entry (a Snapshot copy; the ring itself stores the
/// fields as relaxed atomics).
struct FlightEvent {
  uint64_t seq = 0;    ///< Global record sequence number (monotonic).
  uint64_t ts_us = 0;  ///< Microseconds since recorder construction.
  uint32_t tid = 0;    ///< 1 = off-pool thread, worker id + 2 otherwise.
  FlightEventType type = FlightEventType::kQueryStart;
  uint64_t a = 0;
  uint64_t b = 0;
  double d = 0.0;
};

/// A lock-free, fixed-size ring of the last ~4k execution events — the
/// black box that is always on. Record() is a handful of relaxed atomic
/// stores (no locks, no allocation, no syscalls beyond the clock read),
/// cheap enough to call unconditionally from the query pipeline. The ring
/// can be dumped as JSON on demand and — the point of the exercise — from
/// a fatal-signal handler, so a crashed or wedged process leaves its last
/// moments on disk.
///
/// Consistency model: each slot carries a seqlock-style sequence counter;
/// writers bracket their field stores with odd/even counter values and
/// readers discard any slot whose counter moved or is odd. Every field is
/// an atomic with relaxed ordering, so torn slots are *rejected*, never
/// undefined behavior. A reader racing a wrap-around simply loses the
/// overwritten events — acceptable for a flight recorder by design.
class FlightRecorder {
 public:
  /// Ring capacity; power of two so indexing is a mask.
  static constexpr size_t kCapacity = 4096;

  FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every pipeline component records into.
  static FlightRecorder& Global();

  void Record(FlightEventType type, uint64_t a = 0, uint64_t b = 0,
              double d = 0.0);

  /// Total events ever recorded (>= kCapacity means the ring has wrapped).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// The surviving events, oldest first. In-flight or overwritten slots
  /// are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// {"recorded":N,"capacity":4096,"events":[{"seq":..,"ts_us":..,
  ///   "tid":..,"type":"query_start","a":..,"b":..,"d":..},...]}
  std::string ToJson() const;

  /// Writes the same JSON to a file descriptor using only async-signal-
  /// safe operations (write(2), lock-free atomics, hand-rolled number
  /// formatting) — callable from a fatal-signal handler.
  void DumpTo(int fd) const;

  /// Empties the ring (test isolation; not thread-safe against Record).
  void Reset();

  /// Installs a handler for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT that
  /// dumps Global()'s ring to `path` and then re-raises with the default
  /// disposition, so the process still dies with the original signal
  /// (core dumps and exit codes are unchanged). `path` is copied into
  /// static storage; later calls replace it.
  static void InstallCrashHandler(const char* path);

 private:
  struct Slot {
    /// 2*seq+1 while the writer owns the slot, 2*seq+2 once published.
    std::atomic<uint64_t> state{0};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint8_t> type{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> d_bits{0};  ///< double, bit-cast.
  };

  uint64_t NowUs() const;

  std::array<Slot, kCapacity> slots_;
  std::atomic<uint64_t> next_{0};
  uint64_t base_ns_ = 0;  ///< CLOCK_MONOTONIC at construction.
};

}  // namespace flexpath

#endif  // FLEXPATH_OBS_FLIGHT_RECORDER_H_
