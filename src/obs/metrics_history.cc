#include "obs/metrics_history.h"

#include <algorithm>
#include <chrono>

#include "common/json_util.h"

namespace flexpath {

namespace {

double SteadyNowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* KindName(SeriesWindow::Kind kind) {
  switch (kind) {
    case SeriesWindow::Kind::kCounter:
      return "counter";
    case SeriesWindow::Kind::kGauge:
      return "gauge";
    case SeriesWindow::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// delta / seconds with the zero-traffic guard: a window that covers no
/// time (or a single sample) has rate 0, never NaN or inf.
double SafeRate(double delta, double seconds) {
  return seconds > 0.0 ? delta / seconds : 0.0;
}

}  // namespace

MetricsHistory::MetricsHistory(MetricsRegistry* registry,
                               MetricsHistoryOptions opts)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      opts_(opts) {
  if (opts_.interval_s <= 0.0) opts_.interval_s = 1.0;
  if (opts_.capacity < 2) opts_.capacity = 2;
}

MetricsHistory::~MetricsHistory() { Stop(); }

void MetricsHistory::Start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { SamplerLoop(); });
}

void MetricsHistory::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

bool MetricsHistory::running() const {
  MutexLock lock(mu_);
  return running_;
}

void MetricsHistory::SamplerLoop() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(opts_.interval_s));
  for (;;) {
    SampleNow();
    const auto deadline = std::chrono::steady_clock::now() + interval;
    MutexLock lock(mu_);
    // Explicit wait loop (not a predicate overload) so the guarded read
    // of stop_requested_ happens where the analysis sees mu_ held.
    while (!stop_requested_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      stop_cv_.WaitFor(lock, deadline - now);
    }
    if (stop_requested_) return;
  }
}

void MetricsHistory::SampleNow() {
  // Snapshot outside the history lock: the registry has its own mutex,
  // and holding both isn't needed.
  const MetricsSnapshot snap = registry_->Snapshot();
  const double now = SteadyNowS();
  MutexLock lock(mu_);
  const double prev_ts = samples_ > 0 ? last_sample_ts_ : 0.0;
  ++samples_;
  last_sample_ts_ = now;
  for (const auto& [name, value] : snap.counters) {
    AppendLocked(name, SeriesWindow::Kind::kCounter,
                 {now, static_cast<double>(value), 0.0}, prev_ts);
  }
  for (const auto& [name, value] : snap.gauges) {
    AppendLocked(name, SeriesWindow::Kind::kGauge,
                 {now, static_cast<double>(value), 0.0}, prev_ts);
  }
  for (const auto& [name, h] : snap.histograms) {
    AppendLocked(name, SeriesWindow::Kind::kHistogram,
                 {now, static_cast<double>(h.count), h.sum}, prev_ts);
  }
}

void MetricsHistory::AppendLocked(const std::string& name,
                                  SeriesWindow::Kind kind, Point p,
                                  double prev_ts) {
  Series& series = series_[name];
  series.kind = kind;
  if (series.points.empty() && prev_ts > 0.0 &&
      kind != SeriesWindow::Kind::kGauge) {
    // Lazily-created counter/histogram: it did not exist at the previous
    // sample, so its value there was 0. Without this baseline the window
    // delta would start at the already-incremented first reading and the
    // traffic that created the metric would never register in any rate.
    series.points.push_back({prev_ts, 0.0, 0.0});
  }
  series.points.push_back(p);
  while (series.points.size() > opts_.capacity) series.points.pop_front();
}

uint64_t MetricsHistory::samples() const {
  MutexLock lock(mu_);
  return samples_;
}

SeriesWindow MetricsHistory::WindowOf(const Series& series,
                                      double cutoff_ts) {
  SeriesWindow w;
  w.kind = series.kind;
  if (series.points.empty()) return w;
  const Point& last = series.points.back();
  w.last = last.value;
  w.sum_last = last.sum;
  // First point at or after the cutoff; the deque is time-ordered.
  const auto first = std::find_if(
      series.points.begin(), series.points.end(),
      [cutoff_ts](const Point& p) { return p.ts_s >= cutoff_ts; });
  w.samples = static_cast<size_t>(series.points.end() - first);
  if (w.samples < 2) return w;  // One sample has no delta and rate 0.
  w.seconds = last.ts_s - first->ts_s;
  w.delta = last.value - first->value;
  w.sum_delta = last.sum - first->sum;
  if (series.kind != SeriesWindow::Kind::kGauge) {
    // Counters are monotone; a negative delta means the registry was
    // reset mid-window. Clamp rather than report a negative rate.
    w.delta = std::max(0.0, w.delta);
    w.sum_delta = std::max(0.0, w.sum_delta);
  }
  w.rate_per_s = SafeRate(w.delta, w.seconds);
  w.sum_rate_per_s = SafeRate(w.sum_delta, w.seconds);
  return w;
}

std::map<std::string, SeriesWindow> MetricsHistory::Window(
    double window_s) const {
  const double cutoff = SteadyNowS() - std::max(0.0, window_s);
  MutexLock lock(mu_);
  std::map<std::string, SeriesWindow> out;
  for (const auto& [name, series] : series_) {
    out[name] = WindowOf(series, cutoff);
  }
  return out;
}

DerivedRates MetricsHistory::Derived(double window_s) const {
  const std::map<std::string, SeriesWindow> windows = Window(window_s);
  const auto get = [&windows](const char* name) -> SeriesWindow {
    const auto it = windows.find(name);
    return it == windows.end() ? SeriesWindow{} : it->second;
  };
  DerivedRates rates;
  rates.qps = get("query.count").rate_per_s;
  rates.errors_per_s = get("query.errors").rate_per_s;
  rates.rounds_pruned_per_s = get("query.rounds_pruned_static").rate_per_s;
  rates.cpu_ms_per_s = get("query.cpu_ms").sum_rate_per_s;
  const double hits = get("cache.hits").delta;
  const double misses = get("cache.misses").delta;
  rates.cache_hit_rate =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  // Mean latency over the window, across the per-algorithm histograms.
  double lat_count = 0.0;
  double lat_sum = 0.0;
  for (const char* name :
       {"query.latency_ms.dpo", "query.latency_ms.sso",
        "query.latency_ms.hybrid"}) {
    const SeriesWindow w = get(name);
    lat_count += w.delta;
    lat_sum += w.sum_delta;
  }
  rates.latency_mean_ms = lat_count > 0.0 ? lat_sum / lat_count : 0.0;
  return rates;
}

std::string MetricsHistory::ToJson(double window_s) const {
  const DerivedRates rates = Derived(window_s);
  const std::map<std::string, SeriesWindow> windows = Window(window_s);
  std::string out = "{\"interval_s\":" + FormatDouble(opts_.interval_s);
  out += ",\"capacity\":" + std::to_string(opts_.capacity);
  out += ",\"samples\":" + std::to_string(samples());
  out += ",\"window_s\":" + FormatDouble(window_s);
  out += ",\"derived\":{\"qps\":" + FormatDouble(rates.qps);
  out += ",\"errors_per_s\":" + FormatDouble(rates.errors_per_s);
  out += ",\"cache_hit_rate\":" + FormatDouble(rates.cache_hit_rate);
  out += ",\"rounds_pruned_per_s\":" +
         FormatDouble(rates.rounds_pruned_per_s);
  out += ",\"cpu_ms_per_s\":" + FormatDouble(rates.cpu_ms_per_s);
  out += ",\"latency_mean_ms\":" + FormatDouble(rates.latency_mean_ms);
  out += "},\"series\":{";
  bool first = true;
  for (const auto& [name, w] : windows) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"kind\":\"";
    out += KindName(w.kind);
    out += "\",\"last\":" + FormatDouble(w.last);
    out += ",\"delta\":" + FormatDouble(w.delta);
    out += ",\"rate_per_s\":" + FormatDouble(w.rate_per_s);
    out += ",\"seconds\":" + FormatDouble(w.seconds);
    out += ",\"samples\":" + std::to_string(w.samples);
    if (w.kind == SeriesWindow::Kind::kHistogram) {
      out += ",\"sum_last\":" + FormatDouble(w.sum_last);
      out += ",\"sum_delta\":" + FormatDouble(w.sum_delta);
      out += ",\"sum_rate_per_s\":" + FormatDouble(w.sum_rate_per_s);
    }
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace flexpath
