#include "relax/schedule.h"

#include <algorithm>

namespace flexpath {

namespace {

/// Closure predicates of `q` restricted to droppable kinds (tag
/// predicates are never dropped by the operators; they disappear only
/// with their variable).
std::set<Predicate> ClosurePreds(const Tpq& q) {
  return Closure(ToLogical(q)).preds;
}

}  // namespace

std::vector<ScheduleEntry> BuildSchedule(const Tpq& q,
                                         const PenaltyModel& pm) {
  const std::set<Predicate> original = ClosurePreds(q);
  std::vector<ScheduleEntry> out;
  Tpq current = q;
  std::set<Predicate> dropped_so_far;

  for (;;) {
    // Evaluate every applicable operator's marginal drop set.
    struct Candidate {
      RelaxOp op;
      Tpq relaxed;
      std::set<Predicate> cumulative;
      double marginal_penalty = 0.0;
    };
    std::optional<Candidate> best;
    for (const RelaxOp& op : ApplicableOps(current)) {
      if (op.kind == RelaxOpKind::kLeafDeletion &&
          op.var == current.distinguished()) {
        continue;  // would change the answer node
      }
      Result<Tpq> relaxed = ApplyOp(current, op);
      if (!relaxed.ok()) continue;
      std::set<Predicate> remaining = ClosurePreds(*relaxed);
      // Cumulative drop set relative to the *original* closure.
      std::set<Predicate> cumulative;
      for (const Predicate& p : original) {
        if (remaining.count(p) == 0) cumulative.insert(p);
      }
      double marginal = 0.0;
      bool grows = false;
      for (const Predicate& p : cumulative) {
        if (dropped_so_far.count(p) == 0) {
          marginal += pm.Of(p);
          grows = true;
        }
      }
      if (!grows) continue;  // no new predicate dropped
      if (!best || marginal < best->marginal_penalty ||
          (marginal == best->marginal_penalty && op < best->op)) {
        best = Candidate{op, *std::move(relaxed), std::move(cumulative),
                         marginal};
      }
    }
    if (!best) break;

    ScheduleEntry entry;
    entry.op = best->op;
    entry.relaxed = std::move(best->relaxed);
    entry.dropped = std::move(best->cumulative);
    entry.step_penalty = best->marginal_penalty;
    entry.cumulative_penalty =
        (out.empty() ? 0.0 : out.back().cumulative_penalty) +
        best->marginal_penalty;
    current = entry.relaxed;
    dropped_so_far = entry.dropped;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace flexpath
