#ifndef FLEXPATH_RELAX_SCHEDULE_H_
#define FLEXPATH_RELAX_SCHEDULE_H_

#include <set>
#include <vector>

#include "query/logical.h"
#include "query/tpq.h"
#include "relax/operators.h"
#include "relax/penalty.h"

namespace flexpath {

/// One entry of the relaxation schedule: the chain Q = Q_0 ⊂ Q_1 ⊂ ... of
/// relaxations obtained by greedily applying, at each point, the
/// applicable operator with the lowest marginal penalty — the paper's
/// "sort predicates by increasing penalty and drop the next one"
/// discipline, realized through the operator algebra (Section 3.5's
/// footnote: predicate dropping is achieved using relaxation operations).
struct ScheduleEntry {
  RelaxOp op;                   ///< Applied to the previous chain query.
  Tpq relaxed;                  ///< Query after this step.
  std::set<Predicate> dropped;  ///< Cumulative S_i vs the original closure.
  double step_penalty = 0.0;    ///< π of the newly dropped predicates.
  double cumulative_penalty = 0.0;  ///< Σ π(S_i).
};

/// Builds the maximal relaxation chain for `q`. Each entry drops at least
/// one additional closure predicate, so the chain is finite. Leaf
/// deletion of the distinguished variable is excluded (it would change
/// what the query returns; the top-K drivers must compare like answers).
std::vector<ScheduleEntry> BuildSchedule(const Tpq& q,
                                         const PenaltyModel& pm);

}  // namespace flexpath

#endif  // FLEXPATH_RELAX_SCHEDULE_H_
