#ifndef FLEXPATH_RELAX_PENALTY_H_
#define FLEXPATH_RELAX_PENALTY_H_

#include <map>

#include "ir/engine.h"
#include "query/logical.h"
#include "query/tpq.h"
#include "stats/document_stats.h"

namespace flexpath {

/// Predicate weights (Section 4.1/4.3). Uniform by default; the contains
/// predicate has weight 1 per the paper. Per-predicate overrides allow
/// user-specified weighting.
struct Weights {
  double structural = 1.0;
  double contains = 1.0;
  std::map<Predicate, double> overrides;

  double Of(const Predicate& p) const {
    auto it = overrides.find(p);
    if (it != overrides.end()) return it->second;
    return p.kind == PredKind::kContains ? contains : structural;
  }
};

/// Data-derived predicate penalties (Section 4.3.1): π(p) measures the
/// context an answer loses by not satisfying p.
///   π(pc(i,j)) = #pc(ti,tj) / #ad(ti,tj)            * w(pc(i,j))
///   π(ad(i,j)) = #ad(ti,tj) / (#(ti) * #(tj))       * w(ad(i,j))
///   π(contains(i,E)) = #contains(ti,E) / #contains(tl,E) * w(...)
/// where tl is the tag of $i's parent in the query. Ratios with a zero
/// denominator default to 1 (dropping gains nothing, so the full weight
/// is lost). Tag predicates are never dropped and have no penalty.
class PenaltyModel {
 public:
  /// `stats` and `ir` must outlive the model. `ir` may be null when the
  /// query has no contains predicates.
  PenaltyModel(const Tpq& query, const DocumentStats* stats, IrEngine* ir,
               Weights weights);

  /// π(p) for a predicate of the query's closure. Unknown predicates
  /// (e.g. tag predicates) cost their full weight, so dropping them is
  /// never attractive.
  double Of(const Predicate& p) const;

  /// Sum of penalties over a predicate set.
  double Sum(const std::set<Predicate>& preds) const;

  const Weights& weights() const { return weights_; }

 private:
  std::map<Predicate, double> penalties_;
  Weights weights_;
};

}  // namespace flexpath

#endif  // FLEXPATH_RELAX_PENALTY_H_
