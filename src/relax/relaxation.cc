#include "relax/relaxation.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace flexpath {

std::vector<RelaxStep> EnumerateSteps(const Tpq& q, const PenaltyModel& pm) {
  const LogicalQuery closure = Closure(ToLogical(q));
  std::vector<RelaxStep> steps;
  for (const RelaxOp& op : ApplicableOps(q)) {
    RelaxStep step;
    step.op = op;
    step.dropped = DroppedPredicates(q, closure, op);
    if (step.dropped.empty()) continue;
    step.penalty = pm.Sum(step.dropped);
    steps.push_back(std::move(step));
  }
  std::sort(steps.begin(), steps.end(),
            [](const RelaxStep& a, const RelaxStep& b) {
              if (a.penalty != b.penalty) return a.penalty < b.penalty;
              return a.op < b.op;
            });
  return steps;
}

std::vector<Tpq> RelaxationSpace(const Tpq& q, size_t limit) {
  std::vector<Tpq> out;
  std::unordered_set<std::string> seen;
  std::deque<Tpq> frontier;
  frontier.push_back(q);
  seen.insert(q.CanonicalString());
  while (!frontier.empty() && out.size() < limit) {
    Tpq cur = std::move(frontier.front());
    frontier.pop_front();
    for (const RelaxOp& op : ApplicableOps(cur)) {
      // Deleting the distinguished leaf changes what the query returns —
      // the resulting query no longer *contains* the original, so it is
      // outside the relaxation space of Definition 1 (whose drop sets
      // always retain the distinguished variable).
      if (op.kind == RelaxOpKind::kLeafDeletion &&
          op.var == cur.distinguished()) {
        continue;
      }
      Result<Tpq> next = ApplyOp(cur, op);
      if (!next.ok()) continue;
      std::string key = next->CanonicalString();
      if (seen.insert(std::move(key)).second) {
        frontier.push_back(*std::move(next));
      }
    }
    out.push_back(std::move(cur));
  }
  return out;
}

}  // namespace flexpath
