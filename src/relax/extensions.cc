#include "relax/extensions.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flexpath {

std::vector<VarId> TagGeneralizableVars(const Tpq& q,
                                        const TypeHierarchy& hierarchy) {
  std::vector<VarId> out;
  for (VarId v : q.Vars()) {
    const TagId tag = q.node(v).tag;
    if (tag != kInvalidTag && hierarchy.SupertypeOf(tag) != kInvalidTag) {
      out.push_back(v);
    }
  }
  return out;
}

Result<Tpq> ApplyTagGeneralization(const Tpq& q, VarId var,
                                   const TypeHierarchy& hierarchy) {
  if (!q.HasVar(var)) return Status::NotFound("no such variable");
  const TagId tag = q.node(var).tag;
  if (tag == kInvalidTag) {
    return Status::InvalidArgument("variable has no tag constraint");
  }
  const TagId super = hierarchy.SupertypeOf(tag);
  if (super == kInvalidTag) {
    return Status::InvalidArgument("tag has no supertype");
  }
  Tpq out = q;
  out.mutable_node(var).tag = super;
  return out;
}

Result<AttrPred> RelaxAttrPred(const AttrPred& pred, double slack) {
  if (slack <= 0) {
    return Status::InvalidArgument("slack must be positive");
  }
  char* end = nullptr;
  const double value = std::strtod(pred.value.c_str(), &end);
  if (end != pred.value.c_str() + pred.value.size() || pred.value.empty()) {
    return Status::InvalidArgument("attribute value is not numeric");
  }
  AttrPred out = pred;
  double relaxed = value;
  switch (pred.op) {
    case AttrPred::Op::kLt:
    case AttrPred::Op::kLe:
      relaxed = value + slack;
      break;
    case AttrPred::Op::kGt:
    case AttrPred::Op::kGe:
      relaxed = value - slack;
      break;
    case AttrPred::Op::kEq:
    case AttrPred::Op::kNe:
      return Status::InvalidArgument(
          "equality predicates have no single-predicate relaxation");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", relaxed);
  out.value = buf;
  return out;
}

}  // namespace flexpath
