#ifndef FLEXPATH_RELAX_OPERATORS_H_
#define FLEXPATH_RELAX_OPERATORS_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/logical.h"
#include "query/tpq.h"

namespace flexpath {

/// The four primitive relaxation operators of Section 3.5. Theorem 2:
/// they are sound (each application yields a valid relaxation) and
/// complete (every valid relaxation is a finite composition of them).
enum class RelaxOpKind : uint8_t {
  kAxisGeneralization,  ///< γ: pc-edge to $var becomes an ad-edge (3.5.1)
  kLeafDeletion,        ///< λ: delete leaf $var and its predicates (3.5.2)
  kSubtreePromotion,    ///< σ: move subtree at $var under its grandparent
                        ///  with an ad-edge (3.5.3)
  kContainsPromotion,   ///< κ: move contains($var, E) to $var's parent
                        ///  (3.5.4)
};

/// One operator application site.
struct RelaxOp {
  RelaxOpKind kind = RelaxOpKind::kAxisGeneralization;
  VarId var = kInvalidVar;  ///< γ: the child end of the edge; λ: the leaf;
                            ///  σ: the promoted node; κ: the contains holder.
  std::string expr_key;     ///< κ only: which contains expression.

  friend bool operator==(const RelaxOp&, const RelaxOp&) = default;
  friend auto operator<=>(const RelaxOp&, const RelaxOp&) = default;

  std::string ToString() const;
};

/// Enumerates every operator application applicable to `q`:
///  - γ on each pc-edge,
///  - λ on each non-root leaf,
///  - σ on each node with a grandparent,
///  - κ on each contains predicate on a non-root node.
std::vector<RelaxOp> ApplicableOps(const Tpq& q);

/// Applies `op`, returning the relaxed query (variable ids preserved).
/// Fails if the op is not applicable to `q`.
Result<Tpq> ApplyOp(const Tpq& q, const RelaxOp& op);

/// The set of closure predicates that applying `op` to `q` drops — the S
/// of Definition 1, computed exactly as
///   Closure(q).preds − Closure(ApplyOp(q, op)).preds.
/// Typical shapes: γ(x) drops {pc(parent,x)}; κ(x,E) drops
/// {contains(x,E)}; σ(x) drops the pc/ad predicates tying x's subtree to
/// x's old parent; λ(x) drops every predicate involving x plus any
/// derived contains predicates that no longer have a derivation.
/// `closure` must be Closure(ToLogical(q)). Returns an empty set if the
/// op is inapplicable.
std::set<Predicate> DroppedPredicates(const Tpq& q,
                                      const LogicalQuery& closure,
                                      const RelaxOp& op);

}  // namespace flexpath

#endif  // FLEXPATH_RELAX_OPERATORS_H_
