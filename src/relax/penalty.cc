#include "relax/penalty.h"

#include <algorithm>

namespace flexpath {

PenaltyModel::PenaltyModel(const Tpq& query, const DocumentStats* stats,
                           IrEngine* ir, Weights weights)
    : weights_(std::move(weights)) {
  const LogicalQuery closure = Closure(ToLogical(query));
  auto tag_of = [&](VarId v) {
    return query.HasVar(v) ? query.node(v).tag : kInvalidTag;
  };

  for (const Predicate& p : closure.preds) {
    const double w = weights_.Of(p);
    double ratio = 1.0;
    switch (p.kind) {
      case PredKind::kPc: {
        const TagId ti = tag_of(p.x);
        const TagId tj = tag_of(p.y);
        const double ad = static_cast<double>(stats->AdCount(ti, tj));
        const double pc = static_cast<double>(stats->PcCount(ti, tj));
        ratio = ad > 0 ? pc / ad : 1.0;
        break;
      }
      case PredKind::kAd: {
        const TagId ti = tag_of(p.x);
        const TagId tj = tag_of(p.y);
        const double denom = static_cast<double>(stats->TagCount(ti)) *
                             static_cast<double>(stats->TagCount(tj));
        ratio = denom > 0
                    ? static_cast<double>(stats->AdCount(ti, tj)) / denom
                    : 1.0;
        break;
      }
      case PredKind::kContains: {
        // Penalty of promoting contains from $i to its query parent $l.
        if (ir == nullptr || !query.HasVar(p.x) ||
            query.Parent(p.x) == kInvalidVar) {
          ratio = 1.0;
          break;
        }
        auto expr_it = closure.exprs.find(p.expr_key);
        if (expr_it == closure.exprs.end()) {
          ratio = 1.0;
          break;
        }
        const std::shared_ptr<const ContainsResult> result =
            ir->Evaluate(expr_it->second);
        const TagId ti = tag_of(p.x);
        const TagId tl = tag_of(query.Parent(p.x));
        const double child_count =
            static_cast<double>(result->CountWithTag(ti));
        const double parent_count =
            static_cast<double>(result->CountWithTag(tl));
        ratio = parent_count > 0 ? child_count / parent_count : 1.0;
        break;
      }
      case PredKind::kTag:
        // Tag predicates are value-based and never relaxed; they carry
        // no weight in scores (Section 4.1).
        penalties_[p] = 0.0;
        continue;
    }
    penalties_[p] = std::clamp(ratio, 0.0, 1.0) * w;
  }
}

double PenaltyModel::Of(const Predicate& p) const {
  if (p.kind == PredKind::kTag) return 0.0;
  auto it = penalties_.find(p);
  if (it != penalties_.end()) return it->second;
  return weights_.Of(p);
}

double PenaltyModel::Sum(const std::set<Predicate>& preds) const {
  double total = 0.0;
  for (const Predicate& p : preds) total += Of(p);
  return total;
}

}  // namespace flexpath
