#include "relax/operators.h"

namespace flexpath {

std::string RelaxOp::ToString() const {
  switch (kind) {
    case RelaxOpKind::kAxisGeneralization:
      return "gamma($" + std::to_string(var) + ")";
    case RelaxOpKind::kLeafDeletion:
      return "lambda($" + std::to_string(var) + ")";
    case RelaxOpKind::kSubtreePromotion:
      return "sigma($" + std::to_string(var) + ")";
    case RelaxOpKind::kContainsPromotion:
      return "kappa($" + std::to_string(var) + "," + expr_key + ")";
  }
  return "";
}

std::vector<RelaxOp> ApplicableOps(const Tpq& q) {
  std::vector<RelaxOp> out;
  for (VarId v : q.Vars()) {
    const VarId parent = q.Parent(v);
    if (parent == kInvalidVar) continue;  // root: no operator applies
    if (q.AxisOf(v) == Axis::kChild) {
      out.push_back(RelaxOp{RelaxOpKind::kAxisGeneralization, v, ""});
    }
    if (q.IsLeaf(v)) {
      out.push_back(RelaxOp{RelaxOpKind::kLeafDeletion, v, ""});
    }
    if (q.Parent(parent) != kInvalidVar) {
      out.push_back(RelaxOp{RelaxOpKind::kSubtreePromotion, v, ""});
    }
    for (const FtExpr& e : q.node(v).contains) {
      out.push_back(
          RelaxOp{RelaxOpKind::kContainsPromotion, v, e.ToString()});
    }
  }
  return out;
}

Result<Tpq> ApplyOp(const Tpq& q, const RelaxOp& op) {
  Tpq out = q;
  if (!out.HasVar(op.var)) return Status::NotFound("no such variable");
  switch (op.kind) {
    case RelaxOpKind::kAxisGeneralization: {
      if (out.Parent(op.var) == kInvalidVar) {
        return Status::InvalidArgument("gamma: variable has no parent edge");
      }
      if (out.AxisOf(op.var) != Axis::kChild) {
        return Status::InvalidArgument("gamma: edge is already ad");
      }
      out.SetAxis(op.var, Axis::kDescendant);
      return out;
    }
    case RelaxOpKind::kLeafDeletion: {
      FLEXPATH_RETURN_IF_ERROR(out.DeleteLeaf(op.var));
      return out;
    }
    case RelaxOpKind::kSubtreePromotion: {
      const VarId parent = out.Parent(op.var);
      if (parent == kInvalidVar) {
        return Status::InvalidArgument("sigma: cannot promote the root");
      }
      const VarId grandparent = out.Parent(parent);
      if (grandparent == kInvalidVar) {
        return Status::InvalidArgument("sigma: no grandparent");
      }
      FLEXPATH_RETURN_IF_ERROR(out.Reparent(op.var, grandparent));
      return out;
    }
    case RelaxOpKind::kContainsPromotion: {
      if (out.Parent(op.var) == kInvalidVar) {
        return Status::InvalidArgument(
            "kappa: cannot promote contains from the root");
      }
      // Move only the named expression; PromoteContains moves all, so do
      // it manually here.
      TpqNode& n = out.mutable_node(op.var);
      bool found = false;
      for (size_t i = 0; i < n.contains.size(); ++i) {
        if (n.contains[i].ToString() == op.expr_key) {
          FtExpr moved = std::move(n.contains[i]);
          n.contains.erase(n.contains.begin() + static_cast<long>(i));
          out.AddContains(out.Parent(op.var), std::move(moved));
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("kappa: contains predicate not found");
      }
      return out;
    }
  }
  return Status::Internal("unknown operator");
}

std::set<Predicate> DroppedPredicates(const Tpq& q,
                                      const LogicalQuery& closure,
                                      const RelaxOp& op) {
  std::set<Predicate> dropped;
  Result<Tpq> relaxed = ApplyOp(q, op);
  if (!relaxed.ok()) return dropped;
  const LogicalQuery relaxed_closure = Closure(ToLogical(*relaxed));
  for (const Predicate& p : closure.preds) {
    if (relaxed_closure.preds.count(p) == 0) dropped.insert(p);
  }
  return dropped;
}

}  // namespace flexpath
