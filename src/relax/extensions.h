#ifndef FLEXPATH_RELAX_EXTENSIONS_H_
#define FLEXPATH_RELAX_EXTENSIONS_H_

#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "query/tpq.h"
#include "xml/type_hierarchy.h"

namespace flexpath {

/// The "other relaxations" of the paper's Section 3.4. These are
/// orthogonal to the four primitive operators (they weaken value-based
/// predicates rather than structural ones) and are therefore exposed as
/// standalone rewrites instead of entering the penalty-ordered schedule:
/// apply them to the query before running top-K when wanted.

/// Variables whose tag constraint can be generalized — those with a tag
/// that has a supertype in `hierarchy`.
std::vector<VarId> TagGeneralizableVars(const Tpq& q,
                                        const TypeHierarchy& hierarchy);

/// Replaces $var's tag with its direct supertype (e.g. article ->
/// publication). The result matches every element the original matched
/// plus all sibling subtypes — a strict relaxation when evaluated against
/// an ElementIndex built with the same hierarchy. Fails if $var has no
/// tag or its tag has no supertype.
Result<Tpq> ApplyTagGeneralization(const Tpq& q, VarId var,
                                   const TypeHierarchy& hierarchy);

/// Weakens a numeric comparison by `slack` (> 0): @price <= 98 becomes
/// @price <= 98 + slack; >= moves down; == widens to a [v-slack, v+slack]
/// check is NOT expressible in one AttrPred, so == and != are rejected.
/// The paper's example: $i.price <= 98 relaxed to <= 100 (slack = 2).
Result<AttrPred> RelaxAttrPred(const AttrPred& pred, double slack);

}  // namespace flexpath

#endif  // FLEXPATH_RELAX_EXTENSIONS_H_
