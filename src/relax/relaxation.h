#ifndef FLEXPATH_RELAX_RELAXATION_H_
#define FLEXPATH_RELAX_RELAXATION_H_

#include <set>
#include <string>
#include <vector>

#include "query/logical.h"
#include "query/tpq.h"
#include "relax/operators.h"
#include "relax/penalty.h"

namespace flexpath {

/// One atomic relaxation step: an operator application together with the
/// set of closure predicates it drops and the resulting penalty. DPO and
/// SSO consume steps in increasing-penalty order ("drop the next
/// predicate with the lowest penalty", Section 5.1).
struct RelaxStep {
  RelaxOp op;
  std::set<Predicate> dropped;
  double penalty = 0.0;
};

/// Enumerates the atomic steps applicable to the *original* query,
/// sorted by increasing penalty (ties broken by the op's canonical
/// order, so the sequence is deterministic). Subsumed steps — whose drop
/// set adds nothing beyond an earlier (cheaper) step, e.g. γ(x) when
/// λ(x) already fired — are kept; cumulative application unions the drop
/// sets, so re-drops are harmless.
std::vector<RelaxStep> EnumerateSteps(const Tpq& q, const PenaltyModel& pm);

/// All distinct relaxations reachable from `q` by composing operators,
/// including `q` itself, deduplicated by canonical form. Breadth-first;
/// stops after `limit` distinct queries (the space is exponential in the
/// pattern size). Used by the DPO rewriting path, examples and tests.
std::vector<Tpq> RelaxationSpace(const Tpq& q, size_t limit = 256);

}  // namespace flexpath

#endif  // FLEXPATH_RELAX_RELAXATION_H_
