#ifndef FLEXPATH_IR_TOKENIZER_H_
#define FLEXPATH_IR_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace flexpath {

/// Tokenization options shared by indexing and query processing (both
/// sides must agree or terms will not match).
struct TokenizerOptions {
  bool stem = true;             ///< Apply the Porter stemmer.
  bool drop_stopwords = true;   ///< Drop common English stopwords.
};

/// Splits `text` into lowercase alphanumeric tokens, optionally removing
/// stopwords and stemming. Non-ASCII bytes act as separators.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& opts = {});

/// A token with its position in the *unfiltered* token stream, so phrase
/// adjacency is judged on the original text (a dropped stopword still
/// separates "ring ... gold" from the phrase "ring gold").
struct PositionedToken {
  std::string text;
  uint32_t position = 0;
};

/// Tokenize variant that reports original positions.
std::vector<PositionedToken> TokenizeWithPositions(
    std::string_view text, const TokenizerOptions& opts = {});

/// Normalizes a single query keyword with the same pipeline (lowercase +
/// stem). Returns an empty string for stopwords when drop_stopwords is on.
std::string NormalizeTerm(std::string_view word,
                          const TokenizerOptions& opts = {});

/// True if `word` (lowercase) is in the built-in English stopword list.
bool IsStopword(std::string_view word);

}  // namespace flexpath

#endif  // FLEXPATH_IR_TOKENIZER_H_
