#include "ir/ft_expr.h"

#include <cctype>

#include "common/string_util.h"

namespace flexpath {

FtExpr FtExpr::Term(std::string_view word, const TokenizerOptions& opts) {
  FtExpr e;
  e.kind_ = FtKind::kTerm;
  e.term_ = NormalizeTerm(word, opts);
  return e;
}

FtExpr FtExpr::Phrase(const std::vector<std::string>& words,
                      const TokenizerOptions& opts) {
  FtExpr e;
  e.kind_ = FtKind::kPhrase;
  for (const std::string& w : words) {
    // Stopwords inside a phrase are kept out of the match requirement but
    // a fully-stopword phrase degenerates to nothing; callers should
    // validate. Normalization must match the indexing pipeline.
    std::string norm = NormalizeTerm(w, opts);
    if (!norm.empty()) e.phrase_.push_back(std::move(norm));
  }
  if (e.phrase_.size() == 1) {
    FtExpr t;
    t.kind_ = FtKind::kTerm;
    t.term_ = e.phrase_[0];
    return t;
  }
  return e;
}

FtExpr FtExpr::Near(const std::vector<std::string>& words, uint32_t window,
                    const TokenizerOptions& opts) {
  FtExpr e;
  e.kind_ = FtKind::kNear;
  e.window_ = window == 0 ? 1 : window;
  for (const std::string& w : words) {
    std::string norm = NormalizeTerm(w, opts);
    if (!norm.empty()) e.phrase_.push_back(std::move(norm));
  }
  if (e.phrase_.size() == 1) {
    FtExpr t;
    t.kind_ = FtKind::kTerm;
    t.term_ = e.phrase_[0];
    return t;
  }
  return e;
}

FtExpr FtExpr::And(FtExpr lhs, FtExpr rhs) {
  FtExpr e;
  e.kind_ = FtKind::kAnd;
  e.children_.push_back(std::move(lhs));
  e.children_.push_back(std::move(rhs));
  return e;
}

FtExpr FtExpr::Or(FtExpr lhs, FtExpr rhs) {
  FtExpr e;
  e.kind_ = FtKind::kOr;
  e.children_.push_back(std::move(lhs));
  e.children_.push_back(std::move(rhs));
  return e;
}

FtExpr FtExpr::Not(FtExpr child) {
  FtExpr e;
  e.kind_ = FtKind::kNot;
  e.children_.push_back(std::move(child));
  return e;
}

std::string FtExpr::ToString() const {
  switch (kind_) {
    case FtKind::kTerm:
      return "\"" + term_ + "\"";
    case FtKind::kPhrase: {
      std::string out = "\"";
      for (size_t i = 0; i < phrase_.size(); ++i) {
        if (i > 0) out += ' ';
        out += phrase_[i];
      }
      return out + "\"";
    }
    case FtKind::kNear: {
      std::string out = "near(";
      for (size_t i = 0; i < phrase_.size(); ++i) {
        if (i > 0) out += ' ';
        out += "\"" + phrase_[i] + "\"";
      }
      return out + ", " + std::to_string(window_) + ")";
    }
    // Sequential appends rather than one chained concatenation: GCC 12's
    // -Wrestrict misfires on the chained operator+ form here.
    case FtKind::kAnd: {
      std::string out = "(";
      out += children_[0].ToString();
      out += " and ";
      out += children_[1].ToString();
      out += ")";
      return out;
    }
    case FtKind::kOr: {
      std::string out = "(";
      out += children_[0].ToString();
      out += " or ";
      out += children_[1].ToString();
      out += ")";
      return out;
    }
    case FtKind::kNot:
      return "(not " + children_[0].ToString() + ")";
  }
  return "";
}

std::vector<std::string> FtExpr::PositiveTerms() const {
  std::vector<std::string> out;
  switch (kind_) {
    case FtKind::kTerm:
      out.push_back(term_);
      break;
    case FtKind::kPhrase:
    case FtKind::kNear:
      out = phrase_;
      break;
    case FtKind::kAnd:
    case FtKind::kOr:
      for (const FtExpr& c : children_) {
        for (std::string& t : c.PositiveTerms()) out.push_back(std::move(t));
      }
      break;
    case FtKind::kNot:
      break;  // negated terms do not contribute positive evidence
  }
  return out;
}

bool operator==(const FtExpr& a, const FtExpr& b) {
  return a.kind_ == b.kind_ && a.term_ == b.term_ &&
         a.phrase_ == b.phrase_ && a.window_ == b.window_ &&
         a.children_ == b.children_;
}

namespace {

/// Recursive-descent parser for the FTExp grammar.
class FtParser {
 public:
  FtParser(std::string_view in, const TokenizerOptions& opts)
      : in_(in), opts_(opts) {}

  Result<FtExpr> Parse() {
    Result<FtExpr> e = ParseOr();
    if (!e.ok()) return e;
    SkipWs();
    if (pos_ != in_.size()) {
      return Status::ParseError("unexpected trailing input in FTExp at '" +
                                std::string(in_.substr(pos_)) + "'");
    }
    return e;
  }

 private:
  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipWs();
    if (in_.size() - pos_ < kw.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      char c = in_[pos_ + i];
      if (std::tolower(static_cast<unsigned char>(c)) != kw[i]) return false;
    }
    // Keyword must not run into an identifier character.
    size_t after = pos_ + kw.size();
    if (after < in_.size() &&
        (std::isalnum(static_cast<unsigned char>(in_[after])) ||
         in_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  Result<FtExpr> ParseOr() {
    Result<FtExpr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    FtExpr e = std::move(lhs).value();
    while (ConsumeKeyword("or")) {
      Result<FtExpr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = FtExpr::Or(std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<FtExpr> ParseAnd() {
    Result<FtExpr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    FtExpr e = std::move(lhs).value();
    while (ConsumeKeyword("and")) {
      Result<FtExpr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      e = FtExpr::And(std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<FtExpr> ParseUnary() {
    if (ConsumeKeyword("not")) {
      Result<FtExpr> child = ParseUnary();
      if (!child.ok()) return child;
      return FtExpr::Not(std::move(child).value());
    }
    if (ConsumeKeyword("near")) {
      return ParseNear();
    }
    SkipWs();
    if (pos_ < in_.size() && in_[pos_] == '(') {
      ++pos_;
      Result<FtExpr> inner = ParseOr();
      if (!inner.ok()) return inner;
      SkipWs();
      if (pos_ >= in_.size() || in_[pos_] != ')') {
        return Status::ParseError("expected ')' in FTExp");
      }
      ++pos_;
      return inner;
    }
    if (pos_ < in_.size() && (in_[pos_] == '"' || in_[pos_] == '\'')) {
      char quote = in_[pos_++];
      size_t begin = pos_;
      while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
      if (pos_ >= in_.size()) {
        return Status::ParseError("unterminated quoted string in FTExp");
      }
      std::string_view content = in_.substr(begin, pos_ - begin);
      ++pos_;
      std::vector<std::string> words;
      for (const std::string& part : SplitWords(content)) words.push_back(part);
      if (words.empty()) {
        return Status::ParseError("empty quoted string in FTExp");
      }
      if (words.size() == 1) return FtExpr::Term(words[0], opts_);
      return FtExpr::Phrase(words, opts_);
    }
    // Bare word.
    size_t begin = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == begin) {
      return Status::ParseError("expected a keyword in FTExp at '" +
                                std::string(in_.substr(pos_)) + "'");
    }
    return FtExpr::Term(in_.substr(begin, pos_ - begin), opts_);
  }

  /// After the 'near' keyword: '(' (quoted | word)+ ',' INT ')'.
  Result<FtExpr> ParseNear() {
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != '(') {
      return Status::ParseError("expected '(' after near");
    }
    ++pos_;
    std::vector<std::string> words;
    for (;;) {
      SkipWs();
      if (pos_ >= in_.size()) {
        return Status::ParseError("unterminated near(...)");
      }
      if (in_[pos_] == ',') break;
      if (in_[pos_] == '"' || in_[pos_] == '\'') {
        char quote = in_[pos_++];
        size_t begin = pos_;
        while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
        if (pos_ >= in_.size()) {
          return Status::ParseError("unterminated string in near(...)");
        }
        for (std::string& w : SplitWords(in_.substr(begin, pos_ - begin))) {
          words.push_back(std::move(w));
        }
        ++pos_;
        continue;
      }
      size_t begin = pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '_')) {
        ++pos_;
      }
      if (pos_ == begin) {
        return Status::ParseError("expected a keyword or ',' in near(...)");
      }
      words.emplace_back(in_.substr(begin, pos_ - begin));
    }
    ++pos_;  // ','
    SkipWs();
    size_t begin = pos_;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (pos_ == begin) {
      return Status::ParseError("expected a window size in near(...)");
    }
    const uint32_t window = static_cast<uint32_t>(
        std::stoul(std::string(in_.substr(begin, pos_ - begin))));
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != ')') {
      return Status::ParseError("expected ')' after near window");
    }
    ++pos_;
    if (words.size() < 2) {
      return Status::ParseError("near(...) needs at least two keywords");
    }
    return FtExpr::Near(words, window, opts_);
  }

  static std::vector<std::string> SplitWords(std::string_view s) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
    return out;
  }

  std::string_view in_;
  TokenizerOptions opts_;
  size_t pos_ = 0;
};

}  // namespace

Result<FtExpr> ParseFtExpr(std::string_view input,
                           const TokenizerOptions& opts) {
  return FtParser(input, opts).Parse();
}

}  // namespace flexpath
