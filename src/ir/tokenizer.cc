#include "ir/tokenizer.h"

#include <array>

#include "common/string_util.h"
#include "ir/stemmer.h"

namespace flexpath {

namespace {

constexpr std::string_view kStopwords[] = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",  "by",
    "for",  "if",   "in",   "into", "is",   "it",   "no",   "not",  "of",
    "on",   "or",   "such", "that", "the",  "their", "then", "there",
    "these", "they", "this", "to",   "was",  "will", "with",
};

}  // namespace

bool IsStopword(std::string_view word) {
  for (std::string_view s : kStopwords) {
    if (s == word) return true;
  }
  return false;
}

std::vector<PositionedToken> TokenizeWithPositions(
    std::string_view text, const TokenizerOptions& opts) {
  std::vector<PositionedToken> out;
  std::string current;
  uint32_t position = 0;
  auto flush = [&]() {
    if (current.empty()) return;
    if (!(opts.drop_stopwords && IsStopword(current))) {
      out.push_back(PositionedToken{
          opts.stem ? PorterStem(current) : current, position});
    }
    ++position;  // stopwords still advance the position counter
    current.clear();
  };
  for (char c : text) {
    if (c >= 'a' && c <= 'z') {
      current += c;
    } else if (c >= 'A' && c <= 'Z') {
      current += static_cast<char>(c - 'A' + 'a');
    } else if (c >= '0' && c <= '9') {
      current += c;
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& opts) {
  std::vector<std::string> out;
  for (PositionedToken& t : TokenizeWithPositions(text, opts)) {
    out.push_back(std::move(t.text));
  }
  return out;
}

std::string NormalizeTerm(std::string_view word, const TokenizerOptions& opts) {
  std::string lower = ToLowerAscii(word);
  if (opts.drop_stopwords && IsStopword(lower)) return "";
  return opts.stem ? PorterStem(lower) : lower;
}

}  // namespace flexpath
