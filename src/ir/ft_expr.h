#ifndef FLEXPATH_IR_FT_EXPR_H_
#define FLEXPATH_IR_FT_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ir/tokenizer.h"

namespace flexpath {

/// Node kinds of a full-text expression tree (the FTExp of the paper's
/// contains($i, FTExp) predicate). The paper delegates FTExp richness to
/// the IR engine ("stemming, proximity distance, Boolean predicates");
/// kNear is the proximity-distance operator.
enum class FtKind {
  kTerm,    ///< One normalized keyword.
  kPhrase,  ///< Consecutive keywords within one element's text.
  kNear,    ///< All keywords within a token window in one element's text.
  kAnd,
  kOr,
  kNot,
};

/// A boolean full-text search expression. Values are immutable trees and
/// freely copyable. Terms are stored normalized (lowercased/stemmed with
/// the same pipeline as indexing), so equal-looking queries compare equal.
class FtExpr {
 public:
  /// Builders.
  static FtExpr Term(std::string_view word,
                     const TokenizerOptions& opts = {});
  static FtExpr Phrase(const std::vector<std::string>& words,
                       const TokenizerOptions& opts = {});
  /// Proximity: every word occurs in one element's text, pairwise within
  /// `window` token positions (order-insensitive). window >= 1.
  static FtExpr Near(const std::vector<std::string>& words, uint32_t window,
                     const TokenizerOptions& opts = {});
  static FtExpr And(FtExpr lhs, FtExpr rhs);
  static FtExpr Or(FtExpr lhs, FtExpr rhs);
  static FtExpr Not(FtExpr child);

  FtKind kind() const { return kind_; }
  /// For kTerm: the normalized term. Empty for other kinds.
  const std::string& term() const { return term_; }
  /// For kPhrase/kNear: the normalized words (in order for phrases).
  const std::vector<std::string>& phrase() const { return phrase_; }
  /// For kNear: the token window.
  uint32_t window() const { return window_; }
  const std::vector<FtExpr>& children() const { return children_; }

  /// Canonical text form, used as a cache key and in diagnostics, e.g.
  /// `("xml" and "stream")`. Deterministic for equal expressions.
  std::string ToString() const;

  /// All positive (non-negated) terms, including phrase words — the terms
  /// that contribute to tf-idf scoring.
  std::vector<std::string> PositiveTerms() const;

  friend bool operator==(const FtExpr& a, const FtExpr& b);

 private:
  FtExpr() = default;

  FtKind kind_ = FtKind::kTerm;
  std::string term_;
  std::vector<std::string> phrase_;
  uint32_t window_ = 0;
  std::vector<FtExpr> children_;
};

/// Parses the paper's FTExp syntax:
///   expr  := or ; or := and ('or' and)* ; and := unary ('and' unary)*
///   unary := 'not' unary | '(' expr ')' | near | quoted | bareword
///   near  := 'near' '(' quoted-or-word+ ',' INT ')'
/// A quoted string with several words is a phrase. Keywords are normalized
/// with `opts`. Examples: `"XML" and "streaming"`, `not ("gold" or rare)`,
/// `near("gold" "ring", 4)`.
Result<FtExpr> ParseFtExpr(std::string_view input,
                           const TokenizerOptions& opts = {});

}  // namespace flexpath

#endif  // FLEXPATH_IR_FT_EXPR_H_
