#include "ir/stemmer.h"

namespace flexpath {

namespace {

/// Working buffer for one stemming run. Implements the five steps of
/// Porter (1980) over a mutable string `b` with logical end `k` (index of
/// the last character, inclusive), mirroring the reference C
/// implementation (signed indices, since `j` can legitimately become -1).
class Porter {
 public:
  explicit Porter(std::string_view word)
      : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string Run() {
    if (k_ <= 1) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, static_cast<size_t>(k_ + 1));
  }

 private:
  char At(int i) const { return b_[static_cast<size_t>(i)]; }

  bool IsConsonant(int i) const {
    switch (At(i)) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// m(): number of consonant-vowel sequences in b[0..j_].
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (At(i) != At(i - 1)) return false;
    return IsConsonant(i);
  }

  /// cvc(i) — consonant-vowel-consonant ending where the final consonant
  /// is not w, x or y. Used to restore a trailing 'e' ("hop" -> "hope").
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) ||
        !IsConsonant(i - 2)) {
      return false;
    }
    char ch = At(i);
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool Ends(std::string_view s) {
    int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(std::string_view s) {
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void ReplaceIfM(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  void Step1ab() {
    if (At(k_) == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (At(k_ - 1) != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = At(k_);
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<size_t>(k_)] = 'i';
  }

  void Step2() {
    struct Rule {
      std::string_view suffix, repl;
    };
    static constexpr Rule kRules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"bli", "ble"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},  {"logi", "log"},
    };
    for (const Rule& r : kRules) {
      if (Ends(r.suffix)) {
        ReplaceIfM(r.repl);
        return;
      }
    }
  }

  void Step3() {
    struct Rule {
      std::string_view suffix, repl;
    };
    static constexpr Rule kRules[] = {
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    };
    for (const Rule& r : kRules) {
      if (Ends(r.suffix)) {
        ReplaceIfM(r.repl);
        return;
      }
    }
  }

  void Step4() {
    static constexpr std::string_view kSuffixes[] = {
        "al",    "ance", "ence", "er",  "ic",  "able", "ible", "ant",
        "ement", "ment", "ent",  "ion", "ou",  "ism",  "ate",  "iti",
        "ous",   "ive",  "ize",
    };
    for (std::string_view s : kSuffixes) {
      if (Ends(s)) {
        // "ion" is only removed after 's' or 't' ("adoption" -> "adopt",
        // but "onion" keeps its ending).
        if (s == "ion" && !(j_ >= 0 && (At(j_) == 's' || At(j_) == 't'))) {
          continue;
        }
        if (Measure() > 1) k_ = j_;
        return;
      }
    }
  }

  void Step5() {
    j_ = k_;
    if (At(k_) == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (At(k_) == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
  }

  std::string b_;
  int k_;       ///< Index of last character (inclusive).
  int j_ = 0;   ///< Stem end set by Ends(); may be -1.
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Porter(word).Run();
}

}  // namespace flexpath
