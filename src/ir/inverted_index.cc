#include "ir/inverted_index.h"

#include <algorithm>
#include <cmath>

namespace flexpath {

InvertedIndex::InvertedIndex(const Corpus* corpus, TokenizerOptions opts)
    : corpus_(corpus), opts_(opts) {
  total_elements_ = corpus_->TotalNodes();
  for (DocId d = 0; d < corpus_->size(); ++d) {
    const Document& doc = corpus_->doc(d);
    for (NodeId n = 0; n < doc.size(); ++n) {
      const Element& e = doc.node(n);
      if (e.text.empty()) continue;
      for (const PositionedToken& token :
           TokenizeWithPositions(e.text, opts_)) {
        PostingList& list = index_[token.text];
        if (!list.postings.empty() &&
            list.postings.back().node == NodeRef{d, n}) {
          Posting& p = list.postings.back();
          ++p.tf;
          p.positions.push_back(token.position);
        } else {
          Posting p;
          p.node = NodeRef{d, n};
          p.tf = 1;
          p.positions.push_back(token.position);
          list.postings.push_back(std::move(p));
        }
      }
    }
  }
  // Documents are scanned in (doc, node) order, so each posting list is
  // already sorted by NodeRef. Build the tf prefix sums.
  for (auto& [term, list] : index_) {
    list.tf_prefix.resize(list.postings.size() + 1, 0);
    for (size_t i = 0; i < list.postings.size(); ++i) {
      list.tf_prefix[i + 1] = list.tf_prefix[i] + list.postings[i].tf;
    }
  }
}

const PostingList* InvertedIndex::Find(const std::string& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? nullptr : &it->second;
}

double InvertedIndex::Idf(const std::string& term) const {
  const PostingList* list = Find(term);
  const double df = list == nullptr ? 0.0
                                    : static_cast<double>(list->postings.size());
  return std::log(1.0 + static_cast<double>(total_elements_) / (1.0 + df));
}

uint64_t InvertedIndex::SubtreeTermFrequency(const std::string& term,
                                             NodeRef context) const {
  const PostingList* list = Find(term);
  if (list == nullptr) return 0;
  const Element& ctx = corpus_->node(context);
  // Subtree postings form a contiguous run: same doc, start in
  // [ctx.start, ctx.end). Binary-search the run boundaries.
  auto lower = std::lower_bound(
      list->postings.begin(), list->postings.end(), context,
      [](const Posting& p, const NodeRef& c) { return p.node < c; });
  // Postings inside the subtree are exactly those in the same doc with
  // start < ctx.end (start is monotone in NodeId), so the end of the run
  // can be binary-searched as well.
  auto upper = std::partition_point(
      lower, list->postings.end(), [&](const Posting& p) {
        return p.node.doc == context.doc &&
               corpus_->node(p.node).start < ctx.end;
      });
  size_t lo = static_cast<size_t>(lower - list->postings.begin());
  size_t hi = static_cast<size_t>(upper - list->postings.begin());
  return list->tf_prefix[hi] - list->tf_prefix[lo];
}

}  // namespace flexpath
