#include "ir/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.h"

namespace flexpath {

InvertedIndex::InvertedIndex(const Corpus* corpus, TokenizerOptions opts)
    : corpus_(corpus), opts_(opts) {
  total_elements_ = corpus_->TotalNodes();
  for (DocId d = 0; d < corpus_->size(); ++d) {
    const Document& doc = corpus_->doc(d);
    for (NodeId n = 0; n < doc.size(); ++n) {
      const Element& e = doc.node(n);
      if (e.text.empty()) continue;
      for (const PositionedToken& token :
           TokenizeWithPositions(e.text, opts_)) {
        PostingList& list = index_[token.text];
        if (!list.postings.empty() &&
            list.postings.back().node == NodeRef{d, n}) {
          Posting& p = list.postings.back();
          ++p.tf;
          p.positions.push_back(token.position);
        } else {
          Posting p;
          p.node = NodeRef{d, n};
          p.tf = 1;
          p.positions.push_back(token.position);
          list.postings.push_back(std::move(p));
        }
      }
    }
  }
  // Documents are scanned in (doc, node) order, so each posting list is
  // already sorted by NodeRef. Build the tf prefix sums.
  for (auto& [term, list] : index_) {
    list.tf_prefix.resize(list.postings.size() + 1, 0);
    for (size_t i = 0; i < list.postings.size(); ++i) {
      list.tf_prefix[i + 1] = list.tf_prefix[i] + list.postings[i].tf;
    }
  }
}

InvertedIndex::InvertedIndex(const Corpus* corpus, TokenizerOptions opts,
                             std::shared_ptr<const PostingSource> source)
    : corpus_(corpus),
      opts_(opts),
      total_elements_(corpus->TotalNodes()),  // Directory-served; no decode.
      source_(std::move(source)) {}

std::shared_ptr<const PostingList> InvertedIndex::Find(
    const std::string& term) const {
  if (source_ != nullptr) return source_->FindPostings(term);
  auto it = index_.find(term);
  if (it == index_.end()) return nullptr;
  // Non-owning handle: the index owns the list for its whole lifetime,
  // so the control block is empty and the deleter a no-op.
  return std::shared_ptr<const PostingList>(std::shared_ptr<const void>(),
                                            &it->second);
}

double InvertedIndex::Idf(const std::string& term) const {
  double df = 0.0;
  if (source_ != nullptr) {
    uint32_t df32 = 0;
    uint64_t total_tf = 0;
    if (source_->TermInfo(term, &df32, &total_tf)) {
      df = static_cast<double>(df32);
    }
  } else {
    auto it = index_.find(term);
    if (it != index_.end()) {
      df = static_cast<double>(it->second.postings.size());
    }
  }
  return std::log(1.0 + static_cast<double>(total_elements_) / (1.0 + df));
}

size_t InvertedIndex::vocabulary_size() const {
  return source_ != nullptr ? source_->TermCount() : index_.size();
}

uint64_t InvertedIndex::SubtreeTermFrequency(const std::string& term,
                                             NodeRef context) const {
  if (source_ != nullptr) {
    // Key-range formulation of the in-memory search below. Subtree
    // postings are exactly the keys in [context, first node of the same
    // doc with start >= ctx.end); since start is monotone in NodeId the
    // boundary node binary-searches over the (materialized) context doc.
    const Document& doc = corpus_->doc(context.doc);
    const Element& ctx = doc.node(context.node);
    NodeId lo_node = context.node;
    NodeId hi_node = static_cast<NodeId>(doc.size());
    while (lo_node < hi_node) {
      const NodeId mid = lo_node + (hi_node - lo_node) / 2;
      if (doc.node(mid).start < ctx.end) {
        lo_node = mid + 1;
      } else {
        hi_node = mid;
      }
    }
    const uint64_t lo_key =
        (static_cast<uint64_t>(context.doc) << 32) | context.node;
    const uint64_t hi_key =
        lo_node < doc.size()
            ? (static_cast<uint64_t>(context.doc) << 32) | lo_node
            : (static_cast<uint64_t>(context.doc) + 1) << 32;
    Result<uint64_t> sum = source_->RangeTermFrequency(term, lo_key, hi_key);
    if (!sum.ok()) {
      FLEXPATH_LOG_ERROR("storage", "range term frequency failed",
                         {"term", term},
                         {"error", sum.status().ToString()});
      return 0;
    }
    return sum.value();
  }
  auto it = index_.find(term);
  if (it == index_.end()) return 0;
  const PostingList* list = &it->second;
  const Element& ctx = corpus_->node(context);
  // Subtree postings form a contiguous run: same doc, start in
  // [ctx.start, ctx.end). Binary-search the run boundaries.
  auto lower = std::lower_bound(
      list->postings.begin(), list->postings.end(), context,
      [](const Posting& p, const NodeRef& c) { return p.node < c; });
  // Postings inside the subtree are exactly those in the same doc with
  // start < ctx.end (start is monotone in NodeId), so the end of the run
  // can be binary-searched as well.
  auto upper = std::partition_point(
      lower, list->postings.end(), [&](const Posting& p) {
        return p.node.doc == context.doc &&
               corpus_->node(p.node).start < ctx.end;
      });
  size_t lo = static_cast<size_t>(lower - list->postings.begin());
  size_t hi = static_cast<size_t>(upper - list->postings.begin());
  return list->tf_prefix[hi] - list->tf_prefix[lo];
}

void InvertedIndex::ForEachTerm(
    const std::function<void(const std::string&, const PostingList&)>& fn)
    const {
  for (const auto& [term, list] : index_) fn(term, list);
}

}  // namespace flexpath
