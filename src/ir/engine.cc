#include "ir/engine.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace flexpath {

namespace {

/// Index of the first most-specific entry with node >= `ref` (by global
/// document order).
size_t LowerBoundScored(const std::vector<ScoredNode>& v, NodeRef ref) {
  auto it = std::lower_bound(
      v.begin(), v.end(), ref,
      [](const ScoredNode& s, const NodeRef& r) { return s.node < r; });
  return static_cast<size_t>(it - v.begin());
}

}  // namespace

ContainsResult::ContainsResult(const Corpus* corpus,
                               std::vector<NodeRef> satisfying,
                               std::vector<ScoredNode> most_specific)
    : corpus_(corpus),
      satisfying_(std::move(satisfying)),
      most_specific_(std::move(most_specific)) {
  // Build the sparse table for range-max over most-specific scores.
  const size_t n = most_specific_.size();
  if (n == 0) return;
  rmq_.emplace_back(n);
  for (size_t i = 0; i < n; ++i) rmq_[0][i] = most_specific_[i].score;
  for (size_t len = 2; len <= n; len *= 2) {
    const std::vector<double>& prev = rmq_.back();
    std::vector<double> cur(n - len + 1);
    for (size_t i = 0; i + len <= n; ++i) {
      cur[i] = std::max(prev[i], prev[i + len / 2]);
    }
    rmq_.push_back(std::move(cur));
  }
}

bool ContainsResult::Satisfies(NodeRef context) const {
  return std::binary_search(satisfying_.begin(), satisfying_.end(), context);
}

double ContainsResult::BestScoreWithin(NodeRef context) const {
  if (most_specific_.empty()) return 0.0;
  const Element& ctx = corpus_->node(context);
  size_t lo = LowerBoundScored(most_specific_, context);
  // Entries in the subtree: same doc, start < ctx.end. Since entries are
  // in document order and starts are monotone within a doc, the run is
  // contiguous; find its end by binary search.
  auto it = std::partition_point(
      most_specific_.begin() + static_cast<ptrdiff_t>(lo),
      most_specific_.end(), [&](const ScoredNode& s) {
        return s.node.doc == context.doc &&
               corpus_->node(s.node).start < ctx.end;
      });
  size_t hi = static_cast<size_t>(it - most_specific_.begin());
  if (lo >= hi) return 0.0;
  // Range max via the sparse table.
  size_t len = hi - lo;
  size_t level = 0;
  while ((size_t{2} << level) <= len) ++level;
  size_t window = size_t{1} << level;
  return std::max(rmq_[level][lo], rmq_[level][hi - window]);
}

size_t ContainsResult::CountWithTag(TagId tag) const {
  MutexLock lock(tag_counts_mu_);
  auto it = tag_counts_.find(tag);
  if (it != tag_counts_.end()) return it->second;
  size_t count = 0;
  for (NodeRef ref : satisfying_) {
    if (corpus_->node(ref).tag == tag) ++count;
  }
  tag_counts_.emplace(tag, count);
  return count;
}

size_t ContainsResult::CountWithTagInRange(TagId tag, DocId doc_begin,
                                           DocId doc_end) const {
  // satisfying_ is sorted in global document order, so the documents of
  // one shard form a contiguous run.
  auto lo = std::lower_bound(satisfying_.begin(), satisfying_.end(),
                             NodeRef{doc_begin, 0});
  auto hi = std::lower_bound(lo, satisfying_.end(), NodeRef{doc_end, 0});
  size_t count = 0;
  for (auto it = lo; it != hi; ++it) {
    if (corpus_->node(*it).tag == tag) ++count;
  }
  return count;
}

size_t ContainsResult::ApproxBytes() const {
  size_t bytes = sizeof(ContainsResult);
  bytes += satisfying_.capacity() * sizeof(NodeRef);
  bytes += most_specific_.capacity() * sizeof(ScoredNode);
  for (const std::vector<double>& level : rmq_) {
    bytes += level.capacity() * sizeof(double);
  }
  return bytes;
}

IrEngine::IrEngine(const Corpus* corpus, TokenizerOptions opts)
    : corpus_(corpus), index_(corpus, opts), cache_(kDefaultCacheBudgetBytes) {}

IrEngine::IrEngine(const Corpus* corpus, TokenizerOptions opts,
                   std::shared_ptr<const PostingSource> source)
    : corpus_(corpus),
      index_(corpus, opts, std::move(source)),
      cache_(kDefaultCacheBudgetBytes) {}

std::shared_ptr<const ContainsResult> IrEngine::Evaluate(const FtExpr& expr) {
  static Counter* m_calls =
      MetricsRegistry::Global().counter("ir.evaluate_calls");
  static Counter* m_hits = MetricsRegistry::Global().counter("ir.cache_hits");
  static Counter* m_satisfying =
      MetricsRegistry::Global().counter("ir.satisfying_nodes");
  m_calls->Inc();
  const std::string key = expr.ToString();
  // One lock over lookup-compute-insert: concurrent workers asking for
  // the same uncached expression would otherwise compute it twice and
  // race the insert. First-time evaluation serializing is acceptable —
  // every later call is a cheap hit under the lock.
  MutexLock lock(cache_mu_);
  if (std::shared_ptr<const ContainsResult> hit = cache_.Get(key)) {
    m_hits->Inc();
    return hit;
  }

  std::vector<NodeRef> satisfying = SatisfyingSet(expr);
  m_satisfying->Inc(satisfying.size());

  // Most-specific = entries whose immediate successor (the first
  // descendant in pre-order, if any) is not inside their interval.
  std::vector<ScoredNode> specific;
  for (size_t i = 0; i < satisfying.size(); ++i) {
    const NodeRef ref = satisfying[i];
    if (i + 1 < satisfying.size()) {
      const NodeRef next = satisfying[i + 1];
      if (next.doc == ref.doc &&
          corpus_->node(next).start < corpus_->node(ref).end) {
        continue;  // has a satisfying descendant
      }
    }
    specific.push_back(ScoredNode{ref, 0.0});
  }

  // Score most-specific elements: sum over the expression's positive
  // terms of subtree tf * idf, then normalize the batch to [0, 1].
  const std::vector<std::string> terms = expr.PositiveTerms();
  double max_score = 0.0;
  for (ScoredNode& s : specific) {
    double score = 0.0;
    for (const std::string& t : terms) {
      const uint64_t tf = index_.SubtreeTermFrequency(t, s.node);
      if (tf > 0) {
        score += (1.0 + std::log(static_cast<double>(tf))) * index_.Idf(t);
      }
    }
    s.score = score;
    max_score = std::max(max_score, score);
  }
  if (max_score > 0.0) {
    for (ScoredNode& s : specific) s.score /= max_score;
  } else {
    // Pure-negation expressions carry no positive evidence; give matches
    // a uniform nominal score.
    for (ScoredNode& s : specific) s.score = 1.0;
  }

  auto result = std::make_shared<const ContainsResult>(
      corpus_, std::move(satisfying), std::move(specific));
  cache_.Put(key, result, result->ApproxBytes());
  static Counter* m_evictions =
      MetricsRegistry::Global().counter("ir.cache_evictions");
  static Gauge* g_bytes = MetricsRegistry::Global().gauge("ir.cache_bytes");
  static Gauge* g_entries =
      MetricsRegistry::Global().gauge("ir.cache_entries");
  const uint64_t ev = cache_.evictions();
  if (ev > exported_evictions_) {
    m_evictions->Inc(ev - exported_evictions_);
    exported_evictions_ = ev;
  }
  g_bytes->Set(static_cast<int64_t>(cache_.bytes()));
  g_entries->Set(static_cast<int64_t>(cache_.size()));
  return result;
}

void IrEngine::SetCacheBudget(size_t budget_bytes) {
  MutexLock lock(cache_mu_);
  cache_.SetBudget(budget_bytes);
}

IrEngine::CacheStats IrEngine::GetCacheStats() const {
  MutexLock lock(cache_mu_);
  CacheStats s;
  s.evictions = cache_.evictions();
  s.entries = cache_.size();
  s.bytes = cache_.bytes();
  s.budget = cache_.budget();
  return s;
}

std::vector<NodeRef> IrEngine::SatisfyingSet(const FtExpr& expr) const {
  switch (expr.kind()) {
    case FtKind::kTerm:
    case FtKind::kPhrase:
    case FtKind::kNear:
      return AncestorClosure(DirectMatches(expr));
    case FtKind::kAnd: {
      std::vector<NodeRef> a = SatisfyingSet(expr.children()[0]);
      std::vector<NodeRef> b = SatisfyingSet(expr.children()[1]);
      std::vector<NodeRef> out;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(out));
      return out;
    }
    case FtKind::kOr: {
      std::vector<NodeRef> a = SatisfyingSet(expr.children()[0]);
      std::vector<NodeRef> b = SatisfyingSet(expr.children()[1]);
      std::vector<NodeRef> out;
      std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(out));
      return out;
    }
    case FtKind::kNot: {
      std::vector<NodeRef> child = SatisfyingSet(expr.children()[0]);
      std::vector<NodeRef> all = Universe();
      std::vector<NodeRef> out;
      std::set_difference(all.begin(), all.end(), child.begin(), child.end(),
                          std::back_inserter(out));
      return out;
    }
  }
  return {};
}

std::vector<NodeRef> IrEngine::DirectMatches(const FtExpr& expr) const {
  static Counter* m_probes =
      MetricsRegistry::Global().counter("ir.posting_probes");
  static Counter* m_scanned =
      MetricsRegistry::Global().counter("ir.postings_scanned");
  m_probes->Inc();
  std::vector<NodeRef> out;
  if (expr.kind() == FtKind::kTerm) {
    if (expr.term().empty()) return out;  // normalized-away stopword
    const std::shared_ptr<const PostingList> list = index_.Find(expr.term());
    if (list == nullptr) return out;
    m_scanned->Inc(list->postings.size());
    out.reserve(list->postings.size());
    for (const Posting& p : list->postings) out.push_back(p.node);
    return out;
  }
  // Phrase / proximity: intersect posting lists, then verify positions
  // within each candidate element.
  const std::vector<std::string>& words = expr.phrase();
  if (words.empty()) return out;
  // The handles pin pooled lists (packed mode) for the whole walk below.
  std::vector<std::shared_ptr<const PostingList>> lists;
  for (const std::string& w : words) {
    std::shared_ptr<const PostingList> list = index_.Find(w);
    if (list == nullptr) return out;
    lists.push_back(std::move(list));
  }
  m_scanned->Inc(lists[0]->postings.size());
  // Walk the first list; probe the others.
  for (const Posting& first : lists[0]->postings) {
    std::vector<const Posting*> entry(words.size());
    entry[0] = &first;
    bool all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      const auto& ps = lists[i]->postings;
      auto it = std::lower_bound(
          ps.begin(), ps.end(), first.node,
          [](const Posting& p, const NodeRef& r) { return p.node < r; });
      if (it == ps.end() || !(it->node == first.node)) {
        all = false;
        break;
      }
      entry[i] = &*it;
    }
    if (!all) continue;
    const bool hit = expr.kind() == FtKind::kPhrase
                         ? PhraseAt(entry)
                         : NearAt(entry, expr.window());
    if (hit) out.push_back(first.node);
  }
  return out;
}

bool IrEngine::PhraseAt(const std::vector<const Posting*>& entry) {
  // Check for positions p, p+1, ..., p+k-1.
  for (uint32_t pos : entry[0]->positions) {
    bool run = true;
    for (size_t i = 1; i < entry.size(); ++i) {
      const auto& v = entry[i]->positions;
      if (!std::binary_search(v.begin(), v.end(),
                              pos + static_cast<uint32_t>(i))) {
        run = false;
        break;
      }
    }
    if (run) return true;
  }
  return false;
}

bool IrEngine::NearAt(const std::vector<const Posting*>& entry,
                      uint32_t window) {
  // Merge all occurrences, then slide a token window and check that some
  // window covers every word at least once.
  std::vector<std::pair<uint32_t, size_t>> occ;  // (position, word index)
  for (size_t i = 0; i < entry.size(); ++i) {
    for (uint32_t pos : entry[i]->positions) occ.emplace_back(pos, i);
  }
  std::sort(occ.begin(), occ.end());
  std::vector<size_t> in_window(entry.size(), 0);
  size_t covered = 0;
  size_t left = 0;
  for (size_t right = 0; right < occ.size(); ++right) {
    if (in_window[occ[right].second]++ == 0) ++covered;
    while (occ[right].first - occ[left].first > window) {
      if (--in_window[occ[left].second] == 0) --covered;
      ++left;
    }
    if (covered == entry.size()) return true;
  }
  return false;
}

std::vector<NodeRef> IrEngine::AncestorClosure(
    std::vector<NodeRef> direct) const {
  std::vector<NodeRef> out;
  for (NodeRef ref : direct) {
    out.push_back(ref);
    const Document& doc = corpus_->doc(ref.doc);
    for (NodeId p = doc.node(ref.node).parent; p != kInvalidNode;
         p = doc.node(p).parent) {
      out.push_back(NodeRef{ref.doc, p});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeRef> IrEngine::Universe() const {
  std::vector<NodeRef> out;
  out.reserve(corpus_->TotalNodes());
  for (DocId d = 0; d < corpus_->size(); ++d) {
    const size_t n = corpus_->DocSize(d);  // No materialization needed.
    for (NodeId i = 0; i < n; ++i) out.push_back(NodeRef{d, i});
  }
  return out;
}

}  // namespace flexpath
