#include "ir/thesaurus.h"

namespace flexpath {

void Thesaurus::AddSynonym(std::string_view term, std::string_view synonym,
                           const TokenizerOptions& opts) {
  const std::string key = NormalizeTerm(term, opts);
  const std::string value = NormalizeTerm(synonym, opts);
  if (key.empty() || value.empty() || key == value) return;
  std::vector<std::string>& list = synonyms_[key];
  for (const std::string& existing : list) {
    if (existing == value) return;
  }
  list.push_back(value);
}

const std::vector<std::string>& Thesaurus::SynonymsOf(
    const std::string& term) const {
  auto it = synonyms_.find(term);
  return it == synonyms_.end() ? empty_ : it->second;
}

FtExpr ExpandWithThesaurus(const FtExpr& expr, const Thesaurus& thesaurus) {
  switch (expr.kind()) {
    case FtKind::kTerm: {
      // Terms are already normalized; bypass re-normalization by feeding
      // the stored form through a no-op pipeline.
      TokenizerOptions raw;
      raw.stem = false;
      raw.drop_stopwords = false;
      FtExpr out = FtExpr::Term(expr.term(), raw);
      for (const std::string& syn : thesaurus.SynonymsOf(expr.term())) {
        out = FtExpr::Or(std::move(out), FtExpr::Term(syn, raw));
      }
      return out;
    }
    case FtKind::kAnd: {
      return FtExpr::And(
          ExpandWithThesaurus(expr.children()[0], thesaurus),
          ExpandWithThesaurus(expr.children()[1], thesaurus));
    }
    case FtKind::kOr: {
      return FtExpr::Or(ExpandWithThesaurus(expr.children()[0], thesaurus),
                        ExpandWithThesaurus(expr.children()[1], thesaurus));
    }
    case FtKind::kNot:
    case FtKind::kPhrase:
    case FtKind::kNear:
      // Not expanded; see the header for why.
      return expr;
  }
  return expr;
}

}  // namespace flexpath
