#ifndef FLEXPATH_IR_INVERTED_INDEX_H_
#define FLEXPATH_IR_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ir/tokenizer.h"
#include "xml/corpus.h"

namespace flexpath {

/// One posting: a direct occurrence of a term in the immediate text of an
/// element, with term frequency and token positions (for phrases).
struct Posting {
  NodeRef node;
  uint32_t tf = 0;
  std::vector<uint32_t> positions;  ///< Token offsets within the element.
};

/// A term's posting list, sorted by NodeRef (global document order), plus
/// a prefix-sum over tf for O(log n) subtree frequency queries.
struct PostingList {
  std::vector<Posting> postings;
  std::vector<uint64_t> tf_prefix;  ///< tf_prefix[i] = sum of tf[0..i).
};

/// On-demand provider of posting lists. A packed corpus
/// (storage/reader.h) implements this over its block-compressed posting
/// section: term metadata (df, total tf) is answered from the term
/// directory without decoding, full lists decode into the buffer pool,
/// and range term-frequency sums seek via per-block skip entries (tf
/// prefix sums in SkipEntry::aggregate) so only boundary blocks decode.
/// Declared here so ir/ stays independent of storage/.
class PostingSource {
 public:
  virtual ~PostingSource() = default;

  /// Looks up `term` in the directory. Returns false for unknown terms;
  /// otherwise fills df (posting count) and total_tf without decoding.
  virtual bool TermInfo(const std::string& term, uint32_t* df,
                        uint64_t* total_tf) const = 0;

  /// Full posting list for `term` (decoded or buffer-pool hit), or null
  /// for unknown terms. The shared_ptr pins the list against eviction.
  virtual std::shared_ptr<const PostingList> FindPostings(
      const std::string& term) const = 0;

  /// Sum of tf over postings whose NodeRef key ((doc << 32) | node) lies
  /// in [lo_key, hi_key). Seeks via skip entries; decodes at most the
  /// two boundary blocks. Errors (corrupt blocks) surface as Status.
  virtual Result<uint64_t> RangeTermFrequency(const std::string& term,
                                              uint64_t lo_key,
                                              uint64_t hi_key) const = 0;

  /// Number of distinct terms in the directory.
  virtual size_t TermCount() const = 0;
};

/// Element-granularity inverted index over a corpus. Terms are attributed
/// to the element whose immediate text contains them; subtree-level
/// statistics are derived at query time from the interval encoding.
///
/// Two modes: the in-memory mode tokenizes the whole corpus at build
/// time; the packed mode (PostingSource ctor) holds no lists at all and
/// forwards every lookup to the source. Both return identical data —
/// the differential suite asserts byte-identical query answers.
class InvertedIndex {
 public:
  /// Builds the index in one corpus pass. `corpus` must outlive the
  /// index and not change.
  InvertedIndex(const Corpus* corpus, TokenizerOptions opts);

  /// Packed mode: no corpus pass; lookups go to `source`.
  InvertedIndex(const Corpus* corpus, TokenizerOptions opts,
                std::shared_ptr<const PostingSource> source);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Returns the posting list for a normalized term, or null. The
  /// shared_ptr keeps the list valid even if a packed reader's buffer
  /// pool evicts it concurrently (in-memory lists are owned by the index
  /// itself; their handle is non-owning).
  std::shared_ptr<const PostingList> Find(const std::string& term) const;

  /// Inverse document frequency of `term` at element granularity:
  /// log(1 + N / (1 + df)). Zero-df terms still get a finite value. In
  /// packed mode df comes from the term directory — no list decode.
  double Idf(const std::string& term) const;

  /// Total elements indexed (the N of the idf formula).
  uint64_t total_elements() const { return total_elements_; }

  /// Number of distinct terms.
  size_t vocabulary_size() const;

  const Corpus& corpus() const { return *corpus_; }
  const TokenizerOptions& tokenizer_options() const { return opts_; }

  /// Sum of tf of `term` over all elements in the subtree of `context`
  /// (inclusive). O(log |postings|) via prefix sums in memory; in packed
  /// mode a skip-entry range seek that decodes at most two blocks.
  uint64_t SubtreeTermFrequency(const std::string& term,
                                NodeRef context) const;

  /// Visits every (term, list) pair in unspecified order. In-memory mode
  /// only (the packed writer serializes from an in-memory index).
  void ForEachTerm(
      const std::function<void(const std::string&, const PostingList&)>& fn)
      const;

 private:
  const Corpus* corpus_;
  TokenizerOptions opts_;
  std::unordered_map<std::string, PostingList> index_;
  uint64_t total_elements_ = 0;
  /// Packed mode: non-null; index_ stays empty.
  std::shared_ptr<const PostingSource> source_;
};

}  // namespace flexpath

#endif  // FLEXPATH_IR_INVERTED_INDEX_H_
