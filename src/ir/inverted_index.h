#ifndef FLEXPATH_IR_INVERTED_INDEX_H_
#define FLEXPATH_IR_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/tokenizer.h"
#include "xml/corpus.h"

namespace flexpath {

/// One posting: a direct occurrence of a term in the immediate text of an
/// element, with term frequency and token positions (for phrases).
struct Posting {
  NodeRef node;
  uint32_t tf = 0;
  std::vector<uint32_t> positions;  ///< Token offsets within the element.
};

/// A term's posting list, sorted by NodeRef (global document order), plus
/// a prefix-sum over tf for O(log n) subtree frequency queries.
struct PostingList {
  std::vector<Posting> postings;
  std::vector<uint64_t> tf_prefix;  ///< tf_prefix[i] = sum of tf[0..i).
};

/// Element-granularity inverted index over a corpus. Terms are attributed
/// to the element whose immediate text contains them; subtree-level
/// statistics are derived at query time from the interval encoding.
class InvertedIndex {
 public:
  /// Builds the index. `corpus` must outlive the index and not change.
  InvertedIndex(const Corpus* corpus, TokenizerOptions opts);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Returns the posting list for a normalized term, or nullptr.
  const PostingList* Find(const std::string& term) const;

  /// Inverse document frequency of `term` at element granularity:
  /// log(1 + N / (1 + df)). Zero-df terms still get a finite value.
  double Idf(const std::string& term) const;

  /// Total elements indexed (the N of the idf formula).
  uint64_t total_elements() const { return total_elements_; }

  /// Number of distinct terms.
  size_t vocabulary_size() const { return index_.size(); }

  const Corpus& corpus() const { return *corpus_; }
  const TokenizerOptions& tokenizer_options() const { return opts_; }

  /// Sum of tf of `term` over all elements in the subtree of `context`
  /// (inclusive). O(log |postings|) via prefix sums.
  uint64_t SubtreeTermFrequency(const std::string& term,
                                NodeRef context) const;

 private:
  const Corpus* corpus_;
  TokenizerOptions opts_;
  std::unordered_map<std::string, PostingList> index_;
  uint64_t total_elements_ = 0;
};

}  // namespace flexpath

#endif  // FLEXPATH_IR_INVERTED_INDEX_H_
