#ifndef FLEXPATH_IR_THESAURUS_H_
#define FLEXPATH_IR_THESAURUS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/ft_expr.h"
#include "ir/tokenizer.h"

namespace flexpath {

/// Synonym table for keyword relaxation (Section 3.4: "relax the contains
/// predicate by making use of thesauri and replacing keywords with more
/// general ones"). The paper treats FTExp relaxation as the IR engine's
/// job, to be applied before results are returned; ExpandWithThesaurus
/// rewrites an expression so every term also matches its synonyms.
class Thesaurus {
 public:
  Thesaurus() = default;

  /// Registers `synonym` as an alternative for `term`. Both are
  /// normalized with `opts` (which must match the indexing pipeline).
  /// Symmetric registration is the caller's choice — call twice for
  /// bidirectional synonymy.
  void AddSynonym(std::string_view term, std::string_view synonym,
                  const TokenizerOptions& opts = {});

  /// Synonyms registered for the (normalized) term; empty if none.
  const std::vector<std::string>& SynonymsOf(const std::string& term) const;

  size_t size() const { return synonyms_.size(); }

 private:
  std::unordered_map<std::string, std::vector<std::string>> synonyms_;
  std::vector<std::string> empty_;
};

/// Rewrites `expr` so each positive term t becomes (t or s1 or ... or sn)
/// over its synonyms. Phrases and proximity groups are left untouched
/// (their token-position semantics do not compose with substitution);
/// negated subexpressions are also left untouched — broadening a negated
/// term would *shrink* the result, which is not a relaxation.
FtExpr ExpandWithThesaurus(const FtExpr& expr, const Thesaurus& thesaurus);

}  // namespace flexpath

#endif  // FLEXPATH_IR_THESAURUS_H_
