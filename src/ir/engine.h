#ifndef FLEXPATH_IR_ENGINE_H_
#define FLEXPATH_IR_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ir/ft_expr.h"
#include "ir/inverted_index.h"
#include "xml/corpus.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// A node with its normalized IR relevance score in [0, 1].
struct ScoredNode {
  NodeRef node;
  double score = 0.0;
};

/// The materialized answer to one FTExp evaluation:
///  - `satisfying`: every element whose *subtree* text satisfies the
///    expression (the semantics of contains($i, FTExp): true if at least
///    one node under $i matches), sorted in global document order;
///  - `most_specific`: the deepest satisfying elements (no descendant also
///    satisfies), with tf-idf scores normalized to [0, 1] — this is what
///    the paper's IR engine returns, following XRANK [20] / [29].
/// Most-specific elements have pairwise disjoint intervals, so the ones
/// inside any context interval form a contiguous run; a sparse table gives
/// O(1) range-max for keyword scoring of arbitrary contexts.
class ContainsResult {
 public:
  ContainsResult(const Corpus* corpus, std::vector<NodeRef> satisfying,
                 std::vector<ScoredNode> most_specific);

  const std::vector<NodeRef>& satisfying() const { return satisfying_; }
  const std::vector<ScoredNode>& most_specific() const {
    return most_specific_;
  }

  /// True iff the subtree of `context` satisfies the expression.
  bool Satisfies(NodeRef context) const;

  /// Highest IR score among most-specific matches within the subtree of
  /// `context` (inclusive). Returns 0 when nothing matches there.
  double BestScoreWithin(NodeRef context) const;

  /// Number of satisfying elements whose tag is `tag` — the paper's
  /// #contains(t, FTExp) statistic used in penalties. Cached per tag;
  /// safe to call from concurrent query workers.
  size_t CountWithTag(TagId tag) const;

  /// #contains(t, FTExp) restricted to documents [doc_begin, doc_end) —
  /// the mergeable per-shard form: summed over a partition of the corpus
  /// it equals CountWithTag exactly (satisfying elements never span
  /// documents). Uncached; shard reconciliation and tests call it, not
  /// the query path.
  size_t CountWithTagInRange(TagId tag, DocId doc_begin,
                             DocId doc_end) const;

  /// Charged size of this result in the engine's LRU cache: the node and
  /// score vectors plus the sparse table (the per-tag count memo is small
  /// and grows after insertion, so it is not charged).
  size_t ApproxBytes() const;

 private:
  const Corpus* corpus_;
  std::vector<NodeRef> satisfying_;
  std::vector<ScoredNode> most_specific_;
  /// Sparse table over most_specific_ scores: level l holds the max over
  /// windows of length 2^l.
  std::vector<std::vector<double>> rmq_;
  /// Guards tag_counts_ — the only mutable state; everything else is
  /// read-only after construction, so Satisfies/BestScoreWithin need no
  /// locking.
  mutable Mutex tag_counts_mu_;
  mutable std::unordered_map<TagId, size_t> tag_counts_
      GUARDED_BY(tag_counts_mu_);
};

/// The full-text search engine of the FleXPath architecture (Figure 7):
/// evaluates contains predicates and returns ranked (node, score) lists.
/// Results are cached by canonical expression text in a byte-budgeted
/// LRU (the cache used to grow without bound); callers hold results as
/// shared_ptr, so eviction never invalidates one in use.
class IrEngine {
 public:
  /// Default byte budget of the contains-result cache.
  static constexpr size_t kDefaultCacheBudgetBytes = size_t{128} << 20;

  /// `corpus` must outlive the engine and not change after construction.
  explicit IrEngine(const Corpus* corpus, TokenizerOptions opts = {});

  /// Packed mode: the inverted index forwards to `source` (the packed
  /// reader's posting section) instead of tokenizing the corpus.
  IrEngine(const Corpus* corpus, TokenizerOptions opts,
           std::shared_ptr<const PostingSource> source);

  IrEngine(const IrEngine&) = delete;
  IrEngine& operator=(const IrEngine&) = delete;

  /// Evaluates `expr`, returning a cached result. Safe to call from
  /// concurrent query workers: the cache is mutex-guarded (first-time
  /// evaluation of an expression serializes; hits are a lookup under the
  /// lock). The returned result stays valid as long as the caller holds
  /// the pointer, even if the LRU evicts the entry meanwhile.
  std::shared_ptr<const ContainsResult> Evaluate(const FtExpr& expr);

  /// Adjusts the contains-result cache budget, evicting immediately if
  /// over.
  void SetCacheBudget(size_t budget_bytes);

  struct CacheStats {
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t budget = 0;
  };
  CacheStats GetCacheStats() const;

  const InvertedIndex& index() const { return index_; }

 private:
  /// Computes the sorted satisfying set for `expr` (subtree semantics).
  std::vector<NodeRef> SatisfyingSet(const FtExpr& expr) const;

  /// Elements directly matching a term/phrase/near (before closure).
  std::vector<NodeRef> DirectMatches(const FtExpr& expr) const;

  /// True if the postings (one per phrase word, same element) contain a
  /// consecutive run.
  static bool PhraseAt(const std::vector<const Posting*>& entry);

  /// True if some `window`-token span covers every word at least once.
  static bool NearAt(const std::vector<const Posting*>& entry,
                     uint32_t window);

  /// Closes `direct` under ancestors, returning a sorted deduped set.
  std::vector<NodeRef> AncestorClosure(std::vector<NodeRef> direct) const;

  /// All element NodeRefs of the corpus in order (universe for NOT).
  std::vector<NodeRef> Universe() const;

  const Corpus* corpus_;
  InvertedIndex index_;
  mutable Mutex cache_mu_;
  mutable LruByteCache<std::string, ContainsResult> cache_
      GUARDED_BY(cache_mu_);
  /// Evictions already mirrored into the ir.cache_evictions counter
  /// (per-instance high-water mark, so several engines sum correctly).
  uint64_t exported_evictions_ GUARDED_BY(cache_mu_) = 0;
};

}  // namespace flexpath

#endif  // FLEXPATH_IR_ENGINE_H_
