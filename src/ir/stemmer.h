#ifndef FLEXPATH_IR_STEMMER_H_
#define FLEXPATH_IR_STEMMER_H_

#include <string>
#include <string_view>

namespace flexpath {

/// Porter's stemming algorithm (Porter, 1980), the classic IR stemmer.
/// Input must be lowercase ASCII letters; returns the stem ("streaming"
/// -> "stream", "relational" -> "relat"). Words of length <= 2 are
/// returned unchanged, per the original algorithm.
std::string PorterStem(std::string_view word);

}  // namespace flexpath

#endif  // FLEXPATH_IR_STEMMER_H_
