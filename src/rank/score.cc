#include "rank/score.h"

#include "common/hash.h"
#include "rank/scheme_registry.h"

namespace flexpath {

const char* RankSchemeName(RankScheme scheme) {
  switch (scheme) {
    case RankScheme::kStructureFirst:
      return "structure-first";
    case RankScheme::kKeywordFirst:
      return "keyword-first";
    case RankScheme::kCombined:
      return "combined";
  }
  // Custom schemes minted by SchemeRegistry::Register.
  const char* name = SchemeRegistry::Global().Name(scheme);
  return name != nullptr ? name : "unknown";
}

bool RanksBefore(const AnswerScore& a, const AnswerScore& b,
                 RankScheme scheme) {
  // The built-ins keep a hand-inlined fast path (this comparator sits in
  // every sort/merge inner loop); score_algebra_test pins each case to
  // its registered algebra, so the two can never drift apart.
  switch (scheme) {
    case RankScheme::kStructureFirst:
      if (a.ss != b.ss) return a.ss > b.ss;
      return a.ks > b.ks;
    case RankScheme::kKeywordFirst:
      if (a.ks != b.ks) return a.ks > b.ks;
      return a.ss > b.ss;
    case RankScheme::kCombined:
      return a.Combined() > b.Combined();
  }
  // Custom schemes evaluate their registered algebra (lock-free lookup).
  return SchemeRegistry::RanksBeforeCustom(a, b, scheme);
}

double BaseStructuralScore(const Tpq& q, const Weights& w) {
  double total = 0.0;
  for (VarId v : q.Vars()) {
    const VarId parent = q.Parent(v);
    if (parent == kInvalidVar) continue;
    const Predicate p = q.AxisOf(v) == Axis::kChild ? Predicate::Pc(parent, v)
                                                    : Predicate::Ad(parent, v);
    total += w.Of(p);
  }
  return total;
}

uint64_t AnswersDigest(const std::vector<RankedAnswer>& answers) {
  // Seed with the length so a prefix never digests equal to the full set.
  uint64_t h = HashCombine(0x666c65785061746bULL,
                           static_cast<uint64_t>(answers.size()));
  for (const RankedAnswer& a : answers) {
    h = HashCombine(h, static_cast<uint64_t>(a.node.doc));
    h = HashCombine(h, static_cast<uint64_t>(a.node.node));
    h = HashCombine(h, a.score.ss);
    h = HashCombine(h, a.score.ks);
  }
  return h;
}

}  // namespace flexpath
