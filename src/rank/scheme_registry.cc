#include "rank/scheme_registry.h"

#include <cassert>
#include <utility>

namespace flexpath {

SchemeRegistry& SchemeRegistry::Global() {
  static SchemeRegistry* registry = new SchemeRegistry();
  return *registry;
}

SchemeRegistry::SchemeRegistry() {
  // The built-ins are pre-certified at startup; their certificates are
  // what every optimization site consults. All three must certify — a
  // failure here means the certifier itself regressed.
  for (const SchemeAlgebra& algebra :
       {StructureFirstAlgebra(), KeywordFirstAlgebra(), CombinedAlgebra()}) {
    SchemeCertificate cert = CertifyScheme(algebra);
    assert(cert.certified && "built-in rank scheme failed certification");
    Install(algebra, std::move(cert));
  }
}

RankScheme SchemeRegistry::Install(const SchemeAlgebra& algebra,
                                   SchemeCertificate certificate) {
  MutexLock lock(mu_);
  assert(next_id_ < kMaxRankSchemes);
  const auto id = static_cast<RankScheme>(next_id_++);
  auto entry = std::make_unique<const Entry>(
      Entry{algebra, std::move(certificate)});
  slots_[static_cast<size_t>(id)].store(entry.get(),
                                        std::memory_order_release);
  owned_.push_back(std::move(entry));
  return id;
}

Result<RankScheme> SchemeRegistry::Register(const SchemeAlgebra& algebra) {
  if (algebra.name.empty()) {
    return Status::InvalidArgument("rank scheme needs a name");
  }
  if (ByName(algebra.name).has_value()) {
    return Status::InvalidArgument("rank scheme '" + algebra.name +
                                   "' is already registered");
  }
  SchemeCertificate cert = CertifyScheme(algebra);
  if (!cert.certified) {
    // Fold the refuting FX3xx diagnostics into the error so callers (and
    // the CLI) see exactly which property failed and why.
    std::string msg =
        "rank scheme '" + algebra.name + "' failed certification:";
    for (const Diagnostic& d : cert.Report().diagnostics) {
      msg += " [" + d.code + "] " + d.message + ";";
    }
    return Status::InvalidArgument(std::move(msg));
  }
  {
    MutexLock lock(mu_);
    if (next_id_ >= kMaxRankSchemes) {
      return Status::InvalidArgument("rank scheme table is full");
    }
  }
  return Install(algebra, std::move(cert));
}

RankScheme SchemeRegistry::RegisterForTest(const SchemeAlgebra& algebra,
                                           SchemeCertificate certificate) {
  return Install(algebra, std::move(certificate));
}

void SchemeRegistry::ReplaceCertificateForTest(RankScheme scheme,
                                               SchemeCertificate certificate) {
  MutexLock lock(mu_);
  const auto idx = static_cast<size_t>(scheme);
  assert(idx < kMaxRankSchemes);
  const Entry* old = slots_[idx].load(std::memory_order_acquire);
  assert(old != nullptr && "replacing certificate of an unknown scheme");
  auto entry = std::make_unique<const Entry>(
      Entry{old->algebra, std::move(certificate)});
  slots_[idx].store(entry.get(), std::memory_order_release);
  owned_.push_back(std::move(entry));
}

const SchemeCertificate* SchemeRegistry::Certificate(RankScheme scheme) const {
  const Entry* e = Lookup(scheme);
  return e == nullptr ? nullptr : &e->certificate;
}

const SchemeAlgebra* SchemeRegistry::Algebra(RankScheme scheme) const {
  const Entry* e = Lookup(scheme);
  return e == nullptr ? nullptr : &e->algebra;
}

const char* SchemeRegistry::Name(RankScheme scheme) const {
  const Entry* e = Lookup(scheme);
  return e == nullptr ? nullptr : e->algebra.name.c_str();
}

std::optional<RankScheme> SchemeRegistry::ByName(std::string_view name) const {
  for (size_t i = 0; i < kMaxRankSchemes; ++i) {
    const Entry* e = slots_[i].load(std::memory_order_acquire);
    if (e != nullptr && e->algebra.name == name) {
      return static_cast<RankScheme>(i);
    }
  }
  return std::nullopt;
}

std::vector<RankScheme> SchemeRegistry::Registered() const {
  std::vector<RankScheme> out;
  for (size_t i = 0; i < kMaxRankSchemes; ++i) {
    if (slots_[i].load(std::memory_order_acquire) != nullptr) {
      out.push_back(static_cast<RankScheme>(i));
    }
  }
  return out;
}

std::string SchemeRegistry::CertificatesJson() const {
  std::string out = "[";
  bool first = true;
  for (RankScheme s : Registered()) {
    const SchemeCertificate* cert = Certificate(s);
    if (cert == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += cert->ToJson();
  }
  out += "]";
  return out;
}

bool SchemeRegistry::RanksBeforeCustom(const AnswerScore& a,
                                       const AnswerScore& b,
                                       RankScheme scheme) {
  const Entry* e = Global().Lookup(scheme);
  if (e == nullptr) return false;
  return e->algebra.RanksBefore(a.ss, a.ks, b.ss, b.ks);
}

}  // namespace flexpath
