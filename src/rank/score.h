#ifndef FLEXPATH_RANK_SCORE_H_
#define FLEXPATH_RANK_SCORE_H_

#include <string>
#include <vector>

#include "query/tpq.h"
#include "relax/penalty.h"
#include "xml/corpus.h"

namespace flexpath {

/// The three general ranking schemes of Section 4.3.2. Structure-first
/// and keyword-first order lexicographically on (ss, ks) / (ks, ss);
/// combined orders on ss + ks. All three satisfy relevance scoring and
/// order invariance (Section 4.2) — no longer by fiat: each is
/// re-expressed in the score algebra and certified at startup, and the
/// optimization sites consult the resulting SchemeCertificate (see
/// rank/scheme_registry.h and DESIGN.md §16).
///
/// Values >= 3 denote custom schemes minted by SchemeRegistry::Register;
/// RanksBefore and RankSchemeName fall through to the registry for them.
enum class RankScheme : uint8_t {
  kStructureFirst,
  kKeywordFirst,
  kCombined,
};

const char* RankSchemeName(RankScheme scheme);

/// An answer's two orthogonal scores: structural (how well the answer
/// matches the original pattern: base weight minus the penalties of the
/// violated-but-dropped predicates) and keyword (weighted sum of IR
/// scores of the satisfied contains predicates, each in [0, 1]).
struct AnswerScore {
  double ss = 0.0;
  double ks = 0.0;

  double Combined() const { return ss + ks; }

  friend bool operator==(const AnswerScore&, const AnswerScore&) = default;
};

/// Strict-weak ordering placing better answers first under `scheme`.
/// Ties (exact equality under the scheme) compare false both ways.
bool RanksBefore(const AnswerScore& a, const AnswerScore& b,
                 RankScheme scheme);

/// One ranked query answer: a data node (binding of the distinguished
/// variable) with its scores.
struct RankedAnswer {
  NodeRef node;
  AnswerScore score;
};

/// Order-sensitive 64-bit digest of an answer list: every (doc, node)
/// binding and both score doubles (by bit pattern) are chained in rank
/// order, so two result sets digest equal iff they are byte-identical.
/// The workload-capture log records it per query and flexpath_replay
/// compares it after re-execution — the differential check that a
/// captured workload still reproduces the same answers.
uint64_t AnswersDigest(const std::vector<RankedAnswer>& answers);

/// Σ w(p) over the structural predicates present in the original query
/// (its pc/ad edges) — the paper's Σ w(p_i) term of Section 4.3.2, e.g. 3
/// for Q1 under uniform unit weights.
double BaseStructuralScore(const Tpq& q, const Weights& w);

}  // namespace flexpath

#endif  // FLEXPATH_RANK_SCORE_H_
