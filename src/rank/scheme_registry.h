#ifndef FLEXPATH_RANK_SCHEME_REGISTRY_H_
#define FLEXPATH_RANK_SCHEME_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/score_algebra.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rank/score.h"

namespace flexpath {

/// Hard cap on distinct scheme ids (3 built-ins + custom registrations).
/// RankScheme is a uint8_t, and the slot table is a fixed array so the
/// comparator fast path reads it lock-free.
inline constexpr size_t kMaxRankSchemes = 32;

/// The process-wide rank-scheme registry (flexcheck v2, DESIGN.md §16):
/// every scheme the engine will execute — the three Section 4.3.2
/// built-ins and any custom algebra — lives here together with its
/// SchemeCertificate. The optimization sites (threshold pruning, DPO
/// stopping rules, shard K'-truncation, result-cache exactness) consult
/// the certificate instead of switching on the scheme by name, and
/// Register() refuses algebras the certifier cannot prove sound, so an
/// uncertified scheme can never reach an optimized code path.
class SchemeRegistry {
 public:
  static SchemeRegistry& Global();

  SchemeRegistry(const SchemeRegistry&) = delete;
  SchemeRegistry& operator=(const SchemeRegistry&) = delete;

  /// Certifies `algebra` and installs it under a fresh RankScheme value
  /// (>= 3; the built-in values are pre-registered). Fails with
  /// InvalidArgument — carrying the refuting FX3xx diagnostics — when
  /// the certifier refutes any of the four properties, when the name is
  /// empty or already taken, or when the table is full.
  Result<RankScheme> Register(const SchemeAlgebra& algebra);

  /// TEST SEAM — installs `algebra` with `certificate` taken at face
  /// value, bypassing the certifier. Exists so tests can prove the
  /// certifier is load-bearing: forging a permissive certificate for an
  /// unsound scheme makes the optimized paths visibly diverge.
  RankScheme RegisterForTest(const SchemeAlgebra& algebra,
                             SchemeCertificate certificate);

  /// TEST SEAM — replaces the certificate of an installed scheme.
  void ReplaceCertificateForTest(RankScheme scheme,
                                 SchemeCertificate certificate);

  /// The certificate of `scheme`; nullptr when the value is unknown.
  /// The pointer stays valid for the process lifetime. Lock-free.
  const SchemeCertificate* Certificate(RankScheme scheme) const;

  /// The algebra of `scheme`; nullptr when unknown. Lock-free.
  const SchemeAlgebra* Algebra(RankScheme scheme) const;

  /// The registered name of `scheme`; nullptr when unknown. Lock-free.
  const char* Name(RankScheme scheme) const;

  /// Looks a scheme up by registered name.
  std::optional<RankScheme> ByName(std::string_view name) const;

  /// Every registered scheme value, built-ins first, in id order.
  std::vector<RankScheme> Registered() const;

  /// JSON array of SchemeCertificate::ToJson() for every registered
  /// scheme (the CLI --certify payload and the CI artifact).
  std::string CertificatesJson() const;

  /// Comparator fall-through for custom scheme values: true when `a`
  /// ranks strictly before `b` under the registered algebra of `scheme`;
  /// false for unknown values. Lock-free (called from RanksBefore inner
  /// loops).
  static bool RanksBeforeCustom(const AnswerScore& a, const AnswerScore& b,
                                RankScheme scheme);

 private:
  struct Entry {
    SchemeAlgebra algebra;
    SchemeCertificate certificate;
  };

  SchemeRegistry();

  RankScheme Install(const SchemeAlgebra& algebra,
                     SchemeCertificate certificate);

  const Entry* Lookup(RankScheme scheme) const {
    const auto idx = static_cast<size_t>(scheme);
    if (idx >= kMaxRankSchemes) return nullptr;
    return slots_[idx].load(std::memory_order_acquire);
  }

  mutable Mutex mu_;
  size_t next_id_ GUARDED_BY(mu_) = 0;
  /// Published entries; readers go lock-free through the atomics.
  std::array<std::atomic<const Entry*>, kMaxRankSchemes> slots_{};
  /// Owns every entry ever installed, including ones the test seam
  /// replaced — entries are never freed, so outstanding lock-free
  /// readers never see a dangling pointer.
  std::vector<std::unique_ptr<const Entry>> owned_ GUARDED_BY(mu_);
};

}  // namespace flexpath

#endif  // FLEXPATH_RANK_SCHEME_REGISTRY_H_
