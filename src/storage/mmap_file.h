#ifndef FLEXPATH_STORAGE_MMAP_FILE_H_
#define FLEXPATH_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace flexpath {
namespace storage {

/// A read-only memory-mapped file. The mapping lives for the object's
/// lifetime; view() is a zero-copy window over the whole file.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Opens and maps `path` read-only. An empty file maps to an empty
  /// view (valid, size 0).
  static Result<MmapFile> Open(const std::string& path);

  std::string_view view() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || size_ == 0; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace storage
}  // namespace flexpath

#endif  // FLEXPATH_STORAGE_MMAP_FILE_H_
