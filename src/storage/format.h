#ifndef FLEXPATH_STORAGE_FORMAT_H_
#define FLEXPATH_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>

namespace flexpath {
namespace storage {

/// The packed single-file corpus format (DESIGN.md §17). All multi-byte
/// integers are little-endian; fixed-width directory records are padded
/// to natural alignment and sections start on page boundaries, so a
/// reader can point straight into the mapping without copying. Variable
/// content (node streams, element-table blocks, posting blocks) is
/// varint/delta coded per storage/codec.h.
///
/// Layout:
///   FileHeader (page 0)
///   SectionRecord table (immediately after the header)
///   sections, each page-aligned, in SectionId order.

inline constexpr uint64_t kMagic = 0x50524F434B505846ULL;  // "FXPKCORP" LE
inline constexpr uint32_t kFormatVersion = 1;
/// Written as a native u32; reads back as this value only on a
/// same-endianness machine (the mmap'd directories are raw memory, so a
/// cross-endian file is rejected rather than misread).
inline constexpr uint32_t kEndianTag = 0x01020304;
inline constexpr uint32_t kPageSize = 4096;

/// Section identifiers; the section table is sorted by id.
enum SectionId : uint32_t {
  kSecTagNames = 1,      ///< tag_count varint-prefixed names.
  kSecDocDir = 2,        ///< doc_count × DocDirRecord.
  kSecNodeStreams = 3,   ///< per-doc varint node streams (see writer.cc).
  kSecElemDir = 4,       ///< tag_count × ElemDirRecord.
  kSecElemBlocks = 5,    ///< delta key blocks of the per-tag tables.
  kSecElemSkips = 6,     ///< SkipEntry table for kSecElemBlocks.
  kSecStats = 7,         ///< #(t)/#pc/#ad/existence tables (varint).
  kSecTermDir = 8,       ///< term_count × TermDirRecord, term-sorted.
  kSecTermStrings = 9,   ///< raw term bytes, referenced by TermDirRecord.
  kSecPostBlocks = 10,   ///< block-compressed postings.
  kSecPostSkips = 11,    ///< SkipEntry table for kSecPostBlocks.
};
inline constexpr uint32_t kSectionCount = 11;

struct FileHeader {
  uint64_t magic = kMagic;
  uint32_t version = kFormatVersion;
  uint32_t endian_tag = kEndianTag;
  uint32_t page_size = kPageSize;
  uint32_t tokenizer_flags = 0;  ///< bit0: stem, bit1: drop_stopwords.
  uint64_t file_bytes = 0;       ///< Total file size (truncation check).
  uint64_t doc_count = 0;
  uint64_t total_nodes = 0;
  uint64_t tag_count = 0;
  uint64_t term_count = 0;
  uint64_t total_elements = 0;   ///< InvertedIndex::total_elements().
  uint32_t section_count = kSectionCount;
  uint32_t reserved = 0;
};
static_assert(sizeof(FileHeader) == 80, "FileHeader layout is the format");

struct SectionRecord {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  ///< Absolute byte offset; page aligned.
  uint64_t length = 0;  ///< Exact byte length (padding not included).
};
static_assert(sizeof(SectionRecord) == 24, "SectionRecord layout");

/// One document: where its varint node stream lives inside
/// kSecNodeStreams, and how many element nodes it holds (so the corpus
/// can answer DocSize() without touching the stream).
struct DocDirRecord {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t node_count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(DocDirRecord) == 24, "DocDirRecord layout");

/// One tag's element table: `count` strictly increasing NodeRef keys
/// ((doc << 32) | node) in kSecElemBlocks, with `skip_count` SkipEntry
/// records starting at index `skip_index` of kSecElemSkips.
struct ElemDirRecord {
  uint64_t count = 0;
  uint64_t offset = 0;  ///< Into kSecElemBlocks.
  uint64_t length = 0;
  uint64_t skip_index = 0;
  uint32_t skip_count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(ElemDirRecord) == 40, "ElemDirRecord layout");

/// One term: its bytes in kSecTermStrings, document frequency and total
/// term frequency (so Idf and stats need no posting decode), and its
/// block-compressed postings + skip entries. The skip `aggregate` field
/// carries the tf prefix sum before each block, which is what lets
/// range-tf lookups seek without decompressing the whole list.
struct TermDirRecord {
  uint64_t str_offset = 0;
  uint32_t str_length = 0;
  uint32_t df = 0;
  uint64_t total_tf = 0;
  uint64_t post_offset = 0;  ///< Into kSecPostBlocks.
  uint64_t post_length = 0;
  uint64_t skip_index = 0;
  uint32_t skip_count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(TermDirRecord) == 56, "TermDirRecord layout");

/// Rounds `n` up to the next page boundary.
inline uint64_t PageAlign(uint64_t n) {
  return (n + kPageSize - 1) / kPageSize * kPageSize;
}

}  // namespace storage
}  // namespace flexpath

#endif  // FLEXPATH_STORAGE_FORMAT_H_
