#include "storage/writer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "ir/inverted_index.h"
#include "stats/document_stats.h"
#include "storage/codec.h"
#include "storage/format.h"

namespace flexpath {
namespace storage {

namespace {

/// NodeRef → the strictly increasing key the element/posting sections
/// sort by. (doc, node) order == global document order.
uint64_t KeyOf(NodeRef ref) {
  return (static_cast<uint64_t>(ref.doc) << 32) | ref.node;
}

/// kInvalidNode-safe NodeId encoding: 0 = none, else id + 1.
uint64_t PlusOne(NodeId id) {
  return id == kInvalidNode ? 0 : static_cast<uint64_t>(id) + 1;
}

void PutString(std::string_view s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s.data(), s.size());
}

/// Serializes one document as the varint node stream the reader's
/// MaterializeDocument parses. Field order is the format.
void EncodeDocument(const Document& doc, std::string* out) {
  for (NodeId n = 0; n < doc.size(); ++n) {
    const Element& e = doc.node(n);
    PutVarint(e.tag, out);
    PutVarint(PlusOne(e.parent), out);
    PutVarint(PlusOne(e.first_child), out);
    PutVarint(PlusOne(e.next_sibling), out);
    PutVarint(e.start, out);
    PutVarint(e.end, out);
    PutVarint(e.level, out);
    PutString(e.text, out);
    PutVarint(e.attrs.size(), out);
    for (const Attribute& a : e.attrs) {
      PutVarint(a.name, out);
      PutString(a.value, out);
    }
  }
}

/// Serializes a pair-count map as sorted (key, count) varint pairs —
/// sorted so packing is deterministic.
void EncodePairMap(const std::unordered_map<uint64_t, uint64_t>& m,
                   std::string* out) {
  std::vector<std::pair<uint64_t, uint64_t>> entries(m.begin(), m.end());
  std::sort(entries.begin(), entries.end());
  PutVarint(entries.size(), out);
  for (const auto& [key, count] : entries) {
    PutVarint(key, out);
    PutVarint(count, out);
  }
}

/// Encodes one posting list as interleaved delta blocks: per posting a
/// key (absolute for the block's first posting, delta otherwise), the
/// tf, then tf position values (first absolute, rest deltas). One
/// SkipEntry per block with aggregate = tf prefix sum before the block,
/// which is what RangeTermFrequency seeks on.
Status EncodePostingBlocks(const PostingList& list, std::string* out,
                           std::vector<SkipEntry>* skips) {
  const size_t base = out->size();
  uint64_t tf_before = 0;
  for (size_t i = 0; i < list.postings.size(); i += kBlockKeys) {
    const size_t block_end = std::min(list.postings.size(), i + kBlockKeys);
    SkipEntry skip;
    skip.first_key = KeyOf(list.postings[i].node);
    skip.offset = out->size() - base;
    skip.aggregate = tf_before;
    skip.count = static_cast<uint32_t>(block_end - i);
    skips->push_back(skip);
    for (size_t j = i; j < block_end; ++j) {
      const Posting& p = list.postings[j];
      const uint64_t key = KeyOf(p.node);
      if (j == i) {
        PutVarint(key, out);
      } else {
        const uint64_t prev = KeyOf(list.postings[j - 1].node);
        if (key <= prev) {
          return Status::InvalidArgument("posting list is not sorted");
        }
        PutVarint(key - prev, out);
      }
      if (p.tf == 0 || p.positions.size() != p.tf) {
        return Status::InvalidArgument("posting tf/positions mismatch");
      }
      PutVarint(p.tf, out);
      for (size_t k = 0; k < p.positions.size(); ++k) {
        if (k == 0) {
          PutVarint(p.positions[0], out);
        } else {
          if (p.positions[k] <= p.positions[k - 1]) {
            return Status::InvalidArgument("positions are not increasing");
          }
          PutVarint(p.positions[k] - p.positions[k - 1], out);
        }
      }
      tf_before += p.tf;
    }
  }
  return Status::OK();
}

/// Raw-copies a POD record into a byte string.
template <typename T>
void AppendPod(const T& value, std::string* out) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

Status WritePackedCorpus(const Corpus& corpus, const TokenizerOptions& opts,
                         const std::string& path, PackResult* result) {
  // ---- Build the in-memory indexes the file snapshots. ----
  const InvertedIndex index(&corpus, opts);
  const DocumentStats stats(&corpus);
  const size_t tag_count = corpus.tags().size();

  // ---- Section payloads, keyed by SectionId. ----
  std::map<uint32_t, std::string> sections;

  // Tag names, in id order.
  {
    std::string& sec = sections[kSecTagNames];
    for (TagId t = 0; t < tag_count; ++t) {
      PutString(corpus.tags().Name(t), &sec);
    }
  }

  // Node streams + document directory.
  {
    std::string& streams = sections[kSecNodeStreams];
    std::string& dir = sections[kSecDocDir];
    for (DocId d = 0; d < corpus.size(); ++d) {
      const Document& doc = corpus.doc(d);
      DocDirRecord rec;
      rec.offset = streams.size();
      EncodeDocument(doc, &streams);
      rec.length = streams.size() - rec.offset;
      rec.node_count = static_cast<uint32_t>(doc.size());
      AppendPod(rec, &dir);
    }
  }

  // Per-tag element tables: the by-(doc, start) lists ElementIndex
  // serves, as delta key blocks with a shared skip table.
  {
    std::vector<std::vector<uint64_t>> by_tag(tag_count);
    for (DocId d = 0; d < corpus.size(); ++d) {
      const Document& doc = corpus.doc(d);
      for (NodeId n = 0; n < doc.size(); ++n) {
        const TagId tag = doc.node(n).tag;
        if (tag < tag_count) by_tag[tag].push_back(KeyOf(NodeRef{d, n}));
      }
    }
    std::string& blocks = sections[kSecElemBlocks];
    std::string& dir = sections[kSecElemDir];
    std::vector<SkipEntry> skips;
    for (TagId t = 0; t < tag_count; ++t) {
      ElemDirRecord rec;
      rec.count = by_tag[t].size();
      rec.offset = blocks.size();
      rec.skip_index = skips.size();
      std::vector<SkipEntry> tag_skips;
      FLEXPATH_RETURN_IF_ERROR(
          EncodeKeyBlocks(by_tag[t], &blocks, &tag_skips));
      // Element-table aggregates carry the key ordinal before each block.
      for (size_t b = 0; b < tag_skips.size(); ++b) {
        tag_skips[b].aggregate = b * kBlockKeys;
      }
      rec.length = blocks.size() - rec.offset;
      rec.skip_count = static_cast<uint32_t>(tag_skips.size());
      skips.insert(skips.end(), tag_skips.begin(), tag_skips.end());
      AppendPod(rec, &dir);
    }
    std::string& skip_sec = sections[kSecElemSkips];
    for (const SkipEntry& s : skips) AppendPod(s, &skip_sec);
  }

  // Statistics tables.
  {
    std::string& sec = sections[kSecStats];
    const DocumentStats::Tables tables = stats.ExportTables();
    PutVarint(tables.tag_counts.size(), &sec);
    for (uint64_t c : tables.tag_counts) PutVarint(c, &sec);
    EncodePairMap(tables.pc_counts, &sec);
    EncodePairMap(tables.ad_counts, &sec);
    EncodePairMap(tables.pc_exists, &sec);
    EncodePairMap(tables.ad_exists, &sec);
  }

  // Term directory (sorted by term bytes, so the reader binary-searches
  // the mmap'd records), term strings, posting blocks, posting skips.
  uint64_t term_count = 0;
  {
    std::vector<std::pair<std::string, const PostingList*>> terms;
    index.ForEachTerm([&](const std::string& term, const PostingList& list) {
      terms.emplace_back(term, &list);
    });
    std::sort(terms.begin(), terms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    term_count = terms.size();

    std::string& dir = sections[kSecTermDir];
    std::string& strings = sections[kSecTermStrings];
    std::string& blocks = sections[kSecPostBlocks];
    std::vector<SkipEntry> skips;
    for (const auto& [term, list] : terms) {
      TermDirRecord rec;
      rec.str_offset = strings.size();
      rec.str_length = static_cast<uint32_t>(term.size());
      strings.append(term);
      rec.df = static_cast<uint32_t>(list->postings.size());
      rec.total_tf = list->tf_prefix.empty() ? 0 : list->tf_prefix.back();
      rec.post_offset = blocks.size();
      rec.skip_index = skips.size();
      std::vector<SkipEntry> term_skips;
      FLEXPATH_RETURN_IF_ERROR(
          EncodePostingBlocks(*list, &blocks, &term_skips));
      rec.post_length = blocks.size() - rec.post_offset;
      rec.skip_count = static_cast<uint32_t>(term_skips.size());
      skips.insert(skips.end(), term_skips.begin(), term_skips.end());
      AppendPod(rec, &dir);
    }
    std::string& skip_sec = sections[kSecPostSkips];
    for (const SkipEntry& s : skips) AppendPod(s, &skip_sec);
  }

  // ---- Lay out the file: header, section table, page-aligned data. ----
  FileHeader header;
  header.tokenizer_flags = (opts.stem ? 1u : 0u) |
                           (opts.drop_stopwords ? 2u : 0u);
  header.doc_count = corpus.size();
  header.total_nodes = corpus.TotalNodes();
  header.tag_count = tag_count;
  header.term_count = term_count;
  header.total_elements = index.total_elements();

  std::vector<SectionRecord> table;
  uint64_t cursor =
      PageAlign(sizeof(FileHeader) + kSectionCount * sizeof(SectionRecord));
  for (uint32_t id = 1; id <= kSectionCount; ++id) {
    SectionRecord rec;
    rec.id = id;
    rec.offset = cursor;
    rec.length = sections[id].size();
    cursor = PageAlign(cursor + rec.length);
    table.push_back(rec);
  }
  header.file_bytes = cursor;

  // ---- Write it out. ----
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create " + path);
  }
  std::string head;
  AppendPod(header, &head);
  for (const SectionRecord& rec : table) AppendPod(rec, &head);
  head.resize(table.empty() ? PageAlign(head.size())
                            : static_cast<size_t>(table[0].offset),
              '\0');
  bool ok = std::fwrite(head.data(), 1, head.size(), f) == head.size();
  for (size_t i = 0; ok && i < table.size(); ++i) {
    std::string& payload = sections[table[i].id];
    const uint64_t end = i + 1 < table.size() ? table[i + 1].offset
                                              : header.file_bytes;
    payload.resize(static_cast<size_t>(end - table[i].offset), '\0');
    ok = std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());
    return Status::Internal("short write to " + path);
  }

  if (result != nullptr) {
    result->file_bytes = header.file_bytes;
    result->doc_count = header.doc_count;
    result->tag_count = header.tag_count;
    result->term_count = header.term_count;
    result->total_nodes = header.total_nodes;
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace flexpath
