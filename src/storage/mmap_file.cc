#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace flexpath {
namespace storage {

MmapFile::~MmapFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fstat " + path + ": " + err);
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("mmap " + path + ": " + err);
    }
    file.data_ = data;
    file.mapped_ = true;
  }
  ::close(fd);  // The mapping survives the descriptor.
  return file;
}

}  // namespace storage
}  // namespace flexpath
