#ifndef FLEXPATH_STORAGE_CODEC_H_
#define FLEXPATH_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace flexpath {
namespace storage {

/// Low-level byte codec shared by the packed-corpus writer and reader
/// (DESIGN.md §17): LEB128 varints plus delta-compressed blocks of
/// strictly increasing uint64 keys with a fixed-width skip table, so a
/// reader can seek to the block containing a key and decode only that
/// block instead of the whole list.

/// Appends `value` as a LEB128 varint (1-10 bytes).
void PutVarint(uint64_t value, std::string* out);

/// Bounds-checked varint reader over a byte range. `*pos` advances past
/// the consumed bytes on success and is unspecified on error.
Status GetVarint(std::string_view data, size_t* pos, uint64_t* out);

/// Number of keys per delta block. Small enough that a point lookup
/// decodes little; large enough that the skip table stays tiny (one
/// 32-byte entry per block).
inline constexpr size_t kBlockKeys = 128;

/// One skip-table entry, fixed width so the reader can binary-search the
/// mmap'd table directly. `first_key` is the first key of the block,
/// `offset` the block's byte offset within the list's encoded region,
/// `aggregate` a codec-client running total *before* this block (the
/// posting writer stores the tf prefix sum there; element tables store
/// the key ordinal), and `count` the number of keys in the block.
struct SkipEntry {
  uint64_t first_key = 0;
  uint64_t offset = 0;
  uint64_t aggregate = 0;
  uint32_t count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(SkipEntry) == 32, "SkipEntry layout is part of the format");

/// Encodes a strictly increasing key sequence as delta blocks of up to
/// kBlockKeys keys: each block is [varint first_key][varint delta]*,
/// deltas >= 1. Appends the encoded bytes to `out` and one SkipEntry per
/// block to `skips` (offsets relative to the first appended byte;
/// `aggregate` left 0 for the caller to fill). Returns InvalidArgument
/// if the keys are not strictly increasing.
Status EncodeKeyBlocks(const std::vector<uint64_t>& keys, std::string* out,
                       std::vector<SkipEntry>* skips);

/// Decodes the blocks of EncodeKeyBlocks back into keys. `expect` is the
/// expected key count (from the directory); a mismatch, a non-positive
/// delta, or a truncated block is an error, never a crash.
Status DecodeKeyBlocks(std::string_view data, uint64_t expect,
                       std::vector<uint64_t>* out);

/// Decodes a single block (starting at `offset` within `data`) holding
/// `count` keys. Used by skip-seeking readers to decode only the blocks
/// overlapping a key range.
Status DecodeOneBlock(std::string_view data, uint64_t offset, uint32_t count,
                      std::vector<uint64_t>* out);

}  // namespace storage
}  // namespace flexpath

#endif  // FLEXPATH_STORAGE_CODEC_H_
