#ifndef FLEXPATH_STORAGE_READER_H_
#define FLEXPATH_STORAGE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lru_cache.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ir/inverted_index.h"
#include "ir/tokenizer.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "storage/codec.h"
#include "storage/format.h"
#include "storage/mmap_file.h"
#include "xml/corpus.h"

namespace flexpath {
namespace storage {

/// The zero-copy read side of the packed corpus format: one mmap, no
/// upfront decode. StorageReader is simultaneously
///  - the CorpusBacking a lazy Corpus materializes documents from,
///  - the ElementTableSource a packed ElementIndex scans through, and
///  - the PostingSource a packed InvertedIndex resolves terms against,
/// so one object (and one mapping) serves the whole read path.
///
/// Fixed-width structures (directories, skip tables) are *pointed at* in
/// the mapping — never copied. Variable structures (element tables,
/// posting lists) decode on first touch into two byte-budgeted LRU buffer
/// pools; handed-out shared_ptrs pin entries across eviction exactly like
/// the engine's other caches. Open() validates the header, section table,
/// and directory bounds and returns a Status — corrupt or truncated files
/// are an error, never a crash — but does not touch block payloads, which
/// is why opening a multi-GB corpus is O(directories), not O(data).
///
/// Thread safety: all methods are const and safe for concurrent use; the
/// pools are internally locked.
/// Buffer-pool budgets for StorageReader::Open.
struct ReaderOptions {
  /// Byte budget of the element-table buffer pool.
  size_t elem_pool_bytes = size_t{64} << 20;
  /// Byte budget of the posting-list buffer pool.
  size_t post_pool_bytes = size_t{64} << 20;
};

class StorageReader : public CorpusBacking,
                      public ElementTableSource,
                      public PostingSource {
 public:
  using Options = ReaderOptions;

  /// Maps `path` and validates everything reachable without decoding
  /// blocks: magic, version, endianness, page size, section table, and
  /// all directory records (bounds against their sections).
  static Result<std::shared_ptr<StorageReader>> Open(
      const std::string& path, Options options = Options());

  ~StorageReader() override = default;
  StorageReader(const StorageReader&) = delete;
  StorageReader& operator=(const StorageReader&) = delete;

  // ---- Header-level accessors. ----
  const FileHeader& header() const { return header_; }
  TokenizerOptions tokenizer_options() const {
    TokenizerOptions opts;
    opts.stem = (header_.tokenizer_flags & 1u) != 0;
    opts.drop_stopwords = (header_.tokenizer_flags & 2u) != 0;
    return opts;
  }

  /// Interns all tag names, in file order, into `dict` (which must be
  /// empty — packed tag ids are positional).
  Status LoadTags(TagDict* dict) const;

  /// Deserializes the statistics tables (for DocumentStats's packed
  /// ctor).
  Result<DocumentStats::Tables> LoadStatsTables() const;

  /// Human-readable header/section dump (the `flexpath_pack --inspect`
  /// output, also uploaded as a CI artifact).
  std::string InspectJson() const;

  // ---- CorpusBacking. ----
  size_t DocCount() const override {
    return static_cast<size_t>(header_.doc_count);
  }
  size_t DocNodeCount(DocId id) const override;
  Result<Document> MaterializeDocument(DocId id) const override;

  // ---- ElementTableSource. ----
  size_t TagListCount(TagId tag) const override;
  std::shared_ptr<const std::vector<NodeRef>> TagList(
      TagId tag) const override;

  // ---- PostingSource. ----
  bool TermInfo(const std::string& term, uint32_t* df,
                uint64_t* total_tf) const override;
  std::shared_ptr<const PostingList> FindPostings(
      const std::string& term) const override;
  Result<uint64_t> RangeTermFrequency(const std::string& term,
                                      uint64_t lo_key,
                                      uint64_t hi_key) const override;
  size_t TermCount() const override {
    return static_cast<size_t>(header_.term_count);
  }

  // ---- Buffer-pool introspection (the /metrics + :cache surface). ----
  struct PoolStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t budget = 0;
  };
  PoolStats GetElemPoolStats() const;
  PoolStats GetPostPoolStats() const;
  void SetPoolBudgets(size_t elem_pool_bytes, size_t post_pool_bytes);

 private:
  StorageReader()
      : elem_pool_(Options().elem_pool_bytes),
        post_pool_(Options().post_pool_bytes) {}

  /// Section payload bytes (exact length, padding excluded).
  std::string_view Section(uint32_t id) const {
    const SectionRecord& rec = section_table_[id - 1];
    return file_.view().substr(static_cast<size_t>(rec.offset),
                               static_cast<size_t>(rec.length));
  }

  /// Validates header/sections/directories; called once by Open.
  Status Validate();

  /// Index of `term` in the term directory, or -1.
  int64_t FindTermIndex(std::string_view term) const;
  std::string_view TermBytes(const TermDirRecord& rec) const;

  /// Decodes one posting block (posting `skip.count` entries starting at
  /// `skip.offset` of `post_bytes`) appending to `out`.
  Status DecodePostingBlock(std::string_view post_bytes,
                            const SkipEntry& skip,
                            std::vector<Posting>* out) const;

  MmapFile file_;
  FileHeader header_;
  std::vector<SectionRecord> section_table_;  ///< Indexed by id - 1.

  // Mmap-pointed fixed-width directories (set by Validate).
  const DocDirRecord* doc_dir_ = nullptr;
  const ElemDirRecord* elem_dir_ = nullptr;
  const SkipEntry* elem_skips_ = nullptr;
  size_t elem_skip_count_ = 0;
  const TermDirRecord* term_dir_ = nullptr;
  const SkipEntry* post_skips_ = nullptr;
  size_t post_skip_count_ = 0;

  mutable Mutex elem_pool_mu_;
  mutable LruByteCache<TagId, std::vector<NodeRef>> elem_pool_
      GUARDED_BY(elem_pool_mu_);
  mutable uint64_t elem_hits_ GUARDED_BY(elem_pool_mu_) = 0;
  mutable uint64_t elem_misses_ GUARDED_BY(elem_pool_mu_) = 0;

  mutable Mutex post_pool_mu_;
  mutable LruByteCache<uint32_t, PostingList> post_pool_
      GUARDED_BY(post_pool_mu_);
  mutable uint64_t post_hits_ GUARDED_BY(post_pool_mu_) = 0;
  mutable uint64_t post_misses_ GUARDED_BY(post_pool_mu_) = 0;
};

}  // namespace storage
}  // namespace flexpath

#endif  // FLEXPATH_STORAGE_READER_H_
