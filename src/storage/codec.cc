#include "storage/codec.h"

#include <algorithm>

namespace flexpath {
namespace storage {

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Status GetVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (*pos >= data.size()) {
      return Status::InvalidArgument("truncated varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    if (shift >= 63 && byte > 1) {
      return Status::InvalidArgument("varint overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = value;
  return Status::OK();
}

Status EncodeKeyBlocks(const std::vector<uint64_t>& keys, std::string* out,
                       std::vector<SkipEntry>* skips) {
  const size_t base = out->size();
  for (size_t i = 0; i < keys.size(); i += kBlockKeys) {
    const size_t block_end = std::min(keys.size(), i + kBlockKeys);
    if (i > 0 && keys[i] <= keys[i - 1]) {
      return Status::InvalidArgument(
          "key sequence is not strictly increasing at position " +
          std::to_string(i));
    }
    SkipEntry skip;
    skip.first_key = keys[i];
    skip.offset = out->size() - base;
    skip.count = static_cast<uint32_t>(block_end - i);
    skips->push_back(skip);
    PutVarint(keys[i], out);
    for (size_t j = i + 1; j < block_end; ++j) {
      if (keys[j] <= keys[j - 1]) {
        return Status::InvalidArgument(
            "key sequence is not strictly increasing at position " +
            std::to_string(j));
      }
      PutVarint(keys[j] - keys[j - 1], out);
    }
  }
  return Status::OK();
}

Status DecodeKeyBlocks(std::string_view data, uint64_t expect,
                       std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(expect);
  size_t pos = 0;
  while (out->size() < expect) {
    const size_t block =
        std::min<size_t>(kBlockKeys, expect - out->size());
    uint64_t key = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(data, &pos, &key));
    if (!out->empty() && key <= out->back()) {
      return Status::InvalidArgument("block first key does not increase");
    }
    out->push_back(key);
    for (size_t j = 1; j < block; ++j) {
      uint64_t delta = 0;
      FLEXPATH_RETURN_IF_ERROR(GetVarint(data, &pos, &delta));
      if (delta == 0) {
        return Status::InvalidArgument("zero delta in key block");
      }
      if (key > UINT64_MAX - delta) {
        return Status::InvalidArgument("key overflow in key block");
      }
      key += delta;
      out->push_back(key);
    }
  }
  if (pos != data.size()) {
    return Status::InvalidArgument("trailing bytes after key blocks");
  }
  return Status::OK();
}

Status DecodeOneBlock(std::string_view data, uint64_t offset, uint32_t count,
                      std::vector<uint64_t>* out) {
  if (offset > data.size()) {
    return Status::InvalidArgument("skip offset past end of list");
  }
  if (count > kBlockKeys) {
    return Status::InvalidArgument("implausible block count");
  }
  out->clear();
  out->reserve(count);
  size_t pos = static_cast<size_t>(offset);
  uint64_t key = 0;
  for (uint32_t j = 0; j < count; ++j) {
    uint64_t v = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(data, &pos, &v));
    if (j == 0) {
      key = v;
    } else {
      if (v == 0) return Status::InvalidArgument("zero delta in key block");
      if (key > UINT64_MAX - v) {
        return Status::InvalidArgument("key overflow in key block");
      }
      key += v;
    }
    out->push_back(key);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace flexpath
