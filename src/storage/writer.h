#ifndef FLEXPATH_STORAGE_WRITER_H_
#define FLEXPATH_STORAGE_WRITER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "ir/tokenizer.h"
#include "xml/corpus.h"

namespace flexpath {
namespace storage {

/// Summary of one pack run, for CLI/bench reporting.
struct PackResult {
  uint64_t file_bytes = 0;
  uint64_t doc_count = 0;
  uint64_t tag_count = 0;
  uint64_t term_count = 0;
  uint64_t total_nodes = 0;
};

/// Serializes `corpus` — documents, per-tag element tables, statistics
/// tables, and a full inverted index tokenized with `opts` — into the
/// packed single-file format (format.h) at `path`. The file is
/// self-contained: OpenPacked needs nothing but the file to answer
/// queries byte-identically to an index built in memory over the same
/// corpus with the same TokenizerOptions (which are recorded in the
/// header so the two sides cannot disagree).
///
/// Packing builds the in-memory InvertedIndex and DocumentStats as
/// intermediate state, so it costs what Build() costs plus serialization
/// — the payoff is every subsequent open.
Status WritePackedCorpus(const Corpus& corpus, const TokenizerOptions& opts,
                         const std::string& path,
                         PackResult* result = nullptr);

}  // namespace storage
}  // namespace flexpath

#endif  // FLEXPATH_STORAGE_WRITER_H_
